#!/bin/sh
# Full verification gate: what CI runs, and what a PR must keep green.
#
#   1. release build of the whole workspace
#   2. the test suite (unit + integration + property tests)
#   3. dfs-lint: workspace-wide lock-order / guard-across-RPC static
#      analysis over crates/ (see crates/lint and DESIGN.md
#      "Concurrency discipline")
#
# Run from the repo root:  ./verify.sh
set -eu
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> dfs-lint crates/"
cargo run -q --release -p dfs-lint -- crates/

echo "verify: OK"
