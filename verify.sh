#!/bin/sh
# Full verification gate: what CI runs, and what a PR must keep green.
#
#   1. release build of the whole workspace
#   2. the test suite (unit + integration + property tests)
#   3. dfs-lint: workspace-wide concurrency static analysis (lock
#      order, lockset coverage, lock-gap TOCTOU, stale allows) over
#      crates/, shims/, and the root crate; the --json rendering is
#      validated through jsoncheck (see crates/lint and DESIGN.md
#      "Concurrency discipline")
#   4. cargo clippy --workspace with the pinned deny-list
#      (await_holding_lock, mut_mutex_lock, redundant_clone)
#   5. bench smoke: T8 and T1 at tiny parameters in --json mode; fails
#      on a panic (non-zero exit) or malformed JSON (jsoncheck)
#   6. recovery gate: the crash-restart pipeline tests plus T13 at tiny
#      parameters (server epoch bump, grace window, token
#      reestablishment, dirty-burst replay)
#   7. fleet gate: the fleet-layer tests plus T15 at tiny parameters
#      (volume sharding, WrongServer routing, live mid-run migration)
#   8. hotpath gate: the token stress suite at shard counts 1 and 4
#      (DFS_TOKEN_SHARDS) plus T9 with a small --clients sweep and T8
#      with a --clients concurrency section, both JSON-validated
#   9. availability gate: the fault-matrix tests (drop/delay/duplicate/
#      partition over flush, revocation, migration) plus T14 at tiny
#      parameters (§3.8 replica promotion: bounded-stale reads during a
#      primary partition, honest Unavailable without a replica, zero
#      lost updates after reconciliation)
#  10. scenario gate: the scenario-engine tests (seed determinism,
#      invariant counters, fault-timeline arming) plus T17 at tiny
#      parameters — a crash + restart + live volume move mid-run, run
#      twice; the smoke fails unless the JSON reports ok (coherent,
#      replay-identical, all events fired)
#  11. bench JSON smoke: every remaining --json-capable binary runs
#      once and its output is validated through jsoncheck
#
# Run from the repo root:  ./verify.sh
set -eu
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> dfs-lint crates/ shims/ . (JSON validated)"
cargo run -q --release -p dfs-lint -- crates shims .
lint_out=$(cargo run -q --release -p dfs-lint -- --json crates shims .)
printf '%s' "$lint_out" | cargo run -q --release -p dfs-bench --bin jsoncheck

echo "==> cargo clippy --workspace (pinned deny-list)"
cargo clippy --workspace --quiet

echo "==> bench smoke (t8 + t1, tiny params, JSON validated)"
# Capture then pipe so a bench panic fails the stage even without
# `pipefail` (plain sh).
t8_out=$(cargo run -q --release -p dfs-bench --bin t8_group_commit -- --json --ops 64 --pages 32)
printf '%s' "$t8_out" | cargo run -q --release -p dfs-bench --bin jsoncheck
t1_out=$(cargo run -q --release -p dfs-bench --bin t1_metadata_traffic -- --json --files 50)
printf '%s' "$t1_out" | cargo run -q --release -p dfs-bench --bin jsoncheck

echo "==> recovery gate (crash-restart tests + t13 smoke)"
cargo test -q --test recovery
t13_out=$(cargo run -q --release -p dfs-bench --bin t13_crash_restart -- --json --files 8 --burst 4)
printf '%s' "$t13_out" | cargo run -q --release -p dfs-bench --bin jsoncheck

echo "==> fleet gate (fleet tests + t15 smoke)"
cargo test -q --test fleet
t15_out=$(cargo run -q --release -p dfs-bench --bin t15_fleet -- --json --servers 2 --ops 12)
printf '%s' "$t15_out" | cargo run -q --release -p dfs-bench --bin jsoncheck

echo "==> hotpath gate (token stress at 1 and 4 shards + t9/t8 client sweeps)"
DFS_TOKEN_SHARDS=1 cargo test -q -p dfs-token --test stress
DFS_TOKEN_SHARDS=4 cargo test -q -p dfs-token --test stress
t9_out=$(cargo run -q --release -p dfs-bench --bin t9_revocation_pingpong -- --json --clients 8 --ops 200)
printf '%s' "$t9_out" | cargo run -q --release -p dfs-bench --bin jsoncheck
t8c_out=$(cargo run -q --release -p dfs-bench --bin t8_group_commit -- --json --ops 64 --pages 16 --clients 4)
printf '%s' "$t8c_out" | cargo run -q --release -p dfs-bench --bin jsoncheck

echo "==> availability gate (fault-matrix tests + t14 smoke)"
cargo test -q --test faults
t14_out=$(cargo run -q --release -p dfs-bench --bin t14_availability -- --json --files 6)
printf '%s' "$t14_out" | cargo run -q --release -p dfs-bench --bin jsoncheck

echo "==> scenario gate (engine tests + tiny t17 crash/restart/move smoke)"
cargo test -q --test scenario
t17_out=$(cargo run -q --release -p dfs-bench --bin t17_scenario -- --json --clients 8 --servers 2 --ops 12)
printf '%s' "$t17_out" | cargo run -q --release -p dfs-bench --bin jsoncheck
case "$t17_out" in
  *'"ok": true'*) ;;
  *) echo "t17 smoke: invariants, events, or seed replay failed"; exit 1 ;;
esac

echo "==> bench JSON smoke (every remaining --json binary validated)"
for b in fig1_server_structure fig2_client_structure fig3_open_token_matrix \
         t2_recovery_scaling t3_consistency_spectrum t4_byte_range_sharing \
         t5_volume_ops t6_lazy_replication t7_deadlock_storm \
         t10_thread_pool_ablation t11_andrew_style_workload \
         t12_diskless_clients; do
  b_out=$(cargo run -q --release -p dfs-bench --bin "$b" -- --json)
  printf '%s' "$b_out" | cargo run -q --release -p dfs-bench --bin jsoncheck
done

echo "verify: OK"
