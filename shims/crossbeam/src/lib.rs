//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides only `crossbeam::channel` — the one module this workspace uses —
//! as a multi-producer **multi-consumer** blocking channel built on
//! `std::sync`. `dfs-rpc` worker pools rely on cloning the `Receiver` so
//! several workers can pull jobs from one queue, which `std::sync::mpsc`
//! cannot do; this implementation supports it.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Chan<T> {
        fn new(capacity: Option<usize>) -> Arc<Self> {
            Arc::new(Chan {
                queue: Mutex::new(VecDeque::new()),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity,
                senders: AtomicUsize::new(1),
                receivers: AtomicUsize::new(1),
            })
        }
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(None);
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Creates a channel holding at most `cap` messages.
    ///
    /// `cap == 0` (a rendezvous channel in real crossbeam) is approximated
    /// with capacity 1; the workspace only uses `bounded(1)` reply slots.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Chan::new(Some(cap.max(1)));
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("receive timed out"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    /// The sending half of a channel; cloneable for multiple producers.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Blocks while the channel is full; errors once no receiver remains.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(cap) = self.chan.capacity {
                while queue.len() >= cap {
                    if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(value));
                    }
                    queue = self
                        .chan
                        .not_full
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
            }
            if self.chan.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            queue.push_back(value);
            drop(queue);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.senders.fetch_add(1, Ordering::SeqCst);
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.chan.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.chan.not_empty.notify_all();
            }
        }
    }

    /// The receiving half of a channel; cloneable for multiple consumers.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once no sender remains.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .chan
                    .not_empty
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }

        /// Like [`Receiver::recv`] but gives up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.chan.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(value) = queue.pop_front() {
                    drop(queue);
                    self.chan.not_full.notify_one();
                    return Ok(value);
                }
                if self.chan.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                queue = self
                    .chan
                    .not_empty
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.chan.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn multi_consumer_drains_queue() {
            let (tx, rx) = unbounded::<u32>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0u32;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
            let total: u32 = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(total, 100);
        }

        #[test]
        fn bounded_reply_slot() {
            let (tx, rx) = bounded::<&'static str>(1);
            tx.send("reply").unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok("reply"));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn recv_errors_after_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receivers_drop() {
            let (tx, rx) = bounded::<u8>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
