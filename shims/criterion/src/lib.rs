//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset `crates/bench/benches/micro.rs` uses:
//! `Criterion::default().sample_size(..).measurement_time(..).warm_up_time(..)`,
//! `bench_function` with `Bencher::iter`, and the `criterion_group!` /
//! `criterion_main!` macros. Timing is plain wall-clock sampling — median
//! and mean ns/iter are reported, with none of criterion's statistics,
//! plotting, or baseline comparison.
//!
//! Like real criterion, when the binary is run without a `--bench`
//! argument (as `cargo test` does for `harness = false` bench targets),
//! each benchmark body executes once as a smoke test and no measurement
//! is taken.

use std::time::{Duration, Instant};

/// Benchmark harness configuration and registry.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = !std::env::args().any(|a| a == "--bench");
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "sample size must be at least 10");
        self.sample_size = n;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs (or smoke-tests) one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        if self.test_mode {
            body(&mut b);
            println!("test-mode bench {name}: ok");
            return self;
        }

        // Warm-up: let caches and pools settle while calibrating an
        // iteration count that fills one sample.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut per_iter = Duration::from_micros(1);
        while Instant::now() < warm_deadline {
            body(&mut b);
            if b.iters > 0 && !b.elapsed.is_zero() {
                per_iter = b.elapsed / b.iters as u32;
            }
        }

        let sample_budget = self.measurement_time / self.sample_size as u32;
        let iters_per_sample =
            (sample_budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u32::MAX as u128)
                as u64;

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters_per_sample;
            b.elapsed = Duration::ZERO;
            body(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / b.iters.max(1) as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let median = samples[samples.len() / 2];
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} median {median:>12.1} ns/iter   mean {mean:>12.1} ns/iter   ({} samples x {} iters)",
            self.sample_size, iters_per_sample
        );
        self
    }
}

/// Timer handle passed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export so shim users can write `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
