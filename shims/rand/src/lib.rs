//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset the workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen::<T>()` for primitive types.
//! The generator is splitmix64 — deterministic per seed, statistically fine
//! for workload generation, and explicitly **not** cryptographic.

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn from_u64(raw: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn from_u64(raw: u64) -> Self {
                raw as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw & 1 == 1
    }
}

impl Standard for f64 {
    fn from_u64(raw: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (raw >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing random value generation.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_u64(self.next_u64())
    }

    /// Uniform value in `[0, bound)`.
    fn gen_range_u64(&mut self, bound: u64) -> u64
    where
        Self: Sized,
    {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn bytes_vary() {
        let mut rng = StdRng::seed_from_u64(7);
        let bytes: Vec<u8> = (0..64).map(|_| rng.gen::<u8>()).collect();
        assert!(bytes.iter().any(|&b| b != bytes[0]));
    }
}
