//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to a cargo registry, so the
//! workspace ships this minimal re-implementation of the `parking_lot` API
//! subset it actually uses: `Mutex`/`MutexGuard`, `RwLock` and its guards,
//! and `Condvar`. Semantics match parking_lot where the workspace depends
//! on them: guards release on drop, locking never returns a poison error
//! (a panicked holder simply passes the data on), and `Condvar::wait`
//! takes `&mut MutexGuard`.
//!
//! Not implemented (unused by the workspace): try-lock variants, fairness
//! controls, upgradable read locks, and send-able guards. Of the timed
//! waits only `Condvar::wait_for` is provided.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive (poison-ignoring wrapper over `std::sync::Mutex`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>, // dfs-lint: allow(std-sync) — this shim *is* the parking_lot implementation; std::sync is its backing primitive, not a workspace lock.
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) } // dfs-lint: allow(std-sync) — this shim *is* the parking_lot implementation; std::sync is its backing primitive, not a workspace lock.
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`].
///
/// The inner `Option` exists only so [`Condvar::wait`] can temporarily take
/// ownership of the underlying std guard; it is `Some` at all other times.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside Condvar::wait")
    }
}

/// A condition variable compatible with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar, // dfs-lint: allow(std-sync) — this shim *is* the parking_lot implementation; std::sync is its backing primitive, not a workspace lock.
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() } // dfs-lint: allow(std-sync) — this shim *is* the parking_lot implementation; std::sync is its backing primitive, not a workspace lock.
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside Condvar::wait");
        let std_guard = self.inner.wait(std_guard).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Waits with a timeout. Returns `true` if the wait timed out
    /// (mirroring `parking_lot::WaitTimeoutResult::timed_out`).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let std_guard = guard.inner.take().expect("guard present outside Condvar::wait");
        let (std_guard, res) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(std_guard);
        res.timed_out()
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// A reader-writer lock (poison-ignoring wrapper over `std::sync::RwLock`).
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>, // dfs-lint: allow(std-sync) — this shim *is* the parking_lot implementation; std::sync is its backing primitive, not a workspace lock.
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) } // dfs-lint: allow(std-sync) — this shim *is* the parking_lot implementation; std::sync is its backing primitive, not a workspace lock.
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out_and_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // No notifier: must time out with the guard intact.
        {
            let (m, cv) = &*pair;
            let mut g = m.lock();
            assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
            assert!(!*g);
        }
        // With a notifier: must wake before the (long) timeout.
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait_for(&mut done, Duration::from_secs(30));
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
