//! Offline stand-in for the `proptest` crate.
//!
//! The registry is unreachable in this build environment, so this crate
//! re-implements the proptest API subset the workspace's property tests
//! use: `Strategy` + `prop_map`, range and tuple strategies, `Just`,
//! `any::<T>()`, `prop_oneof!` (weighted and unweighted),
//! `proptest::collection::vec`, the `proptest!` test-harness macro with
//! `#![proptest_config(..)]`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case reports its assertion message and
//!   case number, not a minimized input;
//! * RNG seeding is deterministic per test (derived from the test's module
//!   path), so runs are reproducible but not influenced by
//!   `.proptest-regressions` files, which are ignored.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy, used by `prop_oneof!` arms.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Weighted choice between strategies; built by `prop_oneof!`.
    pub struct OneOf<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (w, strat) in &self.arms {
                if pick < *w as u64 {
                    return strat.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().expect("non-empty").1.generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {
            $(impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            })*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy, via [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy over the whole domain of `T`.
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing a `Vec` whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, 1..25)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use std::fmt;

    /// Per-test run configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test executes.
        pub cases: u32,
        /// Accepted for source compatibility; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// A failed `prop_assert!`-family assertion.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64 stream seeded from the test's identity.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name: stable across runs and platforms.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `below(0)` is 0.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                0
            } else {
                self.next_u64() % bound
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines `#[test]` functions that run a body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __body = || {
                    $body
                    ::std::result::Result::Ok(())
                };
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    __body();
                if let ::std::result::Result::Err(__e) = __outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                $crate::prop_assert!(
                    *__l == *__r,
                    "assertion failed: `{:?}` != `{:?}`",
                    __l,
                    __r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{:?}` != `{:?}`: {}",
                            __l,
                            __r,
                            format!($($fmt)+)
                        ),
                    ));
                }
            }
        }
    };
}

/// Chooses among strategies, optionally weighted (`3 => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate as proptest;
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, (a, b) in pair()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(a < 10 && b < 10, "a={} b={}", a, b);
        }

        #[test]
        fn oneof_covers_all_arms(v in proptest::collection::vec(
            prop_oneof![2 => Just(0u8), 1 => 1u8..3], 1..40))
        {
            prop_assert!(v.iter().all(|&x| x < 3));
        }

        #[test]
        fn map_applies(y in (0u64..5).prop_map(|v| v * 2)) {
            prop_assert_eq!(y % 2, 0);
        }

        #[test]
        fn any_generates(byte in any::<u8>()) {
            let _ = byte;
        }
    }
}
