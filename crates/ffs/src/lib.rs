//! A Berkeley-FFS-style baseline file system.
//!
//! This is the comparator the paper argues against in §2.2: a vendor
//! file system that "schedules large numbers of writes to file system
//! meta-data as soon as the meta-data are modified" — inodes, directory
//! blocks, and the allocation bitmap are written **synchronously, in
//! place** on every operation, "to ensure that certain information is
//! written before other information, to simplify the job of fsck". After
//! a crash it needs [`Ffs::fsck`]: a scan of the *whole* file system,
//! cost proportional to its size, not to the work in flight.
//!
//! It also embodies the interoperability target of §1: it implements the
//! same [`dfs_vfs::Vfs`] interface as Episode, so the DEcorum protocol
//! exporter can export it — a native file system "already in use on that
//! host" — to remote clients. The volume-level VFS+ extensions are
//! mostly unsupported (one volume per partition, no clones), which is
//! exactly the partial-functionality situation §3.3 anticipates.

use dfs_disk::{SimDisk, BLOCK_SIZE};
use dfs_types::{
    Acl, DfsError, DfsResult, FileStatus, FileType, Fid, SerializationStamp, SimClock, Timestamp,
    VnodeId, VolumeId,
};
use dfs_vfs::{
    Credentials, DirEntry, PhysicalFs, SalvageReport, SetAttrs, Vfs, VfsPlus, VolumeDump,
    VolumeInfo,
};
use parking_lot::Mutex;
use std::sync::Arc;

const FFS_MAGIC: u32 = 0xFF50_B5D0;
const INODE_SIZE: usize = 128;
const INODES_PER_BLOCK: usize = BLOCK_SIZE / INODE_SIZE;
const NDIRECT: usize = 10;
const PTRS: usize = BLOCK_SIZE / 4;

/// One on-disk inode.
#[derive(Clone, PartialEq, Eq, Debug)]
struct Inode {
    kind: u8, // 0 free, 1 file, 2 dir, 3 symlink
    mode: u16,
    uniq: u32,
    length: u64,
    owner: u32,
    group: u32,
    nlink: u16,
    mtime: u64,
    direct: [u32; NDIRECT],
    indirect: u32,
}

impl Inode {
    fn free() -> Inode {
        Inode {
            kind: 0,
            mode: 0,
            uniq: 0,
            length: 0,
            owner: 0,
            group: 0,
            nlink: 0,
            mtime: 0,
            direct: [0; NDIRECT],
            indirect: 0,
        }
    }

    fn encode(&self) -> [u8; INODE_SIZE] {
        let mut b = [0u8; INODE_SIZE];
        b[0] = self.kind;
        b[2..4].copy_from_slice(&self.mode.to_le_bytes());
        b[4..8].copy_from_slice(&self.uniq.to_le_bytes());
        b[8..16].copy_from_slice(&self.length.to_le_bytes());
        b[16..20].copy_from_slice(&self.owner.to_le_bytes());
        b[20..24].copy_from_slice(&self.group.to_le_bytes());
        b[24..26].copy_from_slice(&self.nlink.to_le_bytes());
        b[32..40].copy_from_slice(&self.mtime.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            b[40 + 4 * i..44 + 4 * i].copy_from_slice(&d.to_le_bytes());
        }
        b[80..84].copy_from_slice(&self.indirect.to_le_bytes());
        b
    }

    fn decode(b: &[u8]) -> Inode {
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u32::from_le_bytes(b[40 + 4 * i..44 + 4 * i].try_into().unwrap());
        }
        Inode {
            kind: b[0],
            mode: u16::from_le_bytes(b[2..4].try_into().unwrap()),
            uniq: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            length: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            owner: u32::from_le_bytes(b[16..20].try_into().unwrap()),
            group: u32::from_le_bytes(b[20..24].try_into().unwrap()),
            nlink: u16::from_le_bytes(b[24..26].try_into().unwrap()),
            mtime: u64::from_le_bytes(b[32..40].try_into().unwrap()),
            direct,
            indirect: u32::from_le_bytes(b[80..84].try_into().unwrap()),
        }
    }
}

/// What a completed fsck did (experiment T2's FFS side).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Inodes examined (every slot, free or not).
    pub inodes_scanned: u64,
    /// Blocks read during the scan.
    pub blocks_scanned: u64,
    /// Bitmap discrepancies repaired.
    pub bitmap_fixes: u64,
    /// Simulated disk time the check consumed, in microseconds.
    pub disk_busy_us: u64,
}

struct Geometry {
    total: u32,
    inode_start: u32,
    inode_blocks: u32,
    bitmap_start: u32,
    bitmap_blocks: u32,
    data_start: u32,
}

impl Geometry {
    fn for_disk(total: u32) -> Geometry {
        let inode_count = (total / 8).max(64);
        let inode_blocks = inode_count.div_ceil(INODES_PER_BLOCK as u32);
        let bitmap_blocks = total.div_ceil((BLOCK_SIZE * 8) as u32);
        Geometry {
            total,
            inode_start: 1,
            inode_blocks,
            bitmap_start: 1 + inode_blocks,
            bitmap_blocks,
            data_start: 1 + inode_blocks + bitmap_blocks,
        }
    }

    fn inode_count(&self) -> u32 {
        self.inode_blocks * INODES_PER_BLOCK as u32
    }

    fn inode_loc(&self, ino: u32) -> (u32, usize) {
        (self.inode_start + ino / INODES_PER_BLOCK as u32,
         (ino as usize % INODES_PER_BLOCK) * INODE_SIZE)
    }
}

/// The FFS-style file system over a [`SimDisk`].
///
/// One volume per partition (the identification the paper's §2.1 calls
/// out as the limitation Episode removes). A single lock serializes all
/// operations — also period-accurate for a vendor UNIX file system.
pub struct Ffs {
    disk: SimDisk,
    clock: SimClock,
    geo: Geometry,
    volume: VolumeId,
    lock: Mutex<()>,
    /// Weak self-reference so `mount` can hand out `Arc<dyn VfsPlus>`.
    me: Mutex<std::sync::Weak<Ffs>>,
}

impl Ffs {
    /// Formats the disk and returns the file system (root inode 1).
    pub fn format(disk: SimDisk, clock: SimClock, volume: VolumeId) -> DfsResult<Arc<Ffs>> {
        let geo = Geometry::for_disk(disk.blocks());
        if geo.data_start + 8 > geo.total {
            return Err(DfsError::NoSpace);
        }
        let mut sb = [0u8; BLOCK_SIZE];
        sb[0..4].copy_from_slice(&FFS_MAGIC.to_le_bytes());
        sb[4..8].copy_from_slice(&geo.total.to_le_bytes());
        disk.write(0, &sb)?;
        // Zero bitmap; mark reserved region used.
        for b in 0..geo.bitmap_blocks {
            disk.write(geo.bitmap_start + b, &[0u8; BLOCK_SIZE])?;
        }
        let fs = Arc::new(Ffs {
            disk,
            clock,
            geo,
            volume,
            lock: Mutex::new(()),
            me: Mutex::new(std::sync::Weak::new()),
        });
        *fs.me.lock() = Arc::downgrade(&fs);
        for b in 0..fs.geo.data_start {
            fs.bitmap_set(b, true)?;
        }
        // Root directory: inode 1.
        let now = fs.clock.now().as_micros();
        let mut root = Inode::free();
        root.kind = 2;
        root.mode = 0o755;
        root.uniq = 1;
        root.nlink = 2;
        root.mtime = now;
        fs.write_inode(1, &root)?;
        fs.disk.flush()?;
        Ok(fs)
    }

    /// Opens an existing FFS, running the mandatory full fsck first.
    ///
    /// This is the availability cost the paper's logging design removes:
    /// "a lengthy file system salvage process after a crash".
    pub fn open(disk: SimDisk, clock: SimClock, volume: VolumeId) -> DfsResult<(Arc<Ffs>, FsckReport)> {
        let sb = disk.read(0)?;
        if u32::from_le_bytes(sb[0..4].try_into().unwrap()) != FFS_MAGIC {
            return Err(DfsError::Internal("not an FFS partition"));
        }
        let geo = Geometry::for_disk(disk.blocks());
        let fs = Arc::new(Ffs {
            disk,
            clock,
            geo,
            volume,
            lock: Mutex::new(()),
            me: Mutex::new(std::sync::Weak::new()),
        });
        *fs.me.lock() = Arc::downgrade(&fs);
        let report = fs.fsck()?;
        Ok((fs, report))
    }

    /// Returns the underlying disk handle.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    // --------------------------------------------------------------
    // Low-level helpers (all metadata writes are synchronous).
    // --------------------------------------------------------------

    fn read_inode(&self, ino: u32) -> DfsResult<Inode> {
        if ino == 0 || ino >= self.geo.inode_count() {
            return Err(DfsError::StaleFid);
        }
        let (blk, off) = self.geo.inode_loc(ino);
        let b = self.disk.read(blk)?;
        Ok(Inode::decode(&b[off..off + INODE_SIZE]))
    }

    fn write_inode(&self, ino: u32, inode: &Inode) -> DfsResult<()> {
        let (blk, off) = self.geo.inode_loc(ino);
        let mut b = self.disk.read(blk)?;
        b[off..off + INODE_SIZE].copy_from_slice(&inode.encode());
        self.disk.write_sync(blk, &b)
    }

    fn bitmap_get(&self, block: u32) -> DfsResult<bool> {
        let blk = self.geo.bitmap_start + block / (BLOCK_SIZE as u32 * 8);
        let bit = block as usize % (BLOCK_SIZE * 8);
        let b = self.disk.read(blk)?;
        Ok(b[bit / 8] & (1 << (bit % 8)) != 0)
    }

    fn bitmap_set(&self, block: u32, used: bool) -> DfsResult<()> {
        let blk = self.geo.bitmap_start + block / (BLOCK_SIZE as u32 * 8);
        let bit = block as usize % (BLOCK_SIZE * 8);
        let mut b = self.disk.read(blk)?;
        if used {
            b[bit / 8] |= 1 << (bit % 8);
        } else {
            b[bit / 8] &= !(1 << (bit % 8));
        }
        self.disk.write_sync(blk, &b)
    }

    fn alloc_block(&self) -> DfsResult<u32> {
        for b in self.geo.data_start..self.geo.total {
            if !self.bitmap_get(b)? {
                self.bitmap_set(b, true)?;
                return Ok(b);
            }
        }
        Err(DfsError::NoSpace)
    }

    fn alloc_inode(&self) -> DfsResult<(u32, Inode)> {
        for ino in 2..self.geo.inode_count() {
            let old = self.read_inode(ino)?;
            if old.kind == 0 {
                let mut inode = Inode::free();
                inode.uniq = old.uniq + 1;
                return Ok((ino, inode));
            }
        }
        Err(DfsError::NoSpace)
    }

    fn map_block(&self, inode: &Inode, fblk: u64) -> DfsResult<u32> {
        if fblk < NDIRECT as u64 {
            return Ok(inode.direct[fblk as usize]);
        }
        let rel = fblk - NDIRECT as u64;
        if rel >= PTRS as u64 {
            return Err(DfsError::InvalidArgument);
        }
        if inode.indirect == 0 {
            return Ok(0);
        }
        let b = self.disk.read(inode.indirect)?;
        Ok(u32::from_le_bytes(b[4 * rel as usize..4 * rel as usize + 4].try_into().unwrap()))
    }

    fn map_block_alloc(&self, inode: &mut Inode, fblk: u64) -> DfsResult<u32> {
        if fblk < NDIRECT as u64 {
            if inode.direct[fblk as usize] == 0 {
                inode.direct[fblk as usize] = self.alloc_block()?;
            }
            return Ok(inode.direct[fblk as usize]);
        }
        let rel = (fblk - NDIRECT as u64) as usize;
        if rel >= PTRS {
            return Err(DfsError::InvalidArgument);
        }
        if inode.indirect == 0 {
            inode.indirect = self.alloc_block()?;
            // Zero the new indirect block synchronously (metadata).
            self.disk.write_sync(inode.indirect, &[0u8; BLOCK_SIZE])?;
        }
        let mut b = self.disk.read(inode.indirect)?;
        let cur = u32::from_le_bytes(b[4 * rel..4 * rel + 4].try_into().unwrap());
        if cur != 0 {
            return Ok(cur);
        }
        let nb = self.alloc_block()?;
        b[4 * rel..4 * rel + 4].copy_from_slice(&nb.to_le_bytes());
        // Indirect blocks are metadata: synchronous write (§2.2).
        self.disk.write_sync(inode.indirect, &b)?;
        Ok(nb)
    }

    fn read_range(&self, inode: &Inode, offset: u64, len: usize) -> DfsResult<Vec<u8>> {
        if offset >= inode.length {
            return Ok(Vec::new());
        }
        let len = len.min((inode.length - offset) as usize);
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while out.len() < len {
            let fblk = pos / BLOCK_SIZE as u64;
            let within = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - within).min(len - out.len());
            let phys = self.map_block(inode, fblk)?;
            if phys == 0 {
                out.extend(std::iter::repeat_n(0, n));
            } else {
                let b = self.disk.read(phys)?;
                out.extend_from_slice(&b[within..within + n]);
            }
            pos += n as u64;
        }
        Ok(out)
    }

    /// Writes user data. Data blocks go to the write cache (FFS writes
    /// data asynchronously); metadata (inode, bitmap, indirect blocks)
    /// has already been written synchronously by the allocators.
    fn write_range(&self, inode: &mut Inode, offset: u64, data: &[u8], sync_data: bool) -> DfsResult<()> {
        let mut pos = offset;
        let mut done = 0usize;
        while done < data.len() {
            let fblk = pos / BLOCK_SIZE as u64;
            let within = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - within).min(data.len() - done);
            let phys = self.map_block_alloc(inode, fblk)?;
            let mut b = self.disk.read(phys)?;
            b[within..within + n].copy_from_slice(&data[done..done + n]);
            if sync_data {
                self.disk.write_sync(phys, &b)?;
            } else {
                self.disk.write(phys, &b)?;
            }
            pos += n as u64;
            done += n;
        }
        inode.length = inode.length.max(offset + data.len() as u64);
        Ok(())
    }

    fn free_inode_blocks(&self, inode: &Inode) -> DfsResult<()> {
        for &d in &inode.direct {
            if d != 0 {
                self.bitmap_set(d, false)?;
            }
        }
        if inode.indirect != 0 {
            let b = self.disk.read(inode.indirect)?;
            for i in 0..PTRS {
                let p = u32::from_le_bytes(b[4 * i..4 * i + 4].try_into().unwrap());
                if p != 0 {
                    self.bitmap_set(p, false)?;
                }
            }
            self.bitmap_set(inode.indirect, false)?;
        }
        Ok(())
    }

    // --------------------------------------------------------------
    // Directories: same entry format idea as Episode, written in place
    // with synchronous metadata writes.
    // --------------------------------------------------------------

    fn dir_entries(&self, inode: &Inode) -> DfsResult<Vec<(String, u32, u32, u8)>> {
        let data = self.read_range(inode, 0, inode.length as usize)?;
        let mut out = Vec::new();
        for chunk in data.chunks(BLOCK_SIZE) {
            let mut off = 0;
            while off + 12 <= chunk.len() {
                let reclen =
                    u16::from_le_bytes(chunk[off..off + 2].try_into().unwrap()) as usize;
                if reclen < 12 || off + reclen > chunk.len() {
                    break;
                }
                let namelen = chunk[off + 2] as usize;
                let kind = chunk[off + 3];
                let ino = u32::from_le_bytes(chunk[off + 4..off + 8].try_into().unwrap());
                let uniq = u32::from_le_bytes(chunk[off + 8..off + 12].try_into().unwrap());
                if ino != 0 && off + 12 + namelen <= chunk.len() {
                    let name =
                        String::from_utf8_lossy(&chunk[off + 12..off + 12 + namelen]).into_owned();
                    out.push((name, ino, uniq, kind));
                }
                off += reclen;
            }
        }
        Ok(out)
    }

    fn dir_find(&self, inode: &Inode, name: &str) -> DfsResult<Option<(u32, u32, u8)>> {
        Ok(self
            .dir_entries(inode)?
            .into_iter()
            .find(|(n, _, _, _)| n == name)
            .map(|(_, i, u, k)| (i, u, k)))
    }

    fn dir_insert(&self, dino: u32, dir: &mut Inode, name: &str, ino: u32, uniq: u32, kind: u8) -> DfsResult<()> {
        let need = (12 + name.len() + 3) & !3;
        let blocks = dir.length.div_ceil(BLOCK_SIZE as u64);
        for fblk in 0..blocks {
            let phys = self.map_block(dir, fblk)?;
            if phys == 0 {
                continue;
            }
            let mut b = self.disk.read(phys)?;
            let mut off = 0;
            while off + 12 <= BLOCK_SIZE {
                let reclen = u16::from_le_bytes(b[off..off + 2].try_into().unwrap()) as usize;
                if reclen < 12 || off + reclen > BLOCK_SIZE {
                    break;
                }
                let cur_ino = u32::from_le_bytes(b[off + 4..off + 8].try_into().unwrap());
                if cur_ino == 0 && reclen >= need {
                    let rest = reclen - need;
                    let write_len = if rest >= 12 { need } else { reclen };
                    b[off..off + 2].copy_from_slice(&(write_len as u16).to_le_bytes());
                    b[off + 2] = name.len() as u8;
                    b[off + 3] = kind;
                    b[off + 4..off + 8].copy_from_slice(&ino.to_le_bytes());
                    b[off + 8..off + 12].copy_from_slice(&uniq.to_le_bytes());
                    b[off + 12..off + 12 + name.len()].copy_from_slice(name.as_bytes());
                    if rest >= 12 {
                        b[off + need..off + need + 2]
                            .copy_from_slice(&(rest as u16).to_le_bytes());
                        b[off + need + 2] = 0;
                        b[off + need + 4..off + need + 8].copy_from_slice(&0u32.to_le_bytes());
                    }
                    // Directory blocks are metadata: synchronous write.
                    self.disk.write_sync(phys, &b)?;
                    return Ok(());
                }
                off += reclen;
            }
        }
        // Extend the directory by one block.
        let base_blk = blocks;
        let phys = self.map_block_alloc(dir, base_blk)?;
        let mut b = [0u8; BLOCK_SIZE];
        b[0..2].copy_from_slice(&(need as u16).to_le_bytes());
        b[2] = name.len() as u8;
        b[3] = kind;
        b[4..8].copy_from_slice(&ino.to_le_bytes());
        b[8..12].copy_from_slice(&uniq.to_le_bytes());
        b[12..12 + name.len()].copy_from_slice(name.as_bytes());
        b[need..need + 2].copy_from_slice(&((BLOCK_SIZE - need) as u16).to_le_bytes());
        self.disk.write_sync(phys, &b)?;
        dir.length = dir.length.max((base_blk + 1) * BLOCK_SIZE as u64);
        self.write_inode(dino, dir)?;
        Ok(())
    }

    fn dir_remove(&self, dir: &Inode, name: &str) -> DfsResult<(u32, u32, u8)> {
        let blocks = dir.length.div_ceil(BLOCK_SIZE as u64);
        for fblk in 0..blocks {
            let phys = self.map_block(dir, fblk)?;
            if phys == 0 {
                continue;
            }
            let mut b = self.disk.read(phys)?;
            let mut off = 0;
            while off + 12 <= BLOCK_SIZE {
                let reclen = u16::from_le_bytes(b[off..off + 2].try_into().unwrap()) as usize;
                if reclen < 12 || off + reclen > BLOCK_SIZE {
                    break;
                }
                let ino = u32::from_le_bytes(b[off + 4..off + 8].try_into().unwrap());
                let namelen = b[off + 2] as usize;
                if ino != 0
                    && namelen == name.len()
                    && &b[off + 12..off + 12 + namelen] == name.as_bytes()
                {
                    let uniq = u32::from_le_bytes(b[off + 8..off + 12].try_into().unwrap());
                    let kind = b[off + 3];
                    b[off + 4..off + 8].copy_from_slice(&0u32.to_le_bytes());
                    self.disk.write_sync(phys, &b)?;
                    return Ok((ino, uniq, kind));
                }
                off += reclen;
            }
        }
        Err(DfsError::NotFound)
    }

    fn status(&self, ino: u32, inode: &Inode) -> FileStatus {
        FileStatus {
            fid: Fid::new(self.volume, VnodeId(ino), inode.uniq),
            ftype: match inode.kind {
                2 => FileType::Directory,
                3 => FileType::Symlink,
                _ => FileType::Regular,
            },
            length: inode.length,
            owner: inode.owner,
            group: inode.group,
            mode: inode.mode,
            nlink: inode.nlink as u32,
            mtime: Timestamp(inode.mtime),
            ctime: Timestamp(inode.mtime),
            data_version: inode.mtime, // FFS has no version; mtime approximates.
            stamp: SerializationStamp(0),
        }
    }

    fn resolve(&self, fid: Fid) -> DfsResult<(u32, Inode)> {
        if fid.volume != self.volume {
            return Err(DfsError::NoSuchVolume);
        }
        let inode = self.read_inode(fid.vnode.0)?;
        if inode.kind == 0 || inode.uniq != fid.uniq {
            return Err(DfsError::StaleFid);
        }
        Ok((fid.vnode.0, inode))
    }

    // --------------------------------------------------------------
    // fsck
    // --------------------------------------------------------------

    /// Scans the entire file system, rebuilding the allocation bitmap.
    ///
    /// Cost is proportional to the file-system size — the paper's
    /// "notorious fsck" (§2.2). The scan reads every inode block, every
    /// indirect block of every live inode, and every bitmap block.
    pub fn fsck(&self) -> DfsResult<FsckReport> {
        let _g = self.lock.lock();
        let before = self.disk.stats().busy_us;
        let mut report = FsckReport::default();
        let mut used = vec![false; self.geo.total as usize];
        for b in 0..self.geo.data_start {
            used[b as usize] = true;
        }
        // Phase 1: every inode.
        for ino in 1..self.geo.inode_count() {
            report.inodes_scanned += 1;
            let inode = self.read_inode(ino)?;
            if ino % INODES_PER_BLOCK as u32 == 0 || ino == 1 {
                report.blocks_scanned += 1;
            }
            if inode.kind == 0 {
                continue;
            }
            for &d in &inode.direct {
                if d != 0 {
                    used[d as usize] = true;
                }
            }
            if inode.indirect != 0 {
                used[inode.indirect as usize] = true;
                report.blocks_scanned += 1;
                let b = self.disk.read(inode.indirect)?;
                for i in 0..PTRS {
                    let p = u32::from_le_bytes(b[4 * i..4 * i + 4].try_into().unwrap());
                    if p != 0 {
                        used[p as usize] = true;
                    }
                }
            }
        }
        // Phase 5: compare and repair the bitmap, block by block.
        for b in self.geo.data_start..self.geo.total {
            if b % (BLOCK_SIZE as u32 * 8) == 0 {
                report.blocks_scanned += 1;
            }
            let stored = self.bitmap_get(b)?;
            if stored != used[b as usize] {
                self.bitmap_set(b, used[b as usize])?;
                report.bitmap_fixes += 1;
            }
        }
        report.disk_busy_us = self.disk.stats().busy_us - before;
        Ok(report)
    }
}

impl Vfs for Ffs {
    fn volume_id(&self) -> VolumeId {
        self.volume
    }

    fn root(&self) -> DfsResult<Fid> {
        let inode = self.read_inode(1)?;
        Ok(Fid::new(self.volume, VnodeId(1), inode.uniq))
    }

    fn lookup(&self, _cred: &Credentials, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        let _g = self.lock.lock();
        let (_, d) = self.resolve(dir)?;
        if d.kind != 2 {
            return Err(DfsError::NotDirectory);
        }
        let (ino, _, _) = self.dir_find(&d, name)?.ok_or(DfsError::NotFound)?;
        let inode = self.read_inode(ino)?;
        Ok(self.status(ino, &inode))
    }

    fn create(&self, cred: &Credentials, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        self.make_node(cred, dir, name, 1, mode, None)
    }

    fn mkdir(&self, cred: &Credentials, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        self.make_node(cred, dir, name, 2, mode, None)
    }

    fn symlink(
        &self,
        cred: &Credentials,
        dir: Fid,
        name: &str,
        target: &str,
    ) -> DfsResult<FileStatus> {
        self.make_node(cred, dir, name, 3, 0o777, Some(target))
    }

    fn link(&self, _cred: &Credentials, dir: Fid, name: &str, target: Fid) -> DfsResult<FileStatus> {
        let _g = self.lock.lock();
        let (dino, mut d) = self.resolve(dir)?;
        let (tino, mut t) = self.resolve(target)?;
        if t.kind == 2 {
            return Err(DfsError::IsDirectory);
        }
        if self.dir_find(&d, name)?.is_some() {
            return Err(DfsError::Exists);
        }
        t.nlink += 1;
        self.write_inode(tino, &t)?;
        self.dir_insert(dino, &mut d, name, tino, t.uniq, t.kind)?;
        self.write_inode(dino, &d)?;
        Ok(self.status(tino, &t))
    }

    fn remove(&self, _cred: &Credentials, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        let _g = self.lock.lock();
        let (dino, d) = self.resolve(dir)?;
        let (ino, uniq, kind) = self.dir_find(&d, name)?.ok_or(DfsError::NotFound)?;
        if kind == 2 {
            return Err(DfsError::IsDirectory);
        }
        self.dir_remove(&d, name)?;
        let mut t = self.read_inode(ino)?;
        t.nlink = t.nlink.saturating_sub(1);
        let status = {
            let mut st = self.status(ino, &t);
            st.fid.uniq = uniq;
            st
        };
        if t.nlink == 0 {
            self.free_inode_blocks(&t)?;
            let mut freed = Inode::free();
            freed.uniq = t.uniq;
            self.write_inode(ino, &freed)?;
        } else {
            self.write_inode(ino, &t)?;
        }
        let mut d2 = self.read_inode(dino)?;
        d2.mtime = self.clock.now().as_micros();
        self.write_inode(dino, &d2)?;
        Ok(status)
    }

    fn rmdir(&self, _cred: &Credentials, dir: Fid, name: &str) -> DfsResult<()> {
        let _g = self.lock.lock();
        let (dino, mut d) = self.resolve(dir)?;
        let (ino, _, kind) = self.dir_find(&d, name)?.ok_or(DfsError::NotFound)?;
        if kind != 2 {
            return Err(DfsError::NotDirectory);
        }
        let t = self.read_inode(ino)?;
        if !self.dir_entries(&t)?.is_empty() {
            return Err(DfsError::NotEmpty);
        }
        self.dir_remove(&d, name)?;
        self.free_inode_blocks(&t)?;
        let mut freed = Inode::free();
        freed.uniq = t.uniq;
        self.write_inode(ino, &freed)?;
        d.nlink = d.nlink.saturating_sub(1);
        d.mtime = self.clock.now().as_micros();
        self.write_inode(dino, &d)?;
        Ok(())
    }

    fn rename(
        &self,
        cred: &Credentials,
        src_dir: Fid,
        src_name: &str,
        dst_dir: Fid,
        dst_name: &str,
    ) -> DfsResult<()> {
        {
            let _g = self.lock.lock();
            let (_, sd) = self.resolve(src_dir)?;
            let (_, dd) = self.resolve(dst_dir)?;
            let (ino, uniq, kind) = self.dir_find(&sd, src_name)?.ok_or(DfsError::NotFound)?;
            if let Some((old_ino, _, old_kind)) = self.dir_find(&dd, dst_name)? {
                if old_kind == 2 {
                    return Err(DfsError::NotEmpty);
                }
                drop(_g);
                self.remove(cred, dst_dir, dst_name)?;
                let _g = self.lock.lock();
                let (dino2, mut dd2) = self.resolve(dst_dir)?;
                let (_, sd2) = self.resolve(src_dir)?;
                self.dir_remove(&sd2, src_name)?;
                self.dir_insert(dino2, &mut dd2, dst_name, ino, uniq, kind)?;
                self.write_inode(dino2, &dd2)?;
                let _ = old_ino;
                return Ok(());
            }
            let (dino, mut dd) = self.resolve(dst_dir)?;
            self.dir_remove(&sd, src_name)?;
            self.dir_insert(dino, &mut dd, dst_name, ino, uniq, kind)?;
            self.write_inode(dino, &dd)?;
        }
        Ok(())
    }

    fn readdir(&self, _cred: &Credentials, dir: Fid) -> DfsResult<Vec<DirEntry>> {
        let _g = self.lock.lock();
        let (_, d) = self.resolve(dir)?;
        if d.kind != 2 {
            return Err(DfsError::NotDirectory);
        }
        Ok(self
            .dir_entries(&d)?
            .into_iter()
            .map(|(name, ino, uniq, _)| DirEntry {
                name,
                fid: Fid::new(self.volume, VnodeId(ino), uniq),
            })
            .collect())
    }

    fn read(&self, _cred: &Credentials, file: Fid, offset: u64, len: usize) -> DfsResult<Vec<u8>> {
        let _g = self.lock.lock();
        let (_, inode) = self.resolve(file)?;
        self.read_range(&inode, offset, len)
    }

    fn write(
        &self,
        _cred: &Credentials,
        file: Fid,
        offset: u64,
        data: &[u8],
    ) -> DfsResult<FileStatus> {
        let _g = self.lock.lock();
        let (ino, mut inode) = self.resolve(file)?;
        if inode.kind == 2 {
            return Err(DfsError::IsDirectory);
        }
        self.write_range(&mut inode, offset, data, false)?;
        inode.mtime = self.clock.now().as_micros();
        // The inode itself is metadata: synchronous update.
        self.write_inode(ino, &inode)?;
        Ok(self.status(ino, &inode))
    }

    fn getattr(&self, _cred: &Credentials, file: Fid) -> DfsResult<FileStatus> {
        let (ino, inode) = self.resolve(file)?;
        Ok(self.status(ino, &inode))
    }

    fn setattr(&self, _cred: &Credentials, file: Fid, attrs: &SetAttrs) -> DfsResult<FileStatus> {
        let _g = self.lock.lock();
        let (ino, mut inode) = self.resolve(file)?;
        if let Some(len) = attrs.length {
            if len < inode.length {
                // Free whole blocks past the new end, synchronously.
                let keep = len.div_ceil(BLOCK_SIZE as u64);
                let old = inode.length.div_ceil(BLOCK_SIZE as u64);
                for fblk in keep..old {
                    let phys = self.map_block(&inode, fblk)?;
                    if phys != 0 {
                        self.bitmap_set(phys, false)?;
                        if fblk < NDIRECT as u64 {
                            inode.direct[fblk as usize] = 0;
                        } else if inode.indirect != 0 {
                            let rel = (fblk - NDIRECT as u64) as usize;
                            let mut b = self.disk.read(inode.indirect)?;
                            b[4 * rel..4 * rel + 4].copy_from_slice(&0u32.to_le_bytes());
                            self.disk.write_sync(inode.indirect, &b)?;
                        }
                    }
                }
                if keep <= NDIRECT as u64 && inode.indirect != 0 {
                    self.bitmap_set(inode.indirect, false)?;
                    inode.indirect = 0;
                }
            }
            inode.length = len;
        }
        if let Some(m) = attrs.mode {
            inode.mode = m;
        }
        if let Some(o) = attrs.owner {
            inode.owner = o;
        }
        if let Some(g) = attrs.group {
            inode.group = g;
        }
        inode.mtime = self.clock.now().as_micros();
        self.write_inode(ino, &inode)?;
        Ok(self.status(ino, &inode))
    }

    fn readlink(&self, _cred: &Credentials, file: Fid) -> DfsResult<String> {
        let _g = self.lock.lock();
        let (_, inode) = self.resolve(file)?;
        if inode.kind != 3 {
            return Err(DfsError::InvalidArgument);
        }
        let bytes = self.read_range(&inode, 0, inode.length as usize)?;
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }

    fn fsync(&self, _cred: &Credentials, file: Fid) -> DfsResult<()> {
        self.resolve(file)?;
        self.disk.flush()
    }

    fn sync(&self) -> DfsResult<()> {
        self.disk.flush()
    }
}

impl Ffs {
    fn make_node(
        &self,
        cred: &Credentials,
        dir: Fid,
        name: &str,
        kind: u8,
        mode: u16,
        symlink_target: Option<&str>,
    ) -> DfsResult<FileStatus> {
        if name.is_empty() || name.len() > 255 || name.contains('/') {
            return Err(DfsError::InvalidName);
        }
        let _g = self.lock.lock();
        let (dino, mut d) = self.resolve(dir)?;
        if d.kind != 2 {
            return Err(DfsError::NotDirectory);
        }
        if self.dir_find(&d, name)?.is_some() {
            return Err(DfsError::Exists);
        }
        let (ino, mut inode) = self.alloc_inode()?;
        inode.kind = kind;
        inode.mode = mode;
        inode.owner = cred.user;
        inode.nlink = if kind == 2 { 2 } else { 1 };
        inode.mtime = self.clock.now().as_micros();
        if let Some(target) = symlink_target {
            self.write_range(&mut inode, 0, target.as_bytes(), true)?;
        }
        self.write_inode(ino, &inode)?;
        self.dir_insert(dino, &mut d, name, ino, inode.uniq, kind)?;
        if kind == 2 {
            d.nlink += 1;
        }
        d.mtime = self.clock.now().as_micros();
        self.write_inode(dino, &d)?;
        Ok(self.status(ino, &inode))
    }
}

impl VfsPlus for Ffs {
    fn get_acl(&self, _cred: &Credentials, file: Fid) -> DfsResult<Acl> {
        self.resolve(file)?;
        // A vendor FFS has no ACLs; report the empty list so the glue
        // layer falls back to mode bits (§3.3 partial functionality).
        Ok(Acl::new())
    }

    fn set_acl(&self, _cred: &Credentials, _file: Fid, _acl: &Acl) -> DfsResult<()> {
        Err(DfsError::InvalidArgument)
    }
}

impl PhysicalFs for Ffs {
    fn aggregate_id(&self) -> dfs_types::AggregateId {
        dfs_types::AggregateId(0)
    }

    fn list_volumes(&self) -> DfsResult<Vec<VolumeInfo>> {
        Ok(vec![self.volume_info(self.volume)?])
    }

    fn volume_info(&self, vol: VolumeId) -> DfsResult<VolumeInfo> {
        if vol != self.volume {
            return Err(DfsError::NoSuchVolume);
        }
        Ok(VolumeInfo {
            id: vol,
            name: "ffs".into(),
            read_only: false,
            parent: None,
            files: 0,
            blocks_used: 0,
            max_data_version: 0,
        })
    }

    fn create_volume(&self, _id: VolumeId, _name: &str) -> DfsResult<()> {
        // One volume per partition: the very limitation §2.1 describes.
        Err(DfsError::InvalidArgument)
    }

    fn delete_volume(&self, _vol: VolumeId) -> DfsResult<()> {
        Err(DfsError::InvalidArgument)
    }

    fn clone_volume(&self, _src: VolumeId, _clone: VolumeId, _name: &str) -> DfsResult<()> {
        Err(DfsError::InvalidArgument)
    }

    fn mount(&self, vol: VolumeId) -> DfsResult<Arc<dyn VfsPlus>> {
        if vol != self.volume {
            return Err(DfsError::NoSuchVolume);
        }
        let me = self.me.lock().upgrade().ok_or(DfsError::Internal("Ffs dropped"))?;
        Ok(me)
    }

    fn dump_volume(&self, _vol: VolumeId, _since: u64) -> DfsResult<VolumeDump> {
        Err(DfsError::InvalidArgument)
    }

    fn restore_volume(&self, _dump: &VolumeDump, _ro: bool) -> DfsResult<()> {
        Err(DfsError::InvalidArgument)
    }

    fn salvage(&self) -> DfsResult<SalvageReport> {
        let fsck = self.fsck()?;
        Ok(SalvageReport {
            files_checked: fsck.inodes_scanned,
            blocks_checked: fsck.blocks_scanned,
            problems: Vec::new(),
        })
    }

    fn sync_aggregate(&self) -> DfsResult<()> {
        self.disk.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_disk::DiskConfig;

    fn fresh(blocks: u32) -> (SimDisk, Arc<Ffs>) {
        let disk = SimDisk::new(DiskConfig::with_blocks(blocks));
        let fs = Ffs::format(disk.clone(), SimClock::new(), VolumeId(1)).unwrap();
        (disk, fs)
    }

    fn cred() -> Credentials {
        Credentials::system()
    }

    #[test]
    fn create_write_read_cycle() {
        let (_, fs) = fresh(4096);
        let root = fs.root().unwrap();
        let f = fs.create(&cred(), root, "file", 0o644).unwrap();
        fs.write(&cred(), f.fid, 0, b"ffs data").unwrap();
        assert_eq!(fs.read(&cred(), f.fid, 0, 16).unwrap(), b"ffs data");
        assert_eq!(fs.lookup(&cred(), root, "file").unwrap().fid, f.fid);
    }

    #[test]
    fn metadata_ops_are_synchronous() {
        let (disk, fs) = fresh(4096);
        let root = fs.root().unwrap();
        let before = disk.stats();
        fs.create(&cred(), root, "x", 0o644).unwrap();
        let d = disk.stats().since(&before);
        // Inode write + dir block write + dir inode write, each sync.
        assert!(d.syncs >= 3, "create must issue several sync writes, saw {}", d.syncs);
    }

    #[test]
    fn data_writes_are_asynchronous() {
        let (disk, fs) = fresh(4096);
        let root = fs.root().unwrap();
        let f = fs.create(&cred(), root, "x", 0o644).unwrap();
        let before = disk.stats();
        fs.write(&cred(), f.fid, 0, &vec![1u8; BLOCK_SIZE]).unwrap();
        let d = disk.stats().since(&before);
        // Block allocation (bitmap) and the inode are sync; data is not.
        assert!(d.syncs <= 3, "data path should not sync every block, saw {}", d.syncs);
    }

    #[test]
    fn crash_then_fsck_repairs_bitmap() {
        let (disk, fs) = fresh(4096);
        let root = fs.root().unwrap();
        let f = fs.create(&cred(), root, "x", 0o644).unwrap();
        fs.write(&cred(), f.fid, 0, &vec![2u8; 10 * BLOCK_SIZE]).unwrap();
        // Remove the file but crash before... simulate a mid-operation
        // crash by corrupting: allocate a block in the bitmap that no
        // inode references (as a crash between bitmap and inode writes
        // would leave).
        let orphan = fs.alloc_block().unwrap();
        disk.crash(None);
        disk.power_on();
        let (fs2, report) = Ffs::open(disk, SimClock::new(), VolumeId(1)).unwrap();
        assert!(report.bitmap_fixes >= 1, "fsck must reclaim the orphan block");
        assert!(!fs2.bitmap_get(orphan).unwrap(), "orphan block freed");
        // Data written (but never flushed) may be lost; metadata intact.
        let st = fs2.lookup(&cred(), fs2.root().unwrap(), "x").unwrap();
        assert_eq!(st.length, 10 * BLOCK_SIZE as u64);
    }

    #[test]
    fn fsck_cost_scales_with_size_not_activity() {
        // The core of experiment T2, in miniature.
        let (disk_small, fs_small) = fresh(2048);
        let (disk_big, fs_big) = fresh(32768);
        for (fs, _disk) in [(&fs_small, &disk_small), (&fs_big, &disk_big)] {
            let root = fs.root().unwrap();
            let f = fs.create(&cred(), root, "f", 0o644).unwrap();
            fs.write(&cred(), f.fid, 0, b"tiny").unwrap();
        }
        let small = fs_small.fsck().unwrap();
        let big = fs_big.fsck().unwrap();
        assert!(
            big.inodes_scanned >= 8 * small.inodes_scanned,
            "fsck work must grow with file-system size: {} vs {}",
            big.inodes_scanned,
            small.inodes_scanned
        );
    }

    #[test]
    fn directories_and_links() {
        let (_, fs) = fresh(4096);
        let root = fs.root().unwrap();
        let d = fs.mkdir(&cred(), root, "d", 0o755).unwrap();
        let f = fs.create(&cred(), d.fid, "f", 0o644).unwrap();
        fs.link(&cred(), root, "hard", f.fid).unwrap();
        assert_eq!(fs.getattr(&cred(), f.fid).unwrap().nlink, 2);
        fs.remove(&cred(), d.fid, "f").unwrap();
        assert_eq!(fs.getattr(&cred(), f.fid).unwrap().nlink, 1);
        let names: Vec<String> =
            fs.readdir(&cred(), root).unwrap().into_iter().map(|e| e.name).collect();
        assert!(names.contains(&"hard".to_string()));
        assert_eq!(fs.read(&cred(), f.fid, 0, 4).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn rename_and_truncate() {
        let (_, fs) = fresh(8192);
        let root = fs.root().unwrap();
        let f = fs.create(&cred(), root, "a", 0o644).unwrap();
        fs.write(&cred(), f.fid, 0, &vec![9u8; 3 * BLOCK_SIZE]).unwrap();
        fs.rename(&cred(), root, "a", root, "b").unwrap();
        assert!(fs.lookup(&cred(), root, "a").is_err());
        let st = fs.setattr(&cred(), f.fid, &SetAttrs::truncate(100)).unwrap();
        assert_eq!(st.length, 100);
        assert_eq!(fs.read(&cred(), f.fid, 0, 200).unwrap().len(), 100);
    }

    #[test]
    fn stale_fids_detected() {
        let (_, fs) = fresh(4096);
        let root = fs.root().unwrap();
        let f = fs.create(&cred(), root, "x", 0o644).unwrap();
        fs.remove(&cred(), root, "x").unwrap();
        assert_eq!(fs.getattr(&cred(), f.fid).unwrap_err(), DfsError::StaleFid);
    }

    #[test]
    fn volume_operations_unsupported() {
        let (_, fs) = fresh(4096);
        assert!(PhysicalFs::create_volume(&*fs, VolumeId(9), "x").is_err());
        assert!(PhysicalFs::clone_volume(&*fs, VolumeId(1), VolumeId(2), "c").is_err());
        assert!(fs.dump_volume(VolumeId(1), 0).is_err());
    }

    #[test]
    fn symlink_round_trip() {
        let (_, fs) = fresh(4096);
        let root = fs.root().unwrap();
        let s = fs.symlink(&cred(), root, "ln", "/etc/passwd").unwrap();
        assert_eq!(fs.readlink(&cred(), s.fid).unwrap(), "/etc/passwd");
    }
}
