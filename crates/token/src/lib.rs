//! The token manager (§3.1, §5): typed guarantees with revocation.
//!
//! "Each server includes a token manager, which keeps track of who is
//! referencing files, what they are doing to the files, and what
//! guarantees they require about what others may do to the files."
//!
//! Hosts (remote cache managers, the local glue layer, replication
//! servers) register with a *virtual revoke procedure* (§5.1): when a
//! new grant conflicts with tokens held by other hosts, the manager
//! calls each conflicting host's [`TokenHost::revoke`] — outside its own
//! locks, because a revocation may trigger RPCs that call back into the
//! server (§6.4) — and waits for the token to be returned.
//!
//! The manager also issues the per-file **serialization stamps** of
//! §6.2: every reference to a file gets a stamp, strictly increasing in
//! the server's serialization order, which clients use to merge
//! concurrently-returned status information correctly.

pub mod types;

pub use types::{compatible, conflict_bits, open_compatible, render_open_matrix, Token, TokenId, TokenTypes};

use dfs_types::lock::{rank, OrderedMutex};
use dfs_types::{
    ByteRange, ClientId, DfsError, DfsResult, Fid, HostId, SerializationStamp, VolumeId,
};
use std::collections::HashMap;
use std::sync::Arc;

/// The answer a host gives to a revocation request (§5.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RevokeResult {
    /// The token was returned (dirty data/status stored back first).
    Returned,
    /// The host elected to keep the token — the normal action for lock
    /// and open tokens covering files it still has locked or open.
    Retained,
}

/// A consumer of tokens, registered with the token manager (§5.1).
///
/// "It passes in an object of type afs_host, having a virtual revoke
/// procedure. The revoke procedure is called whenever the token manager
/// needs to revoke the token."
pub trait TokenHost: Send + Sync {
    /// This host's identity.
    fn host_id(&self) -> HostId;

    /// Asks the host to give up the `types` bits of `token` (typed
    /// partial revocation). The host must first store back any data or
    /// status those bits let it dirty (which may involve calls back to
    /// the file server, §6.4). `stamp` serializes the revocation against
    /// other references to the file (§6.2).
    fn revoke(&self, token: &Token, types: TokenTypes, stamp: SerializationStamp)
        -> RevokeResult;
}

/// Statistics kept by a [`TokenManager`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TokenStats {
    /// Tokens granted.
    pub grants: u64,
    /// Grants satisfied without revoking anything.
    pub quiet_grants: u64,
    /// Revocation callbacks issued.
    pub revocations: u64,
    /// Revocations where the host retained the token.
    pub retained: u64,
    /// Grants refused because a retained token conflicted.
    pub refused: u64,
    /// Tokens returned voluntarily.
    pub releases: u64,
    /// Tokens re-granted through the post-restart reestablish path.
    pub reestablished: u64,
    /// Grants installed verbatim by a live volume move (§2.1).
    pub imported: u64,
}

struct Grant {
    host: HostId,
    token: Token,
}

struct ManagerInner {
    /// All live grants, keyed by volume then vnode (vnode 0 holds
    /// whole-volume tokens).
    grants: HashMap<VolumeId, HashMap<u32, Vec<Grant>>>,
    /// Per-file serialization counters (§6.2).
    stamps: HashMap<Fid, SerializationStamp>,
    hosts: HashMap<HostId, Arc<dyn TokenHost>>,
    next_id: u64,
    stats: TokenStats,
}

/// Snapshot of a volume's token state for a live move: every grant
/// with its holding host, plus the per-file serialization counters.
pub type VolumeExport = (Vec<(HostId, Token)>, Vec<(Fid, SerializationStamp)>);

/// The token manager of one file server.
///
/// The grant table sits at rank [`rank::TOKEN_MANAGER`] in the global
/// lock hierarchy; revocation callbacks run with the table unlocked
/// (§5.1), which the rank enforcer verifies in debug builds.
pub struct TokenManager {
    inner: OrderedMutex<ManagerInner, { rank::TOKEN_MANAGER }>,
}

impl Default for TokenManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TokenManager {
    /// Creates an empty token manager.
    pub fn new() -> TokenManager {
        TokenManager {
            inner: OrderedMutex::new(ManagerInner {
                grants: HashMap::new(),
                stamps: HashMap::new(),
                hosts: HashMap::new(),
                next_id: 1,
                stats: TokenStats::default(),
            }),
        }
    }

    /// Registers a host and its revoke procedure (§5.1).
    pub fn register_host(&self, host: Arc<dyn TokenHost>) {
        self.inner.lock().hosts.insert(host.host_id(), host);
    }

    /// Removes a host, dropping all its grants (client death/eviction).
    pub fn unregister_host(&self, host: HostId) {
        let mut inner = self.inner.lock();
        inner.hosts.remove(&host);
        for by_vnode in inner.grants.values_mut() {
            for grants in by_vnode.values_mut() {
                grants.retain(|g| g.host != host);
            }
        }
    }

    /// Issues the next serialization stamp for `fid` (§6.2).
    ///
    /// Every reference to a file — grants, revocations, status reads —
    /// is stamped, and stamps are strictly increasing in serialization
    /// order.
    pub fn stamp(&self, fid: Fid) -> SerializationStamp {
        let mut inner = self.inner.lock();
        let s = inner.stamps.entry(fid).or_default();
        *s = s.next();
        *s
    }

    /// Returns the current (last-issued) stamp for `fid`.
    pub fn current_stamp(&self, fid: Fid) -> SerializationStamp {
        self.inner.lock().stamps.get(&fid).copied().unwrap_or_default()
    }

    /// Grants `types` over `range` of `fid` to `host`, revoking
    /// incompatible tokens held by other hosts first.
    ///
    /// Returns the new token and the serialization stamp of the grant.
    /// Fails with [`DfsError::LockConflict`]/[`DfsError::OpenConflict`]
    /// if a conflicting host retained a lock/open token (§5.3).
    pub fn grant(
        &self,
        host: HostId,
        fid: Fid,
        types: TokenTypes,
        range: ByteRange,
    ) -> DfsResult<(Token, SerializationStamp)> {
        if fid.volume.0 == 0 {
            return Err(DfsError::InvalidArgument);
        }
        let wanted = Token { id: TokenId(0), fid, types, range };
        let mut quiet = true;
        for _round in 0..64 {
            // Collect conflicting grants under the lock.
            let conflicts: Vec<(Arc<dyn TokenHost>, Token, TokenTypes)> = {
                let mut inner = self.inner.lock();
                let conflicts = self.conflicting(&inner, host, &wanted);
                if conflicts.is_empty() {
                    // Grant immediately while still holding the lock.
                    let id = TokenId(inner.next_id);
                    inner.next_id += 1;
                    let token = Token { id, fid, types, range };
                    inner
                        .grants
                        .entry(fid.volume)
                        .or_default()
                        .entry(fid.vnode.0)
                        .or_default()
                        .push(Grant { host, token: token.clone() });
                    inner.stats.grants += 1;
                    if quiet {
                        inner.stats.quiet_grants += 1;
                    }
                    let s = inner.stamps.entry(fid).or_default();
                    *s = s.next();
                    let stamp = *s;
                    return Ok((token, stamp));
                }
                quiet = false;
                conflicts
                    .into_iter()
                    .filter_map(|(host, token, bits)| {
                        inner.hosts.get(&host).cloned().map(|h| (h, token, bits))
                    })
                    .collect()
            };
            // Revoke outside the lock: the host's revoke procedure may
            // call back into the file server (§6.4). Only the
            // conflicting type bits are revoked.
            for (h, token, bits) in conflicts {
                let stamp = self.stamp(token.fid);
                let result = h.revoke(&token, bits, stamp);
                let mut inner = self.inner.lock();
                inner.stats.revocations += 1;
                match result {
                    RevokeResult::Returned => {
                        Self::downgrade_grant(&mut inner, h.host_id(), token.id, bits);
                    }
                    RevokeResult::Retained => {
                        inner.stats.retained += 1;
                        inner.stats.refused += 1;
                        drop(inner);
                        // Lock/open retention refuses the new request.
                        let kind = if bits.intersects(
                            TokenTypes::LOCK_READ | TokenTypes::LOCK_WRITE,
                        ) {
                            DfsError::LockConflict
                        } else {
                            DfsError::OpenConflict
                        };
                        return Err(kind);
                    }
                }
            }
        }
        Err(DfsError::Timeout)
    }

    /// Re-grants a token `host` claims to have held before this server
    /// instance started (the crash-recovery reestablish path).
    ///
    /// Unlike [`grant`](Self::grant) this never revokes anyone: the
    /// pre-crash grant set was mutually compatible, so honest surviving
    /// claims cannot conflict with each other. A claim that *does*
    /// conflict with tokens already in the table (another host
    /// reestablished an overlapping guarantee first, or new grants were
    /// issued after the grace window closed) is refused — the caller
    /// falls back to the normal grant path for that file.
    pub fn reestablish(
        &self,
        host: HostId,
        fid: Fid,
        types: TokenTypes,
        range: ByteRange,
    ) -> Option<(Token, SerializationStamp)> {
        if fid.volume.0 == 0 || types.is_empty() {
            return None;
        }
        let wanted = Token { id: TokenId(0), fid, types, range };
        let mut inner = self.inner.lock();
        if !self.conflicting(&inner, host, &wanted).is_empty() {
            inner.stats.refused += 1;
            return None;
        }
        let id = TokenId(inner.next_id);
        inner.next_id += 1;
        let token = Token { id, fid, types, range };
        inner
            .grants
            .entry(fid.volume)
            .or_default()
            .entry(fid.vnode.0)
            .or_default()
            .push(Grant { host, token: token.clone() });
        inner.stats.grants += 1;
        inner.stats.reestablished += 1;
        let s = inner.stamps.entry(fid).or_default();
        *s = s.next();
        Some((token, *s))
    }

    fn conflicting(
        &self,
        inner: &ManagerInner,
        host: HostId,
        wanted: &Token,
    ) -> Vec<(HostId, Token, TokenTypes)> {
        let mut out = Vec::new();
        if let Some(by_vnode) = inner.grants.get(&wanted.fid.volume) {
            let candidates: Box<dyn Iterator<Item = &Grant>> = if wanted.is_volume_token() {
                Box::new(by_vnode.values().flatten())
            } else {
                let file = by_vnode.get(&wanted.fid.vnode.0).into_iter().flatten();
                let vol = by_vnode.get(&0).into_iter().flatten();
                Box::new(file.chain(vol))
            };
            for g in candidates {
                if g.host == host {
                    continue;
                }
                let bits = types::conflict_bits(&g.token, wanted);
                if !bits.is_empty() {
                    out.push((g.host, g.token.clone(), bits));
                }
            }
        }
        out
    }

    /// Strips `bits` from a grant; removes it entirely when empty.
    fn downgrade_grant(inner: &mut ManagerInner, host: HostId, id: TokenId, bits: TokenTypes) {
        for by_vnode in inner.grants.values_mut() {
            for grants in by_vnode.values_mut() {
                for g in grants.iter_mut() {
                    if g.host == host && g.token.id == id {
                        g.token.types = g.token.types.minus(bits);
                    }
                }
                grants.retain(|g| !(g.host == host && g.token.id == id && g.token.types.is_empty()));
            }
        }
    }

    /// Returns a token voluntarily (client cache eviction, op done).
    pub fn release(&self, host: HostId, id: TokenId) {
        let mut inner = self.inner.lock();
        Self::downgrade_grant(&mut inner, host, id, TokenTypes(u32::MAX));
        inner.stats.releases += 1;
    }

    /// Returns all of `host`'s tokens on `fid`.
    pub fn release_fid(&self, host: HostId, fid: Fid) {
        let mut inner = self.inner.lock();
        if let Some(by_vnode) = inner.grants.get_mut(&fid.volume) {
            if let Some(grants) = by_vnode.get_mut(&fid.vnode.0) {
                let before = grants.len();
                grants.retain(|g| g.host != host);
                let removed = (before - grants.len()) as u64;
                inner.stats.releases += removed;
            }
        }
    }

    /// Snapshots every live grant on `volume` plus the per-file
    /// serialization counters, for shipping to a volume-move target.
    ///
    /// The grants keep their token ids: a live move (§2.1) must leave
    /// the clients' cached tokens valid, and a client matches
    /// revocations by token id, so the target has to keep serving the
    /// exact ids the source issued.
    pub fn export_volume(&self, volume: VolumeId) -> VolumeExport {
        let inner = self.inner.lock();
        let grants = inner
            .grants
            .get(&volume)
            .map(|by_vnode| {
                by_vnode
                    .values()
                    .flatten()
                    .map(|g| (g.host, g.token.clone()))
                    .collect()
            })
            .unwrap_or_default();
        let stamps = inner
            .stamps
            .iter()
            .filter(|(f, _)| f.volume == volume)
            .map(|(f, s)| (*f, *s))
            .collect();
        (grants, stamps)
    }

    /// Installs a grant verbatim — same token id, types, and range — at
    /// a volume-move target. `next_id` is raised past the imported id so
    /// future grants can never collide with a shipped token.
    pub fn install_grant(&self, host: HostId, token: Token) {
        let mut inner = self.inner.lock();
        inner.next_id = inner.next_id.max(token.id.0 + 1);
        inner
            .grants
            .entry(token.fid.volume)
            .or_default()
            .entry(token.fid.vnode.0)
            .or_default()
            .push(Grant { host, token });
        inner.stats.grants += 1;
        inner.stats.imported += 1;
    }

    /// Raises `fid`'s serialization counter to at least `floor`, so
    /// stamps issued by a move target continue the source's order
    /// (§6.2: clients merge status by stamp and would discard updates
    /// stamped below what they have already seen).
    pub fn raise_stamp_floor(&self, fid: Fid, floor: SerializationStamp) {
        let mut inner = self.inner.lock();
        let s = inner.stamps.entry(fid).or_default();
        if floor > *s {
            *s = floor;
        }
    }

    /// Drops every grant and stamp counter for `volume` (the source side
    /// of a completed move: the volume is gone, the target now owns the
    /// coherence state).
    pub fn drop_volume(&self, volume: VolumeId) {
        let mut inner = self.inner.lock();
        inner.grants.remove(&volume);
        inner.stamps.retain(|f, _| f.volume != volume);
    }

    /// Lists the tokens currently granted on `fid` (diagnostics).
    pub fn tokens_on(&self, fid: Fid) -> Vec<(HostId, Token)> {
        let inner = self.inner.lock();
        inner
            .grants
            .get(&fid.volume)
            .and_then(|m| m.get(&fid.vnode.0))
            .map(|v| v.iter().map(|g| (g.host, g.token.clone())).collect())
            .unwrap_or_default()
    }

    /// Lists the remote client hosts currently holding at least one
    /// grant. A restarting server's grace window waits only for these:
    /// a host that held no tokens has nothing to reestablish, and
    /// waiting for it (e.g. an admin caller that only ever created
    /// volumes) would pin the window until lease expiry.
    pub fn token_holders(&self) -> Vec<ClientId> {
        let inner = self.inner.lock();
        let mut out: Vec<ClientId> = Vec::new();
        for by_vnode in inner.grants.values() {
            for grants in by_vnode.values() {
                for g in grants {
                    if let HostId::Client(c) = g.host {
                        if !out.contains(&c) {
                            out.push(c);
                        }
                    }
                }
            }
        }
        out
    }

    /// Returns a snapshot of the statistics.
    pub fn stats(&self) -> TokenStats {
        self.inner.lock().stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_types::{ClientId, VnodeId};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct RecordingHost {
        id: HostId,
        revoked: Mutex<Vec<Token>>,
        retain: bool,
        calls: AtomicUsize,
    }

    impl RecordingHost {
        fn new(n: u32, retain: bool) -> Arc<RecordingHost> {
            Arc::new(RecordingHost {
                id: HostId::Client(ClientId(n)),
                revoked: Mutex::new(Vec::new()),
                retain,
                calls: AtomicUsize::new(0),
            })
        }
    }

    impl TokenHost for RecordingHost {
        fn host_id(&self) -> HostId {
            self.id
        }
        fn revoke(
            &self,
            token: &Token,
            _types: TokenTypes,
            _stamp: SerializationStamp,
        ) -> RevokeResult {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.revoked.lock().push(token.clone());
            if self.retain {
                RevokeResult::Retained
            } else {
                RevokeResult::Returned
            }
        }
    }

    fn fid(n: u32) -> Fid {
        Fid::new(VolumeId(1), VnodeId(n), 1)
    }

    #[test]
    fn grant_and_quiet_regrant() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        tm.register_host(h1.clone());
        let (t, s1) = tm
            .grant(h1.id, fid(1), TokenTypes::DATA_READ | TokenTypes::STATUS_READ, ByteRange::WHOLE)
            .unwrap();
        assert!(t.id.0 > 0);
        let (_, s2) = tm.grant(h1.id, fid(1), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        assert!(s2 > s1, "stamps strictly increase per file");
        assert_eq!(tm.stats().revocations, 0);
        assert_eq!(tm.stats().quiet_grants, 2);
    }

    #[test]
    fn conflicting_grant_revokes_other_host() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        tm.grant(h2.id, fid(1), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 1, "h1's write token revoked");
        assert_eq!(tm.tokens_on(fid(1)).len(), 1);
        assert_eq!(tm.stats().revocations, 1);
    }

    #[test]
    fn same_host_tokens_never_conflict() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        tm.register_host(h1.clone());
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn disjoint_ranges_no_revocation() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(0, 100)).unwrap();
        tm.grant(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(100, 200)).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0, "byte ranges partition the file");
    }

    #[test]
    fn retained_open_token_refuses_grant() {
        let tm = TokenManager::new();
        let holder = RecordingHost::new(1, true);
        let wanter = RecordingHost::new(2, false);
        tm.register_host(holder.clone());
        tm.register_host(wanter.clone());
        tm.grant(holder.id, fid(1), TokenTypes::OPEN_EXECUTE, ByteRange::WHOLE).unwrap();
        let err = tm
            .grant(wanter.id, fid(1), TokenTypes::OPEN_WRITE, ByteRange::WHOLE)
            .unwrap_err();
        assert_eq!(err, DfsError::OpenConflict, "ETXTBSY via open tokens");
        assert_eq!(tm.stats().refused, 1);
    }

    #[test]
    fn retained_lock_token_refuses_with_lock_conflict() {
        let tm = TokenManager::new();
        let holder = RecordingHost::new(1, true);
        let wanter = RecordingHost::new(2, false);
        tm.register_host(holder.clone());
        tm.register_host(wanter.clone());
        tm.grant(holder.id, fid(1), TokenTypes::LOCK_WRITE, ByteRange::new(0, 10)).unwrap();
        let err = tm
            .grant(wanter.id, fid(1), TokenTypes::LOCK_WRITE, ByteRange::new(0, 10))
            .unwrap_err();
        assert_eq!(err, DfsError::LockConflict);
    }

    #[test]
    fn release_allows_later_grants_quietly() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        let (t, _) = tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        tm.release(h1.id, t.id);
        tm.grant(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0, "released token needs no revoke");
    }

    #[test]
    fn unregister_drops_grants() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        tm.unregister_host(h1.id);
        tm.grant(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0, "dead host is not called");
    }

    #[test]
    fn volume_token_revoked_by_file_write() {
        let tm = TokenManager::new();
        let repl = RecordingHost::new(9, false);
        let writer = RecordingHost::new(2, false);
        tm.register_host(repl.clone());
        tm.register_host(writer.clone());
        // Whole-volume token, as the replication server requests (§3.8).
        let vol_fid = Fid::new(VolumeId(1), VnodeId(0), 0);
        tm.grant(repl.id, vol_fid, TokenTypes::DATA_READ | TokenTypes::STATUS_READ, ByteRange::WHOLE)
            .unwrap();
        tm.grant(writer.id, fid(3), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        assert_eq!(repl.calls.load(Ordering::SeqCst), 1, "volume token revoked");
    }

    #[test]
    fn stamps_are_per_file() {
        let tm = TokenManager::new();
        let s1 = tm.stamp(fid(1));
        let s2 = tm.stamp(fid(2));
        let s3 = tm.stamp(fid(1));
        assert_eq!(s1, SerializationStamp(1));
        assert_eq!(s2, SerializationStamp(1), "counters are per file");
        assert_eq!(s3, SerializationStamp(2));
        assert_eq!(tm.current_stamp(fid(1)), SerializationStamp(2));
    }

    #[test]
    fn reestablish_regrants_without_revocation() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        // Two disjoint pre-crash write claims both survive a restart.
        let (t1, _) = tm
            .reestablish(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(0, 100))
            .unwrap();
        let (t2, _) = tm
            .reestablish(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(100, 200))
            .unwrap();
        assert_ne!(t1.id, t2.id, "fresh token ids");
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0, "reestablish never revokes");
        assert_eq!(h2.calls.load(Ordering::SeqCst), 0);
        assert_eq!(tm.stats().reestablished, 2);
        assert_eq!(tm.tokens_on(fid(1)).len(), 2);
    }

    #[test]
    fn reestablish_conflicting_claim_refused() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        tm.reestablish(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        // An overlapping claim (inconsistent with the first) is dropped
        // rather than revoking the grant that got in first.
        assert!(tm
            .reestablish(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE)
            .is_none());
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0);
        assert_eq!(tm.stats().refused, 1);
        assert_eq!(tm.tokens_on(fid(1)).len(), 1);
    }

    #[test]
    fn export_install_preserves_ids_and_stamp_order() {
        let src = TokenManager::new();
        let dst = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        src.register_host(h1.clone());
        dst.register_host(h1.clone());
        let (t, s) = src.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        // Ship the volume's coherence state to `dst`, as a live move does.
        let (grants, stamps) = src.export_volume(VolumeId(1));
        assert_eq!(grants.len(), 1);
        for (host, token) in grants {
            dst.install_grant(host, token);
        }
        for (f, floor) in stamps {
            dst.raise_stamp_floor(f, floor);
        }
        src.drop_volume(VolumeId(1));
        assert!(src.tokens_on(fid(1)).is_empty());
        // Same id at the target, and stamps continue past the floor.
        let at_dst = dst.tokens_on(fid(1));
        assert_eq!(at_dst.len(), 1);
        assert_eq!(at_dst[0].1.id, t.id);
        assert!(dst.stamp(fid(1)) > s, "stamps stay monotone across the move");
        // Fresh grants at the target never reuse a shipped id.
        let (t2, _) = dst.grant(h1.id, fid(2), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        assert!(t2.id.0 > t.id.0);
        assert_eq!(dst.stats().imported, 1);
    }

    #[test]
    fn concurrent_grants_do_not_deadlock() {
        let tm = Arc::new(TokenManager::new());
        let hosts: Vec<_> = (0..4).map(|i| RecordingHost::new(i, false)).collect();
        for h in &hosts {
            tm.register_host(h.clone());
        }
        let threads: Vec<_> = hosts
            .iter()
            .map(|h| {
                let tm = tm.clone();
                let id = h.id;
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let _ = tm.grant(
                            id,
                            fid(i % 3),
                            TokenTypes::DATA_WRITE,
                            ByteRange::WHOLE,
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(tm.stats().grants >= 100);
    }
}
