//! The token manager (§3.1, §5): typed guarantees with revocation.
//!
//! "Each server includes a token manager, which keeps track of who is
//! referencing files, what they are doing to the files, and what
//! guarantees they require about what others may do to the files."
//!
//! Hosts (remote cache managers, the local glue layer, replication
//! servers) register with a *virtual revoke procedure* (§5.1): when a
//! new grant conflicts with tokens held by other hosts, the manager
//! calls each conflicting host's [`TokenHost::revoke_batch`] — outside
//! its own locks, because a revocation may trigger RPCs that call back
//! into the server (§6.4) — and waits for the tokens to be returned.
//! All of one host's revocations arising from a single conflict check
//! travel in one batched callback, mirroring the write-behind
//! `StoreDataVec` pattern in the revoke direction.
//!
//! The manager also issues the per-file **serialization stamps** of
//! §6.2: every reference to a file gets a stamp, strictly increasing in
//! the server's serialization order, which clients use to merge
//! concurrently-returned status information correctly.
//!
//! # Shard topology
//!
//! The grant and stamp tables are split into N fid-hash shards (default
//! [`DEFAULT_TOKEN_SHARDS`], overridable via `DFS_TOKEN_SHARDS`), each
//! behind its own mutex at rank [`rank::TOKEN_SHARD`], so grants and
//! revocations on files that hash to different shards never contend.
//! A file's grants, its stamps, and its volume's whole-volume (vnode-0)
//! grants each live in exactly one shard, determined by
//! [`shard_index`] over `(volume, vnode)` — `uniq` is excluded so every
//! incarnation of a vnode shares a shard with its grant table entry.
//!
//! Single-file operations take at most two shards: the file's own and
//! the one holding its volume's vnode-0 grants (whole-volume tokens
//! conflict with every file token, §3.8). Whole-volume operations —
//! volume-token grants, `export_volume`, `drop_volume` — take every
//! shard. Whenever more than one shard is held, shards are acquired in
//! ascending index order; the rank enforcer checks this in debug builds
//! (same-rank nesting is legal only with strictly increasing shard
//! indices). The host registry sits below the shards at rank
//! [`rank::TOKEN_MANAGER`] and is never held across a shard
//! acquisition or a revocation callback.

pub mod types;

pub use types::{compatible, conflict_bits, open_compatible, render_open_matrix, Token, TokenId, TokenTypes};

use dfs_types::lock::{rank, OrderedMutex, OrderedShardGuard, OrderedShardedMutex};
use dfs_types::{
    ByteRange, ClientId, DfsError, DfsResult, Fid, HostId, SerializationStamp, VolumeId,
};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default number of fid-hash shards for the token and host tables.
pub const DEFAULT_TOKEN_SHARDS: usize = 8;

/// Shard count from the `DFS_TOKEN_SHARDS` environment variable,
/// clamped to `1..=256`; [`DEFAULT_TOKEN_SHARDS`] if unset or
/// unparsable. Read once at construction so a live manager's topology
/// never changes under it.
pub fn shards_from_env() -> usize {
    std::env::var("DFS_TOKEN_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.clamp(1, 256))
        .unwrap_or(DEFAULT_TOKEN_SHARDS)
}

/// Maps `(volume, vnode)` to a shard index: a multiplicative hash on
/// each component so consecutive vnodes of one volume spread across
/// shards. `uniq` is deliberately excluded — grants are keyed by vnode
/// and all of a file's coherence state must live in one shard.
pub fn shard_index(volume: VolumeId, vnode: u32, shards: usize) -> usize {
    if shards <= 1 {
        return 0;
    }
    let h = volume.0.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ u64::from(vnode).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    ((h >> 32) as usize) % shards
}

/// The answer a host gives to a revocation request (§5.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RevokeResult {
    /// The token was returned (dirty data/status stored back first).
    Returned,
    /// The host elected to keep the token — the normal action for lock
    /// and open tokens covering files it still has locked or open.
    Retained,
}

/// One token's worth of a batched revocation: the token, the type bits
/// to give up, and the serialization stamp ordering the revocation
/// against other references to the file (§6.2).
#[derive(Clone, Debug)]
pub struct RevokeItem {
    /// The token being revoked.
    pub token: Token,
    /// The conflicting type bits to give up (typed partial revocation).
    pub types: TokenTypes,
    /// Serialization stamp of the revocation.
    pub stamp: SerializationStamp,
}

/// A consumer of tokens, registered with the token manager (§5.1).
///
/// "It passes in an object of type afs_host, having a virtual revoke
/// procedure. The revoke procedure is called whenever the token manager
/// needs to revoke the token."
pub trait TokenHost: Send + Sync {
    /// This host's identity.
    fn host_id(&self) -> HostId;

    /// Asks the host to give up the `types` bits of `token` (typed
    /// partial revocation). The host must first store back any data or
    /// status those bits let it dirty (which may involve calls back to
    /// the file server, §6.4). `stamp` serializes the revocation against
    /// other references to the file (§6.2).
    fn revoke(&self, token: &Token, types: TokenTypes, stamp: SerializationStamp)
        -> RevokeResult;

    /// Revokes several tokens in one callback, answering each exactly
    /// once, in order. One conflict check produces at most one batch
    /// per host; a remote host ships the batch as a single `RevokeVec`
    /// RPC instead of one round trip per token. The default simply
    /// loops [`revoke`](Self::revoke).
    fn revoke_batch(&self, items: &[RevokeItem]) -> Vec<RevokeResult> {
        items
            .iter()
            .map(|i| self.revoke(&i.token, i.types, i.stamp))
            .collect()
    }
}

/// One host's share of a conflict set: the resolved host object plus
/// the (token, conflicting-bits) pairs it must give up in one batch.
type RevokeGroup = (Arc<dyn TokenHost>, Vec<(Token, TokenTypes)>);

/// Statistics kept by a [`TokenManager`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TokenStats {
    /// Tokens granted.
    pub grants: u64,
    /// Grants satisfied without revoking anything.
    pub quiet_grants: u64,
    /// Revocation callbacks issued (counted per token, not per batch).
    pub revocations: u64,
    /// Revocations where the host retained the token.
    pub retained: u64,
    /// Grants refused because a retained token conflicted.
    pub refused: u64,
    /// Tokens returned voluntarily.
    pub releases: u64,
    /// Tokens re-granted through the post-restart reestablish path.
    pub reestablished: u64,
    /// Grants installed verbatim by a live volume move (§2.1).
    pub imported: u64,
}

struct Grant {
    host: HostId,
    token: Token,
}

/// One fid-hash shard of the grant and stamp tables. A `(volume,
/// vnode)` pair's grants and every `uniq` incarnation of its stamps
/// live wholly inside the shard [`shard_index`] names.
#[derive(Default)]
struct TokenShard {
    /// Live grants in this shard, keyed by volume then vnode (vnode 0
    /// holds whole-volume tokens).
    grants: HashMap<VolumeId, HashMap<u32, Vec<Grant>>>,
    /// Per-file serialization counters (§6.2).
    stamps: HashMap<Fid, SerializationStamp>,
}

type ShardGuard<'a> = OrderedShardGuard<'a, TokenShard, { rank::TOKEN_SHARD }>;

/// Snapshot of a volume's token state for a live move: every grant
/// with its holding host, plus the per-file serialization counters.
pub type VolumeExport = (Vec<(HostId, Token)>, Vec<(Fid, SerializationStamp)>);

/// The token manager of one file server.
///
/// Grant/stamp state is fid-hash sharded at rank [`rank::TOKEN_SHARD`]
/// (see the module docs for the topology and cross-shard acquisition
/// order); the host registry sits at rank [`rank::TOKEN_MANAGER`].
/// Revocation callbacks run with every manager lock released (§5.1),
/// which the rank enforcer verifies in debug builds.
pub struct TokenManager {
    shards: OrderedShardedMutex<TokenShard, { rank::TOKEN_SHARD }>,
    hosts: OrderedMutex<HashMap<HostId, Arc<dyn TokenHost>>, { rank::TOKEN_MANAGER }>,
    /// Token id allocator; atomic so grants on different shards never
    /// serialize on id allocation.
    next_id: AtomicU64,
    stats: OrderedMutex<TokenStats, { rank::STATS }>,
}

impl Default for TokenManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TokenManager {
    /// Creates an empty token manager with the environment-selected
    /// shard count ([`shards_from_env`]).
    pub fn new() -> TokenManager {
        Self::with_shards(shards_from_env())
    }

    /// Creates an empty token manager with exactly `n` shards
    /// (`n = 1` reproduces the old single-lock behavior).
    pub fn with_shards(n: usize) -> TokenManager {
        TokenManager {
            shards: OrderedShardedMutex::new(n, TokenShard::default),
            hosts: OrderedMutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            stats: OrderedMutex::new(TokenStats::default()),
        }
    }

    /// Number of fid-hash shards.
    pub fn shard_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// The shard holding `fid`'s grants and stamps.
    pub fn shard_of(&self, fid: Fid) -> usize {
        shard_index(fid.volume, fid.vnode.0, self.shards.shard_count())
    }

    fn fresh_id(&self) -> TokenId {
        TokenId(self.next_id.fetch_add(1, Ordering::SeqCst))
    }

    /// Locks every shard the conflict check for a token on `fid` must
    /// consult, in ascending index order (the cross-shard discipline
    /// the rank enforcer verifies). File tokens touch at most two
    /// shards — the file's own and the one holding the volume's
    /// whole-volume (vnode-0) grants; volume tokens conflict with every
    /// file of the volume, so they take all shards. Returns the guards
    /// plus the position among them of `fid`'s own shard.
    fn lock_covering(&self, fid: Fid, volume_token: bool) -> (Vec<ShardGuard<'_>>, usize) {
        if volume_token || self.shards.shard_count() == 1 {
            return (self.shards.lock_all(), self.shard_of(fid));
        }
        let s_file = self.shard_of(fid);
        let s_vol = shard_index(fid.volume, 0, self.shards.shard_count());
        if s_file == s_vol {
            (vec![self.shards.lock(s_file)], 0)
        } else {
            let lo = s_file.min(s_vol);
            let hi = s_file.max(s_vol);
            let guards = vec![self.shards.lock(lo), self.shards.lock(hi)];
            (guards, if s_file == lo { 0 } else { 1 })
        }
    }

    /// Registers a host and its revoke procedure (§5.1).
    pub fn register_host(&self, host: Arc<dyn TokenHost>) {
        self.hosts.lock().insert(host.host_id(), host);
    }

    /// Removes a host, dropping all its grants (client death/eviction).
    pub fn unregister_host(&self, host: HostId) {
        self.hosts.lock().remove(&host);
        for i in 0..self.shards.shard_count() {
            let mut shard = self.shards.lock(i);
            for by_vnode in shard.grants.values_mut() {
                for grants in by_vnode.values_mut() {
                    grants.retain(|g| g.host != host);
                }
            }
        }
    }

    /// Issues the next serialization stamp for `fid` (§6.2).
    ///
    /// Every reference to a file — grants, revocations, status reads —
    /// is stamped, and stamps are strictly increasing in serialization
    /// order.
    pub fn stamp(&self, fid: Fid) -> SerializationStamp {
        let mut shard = self.shards.lock(self.shard_of(fid));
        let s = shard.stamps.entry(fid).or_default();
        *s = s.next();
        *s
    }

    /// Returns the current (last-issued) stamp for `fid`.
    pub fn current_stamp(&self, fid: Fid) -> SerializationStamp {
        self.shards
            .lock(self.shard_of(fid))
            .stamps
            .get(&fid)
            .copied()
            .unwrap_or_default()
    }

    /// Grants `types` over `range` of `fid` to `host`, revoking
    /// incompatible tokens held by other hosts first.
    ///
    /// Returns the new token and the serialization stamp of the grant.
    /// Fails with [`DfsError::LockConflict`]/[`DfsError::OpenConflict`]
    /// if a conflicting host retained a lock/open token (§5.3).
    pub fn grant(
        &self,
        host: HostId,
        fid: Fid,
        types: TokenTypes,
        range: ByteRange,
    ) -> DfsResult<(Token, SerializationStamp)> {
        if fid.volume.0 == 0 {
            return Err(DfsError::InvalidArgument);
        }
        let wanted = Token { id: TokenId(0), fid, types, range };
        let mut quiet = true;
        for _round in 0..64 {
            // Conflict-check (and, when clean, grant) under the
            // covering shard locks.
            let conflicts: Vec<(HostId, Token, TokenTypes)> = {
                let (mut guards, fid_pos) = self.lock_covering(fid, wanted.is_volume_token());
                let conflicts =
                    Self::conflicting(guards.iter().map(|g| &**g), host, &wanted);
                if conflicts.is_empty() {
                    // Grant immediately while still holding the shard.
                    let token = Token { id: self.fresh_id(), fid, types, range };
                    let shard = &mut *guards[fid_pos];
                    shard
                        .grants
                        .entry(fid.volume)
                        .or_default()
                        .entry(fid.vnode.0)
                        .or_default()
                        .push(Grant { host, token: token.clone() });
                    let s = shard.stamps.entry(fid).or_default();
                    *s = s.next();
                    let stamp = *s;
                    drop(guards);
                    let mut stats = self.stats.lock();
                    stats.grants += 1;
                    if quiet {
                        stats.quiet_grants += 1;
                    }
                    return Ok((token, stamp));
                }
                quiet = false;
                conflicts
            };
            // Revoke outside every manager lock: the hosts' revoke
            // procedures may call back into the file server (§6.4).
            // Only the conflicting type bits are revoked.
            self.revoke_conflicts(conflicts)?;
        }
        Err(DfsError::Timeout)
    }

    /// Revokes `conflicts` with every manager lock released, batching
    /// all of one host's tokens into a single callback. Returns `Err`
    /// as soon as a host retains a token (lock/open retention refuses
    /// the triggering grant, §5.3); `Ok` means every token was
    /// returned and the caller should re-run its conflict check.
    fn revoke_conflicts(&self, conflicts: Vec<(HostId, Token, TokenTypes)>) -> DfsResult<()> {
        // Resolve host objects and group per host, preserving
        // first-conflict order. Unregistered hosts are skipped: their
        // grants die with them.
        let groups: Vec<RevokeGroup> = {
            let hosts = self.hosts.lock();
            let mut groups: Vec<RevokeGroup> = Vec::new();
            for (host, token, bits) in conflicts {
                let Some(h) = hosts.get(&host) else { continue };
                match groups.iter_mut().find(|(g, _)| g.host_id() == host) {
                    Some((_, items)) => items.push((token, bits)),
                    None => groups.push((h.clone(), vec![(token, bits)])),
                }
            }
            groups
        };
        for (h, tokens) in groups {
            let items: Vec<RevokeItem> = tokens
                .into_iter()
                .map(|(token, types)| {
                    let stamp = self.stamp(token.fid);
                    RevokeItem { token, types, stamp }
                })
                .collect();
            // The batched callback runs with no manager lock held.
            let results = h.revoke_batch(&items);
            self.stats.lock().revocations += items.len() as u64;
            for (i, item) in items.iter().enumerate() {
                // A short answer vector counts the tail as returned:
                // the caller re-runs its conflict check anyway, so a
                // token the host silently kept is simply re-revoked.
                let result = results.get(i).copied().unwrap_or(RevokeResult::Returned);
                match result {
                    RevokeResult::Returned => {
                        let mut shard = self.shards.lock(self.shard_of(item.token.fid));
                        Self::downgrade_in(&mut shard, h.host_id(), item.token.id, item.types);
                    }
                    RevokeResult::Retained => {
                        {
                            let mut stats = self.stats.lock();
                            stats.retained += 1;
                            stats.refused += 1;
                        }
                        // Lock/open retention refuses the new request.
                        return Err(if item
                            .types
                            .intersects(TokenTypes::LOCK_READ | TokenTypes::LOCK_WRITE)
                        {
                            DfsError::LockConflict
                        } else {
                            DfsError::OpenConflict
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-grants a token `host` claims to have held before this server
    /// instance started (the crash-recovery reestablish path).
    ///
    /// Unlike [`grant`](Self::grant) this never revokes anyone: the
    /// pre-crash grant set was mutually compatible, so honest surviving
    /// claims cannot conflict with each other. A claim that *does*
    /// conflict with tokens already in the table (another host
    /// reestablished an overlapping guarantee first, or new grants were
    /// issued after the grace window closed) is refused — the caller
    /// falls back to the normal grant path for that file.
    pub fn reestablish(
        &self,
        host: HostId,
        fid: Fid,
        types: TokenTypes,
        range: ByteRange,
    ) -> Option<(Token, SerializationStamp)> {
        if fid.volume.0 == 0 || types.is_empty() {
            return None;
        }
        let wanted = Token { id: TokenId(0), fid, types, range };
        let (mut guards, fid_pos) = self.lock_covering(fid, wanted.is_volume_token());
        if !Self::conflicting(guards.iter().map(|g| &**g), host, &wanted).is_empty() {
            drop(guards);
            self.stats.lock().refused += 1;
            return None;
        }
        let token = Token { id: self.fresh_id(), fid, types, range };
        let shard = &mut *guards[fid_pos];
        shard
            .grants
            .entry(fid.volume)
            .or_default()
            .entry(fid.vnode.0)
            .or_default()
            .push(Grant { host, token: token.clone() });
        let s = shard.stamps.entry(fid).or_default();
        *s = s.next();
        let stamp = *s;
        drop(guards);
        let mut stats = self.stats.lock();
        stats.grants += 1;
        stats.reestablished += 1;
        Some((token, stamp))
    }

    /// Scans the locked shard states for grants conflicting with
    /// `wanted`. Each grant lives in exactly one shard, so iterating
    /// the covering shards visits every candidate exactly once.
    fn conflicting<'a>(
        shards: impl Iterator<Item = &'a TokenShard>,
        host: HostId,
        wanted: &Token,
    ) -> Vec<(HostId, Token, TokenTypes)> {
        let mut out = Vec::new();
        for state in shards {
            if let Some(by_vnode) = state.grants.get(&wanted.fid.volume) {
                let candidates: Box<dyn Iterator<Item = &Grant>> = if wanted.is_volume_token() {
                    Box::new(by_vnode.values().flatten())
                } else {
                    let file = by_vnode.get(&wanted.fid.vnode.0).into_iter().flatten();
                    let vol = by_vnode.get(&0).into_iter().flatten();
                    Box::new(file.chain(vol))
                };
                for g in candidates {
                    if g.host == host {
                        continue;
                    }
                    let bits = types::conflict_bits(&g.token, wanted);
                    if !bits.is_empty() {
                        out.push((g.host, g.token.clone(), bits));
                    }
                }
            }
        }
        out
    }

    /// Strips `bits` from a grant within one shard; removes it entirely
    /// when no bits remain.
    fn downgrade_in(shard: &mut TokenShard, host: HostId, id: TokenId, bits: TokenTypes) {
        for by_vnode in shard.grants.values_mut() {
            for grants in by_vnode.values_mut() {
                for g in grants.iter_mut() {
                    if g.host == host && g.token.id == id {
                        g.token.types = g.token.types.minus(bits);
                    }
                }
                grants.retain(|g| !(g.host == host && g.token.id == id && g.token.types.is_empty()));
            }
        }
    }

    /// Returns a token voluntarily (client cache eviction, op done).
    /// The caller identifies the token by id alone, so the shards are
    /// scanned one at a time until every trace is gone.
    pub fn release(&self, host: HostId, id: TokenId) {
        for i in 0..self.shards.shard_count() {
            let mut shard = self.shards.lock(i);
            Self::downgrade_in(&mut shard, host, id, TokenTypes(u32::MAX));
        }
        self.stats.lock().releases += 1;
    }

    /// Returns all of `host`'s tokens on `fid`.
    pub fn release_fid(&self, host: HostId, fid: Fid) {
        let mut shard = self.shards.lock(self.shard_of(fid));
        let mut removed = 0u64;
        if let Some(by_vnode) = shard.grants.get_mut(&fid.volume) {
            if let Some(grants) = by_vnode.get_mut(&fid.vnode.0) {
                let before = grants.len();
                grants.retain(|g| g.host != host);
                removed = (before - grants.len()) as u64;
            }
        }
        drop(shard);
        self.stats.lock().releases += removed;
    }

    /// Snapshots every live grant on `volume` plus the per-file
    /// serialization counters, for shipping to a volume-move target.
    /// Takes every shard (ascending) so the export is one consistent
    /// cut of the volume's coherence state.
    ///
    /// The grants keep their token ids: a live move (§2.1) must leave
    /// the clients' cached tokens valid, and a client matches
    /// revocations by token id, so the target has to keep serving the
    /// exact ids the source issued.
    pub fn export_volume(&self, volume: VolumeId) -> VolumeExport {
        let guards = self.shards.lock_all();
        let mut grants: Vec<(HostId, Token)> = Vec::new();
        let mut stamps: Vec<(Fid, SerializationStamp)> = Vec::new();
        for shard in &guards {
            if let Some(by_vnode) = shard.grants.get(&volume) {
                grants.extend(
                    by_vnode
                        .values()
                        .flatten()
                        .map(|g| (g.host, g.token.clone())),
                );
            }
            stamps.extend(
                shard
                    .stamps
                    .iter()
                    .filter(|(f, _)| f.volume == volume)
                    .map(|(f, s)| (*f, *s)),
            );
        }
        (grants, stamps)
    }

    /// Installs a grant verbatim — same token id, types, and range — at
    /// a volume-move target. `next_id` is raised past the imported id so
    /// future grants can never collide with a shipped token.
    pub fn install_grant(&self, host: HostId, token: Token) {
        self.next_id.fetch_max(token.id.0 + 1, Ordering::SeqCst);
        let mut shard = self.shards.lock(self.shard_of(token.fid));
        shard
            .grants
            .entry(token.fid.volume)
            .or_default()
            .entry(token.fid.vnode.0)
            .or_default()
            .push(Grant { host, token });
        drop(shard);
        let mut stats = self.stats.lock();
        stats.grants += 1;
        stats.imported += 1;
    }

    /// Raises `fid`'s serialization counter to at least `floor`, so
    /// stamps issued by a move target continue the source's order
    /// (§6.2: clients merge status by stamp and would discard updates
    /// stamped below what they have already seen).
    pub fn raise_stamp_floor(&self, fid: Fid, floor: SerializationStamp) {
        let mut shard = self.shards.lock(self.shard_of(fid));
        let s = shard.stamps.entry(fid).or_default();
        if floor > *s {
            *s = floor;
        }
    }

    /// Drops every grant and stamp counter for `volume` (the source side
    /// of a completed move: the volume is gone, the target now owns the
    /// coherence state).
    pub fn drop_volume(&self, volume: VolumeId) {
        for i in 0..self.shards.shard_count() {
            let mut shard = self.shards.lock(i);
            shard.grants.remove(&volume);
            shard.stamps.retain(|f, _| f.volume != volume);
        }
    }

    /// Lists the tokens currently granted on `fid` (diagnostics).
    pub fn tokens_on(&self, fid: Fid) -> Vec<(HostId, Token)> {
        let shard = self.shards.lock(self.shard_of(fid));
        shard
            .grants
            .get(&fid.volume)
            .and_then(|m| m.get(&fid.vnode.0))
            .map(|v| v.iter().map(|g| (g.host, g.token.clone())).collect())
            .unwrap_or_default()
    }

    /// Lists the remote client hosts currently holding at least one
    /// grant. A restarting server's grace window waits only for these:
    /// a host that held no tokens has nothing to reestablish, and
    /// waiting for it (e.g. an admin caller that only ever created
    /// volumes) would pin the window until lease expiry.
    pub fn token_holders(&self) -> Vec<ClientId> {
        let mut out: Vec<ClientId> = Vec::new();
        for i in 0..self.shards.shard_count() {
            let shard = self.shards.lock(i);
            for by_vnode in shard.grants.values() {
                for grants in by_vnode.values() {
                    for g in grants {
                        if let HostId::Client(c) = g.host {
                            if !out.contains(&c) {
                                out.push(c);
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Returns a snapshot of the statistics.
    pub fn stats(&self) -> TokenStats {
        self.stats.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_types::{ClientId, VnodeId};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct RecordingHost {
        id: HostId,
        revoked: Mutex<Vec<Token>>,
        retain: bool,
        calls: AtomicUsize,
    }

    impl RecordingHost {
        fn new(n: u32, retain: bool) -> Arc<RecordingHost> {
            Arc::new(RecordingHost {
                id: HostId::Client(ClientId(n)),
                revoked: Mutex::new(Vec::new()),
                retain,
                calls: AtomicUsize::new(0),
            })
        }
    }

    impl TokenHost for RecordingHost {
        fn host_id(&self) -> HostId {
            self.id
        }
        fn revoke(
            &self,
            token: &Token,
            _types: TokenTypes,
            _stamp: SerializationStamp,
        ) -> RevokeResult {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.revoked.lock().push(token.clone());
            if self.retain {
                RevokeResult::Retained
            } else {
                RevokeResult::Returned
            }
        }
    }

    /// Host that answers batches directly, recording every batch, so
    /// tests can pin "one conflict check → one callback per host" and
    /// per-token answer ordering (including mixed return/retain).
    struct BatchHost {
        id: HostId,
        /// Token ids of each batch, in callback order.
        batches: Mutex<Vec<Vec<TokenId>>>,
        /// Scripted per-call answers (front popped each batch); absent
        /// entries answer `Returned` for the whole batch.
        script: Mutex<Vec<Vec<RevokeResult>>>,
    }

    impl BatchHost {
        fn new(n: u32) -> Arc<BatchHost> {
            Arc::new(BatchHost {
                id: HostId::Client(ClientId(n)),
                batches: Mutex::new(Vec::new()),
                script: Mutex::new(Vec::new()),
            })
        }
        fn total_acks(&self) -> usize {
            self.batches.lock().iter().map(|b| b.len()).sum()
        }
    }

    impl TokenHost for BatchHost {
        fn host_id(&self) -> HostId {
            self.id
        }
        fn revoke(
            &self,
            token: &Token,
            _types: TokenTypes,
            _stamp: SerializationStamp,
        ) -> RevokeResult {
            // Single-token path: treat as a batch of one.
            self.revoke_batch(&[RevokeItem {
                token: token.clone(),
                types: _types,
                stamp: _stamp,
            }])[0]
        }
        fn revoke_batch(&self, items: &[RevokeItem]) -> Vec<RevokeResult> {
            self.batches
                .lock()
                .push(items.iter().map(|i| i.token.id).collect());
            let scripted = self.script.lock().pop();
            match scripted {
                Some(answers) => answers,
                None => vec![RevokeResult::Returned; items.len()],
            }
        }
    }

    fn fid(n: u32) -> Fid {
        Fid::new(VolumeId(1), VnodeId(n), 1)
    }

    #[test]
    fn grant_and_quiet_regrant() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        tm.register_host(h1.clone());
        let (t, s1) = tm
            .grant(h1.id, fid(1), TokenTypes::DATA_READ | TokenTypes::STATUS_READ, ByteRange::WHOLE)
            .unwrap();
        assert!(t.id.0 > 0);
        let (_, s2) = tm.grant(h1.id, fid(1), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        assert!(s2 > s1, "stamps strictly increase per file");
        assert_eq!(tm.stats().revocations, 0);
        assert_eq!(tm.stats().quiet_grants, 2);
    }

    #[test]
    fn conflicting_grant_revokes_other_host() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        tm.grant(h2.id, fid(1), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 1, "h1's write token revoked");
        assert_eq!(tm.tokens_on(fid(1)).len(), 1);
        assert_eq!(tm.stats().revocations, 1);
    }

    #[test]
    fn same_host_tokens_never_conflict() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        tm.register_host(h1.clone());
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn disjoint_ranges_no_revocation() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(0, 100)).unwrap();
        tm.grant(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(100, 200)).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0, "byte ranges partition the file");
    }

    #[test]
    fn retained_open_token_refuses_grant() {
        let tm = TokenManager::new();
        let holder = RecordingHost::new(1, true);
        let wanter = RecordingHost::new(2, false);
        tm.register_host(holder.clone());
        tm.register_host(wanter.clone());
        tm.grant(holder.id, fid(1), TokenTypes::OPEN_EXECUTE, ByteRange::WHOLE).unwrap();
        let err = tm
            .grant(wanter.id, fid(1), TokenTypes::OPEN_WRITE, ByteRange::WHOLE)
            .unwrap_err();
        assert_eq!(err, DfsError::OpenConflict, "ETXTBSY via open tokens");
        assert_eq!(tm.stats().refused, 1);
    }

    #[test]
    fn retained_lock_token_refuses_with_lock_conflict() {
        let tm = TokenManager::new();
        let holder = RecordingHost::new(1, true);
        let wanter = RecordingHost::new(2, false);
        tm.register_host(holder.clone());
        tm.register_host(wanter.clone());
        tm.grant(holder.id, fid(1), TokenTypes::LOCK_WRITE, ByteRange::new(0, 10)).unwrap();
        let err = tm
            .grant(wanter.id, fid(1), TokenTypes::LOCK_WRITE, ByteRange::new(0, 10))
            .unwrap_err();
        assert_eq!(err, DfsError::LockConflict);
    }

    #[test]
    fn release_allows_later_grants_quietly() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        let (t, _) = tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        tm.release(h1.id, t.id);
        tm.grant(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0, "released token needs no revoke");
    }

    #[test]
    fn unregister_drops_grants() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        tm.unregister_host(h1.id);
        tm.grant(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0, "dead host is not called");
    }

    #[test]
    fn volume_token_revoked_by_file_write() {
        let tm = TokenManager::new();
        let repl = RecordingHost::new(9, false);
        let writer = RecordingHost::new(2, false);
        tm.register_host(repl.clone());
        tm.register_host(writer.clone());
        // Whole-volume token, as the replication server requests (§3.8).
        let vol_fid = Fid::new(VolumeId(1), VnodeId(0), 0);
        tm.grant(repl.id, vol_fid, TokenTypes::DATA_READ | TokenTypes::STATUS_READ, ByteRange::WHOLE)
            .unwrap();
        tm.grant(writer.id, fid(3), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        assert_eq!(repl.calls.load(Ordering::SeqCst), 1, "volume token revoked");
    }

    #[test]
    fn stamps_are_per_file() {
        let tm = TokenManager::new();
        let s1 = tm.stamp(fid(1));
        let s2 = tm.stamp(fid(2));
        let s3 = tm.stamp(fid(1));
        assert_eq!(s1, SerializationStamp(1));
        assert_eq!(s2, SerializationStamp(1), "counters are per file");
        assert_eq!(s3, SerializationStamp(2));
        assert_eq!(tm.current_stamp(fid(1)), SerializationStamp(2));
    }

    #[test]
    fn reestablish_regrants_without_revocation() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        // Two disjoint pre-crash write claims both survive a restart.
        let (t1, _) = tm
            .reestablish(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(0, 100))
            .unwrap();
        let (t2, _) = tm
            .reestablish(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(100, 200))
            .unwrap();
        assert_ne!(t1.id, t2.id, "fresh token ids");
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0, "reestablish never revokes");
        assert_eq!(h2.calls.load(Ordering::SeqCst), 0);
        assert_eq!(tm.stats().reestablished, 2);
        assert_eq!(tm.tokens_on(fid(1)).len(), 2);
    }

    #[test]
    fn reestablish_conflicting_claim_refused() {
        let tm = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        tm.reestablish(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        // An overlapping claim (inconsistent with the first) is dropped
        // rather than revoking the grant that got in first.
        assert!(tm
            .reestablish(h2.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE)
            .is_none());
        assert_eq!(h1.calls.load(Ordering::SeqCst), 0);
        assert_eq!(tm.stats().refused, 1);
        assert_eq!(tm.tokens_on(fid(1)).len(), 1);
    }

    #[test]
    fn export_install_preserves_ids_and_stamp_order() {
        let src = TokenManager::new();
        let dst = TokenManager::new();
        let h1 = RecordingHost::new(1, false);
        src.register_host(h1.clone());
        dst.register_host(h1.clone());
        let (t, s) = src.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        // Ship the volume's coherence state to `dst`, as a live move does.
        let (grants, stamps) = src.export_volume(VolumeId(1));
        assert_eq!(grants.len(), 1);
        for (host, token) in grants {
            dst.install_grant(host, token);
        }
        for (f, floor) in stamps {
            dst.raise_stamp_floor(f, floor);
        }
        src.drop_volume(VolumeId(1));
        assert!(src.tokens_on(fid(1)).is_empty());
        // Same id at the target, and stamps continue past the floor.
        let at_dst = dst.tokens_on(fid(1));
        assert_eq!(at_dst.len(), 1);
        assert_eq!(at_dst[0].1.id, t.id);
        assert!(dst.stamp(fid(1)) > s, "stamps stay monotone across the move");
        // Fresh grants at the target never reuse a shipped id.
        let (t2, _) = dst.grant(h1.id, fid(2), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        assert!(t2.id.0 > t.id.0);
        assert_eq!(dst.stats().imported, 1);
    }

    #[test]
    fn concurrent_grants_do_not_deadlock() {
        let tm = Arc::new(TokenManager::new());
        let hosts: Vec<_> = (0..4).map(|i| RecordingHost::new(i, false)).collect();
        for h in &hosts {
            tm.register_host(h.clone());
        }
        let threads: Vec<_> = hosts
            .iter()
            .map(|h| {
                let tm = tm.clone();
                let id = h.id;
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        let _ = tm.grant(
                            id,
                            fid(i % 3),
                            TokenTypes::DATA_WRITE,
                            ByteRange::WHOLE,
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(tm.stats().grants >= 100);
    }

    #[test]
    fn one_conflict_check_batches_same_host_revocations() {
        let tm = TokenManager::with_shards(4);
        let holder = BatchHost::new(1);
        let wanter = RecordingHost::new(2, false);
        tm.register_host(holder.clone());
        tm.register_host(wanter.clone());
        // Two disjoint write grants to the same host on one file; a
        // whole-file reader conflicts with both at once.
        let (t1, _) = tm.grant(holder.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(0, 100)).unwrap();
        let (t2, _) = tm.grant(holder.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(100, 200)).unwrap();
        tm.grant(wanter.id, fid(1), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        let batches = holder.batches.lock().clone();
        assert_eq!(batches.len(), 1, "one callback for one conflict check");
        assert_eq!(batches[0], vec![t1.id, t2.id], "both tokens in the batch, in order");
        assert_eq!(tm.stats().revocations, 2, "revocations count per token");
        assert_eq!(holder.total_acks(), 2, "every token acked exactly once");
    }

    #[test]
    fn batched_revoke_acks_every_token_once_with_mixed_results() {
        let tm = TokenManager::with_shards(4);
        let holder = BatchHost::new(1);
        let wanter = RecordingHost::new(2, false);
        tm.register_host(holder.clone());
        tm.register_host(wanter.clone());
        // Two execute opens (same host, so mutually compatible); both
        // conflict with a foreign open-for-write (ETXTBSY).
        let (t1, _) = tm.grant(holder.id, fid(1), TokenTypes::OPEN_EXECUTE, ByteRange::new(0, 10)).unwrap();
        let (t2, _) = tm.grant(holder.id, fid(1), TokenTypes::OPEN_EXECUTE, ByteRange::new(10, 20)).unwrap();
        // First token returned, second retained: the grant must fail
        // (open retention) yet both answers must be consumed exactly
        // once and the returned token really downgraded.
        holder
            .script
            .lock()
            .push(vec![RevokeResult::Returned, RevokeResult::Retained]);
        let err = tm
            .grant(wanter.id, fid(1), TokenTypes::OPEN_WRITE, ByteRange::WHOLE)
            .unwrap_err();
        assert_eq!(err, DfsError::OpenConflict);
        let batches = holder.batches.lock().clone();
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0], vec![t1.id, t2.id]);
        assert_eq!(holder.total_acks(), 2, "mixed results still ack each token once");
        let left: Vec<TokenId> = tm.tokens_on(fid(1)).iter().map(|(_, t)| t.id).collect();
        assert!(!left.contains(&t1.id), "returned token downgraded away");
        assert!(left.contains(&t2.id), "retained token survives");
        assert_eq!(tm.stats().retained, 1);
        assert_eq!(tm.stats().refused, 1);
    }

    #[test]
    fn batch_items_carry_fresh_per_file_stamps() {
        let tm = TokenManager::with_shards(4);
        let holder = RecordingHost::new(1, false);
        let wanter = RecordingHost::new(2, false);
        tm.register_host(holder.clone());
        tm.register_host(wanter.clone());
        tm.grant(holder.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        let before = tm.current_stamp(fid(1));
        tm.grant(wanter.id, fid(1), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        // Revocation stamp, then the grant's own stamp: two advances.
        assert!(tm.current_stamp(fid(1)) > before.next(), "revoke and grant each stamped");
    }

    #[test]
    fn short_batch_answer_counts_as_returned() {
        let tm = TokenManager::with_shards(2);
        let holder = BatchHost::new(1);
        let wanter = RecordingHost::new(2, false);
        tm.register_host(holder.clone());
        tm.register_host(wanter.clone());
        let (t1, _) = tm.grant(holder.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(0, 100)).unwrap();
        tm.grant(holder.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::new(100, 200)).unwrap();
        // Host answers only the first token; the manager treats the
        // missing tail as returned and the retry round cleans it up.
        holder.script.lock().push(vec![RevokeResult::Returned]);
        tm.grant(wanter.id, fid(1), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        let left: Vec<TokenId> = tm.tokens_on(fid(1)).iter().map(|(_, t)| t.id).collect();
        assert!(!left.contains(&t1.id));
        assert!(tm.stats().grants >= 3);
    }

    #[test]
    fn whole_volume_grant_spans_all_shards() {
        let tm = TokenManager::with_shards(4);
        let readers: Vec<_> = (1..=8).map(|i| RecordingHost::new(i, false)).collect();
        let repl = RecordingHost::new(99, false);
        for h in &readers {
            tm.register_host(h.clone());
        }
        tm.register_host(repl.clone());
        // Writers on 8 distinct vnodes land in several shards.
        let mut shards_hit = std::collections::HashSet::new();
        for (i, h) in readers.iter().enumerate() {
            let f = fid(i as u32 + 1);
            shards_hit.insert(tm.shard_of(f));
            tm.grant(h.id, f, TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        }
        assert!(shards_hit.len() > 1, "test needs fids spread over shards");
        // A whole-volume read token must see and revoke every one.
        let vol_fid = Fid::new(VolumeId(1), VnodeId(0), 0);
        tm.grant(repl.id, vol_fid, TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        let revoked: usize = readers.iter().map(|h| h.calls.load(Ordering::SeqCst)).sum();
        assert_eq!(revoked, 8, "every shard's conflicting grant revoked");
        assert_eq!(tm.tokens_on(vol_fid).len(), 1);
    }

    #[test]
    fn shard_count_one_matches_old_single_lock_layout() {
        let tm = TokenManager::with_shards(1);
        assert_eq!(tm.shard_count(), 1);
        let h1 = RecordingHost::new(1, false);
        let h2 = RecordingHost::new(2, false);
        tm.register_host(h1.clone());
        tm.register_host(h2.clone());
        for i in 0..16 {
            assert_eq!(tm.shard_of(fid(i)), 0, "everything in the single shard");
        }
        tm.grant(h1.id, fid(1), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
        tm.grant(h2.id, fid(1), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
        assert_eq!(h1.calls.load(Ordering::SeqCst), 1);
        assert_eq!(tm.stats().revocations, 1);
    }

    #[test]
    fn cross_shard_concurrent_grants_do_not_deadlock() {
        let tm = Arc::new(TokenManager::with_shards(4));
        let hosts: Vec<_> = (0..4).map(|i| RecordingHost::new(i, false)).collect();
        for h in &hosts {
            tm.register_host(h.clone());
        }
        let vol_fid = Fid::new(VolumeId(1), VnodeId(0), 0);
        let threads: Vec<_> = hosts
            .iter()
            .enumerate()
            .map(|(n, h)| {
                let tm = tm.clone();
                let id = h.id;
                std::thread::spawn(move || {
                    for i in 0..50u32 {
                        // Mix file grants (1–2 shards) with volume
                        // grants (all shards) to exercise the ascending
                        // acquisition order under contention.
                        if n == 0 && i % 10 == 0 {
                            let _ = tm.grant(id, vol_fid, TokenTypes::DATA_READ, ByteRange::WHOLE);
                        } else {
                            let _ = tm.grant(id, fid(i % 7 + 1), TokenTypes::DATA_WRITE, ByteRange::WHOLE);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(tm.stats().grants >= 100);
    }
}
