//! Token types and the compatibility relation (§5.2, Figure 3).
//!
//! "Tokens of any type are compatible with tokens of any other type, as
//! they refer to separate components of files. Tokens of the same type
//! may be incompatible with each other."

use dfs_types::{ByteRange, Fid};
use std::fmt;

/// A bit set of token types.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TokenTypes(pub u32);

impl TokenTypes {
    /// Right to read (cache and use) a byte range of file data.
    pub const DATA_READ: TokenTypes = TokenTypes(1 << 0);
    /// Right to update a byte range of cached data without notifying
    /// the server.
    pub const DATA_WRITE: TokenTypes = TokenTypes(1 << 1);
    /// Right to use a cached copy of the file's status.
    pub const STATUS_READ: TokenTypes = TokenTypes(1 << 2);
    /// Right to update the cached status without notifying the server.
    pub const STATUS_WRITE: TokenTypes = TokenTypes(1 << 3);
    /// Right to set read file locks in a byte range locally.
    pub const LOCK_READ: TokenTypes = TokenTypes(1 << 4);
    /// Right to set write file locks in a byte range locally.
    pub const LOCK_WRITE: TokenTypes = TokenTypes(1 << 5);
    /// Open for normal reading.
    pub const OPEN_READ: TokenTypes = TokenTypes(1 << 6);
    /// Open for normal writing.
    pub const OPEN_WRITE: TokenTypes = TokenTypes(1 << 7);
    /// Open for executing.
    pub const OPEN_EXECUTE: TokenTypes = TokenTypes(1 << 8);
    /// Open for shared reading (denies writers).
    pub const OPEN_SHARED_READ: TokenTypes = TokenTypes(1 << 9);
    /// Open for exclusive writing (denies all other opens).
    pub const OPEN_EXCLUSIVE_WRITE: TokenTypes = TokenTypes(1 << 10);

    /// All open-token bits.
    pub const OPEN_MASK: TokenTypes = TokenTypes(0b11111 << 6);
    /// No types.
    pub const NONE: TokenTypes = TokenTypes(0);

    /// Returns true if `self` contains every bit of `other`.
    pub fn contains(self, other: TokenTypes) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns true if the two sets share any bit.
    pub fn intersects(self, other: TokenTypes) -> bool {
        self.0 & other.0 != 0
    }

    /// Returns the union of the two sets.
    pub fn union(self, other: TokenTypes) -> TokenTypes {
        TokenTypes(self.0 | other.0)
    }

    /// Returns `self` without the bits of `other`.
    pub fn minus(self, other: TokenTypes) -> TokenTypes {
        TokenTypes(self.0 & !other.0)
    }

    /// Returns true if no bits are set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The five open subtypes, in Figure 3 order.
    pub fn open_subtypes() -> [(TokenTypes, &'static str); 5] {
        [
            (TokenTypes::OPEN_READ, "read"),
            (TokenTypes::OPEN_WRITE, "write"),
            (TokenTypes::OPEN_EXECUTE, "execute"),
            (TokenTypes::OPEN_SHARED_READ, "shared-read"),
            (TokenTypes::OPEN_EXCLUSIVE_WRITE, "excl-write"),
        ]
    }
}

impl std::ops::BitOr for TokenTypes {
    type Output = TokenTypes;
    fn bitor(self, rhs: TokenTypes) -> TokenTypes {
        self.union(rhs)
    }
}

impl fmt::Debug for TokenTypes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (TokenTypes::DATA_READ, "Dr"),
            (TokenTypes::DATA_WRITE, "Dw"),
            (TokenTypes::STATUS_READ, "Sr"),
            (TokenTypes::STATUS_WRITE, "Sw"),
            (TokenTypes::LOCK_READ, "Lr"),
            (TokenTypes::LOCK_WRITE, "Lw"),
            (TokenTypes::OPEN_READ, "Or"),
            (TokenTypes::OPEN_WRITE, "Ow"),
            (TokenTypes::OPEN_EXECUTE, "Ox"),
            (TokenTypes::OPEN_SHARED_READ, "Os"),
            (TokenTypes::OPEN_EXCLUSIVE_WRITE, "Oe"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    f.write_str("+")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        if first {
            f.write_str("-")?;
        }
        Ok(())
    }
}

/// A unique token identifier, used by revocation messages (§6.3).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct TokenId(pub u64);

/// A granted token: a guarantee from a file server to a host.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// Unique id of this grant.
    pub id: TokenId,
    /// The file the guarantee covers. A `vnode` of 0 denotes a
    /// whole-volume token (used by the replication server, §3.8).
    pub fid: Fid,
    /// The granted types.
    pub types: TokenTypes,
    /// Byte range for data and lock types ([`ByteRange::WHOLE`] for
    /// status and open types, which cover the whole file).
    pub range: ByteRange,
}

impl Token {
    /// Returns true if this is a whole-volume token.
    pub fn is_volume_token(&self) -> bool {
        self.fid.vnode.0 == 0
    }
}

/// Returns true if the two open-token subtype bits may coexist on
/// different hosts — Figure 3 of the paper.
///
/// The matrix implements UNIX sharing plus the "exotic" modes §5.4
/// motivates: executing excludes writers (the ETXTBSY rule), shared
/// reading denies writers, and exclusive writing denies everyone.
pub fn open_compatible(a: TokenTypes, b: TokenTypes) -> bool {
    use TokenTypes as T;
    let row = |x: TokenTypes, y: TokenTypes| -> bool {
        if x == T::OPEN_READ {
            y != T::OPEN_EXCLUSIVE_WRITE
        } else if x == T::OPEN_WRITE {
            y == T::OPEN_READ || y == T::OPEN_WRITE
        } else if x == T::OPEN_EXECUTE || x == T::OPEN_SHARED_READ {
            // Executing and shared reading both admit readers and each
            // other, and both deny writers (§5.4).
            y == T::OPEN_READ || y == T::OPEN_EXECUTE || y == T::OPEN_SHARED_READ
        } else {
            // Exclusive write denies everyone; non-open bits are inert.
            x != T::OPEN_EXCLUSIVE_WRITE
        }
    };
    row(a, b)
}

/// Computes which of `held`'s type bits conflict with `wanted` (§5.2).
///
/// Revocation is *typed*: only the conflicting bits need to be given up,
/// so a whole-file status conflict does not cost a byte-range data
/// token. Returns the subset of `held.types` that must be revoked for
/// `wanted` to be granted to a different host.
pub fn conflict_bits(held: &Token, wanted: &Token) -> TokenTypes {
    use TokenTypes as T;
    // Different volumes never interact.
    if held.fid.volume != wanted.fid.volume {
        return T::NONE;
    }
    let same_file =
        held.is_volume_token() || wanted.is_volume_token() || held.fid == wanted.fid;
    if !same_file {
        return T::NONE;
    }
    let ranges_overlap = if held.is_volume_token() || wanted.is_volume_token() {
        true
    } else {
        held.range.overlaps(&wanted.range)
    };

    let mut out = T::NONE;
    // Data: a writer excludes readers and writers over the same bytes.
    if ranges_overlap {
        if wanted.types.contains(T::DATA_WRITE) {
            out = out.union(TokenTypes(held.types.0 & (T::DATA_READ.0 | T::DATA_WRITE.0)));
        } else if wanted.types.contains(T::DATA_READ) {
            out = out.union(TokenTypes(held.types.0 & T::DATA_WRITE.0));
        }
        if wanted.types.contains(T::LOCK_WRITE) {
            out = out.union(TokenTypes(held.types.0 & (T::LOCK_READ.0 | T::LOCK_WRITE.0)));
        } else if wanted.types.contains(T::LOCK_READ) {
            out = out.union(TokenTypes(held.types.0 & T::LOCK_WRITE.0));
        }
    }
    // Status: whole-file.
    if wanted.types.contains(T::STATUS_WRITE) {
        out = out.union(TokenTypes(held.types.0 & (T::STATUS_READ.0 | T::STATUS_WRITE.0)));
    } else if wanted.types.contains(T::STATUS_READ) {
        out = out.union(TokenTypes(held.types.0 & T::STATUS_WRITE.0));
    }
    // Opens: Figure 3, pairwise.
    for (x, _) in TokenTypes::open_subtypes() {
        if !wanted.types.contains(x) {
            continue;
        }
        for (y, _) in TokenTypes::open_subtypes() {
            if held.types.contains(y) && !open_compatible(x, y) {
                out = out.union(y);
            }
        }
    }
    out
}

/// Returns true if two tokens held by *different* hosts are compatible
/// (§5.2). Tokens held by the same host never conflict.
pub fn compatible(a: &Token, b: &Token) -> bool {
    conflict_bits(a, b).is_empty() && conflict_bits(b, a).is_empty()
}

/// Renders Figure 3 — the open-token compatibility matrix — from the
/// same predicate the token manager uses.
pub fn render_open_matrix() -> String {
    let subs = TokenTypes::open_subtypes();
    let mut out = String::from("Figure 3: open-token compatibility matrix\n");
    out.push_str(&format!("{:>12}", ""));
    for (_, name) in subs {
        out.push_str(&format!("{name:>12}"));
    }
    out.push('\n');
    for (x, xname) in subs {
        out.push_str(&format!("{xname:>12}"));
        for (y, _) in subs {
            out.push_str(&format!("{:>12}", if open_compatible(x, y) { "yes" } else { "-" }));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_types::{VnodeId, VolumeId};

    fn tok(fid: Fid, types: TokenTypes, range: ByteRange) -> Token {
        Token { id: TokenId(0), fid, types, range }
    }

    fn fid(v: u64, n: u32) -> Fid {
        Fid::new(VolumeId(v), VnodeId(n), 1)
    }

    #[test]
    fn different_files_never_conflict() {
        let a = tok(fid(1, 1), TokenTypes::DATA_WRITE, ByteRange::WHOLE);
        let b = tok(fid(1, 2), TokenTypes::DATA_WRITE, ByteRange::WHOLE);
        assert!(compatible(&a, &b));
    }

    #[test]
    fn data_read_write_conflict_only_on_overlap() {
        let r = tok(fid(1, 1), TokenTypes::DATA_READ, ByteRange::new(0, 100));
        let w_far = tok(fid(1, 1), TokenTypes::DATA_WRITE, ByteRange::new(100, 200));
        let w_near = tok(fid(1, 1), TokenTypes::DATA_WRITE, ByteRange::new(50, 150));
        assert!(compatible(&r, &w_far), "disjoint ranges coexist (§5.4)");
        assert!(!compatible(&r, &w_near));
        assert!(!compatible(&w_near, &r), "compatibility is symmetric");
    }

    #[test]
    fn two_writers_conflict() {
        let a = tok(fid(1, 1), TokenTypes::DATA_WRITE, ByteRange::new(0, 10));
        let b = tok(fid(1, 1), TokenTypes::DATA_WRITE, ByteRange::new(5, 15));
        assert!(!compatible(&a, &b));
    }

    #[test]
    fn two_readers_coexist() {
        let a = tok(fid(1, 1), TokenTypes::DATA_READ, ByteRange::WHOLE);
        let b = tok(fid(1, 1), TokenTypes::DATA_READ, ByteRange::WHOLE);
        assert!(compatible(&a, &b));
    }

    #[test]
    fn status_tokens() {
        let r = tok(fid(1, 1), TokenTypes::STATUS_READ, ByteRange::WHOLE);
        let w = tok(fid(1, 1), TokenTypes::STATUS_WRITE, ByteRange::WHOLE);
        assert!(compatible(&r, &r));
        assert!(!compatible(&r, &w));
        assert!(!compatible(&w, &w));
    }

    #[test]
    fn lock_tokens_respect_ranges() {
        let lr = tok(fid(1, 1), TokenTypes::LOCK_READ, ByteRange::new(0, 10));
        let lw1 = tok(fid(1, 1), TokenTypes::LOCK_WRITE, ByteRange::new(20, 30));
        let lw2 = tok(fid(1, 1), TokenTypes::LOCK_WRITE, ByteRange::new(5, 8));
        assert!(compatible(&lr, &lw1));
        assert!(!compatible(&lr, &lw2));
    }

    #[test]
    fn cross_type_tokens_always_compatible() {
        // "Tokens of any type are compatible with tokens of any other
        // type" (§5.2).
        let d = tok(fid(1, 1), TokenTypes::DATA_WRITE, ByteRange::WHOLE);
        let l = tok(fid(1, 1), TokenTypes::LOCK_WRITE, ByteRange::WHOLE);
        let o = tok(fid(1, 1), TokenTypes::OPEN_READ, ByteRange::WHOLE);
        assert!(compatible(&d, &l));
        assert!(compatible(&d, &o));
        assert!(compatible(&l, &o));
    }

    #[test]
    fn open_matrix_figure3() {
        use TokenTypes as T;
        // Row by row per the matrix in types.rs docs.
        assert!(open_compatible(T::OPEN_READ, T::OPEN_WRITE));
        assert!(open_compatible(T::OPEN_READ, T::OPEN_EXECUTE));
        assert!(!open_compatible(T::OPEN_READ, T::OPEN_EXCLUSIVE_WRITE));
        // The UNIX write-vs-execute restriction (§5.4: a file open for
        // execution cannot be opened for writing).
        assert!(!open_compatible(T::OPEN_WRITE, T::OPEN_EXECUTE));
        assert!(!open_compatible(T::OPEN_EXECUTE, T::OPEN_WRITE));
        assert!(open_compatible(T::OPEN_WRITE, T::OPEN_WRITE));
        assert!(!open_compatible(T::OPEN_SHARED_READ, T::OPEN_WRITE));
        assert!(open_compatible(T::OPEN_SHARED_READ, T::OPEN_SHARED_READ));
        for (t, _) in T::open_subtypes() {
            assert!(!open_compatible(T::OPEN_EXCLUSIVE_WRITE, t));
            assert!(!open_compatible(t, T::OPEN_EXCLUSIVE_WRITE));
        }
    }

    #[test]
    fn open_matrix_is_symmetric() {
        for (x, _) in TokenTypes::open_subtypes() {
            for (y, _) in TokenTypes::open_subtypes() {
                assert_eq!(
                    open_compatible(x, y),
                    open_compatible(y, x),
                    "{x:?} vs {y:?} must be symmetric"
                );
            }
        }
    }

    #[test]
    fn volume_token_conflicts_with_file_tokens() {
        let vol_tok = tok(
            Fid::new(VolumeId(1), VnodeId(0), 0),
            TokenTypes::DATA_READ | TokenTypes::STATUS_READ,
            ByteRange::WHOLE,
        );
        let w = tok(fid(1, 5), TokenTypes::DATA_WRITE, ByteRange::WHOLE);
        assert!(!compatible(&vol_tok, &w), "replica token vs writer");
        let other_vol = tok(fid(2, 5), TokenTypes::DATA_WRITE, ByteRange::WHOLE);
        assert!(compatible(&vol_tok, &other_vol));
        let r = tok(fid(1, 5), TokenTypes::DATA_READ, ByteRange::WHOLE);
        assert!(compatible(&vol_tok, &r), "readers coexist with replica");
    }

    #[test]
    fn render_matrix_mentions_all_subtypes() {
        let s = render_open_matrix();
        for (_, name) in TokenTypes::open_subtypes() {
            assert!(s.contains(name), "matrix missing {name}");
        }
    }

    #[test]
    fn types_bit_operations() {
        let t = TokenTypes::DATA_READ | TokenTypes::STATUS_READ;
        assert!(t.contains(TokenTypes::DATA_READ));
        assert!(!t.contains(TokenTypes::DATA_WRITE));
        assert!(t.intersects(TokenTypes::STATUS_READ | TokenTypes::LOCK_READ));
        assert_eq!(t.minus(TokenTypes::DATA_READ), TokenTypes::STATUS_READ);
        assert_eq!(format!("{t:?}"), "Dr+Sr");
        assert_eq!(format!("{:?}", TokenTypes::NONE), "-");
    }
}
