//! Property-based tests for the token compatibility relation (§5.2).

use dfs_token::{compatible, conflict_bits, Token, TokenId, TokenTypes};
use dfs_types::{ByteRange, Fid, VnodeId, VolumeId};
use proptest::prelude::*;

fn types_strategy() -> impl Strategy<Value = TokenTypes> {
    (0u32..(1 << 11)).prop_map(TokenTypes)
}

fn range_strategy() -> impl Strategy<Value = ByteRange> {
    prop_oneof![
        3 => (0u64..1000, 1u64..1000).prop_map(|(s, l)| ByteRange::new(s, s + l)),
        1 => Just(ByteRange::WHOLE),
    ]
}

fn token_strategy() -> impl Strategy<Value = Token> {
    (1u64..3, 0u32..3, types_strategy(), range_strategy()).prop_map(|(vol, vn, types, range)| {
        Token {
            id: TokenId(1),
            fid: Fid::new(VolumeId(vol), VnodeId(vn), 1),
            types,
            range,
        }
    })
}

proptest! {
    #[test]
    fn compatibility_is_symmetric(a in token_strategy(), b in token_strategy()) {
        prop_assert_eq!(compatible(&a, &b), compatible(&b, &a));
    }

    #[test]
    fn conflict_bits_subset_of_held(a in token_strategy(), b in token_strategy()) {
        let bits = conflict_bits(&a, &b);
        prop_assert!(a.types.contains(bits), "conflict bits must come from the held token");
    }

    #[test]
    fn stripping_conflicts_restores_compatibility(a in token_strategy(), b in token_strategy()) {
        // The partial-revocation invariant: after removing exactly the
        // conflicting bits from each side, the tokens coexist.
        let mut a2 = a.clone();
        a2.types = a2.types.minus(conflict_bits(&a, &b));
        let mut b2 = b.clone();
        b2.types = b2.types.minus(conflict_bits(&b, &a2));
        prop_assert!(
            compatible(&a2, &b2),
            "a2={:?} b2={:?} still conflict",
            a2.types,
            b2.types
        );
    }

    #[test]
    fn different_files_never_conflict(a in token_strategy(), b in token_strategy()) {
        if a.fid != b.fid
            && a.fid.vnode.0 != 0
            && b.fid.vnode.0 != 0
        {
            prop_assert!(compatible(&a, &b));
        }
    }

    #[test]
    fn disjoint_ranges_never_conflict_on_data_or_locks(
        base in 0u64..1000,
        la in 1u64..100,
        lb in 1u64..100,
        ta in types_strategy(),
        tb in types_strategy(),
    ) {
        // Strip status and open bits (those ignore ranges).
        let rangey = TokenTypes(
            TokenTypes::DATA_READ.0
                | TokenTypes::DATA_WRITE.0
                | TokenTypes::LOCK_READ.0
                | TokenTypes::LOCK_WRITE.0,
        );
        let fid = Fid::new(VolumeId(1), VnodeId(1), 1);
        let a = Token {
            id: TokenId(1),
            fid,
            types: TokenTypes(ta.0 & rangey.0),
            range: ByteRange::new(base, base + la),
        };
        let b = Token {
            id: TokenId(2),
            fid,
            types: TokenTypes(tb.0 & rangey.0),
            range: ByteRange::new(base + la, base + la + lb),
        };
        prop_assert!(compatible(&a, &b), "disjoint byte ranges must coexist (§5.4)");
    }

    #[test]
    fn pure_readers_never_conflict(ra in range_strategy(), rb in range_strategy()) {
        let readers = TokenTypes(
            TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0 | TokenTypes::LOCK_READ.0,
        );
        let fid = Fid::new(VolumeId(1), VnodeId(1), 1);
        let a = Token { id: TokenId(1), fid, types: readers, range: ra };
        let b = Token { id: TokenId(2), fid, types: readers, range: rb };
        prop_assert!(compatible(&a, &b));
    }

    #[test]
    fn volume_token_conflicts_dominate_file_tokens(t in token_strategy()) {
        // A whole-volume writer conflicts with any same-volume token
        // that a whole-file writer would conflict with.
        let writer_types = TokenTypes(TokenTypes::DATA_WRITE.0 | TokenTypes::STATUS_WRITE.0);
        let vol_tok = Token {
            id: TokenId(9),
            fid: Fid::new(t.fid.volume, VnodeId(0), 0),
            types: writer_types,
            range: ByteRange::WHOLE,
        };
        let file_tok = Token {
            id: TokenId(10),
            fid: t.fid,
            types: writer_types,
            range: ByteRange::WHOLE,
        };
        if t.fid.vnode.0 != 0 && !compatible(&file_tok, &t) {
            prop_assert!(
                !compatible(&vol_tok, &t),
                "volume token must conflict at least as much as a file token"
            );
        }
    }
}
