//! Property-based tests for the token compatibility relation (§5.2) and
//! for shard-count transparency: sharding the manager's state by fid
//! hash is a pure performance change, so any operation script must
//! produce identical observable results at 1 shard and at N.

use dfs_token::{
    compatible, conflict_bits, RevokeResult, Token, TokenHost, TokenId, TokenManager, TokenTypes,
};
use dfs_types::{ByteRange, ClientId, Fid, HostId, SerializationStamp, VnodeId, VolumeId};
use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn types_strategy() -> impl Strategy<Value = TokenTypes> {
    (0u32..(1 << 11)).prop_map(TokenTypes)
}

fn range_strategy() -> impl Strategy<Value = ByteRange> {
    prop_oneof![
        3 => (0u64..1000, 1u64..1000).prop_map(|(s, l)| ByteRange::new(s, s + l)),
        1 => Just(ByteRange::WHOLE),
    ]
}

fn token_strategy() -> impl Strategy<Value = Token> {
    (1u64..3, 0u32..3, types_strategy(), range_strategy()).prop_map(|(vol, vn, types, range)| {
        Token {
            id: TokenId(1),
            fid: Fid::new(VolumeId(vol), VnodeId(vn), 1),
            types,
            range,
        }
    })
}

proptest! {
    #[test]
    fn compatibility_is_symmetric(a in token_strategy(), b in token_strategy()) {
        prop_assert_eq!(compatible(&a, &b), compatible(&b, &a));
    }

    #[test]
    fn conflict_bits_subset_of_held(a in token_strategy(), b in token_strategy()) {
        let bits = conflict_bits(&a, &b);
        prop_assert!(a.types.contains(bits), "conflict bits must come from the held token");
    }

    #[test]
    fn stripping_conflicts_restores_compatibility(a in token_strategy(), b in token_strategy()) {
        // The partial-revocation invariant: after removing exactly the
        // conflicting bits from each side, the tokens coexist.
        let mut a2 = a.clone();
        a2.types = a2.types.minus(conflict_bits(&a, &b));
        let mut b2 = b.clone();
        b2.types = b2.types.minus(conflict_bits(&b, &a2));
        prop_assert!(
            compatible(&a2, &b2),
            "a2={:?} b2={:?} still conflict",
            a2.types,
            b2.types
        );
    }

    #[test]
    fn different_files_never_conflict(a in token_strategy(), b in token_strategy()) {
        if a.fid != b.fid
            && a.fid.vnode.0 != 0
            && b.fid.vnode.0 != 0
        {
            prop_assert!(compatible(&a, &b));
        }
    }

    #[test]
    fn disjoint_ranges_never_conflict_on_data_or_locks(
        base in 0u64..1000,
        la in 1u64..100,
        lb in 1u64..100,
        ta in types_strategy(),
        tb in types_strategy(),
    ) {
        // Strip status and open bits (those ignore ranges).
        let rangey = TokenTypes(
            TokenTypes::DATA_READ.0
                | TokenTypes::DATA_WRITE.0
                | TokenTypes::LOCK_READ.0
                | TokenTypes::LOCK_WRITE.0,
        );
        let fid = Fid::new(VolumeId(1), VnodeId(1), 1);
        let a = Token {
            id: TokenId(1),
            fid,
            types: TokenTypes(ta.0 & rangey.0),
            range: ByteRange::new(base, base + la),
        };
        let b = Token {
            id: TokenId(2),
            fid,
            types: TokenTypes(tb.0 & rangey.0),
            range: ByteRange::new(base + la, base + la + lb),
        };
        prop_assert!(compatible(&a, &b), "disjoint byte ranges must coexist (§5.4)");
    }

    #[test]
    fn pure_readers_never_conflict(ra in range_strategy(), rb in range_strategy()) {
        let readers = TokenTypes(
            TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0 | TokenTypes::LOCK_READ.0,
        );
        let fid = Fid::new(VolumeId(1), VnodeId(1), 1);
        let a = Token { id: TokenId(1), fid, types: readers, range: ra };
        let b = Token { id: TokenId(2), fid, types: readers, range: rb };
        prop_assert!(compatible(&a, &b));
    }

    #[test]
    fn volume_token_conflicts_dominate_file_tokens(t in token_strategy()) {
        // A whole-volume writer conflicts with any same-volume token
        // that a whole-file writer would conflict with.
        let writer_types = TokenTypes(TokenTypes::DATA_WRITE.0 | TokenTypes::STATUS_WRITE.0);
        let vol_tok = Token {
            id: TokenId(9),
            fid: Fid::new(t.fid.volume, VnodeId(0), 0),
            types: writer_types,
            range: ByteRange::WHOLE,
        };
        let file_tok = Token {
            id: TokenId(10),
            fid: t.fid,
            types: writer_types,
            range: ByteRange::WHOLE,
        };
        if t.fid.vnode.0 != 0 && !compatible(&file_tok, &t) {
            prop_assert!(
                !compatible(&vol_tok, &t),
                "volume token must conflict at least as much as a file token"
            );
        }
    }
}

/// Host that answers Retained for lock-write tokens (modelling a client
/// with live file locks, §5.3) and Returned for everything else, so a
/// script exercises both grant-success and grant-failure paths.
struct ScriptHost {
    id: HostId,
    revoked: AtomicUsize,
}

impl ScriptHost {
    fn new(n: u32) -> Arc<ScriptHost> {
        Arc::new(ScriptHost { id: HostId::Client(ClientId(n)), revoked: AtomicUsize::new(0) })
    }
}

impl TokenHost for ScriptHost {
    fn host_id(&self) -> HostId {
        self.id
    }

    fn revoke(
        &self,
        token: &Token,
        _types: TokenTypes,
        _stamp: SerializationStamp,
    ) -> RevokeResult {
        self.revoked.fetch_add(1, Ordering::SeqCst);
        if token.types.contains(TokenTypes::LOCK_WRITE) {
            RevokeResult::Retained
        } else {
            RevokeResult::Returned
        }
    }
}

/// One scripted op: `(host, vnode, kind, range)`. kind 0..4 grants one
/// of four type mixes; kind 4 releases the host's grants on the fid.
type Op = (u32, u32, usize, usize);

const OP_TYPES: [TokenTypes; 4] = [
    TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0),
    TokenTypes(TokenTypes::DATA_WRITE.0 | TokenTypes::STATUS_WRITE.0),
    TokenTypes(TokenTypes::LOCK_WRITE.0),
    TokenTypes(TokenTypes::DATA_READ.0),
];

fn script_fid(vnode: u32) -> Fid {
    Fid::new(VolumeId(1), VnodeId(vnode), if vnode == 0 { 0 } else { 1 })
}

/// Runs `ops` against a manager with `shards` shards and returns every
/// observable: per-op grant outcomes, per-host revocation counts, and
/// the final (host, types, range) token set per fid.
fn run_script(shards: usize, ops: &[Op]) -> (Vec<bool>, Vec<usize>, Vec<Vec<(HostId, u32, ByteRange)>>) {
    let tm = TokenManager::with_shards(shards);
    let hosts: Vec<Arc<ScriptHost>> = (0..3).map(ScriptHost::new).collect();
    for h in &hosts {
        tm.register_host(h.clone());
    }
    let ranges = [ByteRange::WHOLE, ByteRange::new(0, 4096), ByteRange::new(4096, 8192)];
    let mut outcomes = Vec::with_capacity(ops.len());
    for &(host, vnode, kind, range) in ops {
        let id = hosts[host as usize % hosts.len()].id;
        let fid = script_fid(vnode % 6);
        if kind % 5 == 4 {
            tm.release_fid(id, fid);
            outcomes.push(true);
        } else {
            let granted =
                tm.grant(id, fid, OP_TYPES[kind % 4], ranges[range % ranges.len()]).is_ok();
            outcomes.push(granted);
        }
    }
    let revoked = hosts.iter().map(|h| h.revoked.load(Ordering::SeqCst)).collect();
    let state = (0..6)
        .map(|v| {
            let mut on: Vec<_> = tm
                .tokens_on(script_fid(v))
                .into_iter()
                .map(|(h, t)| (h, t.types.0, t.range))
                .collect();
            on.sort_by_key(|(h, ty, r)| (format!("{h:?}"), *ty, r.start, r.end));
            on
        })
        .collect();
    (outcomes, revoked, state)
}

proptest! {
    #[test]
    fn sharding_is_observationally_transparent(
        ops in proptest::collection::vec((0u32..3, 0u32..6, 0usize..5, 0usize..3), 1..40),
        shards in 2usize..9,
    ) {
        // Volume tokens (vnode 0), colliding fids, retained locks,
        // releases — whatever the script does, shard count must not
        // change a grant outcome or the final token state.
        let (flat_out, flat_rev, flat_state) = run_script(1, &ops);
        let (shard_out, shard_rev, shard_state) = run_script(shards, &ops);
        prop_assert_eq!(flat_out, shard_out);
        prop_assert_eq!(flat_state, shard_state);
        // Per-host revocation-callback counts are only pinned when no
        // host can retain: a Retained answer aborts the remaining
        // revocations (§5.3), and *which* victims were already revoked
        // before the abort follows conflict-scan order, which sharding
        // legitimately permutes.
        if ops.iter().all(|&(_, _, kind, _)| kind % 5 != 2) {
            prop_assert_eq!(
                flat_rev,
                shard_rev,
                "without retained locks every conflict is revoked exactly once"
            );
        }
    }
}
