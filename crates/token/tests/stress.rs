//! Multithreaded stress test for the token manager's locking discipline.
//!
//! Four client hosts and a replicator hammer concurrent grants (forcing
//! constant cross-host revocation), voluntary releases, and host
//! churn, all with the debug-build rank enforcer active. The test
//! asserts the §5.1 invariant directly: every revocation callback must
//! run with an empty held-rank stack — the token manager may not hold
//! any of its own locks while calling out to a host.

use dfs_token::{RevokeResult, Token, TokenHost, TokenManager, TokenTypes};
use dfs_types::lock::held_ranks;
use dfs_types::{ByteRange, ClientId, Fid, HostId, SerializationStamp, VnodeId, VolumeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct StressHost {
    id: HostId,
    revocations: AtomicUsize,
    /// Rank stacks observed non-empty inside a revocation callback,
    /// with the offending stack (must stay empty).
    violations: Mutex<Vec<Vec<u16>>>,
}

impl StressHost {
    fn new(n: u32) -> Arc<StressHost> {
        Arc::new(StressHost {
            id: HostId::Client(ClientId(n)),
            revocations: AtomicUsize::new(0),
            violations: Mutex::new(Vec::new()),
        })
    }
}

impl TokenHost for StressHost {
    fn host_id(&self) -> HostId {
        self.id
    }

    fn revoke(
        &self,
        _token: &Token,
        _types: TokenTypes,
        _stamp: SerializationStamp,
    ) -> RevokeResult {
        // §5.1/§6.4: the manager calls revoke outside its own locks, so
        // the calling thread must hold no ranked lock here.
        let held = held_ranks();
        if !held.is_empty() {
            self.violations.lock().unwrap().push(held);
        }
        self.revocations.fetch_add(1, Ordering::SeqCst);
        RevokeResult::Returned
    }
}

fn fid(n: u32) -> Fid {
    Fid::new(VolumeId(1), VnodeId(n), 1)
}

#[test]
fn concurrent_grant_revoke_respects_lock_hierarchy() {
    const HOSTS: u32 = 4;
    const ROUNDS: u32 = 200;
    const FILES: u32 = 3;

    let tm = Arc::new(TokenManager::new());
    let hosts: Vec<Arc<StressHost>> = (0..HOSTS).map(StressHost::new).collect();
    for h in &hosts {
        tm.register_host(h.clone());
    }

    let threads: Vec<_> = hosts
        .iter()
        .map(|h| {
            let tm = tm.clone();
            let id = h.id;
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    // Alternate write grants (conflict with everyone) and
                    // ranged grants (conflict with overlapping writers).
                    let f = fid(i % FILES);
                    let result = if i % 2 == 0 {
                        tm.grant(id, f, TokenTypes::DATA_WRITE, ByteRange::WHOLE)
                    } else {
                        tm.grant(
                            id,
                            f,
                            TokenTypes::DATA_READ | TokenTypes::STATUS_READ,
                            ByteRange::new(u64::from(i) * 64, u64::from(i) * 64 + 128),
                        )
                    };
                    if let Ok((token, _stamp)) = result {
                        if i % 5 == 0 {
                            tm.release(id, token.id);
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no stress thread may panic (rank enforcer is live)");
    }

    let total: usize = hosts.iter().map(|h| h.revocations.load(Ordering::SeqCst)).sum();
    assert!(total > 0, "conflicting write grants must have forced revocations");
    for h in &hosts {
        let violations = h.violations.lock().unwrap();
        assert!(
            violations.is_empty(),
            "revocation callback for {:?} observed held ranks: {violations:?}",
            h.id
        );
    }
    assert!(tm.stats().grants >= u64::from(HOSTS * ROUNDS) / 2);
    assert_eq!(tm.stats().revocations, total as u64);
}

#[test]
fn host_churn_under_load_does_not_deadlock() {
    let tm = Arc::new(TokenManager::new());
    let stable: Vec<Arc<StressHost>> = (0..4).map(StressHost::new).collect();
    for h in &stable {
        tm.register_host(h.clone());
    }

    let granters: Vec<_> = stable
        .iter()
        .map(|h| {
            let tm = tm.clone();
            let id = h.id;
            std::thread::spawn(move || {
                for i in 0..100u32 {
                    let _ = tm.grant(id, fid(i % 2), TokenTypes::DATA_WRITE, ByteRange::WHOLE);
                }
            })
        })
        .collect();
    // A churner repeatedly registers and removes a fifth host, so grant
    // loops race against host-table mutation.
    let churner = {
        std::thread::spawn(move || {
            for _ in 0..50 {
                let extra = StressHost::new(99);
                tm.register_host(extra.clone());
                let _ = tm.grant(extra.id, fid(0), TokenTypes::DATA_READ, ByteRange::WHOLE);
                tm.unregister_host(extra.id);
            }
        })
    };
    for t in granters {
        t.join().unwrap();
    }
    churner.join().unwrap();
    for h in &stable {
        assert!(h.violations.lock().unwrap().is_empty());
    }
}
