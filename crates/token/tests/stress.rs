//! Multithreaded stress test for the token manager's locking discipline.
//!
//! Four client hosts and a replicator hammer concurrent grants (forcing
//! constant cross-host revocation), voluntary releases, and host
//! churn, all with the debug-build rank enforcer active. The test
//! asserts the §5.1 invariant directly: every revocation callback must
//! run with an empty held-rank stack — the token manager may not hold
//! any of its own locks while calling out to a host.

use dfs_token::{RevokeResult, Token, TokenHost, TokenManager, TokenTypes};
use dfs_types::lock::held_ranks;
use dfs_types::{ByteRange, ClientId, Fid, HostId, SerializationStamp, VnodeId, VolumeId};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct StressHost {
    id: HostId,
    revocations: AtomicUsize,
    /// Rank stacks observed non-empty inside a revocation callback,
    /// with the offending stack (must stay empty).
    violations: Mutex<Vec<Vec<u16>>>,
}

impl StressHost {
    fn new(n: u32) -> Arc<StressHost> {
        Arc::new(StressHost {
            id: HostId::Client(ClientId(n)),
            revocations: AtomicUsize::new(0),
            violations: Mutex::new(Vec::new()),
        })
    }
}

impl TokenHost for StressHost {
    fn host_id(&self) -> HostId {
        self.id
    }

    fn revoke(
        &self,
        _token: &Token,
        _types: TokenTypes,
        _stamp: SerializationStamp,
    ) -> RevokeResult {
        // §5.1/§6.4: the manager calls revoke outside its own locks, so
        // the calling thread must hold no ranked lock here.
        let held = held_ranks();
        if !held.is_empty() {
            self.violations.lock().unwrap().push(held);
        }
        self.revocations.fetch_add(1, Ordering::SeqCst);
        RevokeResult::Returned
    }
}

fn fid(n: u32) -> Fid {
    Fid::new(VolumeId(1), VnodeId(n), 1)
}

#[test]
fn concurrent_grant_revoke_respects_lock_hierarchy() {
    const HOSTS: u32 = 4;
    const ROUNDS: u32 = 200;
    const FILES: u32 = 3;

    let tm = Arc::new(TokenManager::new());
    let hosts: Vec<Arc<StressHost>> = (0..HOSTS).map(StressHost::new).collect();
    for h in &hosts {
        tm.register_host(h.clone());
    }

    let threads: Vec<_> = hosts
        .iter()
        .map(|h| {
            let tm = tm.clone();
            let id = h.id;
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    // Alternate write grants (conflict with everyone) and
                    // ranged grants (conflict with overlapping writers).
                    let f = fid(i % FILES);
                    let result = if i % 2 == 0 {
                        tm.grant(id, f, TokenTypes::DATA_WRITE, ByteRange::WHOLE)
                    } else {
                        tm.grant(
                            id,
                            f,
                            TokenTypes::DATA_READ | TokenTypes::STATUS_READ,
                            ByteRange::new(u64::from(i) * 64, u64::from(i) * 64 + 128),
                        )
                    };
                    if let Ok((token, _stamp)) = result {
                        if i % 5 == 0 {
                            tm.release(id, token.id);
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no stress thread may panic (rank enforcer is live)");
    }

    let total: usize = hosts.iter().map(|h| h.revocations.load(Ordering::SeqCst)).sum();
    assert!(total > 0, "conflicting write grants must have forced revocations");
    for h in &hosts {
        let violations = h.violations.lock().unwrap();
        assert!(
            violations.is_empty(),
            "revocation callback for {:?} observed held ranks: {violations:?}",
            h.id
        );
    }
    assert!(tm.stats().grants >= u64::from(HOSTS * ROUNDS) / 2);
    assert_eq!(tm.stats().revocations, total as u64);
}

#[test]
fn host_churn_under_load_does_not_deadlock() {
    let tm = Arc::new(TokenManager::new());
    let stable: Vec<Arc<StressHost>> = (0..4).map(StressHost::new).collect();
    for h in &stable {
        tm.register_host(h.clone());
    }

    let granters: Vec<_> = stable
        .iter()
        .map(|h| {
            let tm = tm.clone();
            let id = h.id;
            std::thread::spawn(move || {
                for i in 0..100u32 {
                    let _ = tm.grant(id, fid(i % 2), TokenTypes::DATA_WRITE, ByteRange::WHOLE);
                }
            })
        })
        .collect();
    // A churner repeatedly registers and removes a fifth host, so grant
    // loops race against host-table mutation.
    let churner = {
        std::thread::spawn(move || {
            for _ in 0..50 {
                let extra = StressHost::new(99);
                tm.register_host(extra.clone());
                let _ = tm.grant(extra.id, fid(0), TokenTypes::DATA_READ, ByteRange::WHOLE);
                tm.unregister_host(extra.id);
            }
        })
    };
    for t in granters {
        t.join().unwrap();
    }
    churner.join().unwrap();
    for h in &stable {
        assert!(h.violations.lock().unwrap().is_empty());
    }
}

/// A whole-volume (vnode-0) write token conflicts with file tokens in
/// every shard, so granting it drives the cross-shard lock_all path and
/// batched per-host revocations while readers keep re-granting. The
/// manager honors `DFS_TOKEN_SHARDS`, so verify.sh runs this at shard
/// counts 1 and 4.
#[test]
fn whole_volume_revocation_spans_shards_under_load() {
    let tm = Arc::new(TokenManager::new());
    let hosts: Vec<Arc<StressHost>> = (0..4).map(StressHost::new).collect();
    for h in &hosts {
        tm.register_host(h.clone());
    }
    if tm.shard_count() > 1 {
        let shards_hit: std::collections::BTreeSet<usize> =
            (1..64).map(|v| tm.shard_of(fid(v))).collect();
        assert!(shards_hit.len() >= 3, "file fids must spread across shards");
    }

    let readers: Vec<_> = hosts[1..]
        .iter()
        .map(|h| {
            let tm = tm.clone();
            let id = h.id;
            std::thread::spawn(move || {
                for i in 0..150u32 {
                    let _ = tm.grant(
                        id,
                        fid(1 + i % 48),
                        TokenTypes::DATA_READ | TokenTypes::STATUS_READ,
                        ByteRange::WHOLE,
                    );
                }
            })
        })
        .collect();
    let writer = {
        let tm = tm.clone();
        let id = hosts[0].id;
        std::thread::spawn(move || {
            let vol = Fid::new(VolumeId(1), VnodeId(0), 0);
            for _ in 0..40 {
                if let Ok((t, _)) = tm.grant(
                    id,
                    vol,
                    TokenTypes::DATA_WRITE | TokenTypes::STATUS_WRITE,
                    ByteRange::WHOLE,
                ) {
                    tm.release(id, t.id);
                }
            }
        })
    };
    for t in readers {
        t.join().expect("reader threads must survive the volume-token storms");
    }
    writer.join().expect("volume-token writer must not deadlock across shards");

    for h in &hosts {
        assert!(
            h.violations.lock().unwrap().is_empty(),
            "batched volume revocations must run with no manager locks held"
        );
    }
    let total: usize = hosts.iter().map(|h| h.revocations.load(Ordering::SeqCst)).sum();
    assert!(total > 0, "whole-volume writes must have revoked file readers");

    // Quiesced: one more volume write grant must strip every
    // conflicting read bit from the other hosts, in every shard.
    let vol = Fid::new(VolumeId(1), VnodeId(0), 0);
    tm.grant(
        hosts[0].id,
        vol,
        TokenTypes::DATA_WRITE | TokenTypes::STATUS_WRITE,
        ByteRange::WHOLE,
    )
    .expect("final volume grant must succeed (all revocations returned)");
    let readers_mask = TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0);
    for v in 1..49 {
        for (h, t) in tm.tokens_on(fid(v)) {
            assert!(
                h == hosts[0].id || !t.types.intersects(readers_mask),
                "shard {} kept a stale read grant for {h:?}: {t:?}",
                tm.shard_of(fid(v))
            );
        }
    }
}

/// Exactly-once revocation whether the conflicting fids collide into
/// one shard or spread across several: each held token is revoked once,
/// and the per-fid state ends identical either way.
#[test]
fn colliding_and_distinct_fids_revoke_exactly_once() {
    let tm = TokenManager::with_shards(4);
    let holder = StressHost::new(1);
    let writer = StressHost::new(2);
    tm.register_host(holder.clone());
    tm.register_host(writer.clone());

    // One pair of fids that hash to the same shard, plus one that
    // lands elsewhere.
    let s0 = tm.shard_of(fid(1));
    let colliding = (2..200)
        .find(|&v| tm.shard_of(fid(v)) == s0)
        .expect("some fid must collide with shard of fid(1)");
    let distinct = (2..200)
        .find(|&v| tm.shard_of(fid(v)) != s0)
        .expect("some fid must land on another shard");
    let files = [1, colliding, distinct];

    for v in files {
        tm.grant(holder.id, fid(v), TokenTypes::DATA_READ, ByteRange::WHOLE).unwrap();
    }
    for v in files {
        tm.grant(writer.id, fid(v), TokenTypes::DATA_WRITE, ByteRange::WHOLE).unwrap();
    }

    assert_eq!(
        holder.revocations.load(Ordering::SeqCst),
        files.len(),
        "each read token must be revoked exactly once, colliding or not"
    );
    assert_eq!(tm.stats().revocations, files.len() as u64);
    for v in files {
        let on = tm.tokens_on(fid(v));
        assert_eq!(on.len(), 1, "only the writer's token may remain on fid({v})");
        assert_eq!(on[0].0, writer.id);
    }
    assert!(holder.violations.lock().unwrap().is_empty());
}
