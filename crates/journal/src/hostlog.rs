//! The host journal: durable host/lease/epoch state for §3.5 recovery.
//!
//! The recovery protocol needs three facts to survive a whole-machine
//! loss (process *and* memory), not just a service restart:
//!
//! * which clients were recently alive (`last_seen`),
//! * which of them held tokens (`holding`) — the restart grace window
//!   admits exactly these hosts for reestablishment,
//! * the server's restart epoch, so the successor can stamp a higher
//!   one without asking the dying instance.
//!
//! The log is a small ring of [`crate::logfmt`] blocks, reusing the
//! episode log's framing (magic + monotone sequence + FNV checksum) so
//! torn writes self-invalidate. Appends rewrite the current tail block
//! in place under a fresh sequence number until it fills; replay folds
//! records in sequence order, newest per client wins. On every lap of
//! the ring a compaction snapshot (a [`Record::HostBarrier`] followed
//! by the full live state) is written first, so overwriting the
//! previous lap's blocks never loses live facts.
//!
//! Writes are synchronous (`write_sync`): a lease fact is durable when
//! the append returns. Callers therefore batch — the server journals
//! coarse lease refreshes and holder transitions, never per-RPC.

use crate::logfmt::{decode_block, encode_block, Record, LOG_PAYLOAD};
use dfs_disk::SimDisk;
use dfs_types::{DfsError, DfsResult};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Where a host log lives on its disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HostLogRegion {
    /// First block of the ring.
    pub first_block: u32,
    /// Ring size in blocks; must be at least 4.
    pub blocks: u32,
}

/// What host-log replay recovered.
#[derive(Clone, Debug, Default)]
pub struct HostLogReplay {
    /// client id → (last_seen µs, held tokens at last journaling).
    pub hosts: HashMap<u32, (u64, bool)>,
    /// Highest server epoch ever journaled (0 = never).
    pub epoch: u64,
    /// Ring blocks scanned.
    pub scanned_blocks: u64,
    /// Records folded.
    pub records: u64,
}

struct Tail {
    /// Ring position (0-based, relative to `first_block`) being filled.
    pos: u32,
    /// Payload bytes already in the tail block.
    payload: Vec<u8>,
    /// Next sequence number to stamp on a written block.
    next_seq: u64,
    /// Ring positions written since the last snapshot (or open).
    lap_used: u32,
    /// Mirror of the durable state, for compaction snapshots.
    live: HashMap<u32, (u64, bool)>,
    /// Mirror of the durable epoch.
    epoch: u64,
}

/// The host journal. All methods are internally synchronized.
pub struct HostLog {
    disk: SimDisk,
    region: HostLogRegion,
    tail: Mutex<Tail>,
}

impl HostLog {
    /// Opens (or implicitly initializes) the host log in `region`,
    /// replaying whatever survived. A never-written region replays
    /// empty — there is no separate format step.
    pub fn open(disk: SimDisk, region: HostLogRegion) -> DfsResult<(HostLog, HostLogReplay)> {
        if region.blocks < 4 {
            return Err(DfsError::InvalidArgument);
        }
        let (replay, max_seq, max_pos) = Self::scan(&disk, region)?;
        let log = HostLog {
            disk,
            region,
            tail: Mutex::new(Tail {
                // Resume on the block after the newest survivor; its
                // in-place tail bytes are already folded into `live`.
                pos: max_seq.map_or(0, |_| (max_pos + 1) % region.blocks),
                payload: Vec::new(),
                next_seq: max_seq.map_or(1, |s| s + 1),
                lap_used: 0,
                live: replay.hosts.clone(),
                epoch: replay.epoch,
            }),
        };
        Ok((log, replay))
    }

    /// Replays a region without opening it for writing (the restart
    /// path peeks before deciding how to seed recovery).
    pub fn replay(disk: &SimDisk, region: HostLogRegion) -> DfsResult<HostLogReplay> {
        Ok(Self::scan(disk, region)?.0)
    }

    fn scan(
        disk: &SimDisk,
        region: HostLogRegion,
    ) -> DfsResult<(HostLogReplay, Option<u64>, u32)> {
        // Collect every valid block, then fold in sequence order:
        // within the ring, a higher sequence is strictly newer.
        let mut blocks: Vec<(u64, u32, Vec<u8>)> = Vec::new();
        let mut scanned = 0u64;
        for pos in 0..region.blocks {
            scanned += 1;
            let data = disk.read(region.first_block + pos)?;
            if let Some((seq, payload)) = decode_block(&data) {
                blocks.push((seq, pos, payload.to_vec()));
            }
        }
        blocks.sort_by_key(|(seq, ..)| *seq);

        // A barrier supersedes everything before it: the snapshot that
        // follows carries the full live state.
        let mut barrier_seq = 0u64;
        for (seq, _, payload) in &blocks {
            let mut p = 0;
            while let Some((rec, next)) = Record::decode(payload, p) {
                if rec == Record::HostBarrier {
                    barrier_seq = barrier_seq.max(*seq);
                }
                p = next;
            }
        }

        let mut replay = HostLogReplay { scanned_blocks: scanned, ..Default::default() };
        let (mut max_seq, mut max_pos) = (None, 0u32);
        for (seq, pos, payload) in &blocks {
            max_seq = Some(*seq);
            max_pos = *pos;
            if *seq < barrier_seq {
                continue;
            }
            let mut p = 0;
            while let Some((rec, next)) = Record::decode(payload, p) {
                p = next;
                match rec {
                    Record::HostLease { client, last_seen, holding } => {
                        replay.records += 1;
                        let e = replay.hosts.entry(client).or_insert((0, false));
                        // Sequence order already sorts laps; within a
                        // block records are chronological, so a plain
                        // overwrite keeps the newest fact.
                        *e = (e.0.max(last_seen), holding);
                    }
                    Record::ServerEpoch { epoch } => {
                        replay.records += 1;
                        replay.epoch = replay.epoch.max(epoch);
                    }
                    Record::HostBarrier => replay.records += 1,
                    _ => {}
                }
            }
        }
        Ok((replay, max_seq, max_pos))
    }

    /// Journals a lease fact. Durable on return.
    pub fn record_lease(&self, client: u32, last_seen: u64, holding: bool) -> DfsResult<()> {
        let mut tail = self.tail.lock();
        // The mirror folds exactly like replay does (monotone
        // last_seen, newest holding), so a compaction snapshot can
        // never disagree with what a full-ring replay would say.
        let e = tail.live.entry(client).or_insert((0, false));
        *e = (e.0.max(last_seen), holding);
        self.append(&mut tail, &[Record::HostLease { client, last_seen, holding }])
    }

    /// Journals the server epoch. Durable on return.
    pub fn record_epoch(&self, epoch: u64) -> DfsResult<()> {
        let mut tail = self.tail.lock();
        tail.epoch = tail.epoch.max(epoch);
        self.append(&mut tail, &[Record::ServerEpoch { epoch }])
    }

    /// The newest journaled fact for `client`, if any.
    pub fn lease_of(&self, client: u32) -> Option<(u64, bool)> {
        self.tail.lock().live.get(&client).copied()
    }

    fn append(&self, tail: &mut Tail, records: &[Record]) -> DfsResult<()> {
        for rec in records {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert!(buf.len() <= LOG_PAYLOAD, "host record exceeds a block");
            if tail.payload.len() + buf.len() > LOG_PAYLOAD {
                self.advance(tail)?;
            }
            tail.payload.extend_from_slice(&buf);
            self.write_tail(tail)?;
        }
        Ok(())
    }

    /// Seals the tail block and moves to the next ring position,
    /// compacting (snapshot after a barrier) when a lap completes.
    fn advance(&self, tail: &mut Tail) -> DfsResult<()> {
        tail.pos = (tail.pos + 1) % self.region.blocks;
        tail.payload.clear();
        tail.lap_used += 1;
        if tail.lap_used >= self.region.blocks - 1 {
            tail.lap_used = 0;
            self.snapshot(tail)?;
        }
        Ok(())
    }

    /// Writes the full live state behind a barrier, so the blocks of
    /// the previous lap may be overwritten without losing facts.
    fn snapshot(&self, tail: &mut Tail) -> DfsResult<()> {
        let mut records = vec![Record::HostBarrier, Record::ServerEpoch { epoch: tail.epoch }];
        let live: Vec<(u32, (u64, bool))> = tail.live.iter().map(|(c, s)| (*c, *s)).collect();
        for (client, (last_seen, holding)) in live {
            records.push(Record::HostLease { client, last_seen, holding });
        }
        let per_block = LOG_PAYLOAD / (1 + 4 + 8 + 1);
        if records.len().div_ceil(per_block) as u32 >= self.region.blocks - 1 {
            return Err(DfsError::LogFull); // Snapshot would eat the whole ring.
        }
        for rec in records {
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            if tail.payload.len() + buf.len() > LOG_PAYLOAD {
                // Plain advance: a snapshot never re-triggers itself —
                // the size guard above keeps it inside one lap.
                tail.pos = (tail.pos + 1) % self.region.blocks;
                tail.payload.clear();
                tail.lap_used += 1;
            }
            tail.payload.extend_from_slice(&buf);
        }
        self.write_tail(tail)
    }

    fn write_tail(&self, tail: &mut Tail) -> DfsResult<()> {
        let mut payload = tail.payload.clone();
        payload.resize(LOG_PAYLOAD, 0); // Zero fill decodes as skip bytes.
        let block = encode_block(tail.next_seq, &payload);
        tail.next_seq += 1;
        self.disk.write_sync(self.region.first_block + tail.pos, &block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_disk::DiskConfig;

    fn fresh(blocks: u32) -> (SimDisk, HostLogRegion) {
        let disk = SimDisk::new(DiskConfig::with_blocks(blocks + 8));
        (disk, HostLogRegion { first_block: 2, blocks })
    }

    #[test]
    fn empty_region_replays_empty() {
        let (disk, region) = fresh(8);
        let (_log, replay) = HostLog::open(disk, region).unwrap();
        assert!(replay.hosts.is_empty());
        assert_eq!(replay.epoch, 0);
    }

    #[test]
    fn facts_survive_crash_and_reopen() {
        let (disk, region) = fresh(8);
        {
            let (log, _) = HostLog::open(disk.clone(), region).unwrap();
            log.record_epoch(3).unwrap();
            log.record_lease(7, 1_000, true).unwrap();
            log.record_lease(8, 2_000, false).unwrap();
            log.record_lease(7, 5_000, true).unwrap();
        }
        disk.crash(None);
        disk.power_on();
        let replay = HostLog::replay(&disk, region).unwrap();
        assert_eq!(replay.epoch, 3);
        assert_eq!(replay.hosts[&7], (5_000, true), "newest fact per client wins");
        assert_eq!(replay.hosts[&8], (2_000, false));
    }

    #[test]
    fn ring_wrap_compacts_without_losing_live_state() {
        let (disk, region) = fresh(4);
        let (log, _) = HostLog::open(disk.clone(), region).unwrap();
        log.record_epoch(2).unwrap();
        // Far more appends than the ring holds raw: laps force
        // snapshots, and the oldest client's fact must still survive.
        log.record_lease(1, 10, true).unwrap();
        for i in 0..4_000u64 {
            log.record_lease(2 + (i % 8) as u32, 100 + i, i % 2 == 0).unwrap();
        }
        let replay = HostLog::replay(&disk, region).unwrap();
        assert_eq!(replay.epoch, 2);
        assert_eq!(replay.hosts[&1], (10, true), "client 1 survived every lap via snapshots");
        for c in 2..10u32 {
            assert!(replay.hosts.contains_key(&c));
        }
    }

    #[test]
    fn reopen_continues_the_sequence() {
        let (disk, region) = fresh(8);
        {
            let (log, _) = HostLog::open(disk.clone(), region).unwrap();
            log.record_lease(1, 100, true).unwrap();
        }
        {
            let (log, replay) = HostLog::open(disk.clone(), region).unwrap();
            assert_eq!(replay.hosts[&1], (100, true));
            log.record_lease(1, 200, false).unwrap();
        }
        let replay = HostLog::replay(&disk, region).unwrap();
        assert_eq!(replay.hosts[&1], (200, false), "the second generation won");
    }

    #[test]
    fn torn_tail_block_is_ignored() {
        let (disk, region) = fresh(8);
        let (log, _) = HostLog::open(disk.clone(), region).unwrap();
        log.record_lease(1, 100, true).unwrap();
        log.record_lease(2, 200, true).unwrap();
        // Corrupt the tail block (both facts are in it): replay must
        // treat it as never written rather than half-trust it.
        let mut raw = *disk.read(region.first_block).unwrap();
        raw[100] ^= 0xFF;
        disk.write_sync(region.first_block, &raw).unwrap();
        let replay = HostLog::replay(&disk, region).unwrap();
        assert!(replay.hosts.is_empty(), "a torn block yields nothing, not garbage");
    }
}
