//! Buffer package and write-ahead logging system for Episode (§2.2).
//!
//! "The logging system is intricately entwined with the disk buffer
//! cache" — so this crate implements both as one [`Journal`] object:
//!
//! * a **buffer cache** whose frames can only be modified through logging
//!   primitives ([`Journal::update`]), never directly;
//! * a **write-ahead log**: byte-level old/new value records grouped into
//!   transactions, with commit records, group commit ([`Journal::sync`]),
//!   and a fixed-size circular on-disk log;
//! * **equivalence classes**: transactions that modify the same buffer
//!   are merged and commit atomically, which is how serializability of
//!   "A used data modified by B" (§2.2) is guaranteed;
//! * **recovery** that replays the active portion of the log — redoing
//!   committed transactions and undoing uncommitted ones — in time
//!   proportional to the active log, not the file-system size.
//!
//! User data is *not* logged (§2.2): Episode writes file data blocks to
//! the disk directly, and only metadata flows through the journal.

pub mod frame;
pub mod hostlog;
pub mod logfmt;
pub mod stats;

pub use frame::BufHandle;
pub use hostlog::{HostLog, HostLogRegion, HostLogReplay};
pub use logfmt::{Lsn, Record};
pub use stats::{JournalStats, RecoveryReport};

use dfs_disk::{Block, SimDisk, BLOCK_SIZE};
use dfs_types::{DfsError, DfsResult};
use frame::{Frame, FrameCell};
use logfmt::{decode_block, encode_block, LOG_PAYLOAD};
use dfs_types::lock::{rank, OrderedMutex, OrderedMutexGuard};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Largest number of bytes a single update record may change.
///
/// Larger updates are transparently chunked by [`Journal::update`].
pub const MAX_UPDATE: usize = 2048;

/// The region of a disk occupied by a journal log.
///
/// `first_block` holds the log superblock; the remaining `blocks - 1`
/// blocks form the circular record stream. The paper notes the log "is
/// an area of disk, not necessarily contiguous, whose size is fixed at
/// aggregate initialization"; we use a contiguous range for simplicity —
/// nothing in the design depends on contiguity.
#[derive(Clone, Copy, Debug)]
pub struct LogRegion {
    /// Block number of the log superblock.
    pub first_block: u32,
    /// Total blocks including the superblock; must be at least 8.
    pub blocks: u32,
}

impl LogRegion {
    /// Returns the number of stream (non-superblock) blocks.
    pub fn stream_blocks(&self) -> u32 {
        self.blocks - 1
    }

    /// Maps a stream block index to its physical block number.
    pub fn physical(&self, stream_index: u64) -> u32 {
        self.first_block + 1 + (stream_index % self.stream_blocks() as u64) as u32
    }

    /// Usable capacity of the circular log in stream bytes.
    ///
    /// Two blocks of headroom keep the head from catching the tail.
    pub fn capacity_bytes(&self) -> u64 {
        (self.stream_blocks().saturating_sub(2)) as u64 * LOG_PAYLOAD as u64
    }
}

const SUPER_MAGIC: u32 = 0xEF150DE5;

/// A transaction identifier.
pub type TxnId = u64;

/// One parsed update record during recovery:
/// (transaction, block, offset, old bytes, new bytes).
type UpdateRec = (TxnId, u32, u16, Vec<u8>, Vec<u8>);

struct TxnState {
    /// Union-find parent for equivalence classes.
    parent: TxnId,
    first_lsn: Option<Lsn>,
    /// Updates made by this transaction, for CLR-style abort.
    undo: Vec<(u32, u16, Vec<u8>, Vec<u8>)>,
    /// Set once the owner has requested commit or abort.
    resolved: bool,
}

struct LogState {
    /// Next stream position to be assigned.
    head: Lsn,
    /// Stream position up to which the log is durable on disk.
    durable: Lsn,
    /// Oldest stream position recovery would need.
    tail: Lsn,
    /// Encoded records not yet written to disk (head - durable bytes).
    pending: Vec<u8>,
}

struct CacheState {
    frames: HashMap<u32, Arc<FrameCell>>,
    lru_clock: u64,
    capacity: usize,
}

struct TxnTable {
    next_id: TxnId,
    active: HashMap<TxnId, TxnState>,
}

impl TxnTable {
    fn find(&mut self, id: TxnId) -> Option<TxnId> {
        let mut root = id;
        loop {
            let p = self.active.get(&root)?.parent;
            if p == root {
                break;
            }
            root = p;
        }
        // Path compression.
        let mut cur = id;
        while cur != root {
            let st = self.active.get_mut(&cur).expect("walked above");
            let next = st.parent;
            st.parent = root;
            cur = next;
        }
        Some(root)
    }

    fn members_of(&mut self, root: TxnId) -> Vec<TxnId> {
        let ids: Vec<TxnId> = self.active.keys().copied().collect();
        ids.into_iter().filter(|&t| self.find(t) == Some(root)).collect()
    }
}

/// The combined buffer package and logging system.
///
/// A `Journal` owns a region of a [`SimDisk`] for its log and caches data
/// blocks from anywhere on that disk. It is internally synchronized;
/// share it with `Arc`.
///
/// # Examples
///
/// ```
/// use dfs_disk::{SimDisk, DiskConfig};
/// use dfs_journal::{Journal, LogRegion};
///
/// let disk = SimDisk::new(DiskConfig::with_blocks(1024));
/// let region = LogRegion { first_block: 1, blocks: 64 };
/// let journal = Journal::format(disk.clone(), region).unwrap();
///
/// let txn = journal.begin();
/// let buf = journal.get(100).unwrap();
/// journal.update(txn, &buf, 0, &[1, 2, 3]).unwrap();
/// journal.commit(txn).unwrap();
/// journal.sync().unwrap();
/// assert_eq!(buf.read_at(0, 3), vec![1, 2, 3]);
/// ```
pub struct Journal {
    disk: SimDisk,
    region: LogRegion,
    log: OrderedMutex<LogState, { rank::JOURNAL_LOG }>,
    cache: OrderedMutex<CacheState, { rank::JOURNAL_CACHE }>,
    txns: OrderedMutex<TxnTable, { rank::JOURNAL_TXNS }>,
    stats: OrderedMutex<JournalStats, { rank::STATS }>,
}

impl Journal {
    /// Formats a fresh, empty log in `region` and returns the journal.
    pub fn format(disk: SimDisk, region: LogRegion) -> DfsResult<Arc<Journal>> {
        assert!(region.blocks >= 8, "log region must have at least 8 blocks");
        let jn = Journal::with_state(disk, region, Lsn(0));
        jn.persist_superblock(Lsn(0))?;
        Ok(jn)
    }

    /// Opens a journal from disk, running crash recovery if needed.
    ///
    /// If the superblock is not a valid journal superblock, the region is
    /// formatted fresh (the report says so). Otherwise the active log is
    /// replayed: committed transactions are redone, uncommitted ones
    /// undone, and the data region is flushed before the journal returns.
    pub fn open(disk: SimDisk, region: LogRegion) -> DfsResult<(Arc<Journal>, RecoveryReport)> {
        assert!(region.blocks >= 8, "log region must have at least 8 blocks");
        let busy_before = disk.stats().busy_us;
        let tail = match Self::read_superblock(&disk, region)? {
            Some(tail) => tail,
            None => {
                let jn = Journal::format(disk, region)?;
                let report = RecoveryReport { formatted: true, ..Default::default() };
                return Ok((jn, report));
            }
        };
        let mut report = RecoveryReport::default();

        // Phase 1: scan the stream from the tail, collecting records.
        let mut stream = Vec::new();
        let mut index = tail.block_index();
        let mut scanned = 0u64;
        loop {
            let phys = region.physical(index);
            let data = disk.read(phys)?;
            match decode_block(&data) {
                Some((seq, payload)) if seq == index => {
                    stream.extend_from_slice(payload);
                    scanned += 1;
                    index += 1;
                    if scanned >= region.stream_blocks() as u64 {
                        break;
                    }
                }
                _ => break,
            }
        }
        report.scanned_blocks = scanned;

        // Parse records starting at the tail's offset within its block.
        let mut pos = tail.block_offset();
        let mut updates: Vec<UpdateRec> = Vec::new();
        let mut committed: HashSet<TxnId> = HashSet::new();
        let mut all_txns: HashSet<TxnId> = HashSet::new();
        let mut parsed_end = pos;
        while pos < stream.len() {
            match Record::decode(&stream, pos) {
                Some((rec, next)) => {
                    report.records += 1;
                    match rec {
                        Record::Update { txid, block, offset, old, new } => {
                            all_txns.insert(txid);
                            updates.push((txid, block, offset, old, new));
                        }
                        Record::Commit { txids } => {
                            committed.extend(txids);
                        }
                        // Host-journal records never appear in the
                        // episode log (they live in their own region);
                        // skip them if one ever does.
                        Record::Pad { .. }
                        | Record::Checkpoint { .. }
                        | Record::HostLease { .. }
                        | Record::HostBarrier
                        | Record::ServerEpoch { .. } => {}
                    }
                    pos = next;
                    parsed_end = next;
                }
                None => break, // Ragged end: a record cut off by the crash.
            }
        }

        // Phase 2: redo every update in log order (values are absolute,
        // so this is idempotent), then undo uncommitted ones in reverse.
        let mut blocks: BTreeMap<u32, Block> = BTreeMap::new();
        let load =
            |disk: &SimDisk, blocks: &mut BTreeMap<u32, Block>, b: u32| -> DfsResult<()> {
                if let std::collections::btree_map::Entry::Vacant(e) = blocks.entry(b) {
                    e.insert(disk.read(b)?);
                }
                Ok(())
            };
        for (_, block, offset, _, new) in &updates {
            load(&disk, &mut blocks, *block)?;
            let frame = blocks.get_mut(block).expect("loaded");
            frame[*offset as usize..*offset as usize + new.len()].copy_from_slice(new);
            report.updates_redone += 1;
        }
        for (txid, block, offset, old, _) in updates.iter().rev() {
            if committed.contains(txid) {
                continue;
            }
            load(&disk, &mut blocks, *block)?;
            let frame = blocks.get_mut(block).expect("loaded");
            frame[*offset as usize..*offset as usize + old.len()].copy_from_slice(old);
            report.updates_undone += 1;
        }
        for (b, data) in &blocks {
            disk.write(*b, data)?;
        }
        disk.flush()?;
        report.committed_txns = committed.len() as u64;
        report.uncommitted_txns = all_txns.difference(&committed).count() as u64;

        // Phase 3: seal the ragged end with padding so future appends and
        // scans see a clean block-aligned stream head.
        let stream_base = tail.block_index() * LOG_PAYLOAD as u64;
        let mut head = Lsn(stream_base + parsed_end as u64);
        if head.block_offset() != 0 {
            let pad = LOG_PAYLOAD - head.block_offset();
            let start = parsed_end - head.block_offset();
            let mut payload = stream[start..parsed_end].to_vec();
            Record::Pad { len: pad as u32 }.encode(&mut payload);
            payload.resize(LOG_PAYLOAD, 0);
            let phys = region.physical(head.block_index());
            let block = encode_block(head.block_index(), &payload);
            disk.write_sync(phys, &block)?;
            head = Lsn(head.0 + pad as u64);
        }

        let jn = Journal::with_state(disk, region, head);
        jn.persist_superblock(head)?;
        report.disk_busy_us = jn.disk.stats().busy_us - busy_before;
        Ok((jn, report))
    }

    fn with_state(disk: SimDisk, region: LogRegion, head: Lsn) -> Arc<Journal> {
        Arc::new(Journal {
            disk,
            region,
            log: OrderedMutex::new(LogState { head, durable: head, tail: head, pending: Vec::new() }),
            cache: OrderedMutex::new(CacheState { frames: HashMap::new(), lru_clock: 0, capacity: 1024 }),
            txns: OrderedMutex::new(TxnTable { next_id: 1, active: HashMap::new() }),
            stats: OrderedMutex::new(JournalStats::default()),
        })
    }

    /// Sets the buffer-cache capacity in frames (default 1024).
    pub fn set_cache_capacity(&self, frames: usize) {
        self.cache.lock().capacity = frames.max(8);
    }

    /// Returns the underlying disk handle.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Returns the log region this journal occupies.
    pub fn region(&self) -> LogRegion {
        self.region
    }

    /// Returns a snapshot of the journal statistics.
    pub fn stats(&self) -> JournalStats {
        self.stats.lock().clone()
    }

    fn read_superblock(disk: &SimDisk, region: LogRegion) -> DfsResult<Option<Lsn>> {
        let data = disk.read(region.first_block)?;
        let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
        if magic != SUPER_MAGIC {
            return Ok(None);
        }
        let tail = u64::from_le_bytes(data[4..12].try_into().unwrap());
        let sum = u32::from_le_bytes(data[12..16].try_into().unwrap());
        if logfmt::checksum(tail, &data[0..12]) != sum {
            return Ok(None);
        }
        Ok(Some(Lsn(tail)))
    }

    fn persist_superblock(&self, tail: Lsn) -> DfsResult<()> {
        let mut data = [0u8; BLOCK_SIZE];
        data[0..4].copy_from_slice(&SUPER_MAGIC.to_le_bytes());
        data[4..12].copy_from_slice(&tail.0.to_le_bytes());
        let sum = logfmt::checksum(tail.0, &data[0..12]);
        data[12..16].copy_from_slice(&sum.to_le_bytes());
        self.disk.write_sync(self.region.first_block, &data)
    }

    // ------------------------------------------------------------------
    // Buffer cache
    // ------------------------------------------------------------------

    /// Returns a pinned handle to `block`, reading it if not cached.
    pub fn get(&self, block: u32) -> DfsResult<BufHandle> {
        let mut cache = self.cache.lock();
        cache.lru_clock += 1;
        let clock = cache.lru_clock;
        if let Some(cell) = cache.frames.get(&block) {
            let cell = cell.clone();
            cell.state.lock().last_use = clock;
            self.stats.lock().cache_hits += 1;
            return Ok(BufHandle { cell });
        }
        self.stats.lock().cache_misses += 1;
        // Evict if at capacity; only unpinned frames are candidates.
        while cache.frames.len() >= cache.capacity {
            let victim = cache
                .frames
                .values()
                .filter(|c| Arc::strong_count(c) == 1)
                .min_by_key(|c| c.state.lock().last_use)
                .cloned();
            match victim {
                Some(cell) => {
                    self.writeback(&cell)?;
                    cache.frames.remove(&cell.block);
                }
                None => break, // Everything pinned; allow overshoot.
            }
        }
        let data = self.disk.read(block)?;
        let cell = Arc::new(FrameCell {
            block,
            state: OrderedMutex::new(Frame {
                data,
                dirty: false,
                first_lsn: None,
                last_lsn: Lsn(0),
                writer_class: None,
                last_use: clock,
                version: 0,
            }),
        });
        cache.frames.insert(block, cell.clone());
        Ok(BufHandle { cell })
    }

    /// Writes one dirty frame home, honouring the WAL rule.
    fn writeback(&self, cell: &Arc<FrameCell>) -> DfsResult<()> {
        let (dirty, last_lsn, data, version) = {
            let st = cell.state.lock();
            (st.dirty, st.last_lsn, st.data.clone(), st.version)
        };
        if !dirty {
            return Ok(());
        }
        self.ensure_durable(last_lsn)?;
        self.disk.write(cell.block, &data)?;
        self.disk.flush_range(cell.block, cell.block + 1)?;
        let mut st = cell.state.lock();
        // A concurrent update may have landed while the frame lock was
        // released for I/O; the snapshot we wrote is then stale and the
        // frame must stay dirty or the newer change is silently lost on
        // eviction (the disk copy would be read back instead).
        if st.version == version {
            st.dirty = false;
            st.first_lsn = None;
        }
        self.stats.lock().writebacks += 1;
        Ok(())
    }

    /// Modifies a buffer *without* logging — for user data only.
    ///
    /// The paper's rule (§2.2) is that changes to user data are not
    /// logged; only metadata goes through [`Journal::update`]. Data
    /// written this way is durable only after the frame is written back
    /// (eviction, [`Journal::writeback_handle`], or a checkpoint).
    pub fn write_data(&self, buf: &BufHandle, offset: usize, data: &[u8]) -> DfsResult<()> {
        if offset + data.len() > BLOCK_SIZE {
            return Err(DfsError::InvalidArgument);
        }
        let mut st = buf.cell.state.lock();
        st.data[offset..offset + data.len()].copy_from_slice(data);
        st.dirty = true;
        st.version += 1;
        Ok(())
    }

    /// Forces one buffer home (used by `fsync` paths).
    pub fn writeback_handle(&self, buf: &BufHandle) -> DfsResult<()> {
        self.writeback(&buf.cell)
    }

    /// Makes the log durable at least up to `lsn`.
    fn ensure_durable(&self, lsn: Lsn) -> DfsResult<()> {
        if self.log.lock().durable >= lsn {
            return Ok(());
        }
        self.sync()
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Begins a new transaction and returns its id.
    pub fn begin(&self) -> TxnId {
        let mut txns = self.txns.lock();
        let id = txns.next_id;
        txns.next_id += 1;
        txns.active.insert(
            id,
            TxnState { parent: id, first_lsn: None, undo: Vec::new(), resolved: false },
        );
        self.stats.lock().txns_begun += 1;
        id
    }

    /// Applies a logged change of `new` bytes at `offset` in `buf`.
    ///
    /// The old value is captured from the buffer, an update record with
    /// both values is appended to the log, and the buffer is modified —
    /// the only way buffers are ever modified. Changes larger than
    /// [`MAX_UPDATE`] are chunked into several records.
    pub fn update(&self, txn: TxnId, buf: &BufHandle, offset: usize, new: &[u8]) -> DfsResult<()> {
        if offset + new.len() > BLOCK_SIZE {
            return Err(DfsError::InvalidArgument);
        }
        let mut done = 0;
        while done < new.len() {
            let n = (new.len() - done).min(MAX_UPDATE);
            self.update_chunk(txn, buf, offset + done, &new[done..done + n])?;
            done += n;
        }
        Ok(())
    }

    fn update_chunk(
        &self,
        txn: TxnId,
        buf: &BufHandle,
        offset: usize,
        new: &[u8],
    ) -> DfsResult<()> {
        // Reserve log space before taking any locks: reservation may
        // checkpoint, which needs the cache, frame, and txn locks itself.
        self.reserve((1 + 8 + 4 + 2 + 2 + 2 * new.len()) as u64)?;
        let mut txns = self.txns.lock();
        if !txns.active.contains_key(&txn) {
            return Err(DfsError::Internal("update on inactive transaction"));
        }
        let root = txns.find(txn).expect("checked active");

        let mut st = buf.cell.state.lock();
        // Merge equivalence classes when two active transactions touch
        // the same buffer (§2.2 serializability).
        if let Some(prev) = st.writer_class {
            if let Some(prev_root) = txns.find(prev) {
                if prev_root != root {
                    let pr = txns.active.get_mut(&prev_root).expect("active root");
                    pr.parent = root;
                    self.stats.lock().class_merges += 1;
                }
            }
        }
        st.writer_class = Some(root);

        let old = st.data[offset..offset + new.len()].to_vec();
        let record = Record::Update {
            txid: txn,
            block: buf.cell.block,
            offset: offset as u16,
            old: old.clone(),
            new: new.to_vec(),
        };
        let lsn = self.append(&record)?;
        let end = Lsn(lsn.0 + record.encoded_len() as u64);

        st.data[offset..offset + new.len()].copy_from_slice(new);
        st.dirty = true;
        st.version += 1;
        st.first_lsn.get_or_insert(lsn);
        st.last_lsn = end;
        drop(st);

        let t = txns.active.get_mut(&txn).expect("checked active");
        t.first_lsn.get_or_insert(lsn);
        t.undo.push((buf.cell.block, offset as u16, old, new.to_vec()));
        self.stats.lock().update_records += 1;
        Ok(())
    }

    /// Fills `len` bytes at `offset` in `buf` with `byte`, logged.
    pub fn update_fill(
        &self,
        txn: TxnId,
        buf: &BufHandle,
        offset: usize,
        len: usize,
        byte: u8,
    ) -> DfsResult<()> {
        self.update(txn, buf, offset, &vec![byte; len])
    }

    /// Requests commit of `txn`.
    ///
    /// If the transaction shares an equivalence class with other active
    /// transactions, the commit record is deferred until every member has
    /// resolved; the class then commits atomically. The commit record is
    /// buffered — durability requires [`Journal::sync`] (group commit).
    pub fn commit(&self, txn: TxnId) -> DfsResult<()> {
        self.resolve(txn, false)
    }

    /// Aborts `txn`, rolling back its changes.
    ///
    /// Rollback is CLR-style: each update is reversed by a new logged
    /// update, so recovery only ever replays forward. The class still
    /// commits (the aborted member's net effect is nothing).
    pub fn abort(&self, txn: TxnId) -> DfsResult<()> {
        // Reverse this transaction's updates with compensating records.
        let undo = {
            let mut txns = self.txns.lock();
            let t = txns
                .active
                .get_mut(&txn)
                .ok_or(DfsError::Internal("abort on inactive transaction"))?;
            std::mem::take(&mut t.undo)
        };
        for (block, offset, old, _new) in undo.into_iter().rev() {
            let buf = self.get(block)?;
            self.update_chunk(txn, &buf, offset as usize, &old)?;
        }
        self.stats.lock().txns_aborted += 1;
        self.resolve(txn, true)
    }

    fn resolve(&self, txn: TxnId, aborted: bool) -> DfsResult<()> {
        // Reserve room for a worst-case commit record up front, while no
        // locks are held (reservation may checkpoint).
        self.reserve(1 + 2 + 8 * 64)?;
        let mut txns = self.txns.lock();
        let root = match txns.find(txn) {
            Some(r) => r,
            None => return Err(DfsError::Internal("resolve on inactive transaction")),
        };
        {
            let t = txns.active.get_mut(&txn).expect("found root implies active");
            if t.resolved {
                return Err(DfsError::Internal("transaction resolved twice"));
            }
            t.resolved = true;
        }
        let members = txns.members_of(root);
        if members.iter().all(|m| txns.active[m].resolved) {
            let record = Record::Commit { txids: members.clone() };
            drop(txns);
            self.append(&record)?;
            let mut txns = self.txns.lock();
            for m in &members {
                txns.active.remove(m);
            }
            let mut stats = self.stats.lock();
            stats.commit_records += 1;
            stats.txns_committed += members.len() as u64 - u64::from(aborted);
        }
        Ok(())
    }

    /// Returns the number of currently active (unresolved) transactions.
    pub fn active_txns(&self) -> usize {
        self.txns.lock().active.len()
    }

    // ------------------------------------------------------------------
    // Log management
    // ------------------------------------------------------------------

    /// Ensures at least `need` bytes of log space are available.
    ///
    /// Must be called with *no* journal locks held: it may checkpoint,
    /// which takes the cache, frame, and transaction locks.
    fn reserve(&self, need: u64) -> DfsResult<()> {
        {
            let log = self.log.lock();
            if (log.head.0 - log.tail.0) + need <= self.region.capacity_bytes() {
                return Ok(());
            }
        }
        // Out of space: checkpoint to advance the tail, then re-check.
        self.checkpoint()?;
        let log = self.log.lock();
        if (log.head.0 - log.tail.0) + need > self.region.capacity_bytes() {
            return Err(DfsError::LogFull);
        }
        Ok(())
    }

    /// Appends a record to the in-memory log, returning its LSN.
    ///
    /// Space must have been reserved by [`Journal::reserve`].
    fn append(&self, record: &Record) -> DfsResult<Lsn> {
        let log = self.log.lock();
        Ok(self.append_unchecked(record, log))
    }

    fn append_unchecked(
        &self,
        record: &Record,
        mut log: OrderedMutexGuard<'_, LogState, { rank::JOURNAL_LOG }>,
    ) -> Lsn {
        let lsn = log.head;
        record.encode(&mut log.pending);
        log.head = Lsn(lsn.0 + record.encoded_len() as u64);
        drop(log);
        self.stats.lock().log_bytes += record.encoded_len() as u64;
        lsn
    }

    /// Group commit: forces the log to disk (§2.2 batch commit).
    ///
    /// The pending record stream is padded to a block boundary and
    /// written sequentially to the circular log region, then flushed.
    /// All buffered commit records become durable.
    pub fn sync(&self) -> DfsResult<()> {
        let mut log = self.log.lock();
        if log.pending.is_empty() {
            return Ok(());
        }
        // Pad to a block boundary so every flushed block is complete.
        let ragged = (log.head.0 % LOG_PAYLOAD as u64) as usize;
        if ragged != 0 {
            let pad = LOG_PAYLOAD - ragged;
            let rec = Record::Pad { len: pad as u32 };
            rec.encode(&mut log.pending);
            log.head = Lsn(log.head.0 + pad as u64);
            self.stats.lock().pad_bytes += pad as u64;
        }
        debug_assert_eq!(log.head.0 % LOG_PAYLOAD as u64, 0);
        debug_assert_eq!(log.durable.0 % LOG_PAYLOAD as u64, 0);
        let first_index = log.durable.block_index();
        let pending = std::mem::take(&mut log.pending);
        let mut blocks_written = 0u64;
        for (i, chunk) in pending.chunks(LOG_PAYLOAD).enumerate() {
            let index = first_index + i as u64;
            let block = encode_block(index, chunk);
            self.disk.write(self.region.physical(index), &block)?;
            blocks_written += 1;
        }
        self.disk
            .flush_range(self.region.first_block, self.region.first_block + self.region.blocks)?;
        log.durable = log.head;
        drop(log);
        let mut stats = self.stats.lock();
        stats.syncs += 1;
        stats.log_block_writes += blocks_written;
        Ok(())
    }

    /// Checkpoints the journal: all dirty frames are written home and the
    /// log tail advances past everything now reflected on disk.
    pub fn checkpoint(&self) -> DfsResult<()> {
        self.sync()?;
        let cells: Vec<Arc<FrameCell>> = self.cache.lock().frames.values().cloned().collect();
        for cell in &cells {
            self.writeback(cell)?;
        }
        self.disk.flush()?;
        // New tail: oldest LSN still needed by an active transaction,
        // else the durable head.
        let mut tail = self.log.lock().durable;
        {
            let txns = self.txns.lock();
            for t in txns.active.values() {
                if let Some(f) = t.first_lsn {
                    tail = tail.min(f);
                }
            }
        }
        // Frames re-dirtied while the sweep had their lock released still
        // hold logged changes not yet on disk; the tail must not pass
        // their oldest LSN or recovery could no longer redo them.
        for cell in &cells {
            let st = cell.state.lock();
            if st.dirty {
                if let Some(f) = st.first_lsn {
                    tail = tail.min(f);
                }
            }
        }
        let new_tail = {
            let mut log = self.log.lock();
            log.tail = log.tail.max(tail);
            log.tail
        };
        self.persist_superblock(new_tail)?;
        self.stats.lock().checkpoints += 1;
        Ok(())
    }

    /// Returns (tail, durable, head) LSNs, for diagnostics and tests.
    pub fn log_positions(&self) -> (Lsn, Lsn, Lsn) {
        let log = self.log.lock();
        (log.tail, log.durable, log.head)
    }

    /// Returns bytes of log space currently in use (head minus tail).
    pub fn log_used_bytes(&self) -> u64 {
        let log = self.log.lock();
        log.head.0 - log.tail.0
    }

    /// Flushes everything: log, dirty buffers, and the disk cache.
    ///
    /// Used at unmount and by `fsync`-style operations.
    pub fn flush_all(&self) -> DfsResult<()> {
        self.checkpoint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_disk::DiskConfig;

    fn setup() -> (SimDisk, Arc<Journal>) {
        let disk = SimDisk::new(DiskConfig::with_blocks(4096));
        let region = LogRegion { first_block: 1, blocks: 128 };
        let jn = Journal::format(disk.clone(), region).unwrap();
        (disk, jn)
    }

    #[test]
    fn update_modifies_buffer_and_survives_sync() {
        let (_, jn) = setup();
        let t = jn.begin();
        let b = jn.get(500).unwrap();
        jn.update(t, &b, 10, &[1, 2, 3, 4]).unwrap();
        assert_eq!(b.read_at(10, 4), vec![1, 2, 3, 4]);
        jn.commit(t).unwrap();
        jn.sync().unwrap();
        assert_eq!(jn.active_txns(), 0);
    }

    #[test]
    fn committed_transaction_survives_crash() {
        let (disk, jn) = setup();
        let t = jn.begin();
        let b = jn.get(500).unwrap();
        jn.update(t, &b, 0, &[0xAB; 16]).unwrap();
        jn.commit(t).unwrap();
        jn.sync().unwrap();
        // Dirty frame never written back; crash loses the disk cache.
        disk.crash(None);
        disk.power_on();
        let (jn2, report) = Journal::open(disk, jn.region()).unwrap();
        assert!(!report.formatted);
        assert_eq!(report.committed_txns, 1);
        assert_eq!(report.uncommitted_txns, 0);
        assert!(report.updates_redone >= 1);
        let b = jn2.get(500).unwrap();
        assert_eq!(b.read_at(0, 16), vec![0xAB; 16]);
    }

    #[test]
    fn uncommitted_transaction_is_undone() {
        let (disk, jn) = setup();
        // Committed baseline value.
        let t0 = jn.begin();
        let b = jn.get(600).unwrap();
        jn.update(t0, &b, 0, &[7; 8]).unwrap();
        jn.commit(t0).unwrap();
        // Uncommitted overwrite, forced durable by sync.
        let t1 = jn.begin();
        jn.update(t1, &b, 0, &[9; 8]).unwrap();
        jn.sync().unwrap();
        disk.crash(None);
        disk.power_on();
        let (jn2, report) = Journal::open(disk, jn.region()).unwrap();
        assert_eq!(report.uncommitted_txns, 1);
        assert!(report.updates_undone >= 1);
        let b = jn2.get(600).unwrap();
        assert_eq!(b.read_at(0, 8), vec![7; 8], "uncommitted change rolled back");
    }

    #[test]
    fn unsynced_commit_is_lost_but_consistent() {
        let (disk, jn) = setup();
        let t = jn.begin();
        let b = jn.get(700).unwrap();
        jn.update(t, &b, 0, &[5; 4]).unwrap();
        jn.commit(t).unwrap();
        // No sync: commit record never reaches disk.
        disk.crash(None);
        disk.power_on();
        let (jn2, _) = Journal::open(disk, jn.region()).unwrap();
        let b = jn2.get(700).unwrap();
        assert_eq!(b.read_at(0, 4), vec![0; 4], "lost commit leaves old state");
    }

    #[test]
    fn abort_rolls_back_in_memory_and_after_crash() {
        let (disk, jn) = setup();
        let t = jn.begin();
        let b = jn.get(800).unwrap();
        jn.update(t, &b, 4, &[1, 1]).unwrap();
        jn.update(t, &b, 8, &[2, 2]).unwrap();
        jn.abort(t).unwrap();
        assert_eq!(b.read_at(4, 6), vec![0, 0, 0, 0, 0, 0]);
        jn.sync().unwrap();
        disk.crash(None);
        disk.power_on();
        let (jn2, _) = Journal::open(disk, jn.region()).unwrap();
        let b = jn2.get(800).unwrap();
        assert_eq!(b.read_at(4, 6), vec![0; 6]);
    }

    #[test]
    fn shared_buffer_merges_equivalence_classes() {
        let (disk, jn) = setup();
        let a = jn.begin();
        let b_txn = jn.begin();
        let buf = jn.get(900).unwrap();
        jn.update(a, &buf, 0, &[1]).unwrap();
        jn.update(b_txn, &buf, 1, &[2]).unwrap();
        // A commits, but the class must wait for B.
        jn.commit(a).unwrap();
        assert_eq!(jn.active_txns(), 2, "class not committed until B resolves");
        jn.sync().unwrap();
        disk.crash(None);
        disk.power_on();
        let (jn2, report) = Journal::open(disk, jn.region()).unwrap();
        // Neither A nor B committed: both undone.
        assert_eq!(report.committed_txns, 0);
        let buf = jn2.get(900).unwrap();
        assert_eq!(buf.read_at(0, 2), vec![0, 0], "A must not commit without B");
    }

    #[test]
    fn class_commits_when_all_members_resolve() {
        let (disk, jn) = setup();
        let a = jn.begin();
        let b_txn = jn.begin();
        let buf = jn.get(901).unwrap();
        jn.update(a, &buf, 0, &[1]).unwrap();
        jn.update(b_txn, &buf, 1, &[2]).unwrap();
        jn.commit(a).unwrap();
        jn.commit(b_txn).unwrap();
        assert_eq!(jn.active_txns(), 0);
        jn.sync().unwrap();
        disk.crash(None);
        disk.power_on();
        let (jn2, report) = Journal::open(disk, jn.region()).unwrap();
        assert_eq!(report.committed_txns, 2);
        let buf = jn2.get(901).unwrap();
        assert_eq!(buf.read_at(0, 2), vec![1, 2]);
    }

    #[test]
    fn torn_log_write_is_detected() {
        let (disk, jn) = setup();
        let t = jn.begin();
        let b = jn.get(1000).unwrap();
        // 1500 changed bytes -> a ~3 KB record, so the torn (half-block)
        // write cuts through real record content, not just padding.
        jn.update(t, &b, 0, &[3; 1500]).unwrap();
        jn.commit(t).unwrap();
        // Build the log block by hand into the volatile cache, then crash
        // tearing it; the checksum must reject the half-written block.
        let log_block = jn.region().physical(0);
        {
            let mut log = jn.log.lock();
            let mut padded = std::mem::take(&mut log.pending);
            let ragged = (log.head.0 % LOG_PAYLOAD as u64) as usize;
            if ragged != 0 {
                Record::Pad { len: (LOG_PAYLOAD - ragged) as u32 }.encode(&mut padded);
            }
            padded.resize(LOG_PAYLOAD, 0);
            disk.write(log_block, &encode_block(0, &padded)).unwrap();
        }
        disk.crash(Some(log_block));
        disk.power_on();
        let (jn2, report) = Journal::open(disk, jn.region()).unwrap();
        assert_eq!(report.records, 0, "torn block fails checksum, scan stops");
        let b = jn2.get(1000).unwrap();
        assert_eq!(b.read_at(0, 1500), vec![0; 1500]);
    }

    #[test]
    fn checkpoint_advances_tail_and_bounds_log() {
        let (_, jn) = setup();
        for round in 0..50u32 {
            let t = jn.begin();
            let b = jn.get(2000 + round % 7).unwrap();
            jn.update(t, &b, 0, &[round as u8; 64]).unwrap();
            jn.commit(t).unwrap();
        }
        jn.checkpoint().unwrap();
        assert_eq!(jn.log_used_bytes(), 0, "checkpoint reclaims the whole log");
    }

    #[test]
    fn log_wraps_around_circularly() {
        let (_, jn) = setup();
        // Capacity is (128-1-2)*4080 ≈ 510 KB; push more than that through.
        for round in 0..4000u32 {
            let t = jn.begin();
            let b = jn.get(2100 + (round % 13)).unwrap();
            jn.update(t, &b, (round % 16) as usize * 200, &[round as u8; 200]).unwrap();
            jn.commit(t).unwrap();
            if round % 50 == 0 {
                jn.sync().unwrap();
            }
        }
        jn.checkpoint().unwrap();
        let (tail, _, head) = jn.log_positions();
        assert!(head.0 > jn.region().capacity_bytes(), "stream wrapped at least once");
        assert_eq!(tail, head);
    }

    #[test]
    fn recovery_after_wrap_reads_only_active_region() {
        let (disk, jn) = setup();
        for round in 0..3000u32 {
            let t = jn.begin();
            let b = jn.get(2200 + (round % 5)).unwrap();
            jn.update(t, &b, 0, &[round as u8; 100]).unwrap();
            jn.commit(t).unwrap();
            if round % 100 == 0 {
                jn.checkpoint().unwrap();
            }
        }
        let t = jn.begin();
        let b = jn.get(2300).unwrap();
        jn.update(t, &b, 0, &[0xCD; 32]).unwrap();
        jn.commit(t).unwrap();
        jn.sync().unwrap();
        disk.crash(None);
        disk.power_on();
        let (jn2, report) = Journal::open(disk, jn.region()).unwrap();
        assert!(
            report.scanned_blocks < 128,
            "recovery must scan only the active log, scanned {}",
            report.scanned_blocks
        );
        let b = jn2.get(2300).unwrap();
        assert_eq!(b.read_at(0, 32), vec![0xCD; 32]);
    }

    #[test]
    fn single_transaction_larger_than_log_fails() {
        let disk = SimDisk::new(DiskConfig::with_blocks(4096));
        let region = LogRegion { first_block: 1, blocks: 8 };
        let jn = Journal::format(disk, region).unwrap();
        let t = jn.begin();
        let mut failed = false;
        'outer: for block in 0..64u32 {
            let b = jn.get(1000 + block).unwrap();
            for off in 0..2 {
                if jn.update(t, &b, off * 2048, &[1; 2048]).is_err() {
                    failed = true;
                    break 'outer;
                }
            }
        }
        assert!(failed, "a transaction exceeding log capacity must fail");
    }

    #[test]
    fn large_update_is_chunked() {
        let (_, jn) = setup();
        let t = jn.begin();
        let b = jn.get(3000).unwrap();
        jn.update(t, &b, 0, &[0x55; BLOCK_SIZE]).unwrap();
        jn.commit(t).unwrap();
        assert_eq!(b.read_at(0, BLOCK_SIZE), vec![0x55; BLOCK_SIZE]);
        assert!(jn.stats().update_records >= 2, "full-block update chunks");
    }

    #[test]
    fn cache_eviction_writes_back_dirty_frames() {
        let (disk, jn) = setup();
        jn.set_cache_capacity(8);
        for i in 0..64u32 {
            let t = jn.begin();
            let b = jn.get(3100 + i).unwrap();
            jn.update(t, &b, 0, &[i as u8; 8]).unwrap();
            jn.commit(t).unwrap();
        }
        // Early frames were evicted; their contents must be on disk.
        assert!(jn.stats().writebacks > 0);
        let b = disk.read(3105).unwrap();
        assert_eq!(&b[0..8], &[5u8; 8]);
    }

    #[test]
    fn stats_accumulate() {
        let (_, jn) = setup();
        let before = jn.stats();
        let t = jn.begin();
        let b = jn.get(3200).unwrap();
        jn.update(t, &b, 0, &[1]).unwrap();
        jn.commit(t).unwrap();
        jn.sync().unwrap();
        let d = jn.stats().since(&before);
        assert_eq!(d.txns_begun, 1);
        assert_eq!(d.txns_committed, 1);
        assert_eq!(d.update_records, 1);
        assert_eq!(d.commit_records, 1);
        assert_eq!(d.syncs, 1);
        assert!(d.log_block_writes >= 1);
    }

    #[test]
    fn fresh_open_formats() {
        let disk = SimDisk::new(DiskConfig::with_blocks(512));
        let (jn, report) = Journal::open(disk, LogRegion { first_block: 0, blocks: 16 }).unwrap();
        assert!(report.formatted);
        assert_eq!(jn.log_used_bytes(), 0);
    }

    #[test]
    fn reopen_without_crash_is_clean() {
        let (disk, jn) = setup();
        let t = jn.begin();
        let b = jn.get(3300).unwrap();
        jn.update(t, &b, 0, &[9; 4]).unwrap();
        jn.commit(t).unwrap();
        jn.flush_all().unwrap();
        let (jn2, report) = Journal::open(disk, jn.region()).unwrap();
        assert!(!report.formatted);
        assert_eq!(report.updates_redone, 0, "clean shutdown replays nothing");
        let b = jn2.get(3300).unwrap();
        assert_eq!(b.read_at(0, 4), vec![9; 4]);
    }

    #[test]
    fn metadata_burst_costs_less_disk_time_than_sync_writes() {
        // The germ of experiment T1: many small metadata updates through
        // the log cost (sequential log writes) far less than the same
        // updates written synchronously in place.
        let (disk, jn) = setup();
        disk.reset_stats();
        for i in 0..200u32 {
            let t = jn.begin();
            let b = jn.get(3400 + (i % 40)).unwrap();
            jn.update(t, &b, (i as usize % 32) * 16, &[i as u8; 16]).unwrap();
            jn.commit(t).unwrap();
        }
        jn.sync().unwrap();
        let logged = disk.stats().busy_us;

        let disk2 = SimDisk::new(DiskConfig::with_blocks(4096));
        for i in 0..200u32 {
            let mut block = [0u8; BLOCK_SIZE];
            block[0] = i as u8;
            disk2.write_sync(3400 + (i % 40), &block).unwrap();
        }
        let synced = disk2.stats().busy_us;
        assert!(
            logged * 2 < synced,
            "logging ({logged} us) should beat sync writes ({synced} us) by 2x+"
        );
    }
}
