//! Journal statistics.

/// Counters accumulated by a [`Journal`](crate::Journal).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Transactions begun.
    pub txns_begun: u64,
    /// Transactions committed (individually; classes count each member).
    pub txns_committed: u64,
    /// Transactions aborted.
    pub txns_aborted: u64,
    /// Equivalence-class merges caused by buffer sharing.
    pub class_merges: u64,
    /// Update records appended to the log.
    pub update_records: u64,
    /// Commit records appended to the log.
    pub commit_records: u64,
    /// Bytes of record stream appended (excluding padding).
    pub log_bytes: u64,
    /// Bytes of padding appended at group-commit boundaries.
    pub pad_bytes: u64,
    /// Group commits (log syncs) performed.
    pub syncs: u64,
    /// Log blocks written to disk.
    pub log_block_writes: u64,
    /// Dirty frames written back to their home location.
    pub writebacks: u64,
    /// Buffer-cache hits.
    pub cache_hits: u64,
    /// Buffer-cache misses (disk reads).
    pub cache_misses: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
}

impl JournalStats {
    /// Returns `self - earlier`, counter by counter (saturating).
    pub fn since(&self, earlier: &JournalStats) -> JournalStats {
        macro_rules! diff {
            ($($f:ident),*) => {
                JournalStats { $($f: self.$f.saturating_sub(earlier.$f)),* }
            }
        }
        diff!(
            txns_begun,
            txns_committed,
            txns_aborted,
            class_merges,
            update_records,
            commit_records,
            log_bytes,
            pad_bytes,
            syncs,
            log_block_writes,
            writebacks,
            cache_hits,
            cache_misses,
            checkpoints
        )
    }
}

/// What recovery found and did after a crash.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log blocks scanned during recovery.
    pub scanned_blocks: u64,
    /// Records parsed from the log stream.
    pub records: u64,
    /// Update records re-applied (redo pass).
    pub updates_redone: u64,
    /// Update records rolled back (undo pass).
    pub updates_undone: u64,
    /// Distinct transactions found committed.
    pub committed_txns: u64,
    /// Distinct transactions found uncommitted (rolled back).
    pub uncommitted_txns: u64,
    /// Simulated disk time the recovery consumed, in microseconds.
    pub disk_busy_us: u64,
    /// True if the log was freshly formatted (no recovery performed).
    pub formatted: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_since_diffs() {
        let a = JournalStats { txns_begun: 2, log_bytes: 100, ..Default::default() };
        let b = JournalStats { txns_begun: 7, log_bytes: 350, ..Default::default() };
        let d = b.since(&a);
        assert_eq!(d.txns_begun, 5);
        assert_eq!(d.log_bytes, 250);
    }
}
