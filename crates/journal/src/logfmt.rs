//! On-disk log format: records and log-block framing.
//!
//! The log is a byte *stream* of records, packed into fixed-size log
//! blocks. Each block carries a header with a monotone sequence number
//! and a checksum; recovery reads blocks in sequence order, validates
//! checksums (so torn writes terminate the scan), and re-assembles the
//! stream. Records may span block boundaries.
//!
//! Record vocabulary (§2.2 of the paper): an *update* carries the old and
//! new values for all data bytes in the change plus the identity of its
//! transaction; a *commit* notes when a transaction (or an equivalence
//! class of transactions that shared buffers) commits; *pad* records fill
//! the tail of a block at group-commit time so every flushed block is
//! complete.

use dfs_disk::BLOCK_SIZE;

/// Magic number identifying a DEcorum log block.
pub const LOG_BLOCK_MAGIC: u32 = 0xDF5_106;

/// Bytes of record stream carried by each log block.
pub const LOG_PAYLOAD: usize = BLOCK_SIZE - LOG_HEADER;

/// Size of the per-block header: magic, sequence, checksum.
pub const LOG_HEADER: usize = 4 + 8 + 4;

/// A log sequence number: byte offset within the record stream.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash)]
pub struct Lsn(pub u64);

impl Lsn {
    /// Returns the stream block index containing this LSN.
    pub fn block_index(self) -> u64 {
        self.0 / LOG_PAYLOAD as u64
    }

    /// Returns the byte offset of this LSN within its stream block.
    pub fn block_offset(self) -> usize {
        (self.0 % LOG_PAYLOAD as u64) as usize
    }
}

/// A parsed log record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Record {
    /// A metadata change: old and new values of `len` bytes at
    /// (`block`, `offset`), made by transaction `txid`.
    Update { txid: u64, block: u32, offset: u16, old: Vec<u8>, new: Vec<u8> },
    /// Commit of an equivalence class of transactions.
    Commit { txids: Vec<u64> },
    /// Padding to the end of a block; `len` is the total record size.
    Pad { len: u32 },
    /// A checkpoint marker recording the tail at the time it was written.
    Checkpoint { tail: Lsn },
    /// Host-journal entry (§3.5 HA): a client's lease state as the
    /// server last knew it — `last_seen` in simulated microseconds and
    /// whether the client held any token at that time. Replay folds
    /// these by sequence so the newest entry per client wins.
    HostLease { client: u32, last_seen: u64, holding: bool },
    /// Host-journal compaction barrier: entries logged before it are
    /// superseded by the full snapshot written just after it.
    HostBarrier,
    /// Host-journal entry stamping the server's restart epoch, so the
    /// epoch survives whole-machine (process + memory) loss.
    ServerEpoch { epoch: u64 },
}

const TAG_BYTE_SKIP: u8 = 0;
const TAG_UPDATE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_PAD: u8 = 3;
const TAG_CHECKPOINT: u8 = 4;
const TAG_HOST_LEASE: u8 = 5;
const TAG_HOST_BARRIER: u8 = 6;
const TAG_SERVER_EPOCH: u8 = 7;

impl Record {
    /// Serializes the record, appending to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Record::Update { txid, block, offset, old, new } => {
                assert_eq!(old.len(), new.len(), "update old/new length mismatch");
                let len = u16::try_from(old.len()).expect("update too large");
                out.push(TAG_UPDATE);
                out.extend_from_slice(&txid.to_le_bytes());
                out.extend_from_slice(&block.to_le_bytes());
                out.extend_from_slice(&offset.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                out.extend_from_slice(old);
                out.extend_from_slice(new);
            }
            Record::Commit { txids } => {
                let n = u16::try_from(txids.len()).expect("commit class too large");
                out.push(TAG_COMMIT);
                out.extend_from_slice(&n.to_le_bytes());
                for t in txids {
                    out.extend_from_slice(&t.to_le_bytes());
                }
            }
            Record::Pad { len } => {
                if *len < 5 {
                    // Too small for a pad header; emit skip bytes.
                    for _ in 0..*len {
                        out.push(TAG_BYTE_SKIP);
                    }
                } else {
                    out.push(TAG_PAD);
                    out.extend_from_slice(&len.to_le_bytes());
                    out.resize(out.len() + (*len as usize - 5), 0);
                }
            }
            Record::Checkpoint { tail } => {
                out.push(TAG_CHECKPOINT);
                out.extend_from_slice(&tail.0.to_le_bytes());
            }
            Record::HostLease { client, last_seen, holding } => {
                out.push(TAG_HOST_LEASE);
                out.extend_from_slice(&client.to_le_bytes());
                out.extend_from_slice(&last_seen.to_le_bytes());
                out.push(u8::from(*holding));
            }
            Record::HostBarrier => {
                out.push(TAG_HOST_BARRIER);
            }
            Record::ServerEpoch { epoch } => {
                out.push(TAG_SERVER_EPOCH);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
        }
    }

    /// Returns the encoded size of the record in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Record::Update { old, .. } => 1 + 8 + 4 + 2 + 2 + 2 * old.len(),
            Record::Commit { txids } => 1 + 2 + 8 * txids.len(),
            Record::Pad { len } => *len as usize,
            Record::Checkpoint { .. } => 1 + 8,
            Record::HostLease { .. } => 1 + 4 + 8 + 1,
            Record::HostBarrier => 1,
            Record::ServerEpoch { .. } => 1 + 8,
        }
    }

    /// Parses one record from `buf` starting at `pos`.
    ///
    /// Returns the record and the position just past it, or `None` if the
    /// buffer ends mid-record (the stream's ragged end after a crash).
    pub fn decode(buf: &[u8], pos: usize) -> Option<(Record, usize)> {
        let tag = *buf.get(pos)?;
        let mut p = pos + 1;
        let take = |p: &mut usize, n: usize| -> Option<&[u8]> {
            let s = buf.get(*p..*p + n)?;
            *p += n;
            Some(s)
        };
        match tag {
            TAG_BYTE_SKIP => Some((Record::Pad { len: 1 }, p)),
            TAG_UPDATE => {
                let txid = u64::from_le_bytes(take(&mut p, 8)?.try_into().unwrap());
                let block = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap());
                let offset = u16::from_le_bytes(take(&mut p, 2)?.try_into().unwrap());
                let len = u16::from_le_bytes(take(&mut p, 2)?.try_into().unwrap()) as usize;
                let old = take(&mut p, len)?.to_vec();
                let new = take(&mut p, len)?.to_vec();
                Some((Record::Update { txid, block, offset, old, new }, p))
            }
            TAG_COMMIT => {
                let n = u16::from_le_bytes(take(&mut p, 2)?.try_into().unwrap()) as usize;
                let mut txids = Vec::with_capacity(n);
                for _ in 0..n {
                    txids.push(u64::from_le_bytes(take(&mut p, 8)?.try_into().unwrap()));
                }
                Some((Record::Commit { txids }, p))
            }
            TAG_PAD => {
                let len = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap()) as usize;
                let body = len.checked_sub(5)?;
                take(&mut p, body)?;
                Some((Record::Pad { len: len as u32 }, p))
            }
            TAG_CHECKPOINT => {
                let tail = u64::from_le_bytes(take(&mut p, 8)?.try_into().unwrap());
                Some((Record::Checkpoint { tail: Lsn(tail) }, p))
            }
            TAG_HOST_LEASE => {
                let client = u32::from_le_bytes(take(&mut p, 4)?.try_into().unwrap());
                let last_seen = u64::from_le_bytes(take(&mut p, 8)?.try_into().unwrap());
                let holding = *take(&mut p, 1)?.first()? != 0;
                Some((Record::HostLease { client, last_seen, holding }, p))
            }
            TAG_HOST_BARRIER => Some((Record::HostBarrier, p)),
            TAG_SERVER_EPOCH => {
                let epoch = u64::from_le_bytes(take(&mut p, 8)?.try_into().unwrap());
                Some((Record::ServerEpoch { epoch }, p))
            }
            _ => None,
        }
    }
}

/// Computes the checksum over a log block's payload.
///
/// FNV-1a: cheap, and any torn write (the disk tears at the half-block
/// boundary) changes it with overwhelming probability.
pub fn checksum(seq: u64, payload: &[u8]) -> u32 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in seq.to_le_bytes().iter().chain(payload.iter()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h ^ (h >> 32)) as u32
}

/// Encodes a full log block: header plus exactly [`LOG_PAYLOAD`] bytes.
pub fn encode_block(seq: u64, payload: &[u8]) -> [u8; BLOCK_SIZE] {
    assert_eq!(payload.len(), LOG_PAYLOAD, "log blocks are always full");
    let mut out = [0u8; BLOCK_SIZE];
    out[0..4].copy_from_slice(&LOG_BLOCK_MAGIC.to_le_bytes());
    out[4..12].copy_from_slice(&seq.to_le_bytes());
    out[12..16].copy_from_slice(&checksum(seq, payload).to_le_bytes());
    out[16..].copy_from_slice(payload);
    out
}

/// Decodes a log block, returning its sequence number and payload.
///
/// Returns `None` for blocks that are not valid log blocks (wrong magic
/// or failed checksum — e.g. never-written space or a torn write).
pub fn decode_block(data: &[u8; BLOCK_SIZE]) -> Option<(u64, &[u8])> {
    let magic = u32::from_le_bytes(data[0..4].try_into().unwrap());
    if magic != LOG_BLOCK_MAGIC {
        return None;
    }
    let seq = u64::from_le_bytes(data[4..12].try_into().unwrap());
    let sum = u32::from_le_bytes(data[12..16].try_into().unwrap());
    let payload = &data[16..];
    if checksum(seq, payload) != sum {
        return None;
    }
    Some((seq, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_round_trip() {
        let r = Record::Update {
            txid: 42,
            block: 7,
            offset: 100,
            old: vec![1, 2, 3],
            new: vec![4, 5, 6],
        };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        assert_eq!(buf.len(), r.encoded_len());
        let (parsed, end) = Record::decode(&buf, 0).unwrap();
        assert_eq!(parsed, r);
        assert_eq!(end, buf.len());
    }

    #[test]
    fn commit_round_trip() {
        let r = Record::Commit { txids: vec![1, 2, 3, 99] };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (parsed, _) = Record::decode(&buf, 0).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn checkpoint_round_trip() {
        let r = Record::Checkpoint { tail: Lsn(123456) };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        let (parsed, _) = Record::decode(&buf, 0).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn pad_round_trip_and_tiny_pads() {
        for len in [1u32, 2, 4, 5, 6, 100] {
            let r = Record::Pad { len };
            let mut buf = Vec::new();
            r.encode(&mut buf);
            assert_eq!(buf.len(), len as usize, "pad of {len} wrong size");
            // Tiny pads decode as a run of 1-byte skips.
            let mut pos = 0;
            while pos < buf.len() {
                let (_, next) = Record::decode(&buf, pos).unwrap();
                assert!(next > pos);
                pos = next;
            }
        }
    }

    #[test]
    fn truncated_record_decodes_as_none() {
        let r = Record::Update { txid: 1, block: 2, offset: 3, old: vec![9; 40], new: vec![8; 40] };
        let mut buf = Vec::new();
        r.encode(&mut buf);
        for cut in [1, 5, 10, buf.len() - 1] {
            assert!(Record::decode(&buf[..cut], 0).is_none(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn block_round_trip_and_torn_detection() {
        let payload = vec![0xABu8; LOG_PAYLOAD];
        let mut block = encode_block(9, &payload);
        let (seq, p) = decode_block(&block).unwrap();
        assert_eq!(seq, 9);
        assert_eq!(p, &payload[..]);
        // Corrupt one payload byte: checksum must fail.
        block[BLOCK_SIZE - 1] ^= 0xFF;
        assert!(decode_block(&block).is_none());
        // A zeroed (never-written) block is not a log block.
        assert!(decode_block(&[0u8; BLOCK_SIZE]).is_none());
    }

    #[test]
    fn lsn_block_mapping() {
        let lsn = Lsn(LOG_PAYLOAD as u64 * 3 + 17);
        assert_eq!(lsn.block_index(), 3);
        assert_eq!(lsn.block_offset(), 17);
    }

    #[test]
    fn multiple_records_parse_sequentially() {
        let mut buf = Vec::new();
        let records = vec![
            Record::Update { txid: 1, block: 1, offset: 0, old: vec![0], new: vec![1] },
            Record::Commit { txids: vec![1] },
            Record::Checkpoint { tail: Lsn(0) },
        ];
        for r in &records {
            r.encode(&mut buf);
        }
        let mut pos = 0;
        let mut parsed = Vec::new();
        while pos < buf.len() {
            let (r, next) = Record::decode(&buf, pos).unwrap();
            parsed.push(r);
            pos = next;
        }
        assert_eq!(parsed, records);
    }
}
