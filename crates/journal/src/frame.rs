//! Buffer-cache frames and handles.

use crate::logfmt::Lsn;
use dfs_disk::{Block, BLOCK_SIZE};
use dfs_types::lock::{rank, OrderedMutex};
use std::sync::Arc;

/// In-memory state of one cached disk block.
pub(crate) struct Frame {
    /// Current contents (the only authoritative copy while cached).
    pub data: Block,
    /// True if the frame differs from the disk copy.
    pub dirty: bool,
    /// LSN of the first unwritten-back logged change, for tail tracking.
    pub first_lsn: Option<Lsn>,
    /// LSN one past the last logged change; the frame must not be written
    /// back before the log is durable up to this point (the WAL rule,
    /// §2.2: "the buffer must not be written to disk until the log has
    /// been flushed to disk up to that position").
    pub last_lsn: Lsn,
    /// Root transaction id of the equivalence class that last modified
    /// this frame, if any; used to merge transactions that share buffers.
    pub writer_class: Option<u64>,
    /// LRU clock value of the most recent access.
    pub last_use: u64,
    /// Bumped on every modification; writeback clears `dirty` only if
    /// the frame was not touched while its lock was released for I/O.
    pub version: u64,
}

/// A cached block plus its latch.
pub(crate) struct FrameCell {
    /// The disk block number this frame caches.
    pub block: u32,
    /// The latched frame state.
    pub state: OrderedMutex<Frame, { rank::JOURNAL_FRAME }>,
}

/// A pinned handle to a cached disk block.
///
/// While any `BufHandle` for a block is alive, the block cannot be
/// evicted from the cache. Reads go through [`BufHandle::with_data`] or
/// the typed accessors; *all* modifications must go through
/// [`Journal::update`](crate::Journal::update) so they are logged — the
/// handle deliberately exposes no mutable access.
#[derive(Clone)]
pub struct BufHandle {
    pub(crate) cell: Arc<FrameCell>,
}

impl BufHandle {
    /// Returns the block number this handle pins.
    pub fn block(&self) -> u32 {
        self.cell.block
    }

    /// Runs `f` with a shared view of the block contents.
    pub fn with_data<R>(&self, f: impl FnOnce(&[u8; BLOCK_SIZE]) -> R) -> R {
        let st = self.cell.state.lock();
        f(&st.data)
    }

    /// Copies `len` bytes starting at `offset` out of the block.
    ///
    /// # Panics
    ///
    /// Panics if `offset + len` exceeds the block size.
    pub fn read_at(&self, offset: usize, len: usize) -> Vec<u8> {
        self.with_data(|d| d[offset..offset + len].to_vec())
    }

    /// Reads a little-endian `u32` at `offset`.
    pub fn u32_at(&self, offset: usize) -> u32 {
        self.with_data(|d| u32::from_le_bytes(d[offset..offset + 4].try_into().unwrap()))
    }

    /// Reads a little-endian `u64` at `offset`.
    pub fn u64_at(&self, offset: usize) -> u64 {
        self.with_data(|d| u64::from_le_bytes(d[offset..offset + 8].try_into().unwrap()))
    }

    /// Reads a single byte at `offset`.
    pub fn u8_at(&self, offset: usize) -> u8 {
        self.with_data(|d| d[offset])
    }

    /// Reads a little-endian `u16` at `offset`.
    pub fn u16_at(&self, offset: usize) -> u16 {
        self.with_data(|d| u16::from_le_bytes(d[offset..offset + 2].try_into().unwrap()))
    }
}
