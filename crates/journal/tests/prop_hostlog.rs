//! Property tests pinning the host-journal record types (ISSUE 9):
//! every `HostLease`/`ServerEpoch`/`HostBarrier` record round-trips
//! through the wire encoding, alone and in mixed runs, and a random
//! append history replayed through [`HostLog`] folds to exactly the
//! newest fact per client.

use dfs_disk::{DiskConfig, SimDisk};
use dfs_journal::hostlog::{HostLog, HostLogRegion};
use dfs_journal::Record;
use proptest::prelude::*;
use std::collections::HashMap;

fn host_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        4 => (any::<u32>(), any::<u64>(), any::<bool>())
            .prop_map(|(client, last_seen, holding)| Record::HostLease {
                client,
                last_seen,
                holding,
            }),
        1 => Just(Record::HostBarrier),
        2 => any::<u64>().prop_map(|epoch| Record::ServerEpoch { epoch }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn host_records_round_trip(records in proptest::collection::vec(host_record(), 1..40)) {
        let mut buf = Vec::new();
        for r in &records {
            let before = buf.len();
            r.encode(&mut buf);
            prop_assert_eq!(buf.len() - before, r.encoded_len(), "encoded_len must match");
        }
        let mut pos = 0;
        let mut parsed = Vec::new();
        while pos < buf.len() {
            let (r, next) = Record::decode(&buf, pos).expect("mid-stream decode");
            parsed.push(r);
            pos = next;
        }
        prop_assert_eq!(parsed, records);
    }

    #[test]
    fn replay_folds_to_newest_fact_per_client(
        appends in proptest::collection::vec(
            (0u32..6, 1u64..1_000_000, any::<bool>()), 1..120),
        epochs in proptest::collection::vec(1u64..100, 0..4),
    ) {
        let disk = SimDisk::new(DiskConfig::with_blocks(64));
        let region = HostLogRegion { first_block: 1, blocks: 6 };
        let (log, _) = HostLog::open(disk.clone(), region).unwrap();

        // The model: last write per client wins, but last_seen is
        // monotone (the host model never moves a host backwards).
        let mut model: HashMap<u32, (u64, bool)> = HashMap::new();
        for (client, last_seen, holding) in &appends {
            log.record_lease(*client, *last_seen, *holding).unwrap();
            let e = model.entry(*client).or_insert((0, false));
            *e = (e.0.max(*last_seen), *holding);
        }
        let mut max_epoch = 0;
        for e in &epochs {
            log.record_epoch(*e).unwrap();
            max_epoch = max_epoch.max(*e);
        }

        disk.crash(None);
        disk.power_on();
        let replay = HostLog::replay(&disk, region).unwrap();
        prop_assert_eq!(replay.epoch, max_epoch);
        prop_assert_eq!(replay.hosts, model, "replay must fold to the newest fact per client");
    }
}
