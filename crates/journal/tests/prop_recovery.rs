//! Property-based crash-recovery checking for the journal.
//!
//! A random schedule of transactions (update/commit/abort interleaved
//! with group commits and checkpoints) runs against the journal while a
//! shadow model tracks what every byte *must* be after a crash: exactly
//! the transactions whose (equivalence-class) commit records reached the
//! disk. After a crash at an arbitrary point, recovery must reproduce
//! the model byte-for-byte — and recovery itself must be idempotent
//! under a second crash.
//!
//! The model exploits the journal's own invariant: transactions that
//! touch the same buffer are merged into one equivalence class, so
//! distinct classes touch disjoint blocks and can be tracked separately.

use dfs_disk::{DiskConfig, SimDisk, BLOCK_SIZE};
use dfs_journal::{Journal, LogRegion};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

const DATA_BASE: u32 = 600;
const DATA_BLOCKS: u32 = 8;

#[derive(Clone, Debug)]
enum Op {
    Begin,
    Update { slot: usize, block: u32, offset: usize, len: usize, byte: u8 },
    Commit { slot: usize },
    Abort { slot: usize },
    Sync,
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Begin),
        6 => (0usize..4, 0u32..DATA_BLOCKS, 0usize..(BLOCK_SIZE - 64), 1usize..64, any::<u8>())
            .prop_map(|(slot, block, offset, len, byte)| Op::Update {
                slot,
                block: DATA_BASE + block,
                offset,
                len,
                byte,
            }),
        3 => (0usize..4).prop_map(|slot| Op::Commit { slot }),
        1 => (0usize..4).prop_map(|slot| Op::Abort { slot }),
        2 => Just(Op::Sync),
        1 => Just(Op::Checkpoint),
    ]
}

/// A live transaction in the model.
struct LiveTxn {
    id: u64,
    /// (block index, offset, old bytes) for abort rollback.
    undo: Vec<(usize, usize, Vec<u8>)>,
    /// Class representative (index into `classes` via union-find).
    class: usize,
}

/// An equivalence class of transactions sharing buffers.
#[derive(Default, Clone)]
struct Class {
    members: usize,
    resolved: usize,
    blocks: HashSet<usize>,
    parent: Option<usize>,
}

struct Model {
    working: Vec<Vec<u8>>,
    durable: Vec<Vec<u8>>,
    classes: Vec<Class>,
    /// Block → owning class root, while any member is unresolved.
    block_class: HashMap<usize, usize>,
    /// Committed-but-unsynced block images.
    commit_pending: HashMap<usize, Vec<u8>>,
}

impl Model {
    fn new() -> Model {
        Model {
            working: vec![vec![0u8; BLOCK_SIZE]; DATA_BLOCKS as usize],
            durable: vec![vec![0u8; BLOCK_SIZE]; DATA_BLOCKS as usize],
            classes: Vec::new(),
            block_class: HashMap::new(),
            commit_pending: HashMap::new(),
        }
    }

    fn find(&mut self, c: usize) -> usize {
        match self.classes[c].parent {
            None => c,
            Some(p) => {
                let root = self.find(p);
                self.classes[c].parent = Some(root);
                root
            }
        }
    }

    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let moved = self.classes[rb].clone();
        self.classes[ra].members += moved.members;
        self.classes[ra].resolved += moved.resolved;
        let blocks: Vec<usize> = moved.blocks.iter().copied().collect();
        for blk in blocks {
            self.classes[ra].blocks.insert(blk);
            self.block_class.insert(blk, ra);
        }
        self.classes[rb].parent = Some(ra);
        ra
    }

    /// Records that class `c` touched `block`, merging with any class
    /// that already owns it (the journal does the same).
    fn touch(&mut self, c: usize, block: usize) -> usize {
        let root = self.find(c);
        match self.block_class.get(&block).copied() {
            Some(owner) => {
                let merged = self.union(root, owner);
                self.classes[merged].blocks.insert(block);
                self.block_class.insert(block, merged);
                merged
            }
            None => {
                self.classes[root].blocks.insert(block);
                self.block_class.insert(block, root);
                root
            }
        }
    }

    /// Marks one member resolved; if the class completes, its blocks'
    /// working images become commit-pending.
    fn resolve(&mut self, c: usize) {
        let root = self.find(c);
        self.classes[root].resolved += 1;
        if self.classes[root].resolved == self.classes[root].members {
            let blocks: Vec<usize> = self.classes[root].blocks.iter().copied().collect();
            for blk in blocks {
                self.commit_pending.insert(blk, self.working[blk].clone());
                self.block_class.remove(&blk);
            }
        }
    }

    fn sync(&mut self) {
        for (blk, img) in self.commit_pending.drain() {
            self.durable[blk] = img;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn recovery_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let disk = SimDisk::new(DiskConfig::with_blocks(1024));
        let region = LogRegion { first_block: 1, blocks: 128 };
        let jn = Journal::format(disk.clone(), region).unwrap();

        let mut model = Model::new();
        let mut live: Vec<LiveTxn> = Vec::new();

        for op in ops {
            match op {
                Op::Begin => {
                    if live.len() < 4 {
                        model.classes.push(Class {
                            members: 1,
                            resolved: 0,
                            blocks: HashSet::new(),
                            parent: None,
                        });
                        live.push(LiveTxn {
                            id: jn.begin(),
                            undo: Vec::new(),
                            class: model.classes.len() - 1,
                        });
                    }
                }
                Op::Update { slot, block, offset, len, byte } => {
                    if let Some(t) = live.get_mut(slot) {
                        let buf = jn.get(block).unwrap();
                        let bytes = vec![byte; len];
                        jn.update(t.id, &buf, offset, &bytes).unwrap();
                        let bi = (block - DATA_BASE) as usize;
                        t.undo.push((bi, offset, model.working[bi][offset..offset + len].to_vec()));
                        model.working[bi][offset..offset + len].copy_from_slice(&bytes);
                        let class = t.class;
                        model.touch(class, bi);
                    }
                }
                Op::Commit { slot } => {
                    if slot < live.len() {
                        let t = live.remove(slot);
                        jn.commit(t.id).unwrap();
                        model.resolve(t.class);
                    }
                }
                Op::Abort { slot } => {
                    if slot < live.len() {
                        let t = live.remove(slot);
                        jn.abort(t.id).unwrap();
                        for (bi, offset, old) in t.undo.into_iter().rev() {
                            model.working[bi][offset..offset + old.len()]
                                .copy_from_slice(&old);
                        }
                        model.resolve(t.class);
                    }
                }
                Op::Sync => {
                    jn.sync().unwrap();
                    model.sync();
                }
                Op::Checkpoint => {
                    jn.checkpoint().unwrap();
                    model.sync();
                }
            }
        }
        // Any still-live transactions die with the crash.

        disk.crash(None);
        disk.power_on();
        let (_jn2, _report) = Journal::open(disk.clone(), region).unwrap();
        for bi in 0..DATA_BLOCKS as usize {
            let got = disk.read(DATA_BASE + bi as u32).unwrap();
            prop_assert_eq!(
                &got[..],
                &model.durable[bi][..],
                "block {} diverged from the durable model after recovery",
                bi
            );
        }

        // Idempotence: crash immediately after recovery, recover again.
        disk.crash(None);
        disk.power_on();
        let (_jn3, _report) = Journal::open(disk.clone(), region).unwrap();
        for bi in 0..DATA_BLOCKS as usize {
            let got = disk.read(DATA_BASE + bi as u32).unwrap();
            prop_assert_eq!(&got[..], &model.durable[bi][..]);
        }
    }
}
