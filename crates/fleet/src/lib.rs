//! The fleet layer: one cell, many file servers, volumes as the unit
//! of placement (§2.1).
//!
//! A [`Fleet`] wraps a [`Cell`] whose file servers each host a disjoint
//! subset of the volumes. The replicated VLDB is the authoritative
//! volume→server map (with per-entry generation numbers); servers
//! answer calls for volumes they do not host with `WrongServer` hints
//! (or forward token-free one-shots), and clients chase the hints
//! through their bounded location caches. On top of that routing fabric
//! this layer adds *placement policy*:
//!
//! * [`Fleet::create_volume`] spreads new volumes round-robin;
//! * [`Fleet::move_volume`] drives the live §2.1 migration (clients
//!   keep working through the bulk copy and keep their tokens across
//!   the switch);
//! * [`Fleet::rebalance`] reads the per-volume operation counters every
//!   server already maintains, picks the hottest volume on the busiest
//!   server, and moves it to the least-busy server.
//!
//! Lock discipline: the fleet's planning lock is ranked
//! `FLEET_REGISTRY`, *below* every server-side lock, because planning
//! inspects servers (their stats take rank `STATS`). It is never held
//! across an RPC — moves run with no fleet lock held at all.

use dfs_core::Cell;
use dfs_server::ServerStats;
use dfs_types::lock::{rank, OrderedCondvar, OrderedMutex};
use dfs_types::{DfsError, DfsResult, ServerId, VolumeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Per-server load observed by [`Fleet::load`]: total file ops and the
/// per-volume breakdown, as deltas since the previous observation.
#[derive(Clone, Debug)]
pub struct ServerLoad {
    /// Which server (its id, not slot index).
    pub server: ServerId,
    /// Volume-attributed file RPCs served since the last observation
    /// (the sum of `volume_ops`). Admin traffic — volume dumps,
    /// restores, token installs from a move in progress — is excluded,
    /// so a migration's own bookkeeping never reads as client load and
    /// ping-pongs the volume back.
    pub ops: u64,
    /// The per-volume breakdown of those ops.
    pub volume_ops: HashMap<VolumeId, u64>,
}

/// Fleet-wide placement planning state. Guarded at `FLEET_REGISTRY`;
/// never held across an RPC.
#[derive(Default)]
struct PlanState {
    /// Next slot for round-robin volume creation.
    next_slot: usize,
    /// Cumulative per-volume op counts at the last `load()` call, so
    /// observations are deltas (recent load, not lifetime totals).
    seen_volume_ops: HashMap<(ServerId, VolumeId), u64>,
    /// Volume moves this fleet has driven.
    moves: u64,
}

/// Wake/stop/pause flags for the background rebalancer, guarded at
/// rank `FLEET_DAEMON` (same shape as the client's flusher control).
#[derive(Default)]
struct DaemonCtl {
    stop: bool,
    kicked: bool,
    paused: bool,
}

/// A volume-sharded cluster of file servers over one cell.
pub struct Fleet {
    cell: Cell,
    plan: OrderedMutex<PlanState, { rank::FLEET_REGISTRY }>,
    daemon_ctl: OrderedMutex<DaemonCtl, { rank::FLEET_DAEMON }>,
    daemon_cv: OrderedCondvar,
    daemon_join: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Rebalance passes the daemon has run (including no-op passes).
    daemon_passes: AtomicU64,
}

impl Fleet {
    /// Wraps an already-built cell. Use `Cell::builder().servers(n)`
    /// to choose the fleet size.
    pub fn new(cell: Cell) -> Fleet {
        Fleet {
            cell,
            plan: OrderedMutex::new(PlanState::default()),
            daemon_ctl: OrderedMutex::new(DaemonCtl::default()),
            daemon_cv: OrderedCondvar::new(),
            daemon_join: parking_lot::Mutex::new(None),
            daemon_passes: AtomicU64::new(0),
        }
    }

    /// Builds a fleet of `servers` file servers with cell defaults.
    pub fn start(servers: u32) -> DfsResult<Fleet> {
        Ok(Fleet::new(Cell::builder().servers(servers).build()?))
    }

    // ------------------------------------------------------------------
    // The rebalance daemon
    // ------------------------------------------------------------------

    /// Spawns the background rebalancer: a daemon thread that runs one
    /// [`Fleet::rebalance`] pass every `interval` (or sooner when
    /// kicked). Idempotent — a second call while a daemon is running is
    /// a no-op. The daemon holds only a weak reference, so dropping the
    /// fleet stops it; [`Fleet::stop_rebalancer`] (also run on drop)
    /// stops it deterministically and joins the thread.
    pub fn spawn_rebalancer(self: &Arc<Fleet>, interval: Duration) {
        let mut join = self.daemon_join.lock();
        if join.is_some() {
            return;
        }
        self.daemon_ctl.lock().stop = false;
        let weak = Arc::downgrade(self);
        let handle = std::thread::Builder::new()
            .name("dfs-rebalancer".into())
            .spawn(move || Fleet::rebalancer_main(weak, interval))
            .expect("spawn rebalancer");
        *join = Some(handle);
    }

    fn rebalancer_main(weak: Weak<Fleet>, interval: Duration) {
        loop {
            let Some(fleet) = weak.upgrade() else { return };
            {
                let mut ctl = fleet.daemon_ctl.lock();
                if !ctl.kicked && !ctl.stop {
                    fleet.daemon_cv.wait_for(&mut ctl, interval);
                }
                if ctl.stop {
                    return;
                }
                ctl.kicked = false;
                if ctl.paused {
                    continue;
                }
            }
            // No daemon lock held across planning: rebalance takes the
            // FLEET_REGISTRY plan lock and server-side stats locks.
            let _ = fleet.rebalance();
            fleet.daemon_passes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Wakes the rebalancer ahead of its timer.
    pub fn kick_rebalancer(&self) {
        self.daemon_ctl.lock().kicked = true;
        self.daemon_cv.notify_all();
    }

    /// Quiesces (or resumes) the rebalancer — e.g. around a manually
    /// driven migration that must not race a daemon-driven move.
    pub fn pause_rebalancer(&self, paused: bool) {
        self.daemon_ctl.lock().paused = paused;
        if !paused {
            self.daemon_cv.notify_all();
        }
    }

    /// Stops the rebalancer and joins its thread. Safe to call with no
    /// daemon running.
    pub fn stop_rebalancer(&self) {
        let handle = self.daemon_join.lock().take();
        if let Some(h) = handle {
            self.daemon_ctl.lock().stop = true;
            self.daemon_cv.notify_all();
            let _ = h.join();
        }
    }

    /// Rebalance passes the daemon has completed (no-ops included).
    pub fn rebalancer_passes(&self) -> u64 {
        self.daemon_passes.load(Ordering::Relaxed)
    }

    /// The underlying cell (clients, clock, crash injection).
    pub fn cell(&self) -> &Cell {
        &self.cell
    }

    /// Number of file servers.
    pub fn server_count(&self) -> usize {
        self.cell.server_count()
    }

    /// Volume moves driven through this fleet.
    pub fn moves(&self) -> u64 {
        self.plan.lock().moves
    }

    /// Fleet-wide server statistics: every live slot's counters summed
    /// (`volume_ops` merged per key). Crashed slots still answer — the
    /// stats handle is process-local — so nothing is silently dropped.
    pub fn aggregate_server_stats(&self) -> ServerStats {
        let mut total = ServerStats::default();
        for i in 0..self.cell.server_count() {
            total.merge(&self.cell.server(i).stats());
        }
        total
    }

    /// The fleet's disk critical path: the largest simulated busy time
    /// (µs) across the per-server disks. Disks are the per-server
    /// bottleneck resource, so aggregate throughput experiments divide
    /// work done by this number (see EXPERIMENTS.md T15).
    pub fn disk_critical_path_us(&self) -> u64 {
        (0..self.cell.server_count())
            .map(|i| self.cell.server_disk_stats(i).busy_us)
            .max()
            .unwrap_or(0)
    }

    /// Maps a server id to its cell slot index.
    fn slot_of(&self, id: ServerId) -> DfsResult<usize> {
        for i in 0..self.cell.server_count() {
            if self.cell.server(i).id() == id {
                return Ok(i);
            }
        }
        Err(DfsError::NoSuchVolume)
    }

    /// The slot index currently hosting `volume`, per the VLDB.
    pub fn server_of(&self, volume: VolumeId) -> DfsResult<usize> {
        let id = self.cell.vldb().lookup(volume)?;
        self.slot_of(id)
    }

    /// Creates `volume` on the next server in round-robin order and
    /// returns the slot index it landed on.
    pub fn create_volume(&self, volume: VolumeId, name: &str) -> DfsResult<usize> {
        let slot = {
            let mut plan = self.plan.lock();
            let slot = plan.next_slot % self.cell.server_count();
            plan.next_slot += 1;
            slot
        };
        self.cell.create_volume(slot, volume, name)?;
        Ok(slot)
    }

    /// Live-migrates `volume` to the server in slot `dst` (§2.1): the
    /// bulk of the data ships while clients keep working; they are
    /// blocked only for the delta, and keep their tokens across the
    /// switch. A no-op if the volume already lives there.
    pub fn move_volume(&self, volume: VolumeId, dst: usize) -> DfsResult<()> {
        let src = self.server_of(volume)?;
        if src == dst {
            return Ok(());
        }
        self.cell.move_volume(src, dst, volume)?;
        self.plan.lock().moves += 1;
        Ok(())
    }

    /// Observes each server's load since the previous observation:
    /// total file ops and the per-volume breakdown, as deltas. This is
    /// the §2.1 "addressing problems of load balancing" signal — the
    /// counters already exist on every server; the fleet just reads
    /// and differences them.
    pub fn load(&self) -> Vec<ServerLoad> {
        // Snapshot all server stats first, with no fleet lock held.
        let snaps: Vec<(ServerId, ServerStats)> = (0..self.cell.server_count())
            .map(|i| {
                let srv = self.cell.server(i);
                (srv.id(), srv.stats())
            })
            .collect();
        let mut plan = self.plan.lock();
        snaps
            .into_iter()
            .map(|(id, stats)| {
                let mut volume_ops = HashMap::new();
                for (vol, count) in stats.volume_ops {
                    let prev_v =
                        plan.seen_volume_ops.insert((id, vol), count).unwrap_or(0);
                    let delta = count.saturating_sub(prev_v);
                    if delta > 0 {
                        volume_ops.insert(vol, delta);
                    }
                }
                let ops = volume_ops.values().sum();
                ServerLoad { server: id, ops, volume_ops }
            })
            .collect()
    }

    /// One rebalance pass: picks the hottest volume on the busiest
    /// server and moves it to the least-busy server. Returns what moved
    /// (volume, from-slot, to-slot), or `None` when the fleet is too
    /// small, idle, or already balanced enough for a move to be noise
    /// (the busiest server's load must exceed the least-busy's by more
    /// than the candidate volume's own load would correct).
    pub fn rebalance(&self) -> DfsResult<Option<(VolumeId, usize, usize)>> {
        if self.cell.server_count() < 2 {
            return Ok(None);
        }
        let loads = self.load();
        let busiest = loads.iter().max_by_key(|l| l.ops).expect("servers >= 2");
        let coldest = loads.iter().min_by_key(|l| l.ops).expect("servers >= 2");
        if busiest.server == coldest.server {
            return Ok(None);
        }
        // The hottest volume actually *hosted* by the busiest server —
        // its counters also count redirects for volumes it moved away.
        let mut candidates: Vec<(&VolumeId, &u64)> = busiest.volume_ops.iter().collect();
        candidates.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (&vol, &heat) in candidates {
            let Ok(src) = self.server_of(vol) else { continue };
            if self.cell.server(src).id() != busiest.server {
                continue;
            }
            // Moving `vol` shifts `heat` ops: only worth it while the
            // imbalance is larger than the shift.
            if busiest.ops.saturating_sub(coldest.ops) <= heat {
                return Ok(None);
            }
            let dst = self.slot_of(coldest.server)?;
            self.move_volume(vol, dst)?;
            return Ok(Some((vol, src, dst)));
        }
        Ok(None)
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.stop_rebalancer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_placement_and_lookup() {
        let fleet = Fleet::start(3).unwrap();
        let mut slots = Vec::new();
        for v in 1..=6u64 {
            slots.push(fleet.create_volume(VolumeId(v), &format!("vol{v}")).unwrap());
        }
        assert_eq!(slots, vec![0, 1, 2, 0, 1, 2]);
        for v in 1..=6u64 {
            assert_eq!(fleet.server_of(VolumeId(v)).unwrap(), ((v - 1) % 3) as usize);
        }
    }

    #[test]
    fn move_updates_placement() {
        let fleet = Fleet::start(2).unwrap();
        fleet.create_volume(VolumeId(1), "a").unwrap();
        assert_eq!(fleet.server_of(VolumeId(1)).unwrap(), 0);
        fleet.move_volume(VolumeId(1), 1).unwrap();
        assert_eq!(fleet.server_of(VolumeId(1)).unwrap(), 1);
        assert_eq!(fleet.moves(), 1);
        // Moving to where it already is: a no-op, not an error.
        fleet.move_volume(VolumeId(1), 1).unwrap();
        assert_eq!(fleet.moves(), 1);
    }

    #[test]
    fn rebalance_moves_the_hottest_volume_off_the_busiest_server() {
        let fleet = Fleet::start(2).unwrap();
        fleet.create_volume(VolumeId(1), "hot").unwrap(); // slot 0
        fleet.create_volume(VolumeId(2), "cold").unwrap(); // slot 1
        fleet.create_volume(VolumeId(3), "warm").unwrap(); // slot 0
        let c = fleet.cell().new_client();
        let hot_root = c.root(VolumeId(1)).unwrap();
        let warm_root = c.root(VolumeId(3)).unwrap();
        // Drive heavy traffic at volume 1, a trickle at volume 3:
        // server 0 is the busiest and volume 1 its hottest volume.
        for i in 0..30 {
            let f = c.create(hot_root, &format!("f{i}"), 0o644).unwrap();
            c.write(f.fid, 0, b"x").unwrap();
            c.fsync(f.fid).unwrap();
        }
        let w = c.create(warm_root, "w", 0o644).unwrap();
        c.write(w.fid, 0, b"y").unwrap();
        c.fsync(w.fid).unwrap();
        let moved = fleet.rebalance().unwrap();
        assert_eq!(moved, Some((VolumeId(1), 0, 1)));
        assert_eq!(fleet.server_of(VolumeId(1)).unwrap(), 1);
        // The move is transparent to the client.
        assert_eq!(c.read(w.fid, 0, 4).unwrap(), b"y");
        let f0 = c.lookup(hot_root, "f0").unwrap();
        assert_eq!(c.read(f0.fid, 0, 4).unwrap(), b"x");
    }

    #[test]
    fn rebalancer_daemon_runs_pauses_and_stops() {
        let fleet = Arc::new(Fleet::start(2).unwrap());
        fleet.create_volume(VolumeId(1), "hot").unwrap(); // slot 0
        fleet.create_volume(VolumeId(2), "cold").unwrap(); // slot 1
        fleet.create_volume(VolumeId(3), "warm").unwrap(); // slot 0
        let c = fleet.cell().new_client();
        let hot_root = c.root(VolumeId(1)).unwrap();
        let warm_root = c.root(VolumeId(3)).unwrap();
        for i in 0..30 {
            let f = c.create(hot_root, &format!("f{i}"), 0o644).unwrap();
            c.write(f.fid, 0, b"x").unwrap();
            c.fsync(f.fid).unwrap();
        }
        let w = c.create(warm_root, "w", 0o644).unwrap();
        c.write(w.fid, 0, b"y").unwrap();
        c.fsync(w.fid).unwrap();
        // Long timer, kicked explicitly: the pass is deterministic.
        fleet.spawn_rebalancer(Duration::from_secs(3600));
        fleet.kick_rebalancer();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while fleet.rebalancer_passes() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(fleet.rebalancer_passes() >= 1, "daemon never ran a pass");
        assert_eq!(fleet.moves(), 1, "daemon moved the hot volume");
        assert_eq!(fleet.server_of(VolumeId(1)).unwrap(), 1);
        // Paused: a kick wakes the daemon but plans nothing.
        fleet.pause_rebalancer(true);
        let before = fleet.moves();
        fleet.kick_rebalancer();
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(fleet.moves(), before, "paused daemon must not move volumes");
        fleet.pause_rebalancer(false);
        fleet.stop_rebalancer();
        // Idempotent stop; spawn-after-stop restarts cleanly.
        fleet.stop_rebalancer();
        fleet.spawn_rebalancer(Duration::from_secs(3600));
        fleet.stop_rebalancer();
    }

    #[test]
    fn load_reports_deltas_not_totals() {
        let fleet = Fleet::start(1).unwrap();
        fleet.create_volume(VolumeId(1), "v").unwrap();
        let c = fleet.cell().new_client();
        let root = c.root(VolumeId(1)).unwrap();
        let f = c.create(root, "f", 0o644).unwrap();
        c.write(f.fid, 0, b"z").unwrap();
        c.fsync(f.fid).unwrap();
        let first = fleet.load();
        assert!(first[0].ops > 0);
        // No traffic since: the next observation reports ~nothing.
        let second = fleet.load();
        assert_eq!(second[0].ops, 0);
        assert!(second[0].volume_ops.is_empty());
    }
}
