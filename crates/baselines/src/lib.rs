//! Baseline distributed file systems for the §5.4 comparison.
//!
//! "In this section we compare tokens with the spectrum of distributed
//! file system semantic models": this crate reimplements the two
//! comparators exactly as the paper describes them —
//!
//! * **NFS-style** ([`NfsServer`]/[`NfsClient`]): "a page of cached file
//!   data is assumed to be valid for 3 seconds; if it is directory data,
//!   it is assumed to be valid for 30 seconds" — weak consistency *and*
//!   chatty validation traffic;
//! * **AFS-style** ([`AfsServer`]/[`AfsClient`]): whole-file caching
//!   with untyped callbacks; dirty data is stored back at `close`, so
//!   readers can see stale data between a writer's `write` and `close`,
//!   and disjoint sharers ship the entire file back and forth.
//!
//! Both are built on the same [`dfs_vfs::VfsPlus`] substrate and
//! [`dfs_rpc::Network`] as the DEcorum implementation, so experiment T3
//! and T4 measure protocol differences, not substrate differences.

pub mod afs;
pub mod nfs;

pub use afs::{AfsClient, AfsServer};
pub use nfs::{NfsClient, NfsServer};
