//! The AFS-style baseline: whole-file caching with untyped callbacks.
//!
//! §5.4: "AFS 'callbacks' are roughly equivalent to DEcorum status read
//! tokens ... because callbacks are the only synchronization mechanism,
//! they are overburdened. There are not separate callbacks for reading
//! and writing, nor for status and data. ... it stores data back to the
//! server when the file is closed." And: "Callbacks cannot describe byte
//! ranges of data. If a group of users are accessing (and modifying) the
//! same large file, even though they may be using disjoint parts of it,
//! the file will frequently be shipped back and forth in its entirety."

use dfs_rpc::{Addr, CallClass, CallContext, Network, PoolConfig, Request, Response, RpcService};
use dfs_token::{Token, TokenId, TokenTypes};
use dfs_types::{ByteRange, ClientId, DfsError, DfsResult, FileStatus, Fid, ServerId, VolumeId};
use dfs_vfs::{Credentials, VfsPlus};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// AFS-style server statistics.
#[derive(Clone, Debug, Default)]
pub struct AfsServerStats {
    /// Whole-file fetches served.
    pub fetches: u64,
    /// Whole-file stores received.
    pub stores: u64,
    /// Callbacks broken.
    pub callbacks_broken: u64,
}

/// The AFS-style exporter: whole-file transfer plus a callback registry.
pub struct AfsServer {
    net: Network,
    addr: Addr,
    fs: Arc<dyn VfsPlus>,
    /// fid → clients holding a callback promise.
    callbacks: Mutex<HashMap<Fid, HashSet<ClientId>>>,
    stats: Mutex<AfsServerStats>,
}

impl AfsServer {
    /// Binds the exporter at `Server(id)`.
    pub fn start(net: &Network, id: ServerId, fs: Arc<dyn VfsPlus>) -> Arc<AfsServer> {
        let srv = Arc::new(AfsServer {
            net: net.clone(),
            addr: Addr::Server(id),
            fs,
            callbacks: Mutex::new(HashMap::new()),
            stats: Mutex::new(AfsServerStats::default()),
        });
        net.register(Addr::Server(id), srv.clone(), PoolConfig::default());
        srv
    }

    /// Server statistics.
    pub fn stats(&self) -> AfsServerStats {
        self.stats.lock().clone()
    }

    /// Breaks every callback on `fid` except `keep`'s.
    fn break_callbacks(&self, fid: Fid, keep: Option<ClientId>) {
        let holders: Vec<ClientId> = {
            let mut cbs = self.callbacks.lock();
            match cbs.get_mut(&fid) {
                Some(set) => {
                    let holders = set.iter().copied().filter(|c| Some(*c) != keep).collect();
                    set.retain(|c| Some(*c) == keep);
                    holders
                }
                None => Vec::new(),
            }
        };
        for c in holders {
            self.stats.lock().callbacks_broken += 1;
            // An untyped callback break, carried as a revocation of a
            // status-read token (the paper's own analogy).
            let _ = self.net.call(
                self.addr,
                Addr::Client(c),
                None,
                CallClass::Revocation,
                Request::RevokeToken {
                    token: Token {
                        id: TokenId(0),
                        fid,
                        types: TokenTypes::STATUS_READ,
                        range: ByteRange::WHOLE,
                    },
                    types: TokenTypes::STATUS_READ,
                    stamp: Default::default(),
                },
            );
        }
    }
}

impl RpcService for AfsServer {
    fn dispatch(&self, ctx: CallContext, req: Request) -> Response {
        let cred = Credentials::system();
        let caller = match ctx.caller {
            Addr::Client(c) => Some(c),
            _ => None,
        };
        let r = (|| -> DfsResult<Response> {
            match req {
                Request::GetRoot { .. } => Ok(Response::FidIs(self.fs.root()?)),
                Request::FetchStatus { fid, .. } => Ok(Response::Status {
                    status: self.fs.getattr(&cred, fid)?,
                    tokens: Vec::new(),
                    stamp: Default::default(),
                    epoch: 1,
                    stale_us: 0,
                }),
                // AFS fetches the whole file and registers a callback.
                Request::FetchData { fid, .. } => {
                    let status = self.fs.getattr(&cred, fid)?;
                    let bytes = self.fs.read(&cred, fid, 0, status.length as usize)?;
                    if let Some(c) = caller {
                        self.callbacks.lock().entry(fid).or_default().insert(c);
                    }
                    self.stats.lock().fetches += 1;
                    Ok(Response::Data {
                        bytes,
                        status,
                        tokens: Vec::new(),
                        stamp: Default::default(),
                        epoch: 1,
                        stale_us: 0,
                    })
                }
                // Store (at close) replaces file contents and breaks the
                // other holders' callbacks.
                Request::StoreData { fid, offset, data } => {
                    let status = self.fs.write(&cred, fid, offset, &data)?;
                    self.stats.lock().stores += 1;
                    self.break_callbacks(fid, caller);
                    Ok(Response::Status {
                        status,
                        tokens: Vec::new(),
                        stamp: Default::default(),
                        epoch: 1,
                        stale_us: 0,
                    })
                }
                Request::Lookup { dir, name, .. } => Ok(Response::Status {
                    status: self.fs.lookup(&cred, dir, &name)?,
                    tokens: Vec::new(),
                    stamp: Default::default(),
                    epoch: 1,
                    stale_us: 0,
                }),
                Request::Create { dir, name, mode } => {
                    let status = self.fs.create(&cred, dir, &name, mode)?;
                    self.break_callbacks(dir, caller);
                    Ok(Response::Status {
                        status,
                        tokens: Vec::new(),
                        stamp: Default::default(),
                        epoch: 1,
                        stale_us: 0,
                    })
                }
                Request::Readdir { dir } => Ok(Response::Entries(self.fs.readdir(&cred, dir)?)),
                _ => Err(DfsError::InvalidArgument),
            }
        })();
        r.unwrap_or_else(Response::Err)
    }
}

struct AfsFile {
    data: Vec<u8>,
    status: FileStatus,
    /// Callback promise still valid?
    valid: bool,
    dirty: bool,
}

/// AFS-style client statistics.
#[derive(Clone, Debug, Default)]
pub struct AfsClientStats {
    /// Whole files fetched.
    pub fetches: u64,
    /// Bytes fetched.
    pub bytes_fetched: u64,
    /// Whole files stored at close.
    pub stores: u64,
    /// Bytes stored.
    pub bytes_stored: u64,
    /// Callback breaks received.
    pub callback_breaks: u64,
    /// Reads served from the whole-file cache.
    pub cached_reads: u64,
}

/// The AFS-style client: whole-file cache, store-on-close.
pub struct AfsClient {
    net: Network,
    addr: Addr,
    server: Addr,
    files: Mutex<HashMap<Fid, AfsFile>>,
    stats: Mutex<AfsClientStats>,
}

impl AfsClient {
    /// Creates the client and binds its callback service at `Client(id)`.
    pub fn start(net: Network, id: ClientId, server: ServerId) -> Arc<AfsClient> {
        let cm = Arc::new(AfsClient {
            net: net.clone(),
            addr: Addr::Client(id),
            server: Addr::Server(server),
            files: Mutex::new(HashMap::new()),
            stats: Mutex::new(AfsClientStats::default()),
        });
        net.register(Addr::Client(id), cm.clone(), PoolConfig::default());
        cm
    }

    /// Client statistics.
    pub fn stats(&self) -> AfsClientStats {
        self.stats.lock().clone()
    }

    fn call(&self, req: Request) -> DfsResult<Response> {
        self.net.call(self.addr, self.server, None, CallClass::Normal, req)?.into_result()
    }

    /// Root of the exported volume.
    pub fn root(&self, volume: VolumeId) -> DfsResult<Fid> {
        match self.call(Request::GetRoot { volume })? {
            Response::FidIs(f) => Ok(f),
            _ => Err(DfsError::Internal("bad response")),
        }
    }

    /// Ensures the whole file is cached under a valid callback.
    fn ensure_cached(&self, fid: Fid) -> DfsResult<()> {
        {
            let files = self.files.lock();
            if files.get(&fid).is_some_and(|f| f.valid) {
                return Ok(());
            }
        }
        match self.call(Request::FetchData { fid, offset: 0, len: u32::MAX, want: None })? {
            Response::Data { bytes, status, .. } => {
                let mut stats = self.stats.lock();
                stats.fetches += 1;
                stats.bytes_fetched += bytes.len() as u64;
                drop(stats);
                self.files
                    .lock()
                    .insert(fid, AfsFile { data: bytes, status, valid: true, dirty: false });
                Ok(())
            }
            _ => Err(DfsError::Internal("bad response")),
        }
    }

    /// Reads from the cached whole file.
    pub fn read(&self, fid: Fid, offset: u64, len: usize) -> DfsResult<Vec<u8>> {
        self.ensure_cached(fid)?;
        let files = self.files.lock();
        let f = files.get(&fid).expect("just cached");
        let end = (f.data.len() as u64).min(offset + len as u64);
        if offset >= end {
            return Ok(Vec::new());
        }
        self.stats.lock().cached_reads += 1;
        Ok(f.data[offset as usize..end as usize].to_vec())
    }

    /// Writes into the cached copy; nothing reaches the server until
    /// [`AfsClient::close`] — the §5.4 consistency gap.
    pub fn write(&self, fid: Fid, offset: u64, data: &[u8]) -> DfsResult<()> {
        self.ensure_cached(fid)?;
        let mut files = self.files.lock();
        let f = files.get_mut(&fid).expect("just cached");
        let end = offset as usize + data.len();
        if f.data.len() < end {
            f.data.resize(end, 0);
        }
        f.data[offset as usize..end].copy_from_slice(data);
        f.status.length = f.data.len() as u64;
        f.dirty = true;
        Ok(())
    }

    /// Closes the file: stores the whole file back if dirty.
    pub fn close(&self, fid: Fid) -> DfsResult<()> {
        let payload = {
            let mut files = self.files.lock();
            match files.get_mut(&fid) {
                Some(f) if f.dirty => {
                    f.dirty = false;
                    Some(f.data.clone())
                }
                _ => None,
            }
        };
        if let Some(data) = payload {
            let mut stats = self.stats.lock();
            stats.stores += 1;
            stats.bytes_stored += data.len() as u64;
            drop(stats);
            self.call(Request::StoreData { fid, offset: 0, data })?;
        }
        Ok(())
    }

    /// Creates a file.
    pub fn create(&self, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        match self.call(Request::Create { dir, name: name.into(), mode })? {
            Response::Status { status, .. } => Ok(status),
            _ => Err(DfsError::Internal("bad response")),
        }
    }

    /// Looks up a name.
    pub fn lookup(&self, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        match self.call(Request::Lookup { dir, name: name.into(), want: None })? {
            Response::Status { status, .. } => Ok(status),
            _ => Err(DfsError::Internal("bad response")),
        }
    }
}

impl RpcService for AfsClient {
    fn dispatch(&self, _ctx: CallContext, req: Request) -> Response {
        match req {
            Request::RevokeToken { token, .. } => {
                // A callback break: invalidate the whole cached file.
                self.stats.lock().callback_breaks += 1;
                if let Some(f) = self.files.lock().get_mut(&token.fid) {
                    f.valid = false;
                }
                Response::RevokeAck { returned: true }
            }
            _ => Response::Err(DfsError::InvalidArgument),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_disk::{DiskConfig, SimDisk};
    use dfs_episode::{Episode, FormatParams};
    use dfs_types::SimClock;
    use dfs_vfs::PhysicalFs;

    fn setup() -> (Network, Arc<AfsServer>, Arc<AfsClient>, Arc<AfsClient>) {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 500);
        let disk = SimDisk::new(DiskConfig::with_blocks(16384));
        let ep = Episode::format(disk, clock, FormatParams::default()).unwrap();
        ep.create_volume(VolumeId(1), "v").unwrap();
        let vol = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
        let srv = AfsServer::start(&net, ServerId(1), vol);
        let a = AfsClient::start(net.clone(), ClientId(1), ServerId(1));
        let b = AfsClient::start(net.clone(), ClientId(2), ServerId(1));
        (net, srv, a, b)
    }

    #[test]
    fn whole_file_cache_round_trip() {
        let (_, _, a, _) = setup();
        let root = a.root(VolumeId(1)).unwrap();
        let f = a.create(root, "f", 0o644).unwrap();
        a.write(f.fid, 0, b"afs data").unwrap();
        a.close(f.fid).unwrap();
        assert_eq!(a.read(f.fid, 0, 16).unwrap(), b"afs data");
    }

    #[test]
    fn staleness_until_close() {
        // The §5.4 gap: B cannot see A's write until A closes.
        let (_, _, a, b) = setup();
        let root = a.root(VolumeId(1)).unwrap();
        let f = a.create(root, "shared", 0o666).unwrap();
        a.write(f.fid, 0, b"v1").unwrap();
        a.close(f.fid).unwrap();
        assert_eq!(b.read(f.fid, 0, 8).unwrap(), b"v1");
        a.write(f.fid, 0, b"v2").unwrap();
        assert_eq!(
            b.read(f.fid, 0, 8).unwrap(),
            b"v1",
            "written but unclosed data is invisible in AFS"
        );
        a.close(f.fid).unwrap();
        assert_eq!(b.read(f.fid, 0, 8).unwrap(), b"v2", "close broke B's callback");
        assert!(b.stats().callback_breaks >= 1);
    }

    #[test]
    fn callbacks_eliminate_idle_polling() {
        // Unlike NFS, repeated reads of an unchanged file cost nothing.
        let (net, _, a, _) = setup();
        let root = a.root(VolumeId(1)).unwrap();
        let f = a.create(root, "idle", 0o644).unwrap();
        a.write(f.fid, 0, b"static").unwrap();
        a.close(f.fid).unwrap();
        a.read(f.fid, 0, 6).unwrap();
        let before = net.stats();
        for _ in 0..50 {
            a.read(f.fid, 0, 6).unwrap();
        }
        assert_eq!(net.stats().since(&before).calls, 0);
    }

    #[test]
    fn disjoint_writers_ship_the_whole_file() {
        // §5.4: no byte ranges — the file ping-pongs in its entirety.
        let (_, srv, a, b) = setup();
        let root = a.root(VolumeId(1)).unwrap();
        let f = a.create(root, "big", 0o666).unwrap();
        a.write(f.fid, 0, &vec![0u8; 128 * 1024]).unwrap();
        a.close(f.fid).unwrap();

        for round in 0..4u64 {
            a.write(f.fid, round * 64, &[1u8; 64]).unwrap();
            a.close(f.fid).unwrap();
            b.write(f.fid, 64 * 1024 + round * 64, &[2u8; 64]).unwrap();
            b.close(f.fid).unwrap();
        }
        // Each handoff re-fetched and re-stored ~128 KiB.
        let sa = a.stats();
        let sb = b.stats();
        let total = sa.bytes_fetched + sa.bytes_stored + sb.bytes_fetched + sb.bytes_stored;
        assert!(
            total > 1024 * 1024,
            "whole-file ping-pong should move > 1 MiB, moved {total}"
        );
        assert!(srv.stats().callbacks_broken >= 4);
    }
}
