//! The NFS-style baseline: stateless server, TTL attribute cache.
//!
//! §5.4: "Relatively weak cache consistency guarantees are provided by
//! the Sun Network File System. A page of cached file data is assumed to
//! be valid for 3 seconds; if it is directory data, it is assumed to be
//! valid for 30 seconds. ... clients must communicate with servers every
//! 3 seconds whether or not any shared data have been modified."

use dfs_rpc::{Addr, CallClass, CallContext, Network, PoolConfig, Request, Response, RpcService};
use dfs_types::{
    ClientId, DfsError, DfsResult, FileStatus, Fid, ServerId, Timestamp, VolumeId,
};
use dfs_vfs::{Credentials, VfsPlus};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Default validity of cached file attributes/data: 3 seconds.
pub const FILE_TTL_US: u64 = 3_000_000;
/// Default validity of cached directory data: 30 seconds.
pub const DIR_TTL_US: u64 = 30_000_000;

/// A stateless NFS-style exporter over one mounted volume.
///
/// No tokens, no callbacks: the server answers each call and remembers
/// nothing about clients.
pub struct NfsServer {
    fs: Arc<dyn VfsPlus>,
}

impl NfsServer {
    /// Binds the exporter at `Server(id)`.
    pub fn start(net: &Network, id: ServerId, fs: Arc<dyn VfsPlus>) -> Arc<NfsServer> {
        let srv = Arc::new(NfsServer { fs });
        net.register(Addr::Server(id), srv.clone(), PoolConfig::default());
        srv
    }
}

impl RpcService for NfsServer {
    fn dispatch(&self, _ctx: CallContext, req: Request) -> Response {
        let cred = Credentials::system();
        let r = (|| -> DfsResult<Response> {
            match req {
                Request::GetRoot { .. } => Ok(Response::FidIs(self.fs.root()?)),
                Request::FetchStatus { fid, .. } => Ok(Response::Status {
                    status: self.fs.getattr(&cred, fid)?,
                    tokens: Vec::new(),
                    stamp: Default::default(),
                    epoch: 1,
                    stale_us: 0,
                }),
                Request::FetchData { fid, offset, len, .. } => {
                    let bytes = self.fs.read(&cred, fid, offset, len as usize)?;
                    let status = self.fs.getattr(&cred, fid)?;
                    Ok(Response::Data {
                        bytes,
                        status,
                        tokens: Vec::new(),
                        stamp: Default::default(),
                        epoch: 1,
                        stale_us: 0,
                    })
                }
                Request::StoreData { fid, offset, data } => {
                    // NFSv2 semantics: the write is synchronous and
                    // durable before the reply.
                    let status = self.fs.write(&cred, fid, offset, &data)?;
                    self.fs.fsync(&cred, fid)?;
                    Ok(Response::Status {
                        status,
                        tokens: Vec::new(),
                        stamp: Default::default(),
                        epoch: 1,
                        stale_us: 0,
                    })
                }
                Request::Lookup { dir, name, .. } => Ok(Response::Status {
                    status: self.fs.lookup(&cred, dir, &name)?,
                    tokens: Vec::new(),
                    stamp: Default::default(),
                    epoch: 1,
                    stale_us: 0,
                }),
                Request::Create { dir, name, mode } => Ok(Response::Status {
                    status: self.fs.create(&cred, dir, &name, mode)?,
                    tokens: Vec::new(),
                    stamp: Default::default(),
                    epoch: 1,
                    stale_us: 0,
                }),
                Request::Remove { dir, name } => {
                    let status = self.fs.remove(&cred, dir, &name)?;
                    Ok(Response::Status {
                        status,
                        tokens: Vec::new(),
                        stamp: Default::default(),
                        epoch: 1,
                        stale_us: 0,
                    })
                }
                Request::Readdir { dir } => Ok(Response::Entries(self.fs.readdir(&cred, dir)?)),
                _ => Err(DfsError::InvalidArgument),
            }
        })();
        r.unwrap_or_else(Response::Err)
    }
}

struct CachedAttrs {
    status: FileStatus,
    fetched: Timestamp,
}

struct CachedPage {
    data: Vec<u8>,
    /// Data version of the attrs under which it was fetched (real NFS
    /// compares mtime; the simulated clock can tie, so the version is
    /// the honest equivalent).
    version: u64,
}

/// Client-side NFS statistics.
#[derive(Clone, Debug, Default)]
pub struct NfsStats {
    /// Reads served from cache within the TTL.
    pub cached_reads: u64,
    /// GETATTR-style revalidations.
    pub revalidations: u64,
    /// Data fetches.
    pub fetches: u64,
    /// Synchronous write RPCs.
    pub writes: u64,
}

/// The NFS-style client: per-file attribute cache with fixed TTLs.
pub struct NfsClient {
    net: Network,
    addr: Addr,
    server: Addr,
    file_ttl_us: u64,
    attrs: Mutex<HashMap<Fid, CachedAttrs>>,
    pages: Mutex<HashMap<(Fid, u64), CachedPage>>,
    stats: Mutex<NfsStats>,
}

const PAGE: u64 = 4096;

impl NfsClient {
    /// Creates a client of `server` with the standard 3 s file TTL.
    pub fn new(net: Network, id: ClientId, server: ServerId) -> Arc<NfsClient> {
        NfsClient::with_ttl(net, id, server, FILE_TTL_US)
    }

    /// Creates a client with a custom attribute TTL (for sweeps).
    pub fn with_ttl(
        net: Network,
        id: ClientId,
        server: ServerId,
        file_ttl_us: u64,
    ) -> Arc<NfsClient> {
        Arc::new(NfsClient {
            net,
            addr: Addr::Client(id),
            server: Addr::Server(server),
            file_ttl_us,
            attrs: Mutex::new(HashMap::new()),
            pages: Mutex::new(HashMap::new()),
            stats: Mutex::new(NfsStats::default()),
        })
    }

    /// Client statistics.
    pub fn stats(&self) -> NfsStats {
        self.stats.lock().clone()
    }

    fn call(&self, req: Request) -> DfsResult<Response> {
        self.net.call(self.addr, self.server, None, CallClass::Normal, req)?.into_result()
    }

    /// Root of the exported volume.
    pub fn root(&self, volume: VolumeId) -> DfsResult<Fid> {
        match self.call(Request::GetRoot { volume })? {
            Response::FidIs(f) => Ok(f),
            _ => Err(DfsError::Internal("bad response")),
        }
    }

    /// Returns attributes, revalidating when the TTL has lapsed.
    fn attrs_of(&self, fid: Fid) -> DfsResult<FileStatus> {
        let now = self.net.clock().now();
        {
            let attrs = self.attrs.lock();
            if let Some(c) = attrs.get(&fid) {
                if now.micros_since(c.fetched) < self.file_ttl_us {
                    return Ok(c.status.clone());
                }
            }
        }
        self.stats.lock().revalidations += 1;
        match self.call(Request::FetchStatus { fid, want: None })? {
            Response::Status { status, .. } => {
                self.attrs
                    .lock()
                    .insert(fid, CachedAttrs { status: status.clone(), fetched: now });
                Ok(status)
            }
            _ => Err(DfsError::Internal("bad response")),
        }
    }

    /// Returns the file's status (possibly stale within the TTL).
    pub fn getattr(&self, fid: Fid) -> DfsResult<FileStatus> {
        self.attrs_of(fid)
    }

    /// Reads from the cache when attributes are fresh and the page's
    /// mtime matches; otherwise fetches.
    pub fn read(&self, fid: Fid, offset: u64, len: usize) -> DfsResult<Vec<u8>> {
        let st = self.attrs_of(fid)?;
        let end = st.length.min(offset + len as u64);
        if offset >= end {
            return Ok(Vec::new());
        }
        let first = offset / PAGE;
        let last = (end - 1) / PAGE;
        let mut out = Vec::with_capacity((end - offset) as usize);
        for p in first..=last {
            let cached = {
                let pages = self.pages.lock();
                pages.get(&(fid, p)).and_then(|c| {
                    (c.version == st.data_version).then(|| c.data.clone())
                })
            };
            let data = match cached {
                Some(d) => {
                    self.stats.lock().cached_reads += 1;
                    d
                }
                None => {
                    self.stats.lock().fetches += 1;
                    match self.call(Request::FetchData {
                        fid,
                        offset: p * PAGE,
                        len: PAGE as u32,
                        want: None,
                    })? {
                        Response::Data { mut bytes, .. } => {
                            bytes.resize(PAGE as usize, 0);
                            self.pages.lock().insert(
                                (fid, p),
                                CachedPage { data: bytes.clone(), version: st.data_version },
                            );
                            bytes
                        }
                        _ => return Err(DfsError::Internal("bad response")),
                    }
                }
            };
            let ps = p * PAGE;
            let s = offset.max(ps) - ps;
            let e = (end - ps).min(PAGE);
            out.extend_from_slice(&data[s as usize..e as usize]);
        }
        Ok(out)
    }

    /// Writes through to the server (synchronous NFSv2 write).
    pub fn write(&self, fid: Fid, offset: u64, data: &[u8]) -> DfsResult<FileStatus> {
        self.stats.lock().writes += 1;
        match self.call(Request::StoreData { fid, offset, data: data.to_vec() })? {
            Response::Status { status, .. } => {
                // Update caches with what we know.
                let now = self.net.clock().now();
                self.attrs
                    .lock()
                    .insert(fid, CachedAttrs { status: status.clone(), fetched: now });
                // Invalidate affected pages (simplest correct choice).
                let first = offset / PAGE;
                let last = (offset + data.len() as u64).max(1).div_ceil(PAGE);
                let mut pages = self.pages.lock();
                for p in first..=last {
                    pages.remove(&(fid, p));
                }
                Ok(status)
            }
            _ => Err(DfsError::Internal("bad response")),
        }
    }

    /// Looks up a name (no dir caching here; dir caching only matters
    /// for the TTL-staleness experiments, driven through `read`).
    pub fn lookup(&self, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        match self.call(Request::Lookup { dir, name: name.into(), want: None })? {
            Response::Status { status, .. } => Ok(status),
            _ => Err(DfsError::Internal("bad response")),
        }
    }

    /// Creates a file.
    pub fn create(&self, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        match self.call(Request::Create { dir, name: name.into(), mode })? {
            Response::Status { status, .. } => Ok(status),
            _ => Err(DfsError::Internal("bad response")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_disk::{DiskConfig, SimDisk};
    use dfs_episode::{Episode, FormatParams};
    use dfs_types::SimClock;
    use dfs_vfs::PhysicalFs;

    fn setup() -> (Network, SimClock, Arc<NfsClient>, Arc<NfsClient>) {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 500);
        let disk = SimDisk::new(DiskConfig::with_blocks(16384));
        let ep = Episode::format(disk, clock.clone(), FormatParams::default()).unwrap();
        ep.create_volume(VolumeId(1), "v").unwrap();
        let vol = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
        NfsServer::start(&net, ServerId(1), vol);
        let a = NfsClient::new(net.clone(), ClientId(1), ServerId(1));
        let b = NfsClient::new(net.clone(), ClientId(2), ServerId(1));
        (net, clock, a, b)
    }

    #[test]
    fn read_write_basics() {
        let (_, _, a, _) = setup();
        let root = a.root(VolumeId(1)).unwrap();
        let f = a.create(root, "f", 0o644).unwrap();
        a.write(f.fid, 0, b"nfs data").unwrap();
        assert_eq!(a.read(f.fid, 0, 16).unwrap(), b"nfs data");
        assert_eq!(a.lookup(root, "f").unwrap().fid, f.fid);
    }

    #[test]
    fn stale_reads_within_ttl() {
        // The §5.4 weakness: B does not see A's write for up to 3 s.
        let (_, clock, a, b) = setup();
        let root = a.root(VolumeId(1)).unwrap();
        let f = a.create(root, "shared", 0o666).unwrap();
        a.write(f.fid, 0, b"version 1").unwrap();
        assert_eq!(b.read(f.fid, 0, 16).unwrap(), b"version 1");
        // A overwrites; B's attribute cache is still fresh.
        a.write(f.fid, 0, b"version 2").unwrap();
        assert_eq!(
            b.read(f.fid, 0, 16).unwrap(),
            b"version 1",
            "NFS serves stale data within the 3 s window"
        );
        // After the TTL, B revalidates and sees the new version.
        clock.advance_micros(FILE_TTL_US + 1);
        assert_eq!(b.read(f.fid, 0, 16).unwrap(), b"version 2");
    }

    #[test]
    fn polling_costs_rpcs_even_when_idle() {
        // "clients must communicate with servers every 3 seconds whether
        // or not any shared data have been modified."
        let (net, clock, a, _) = setup();
        let root = a.root(VolumeId(1)).unwrap();
        let f = a.create(root, "idle", 0o644).unwrap();
        a.write(f.fid, 0, b"static").unwrap();
        a.read(f.fid, 0, 8).unwrap();
        let before = net.stats();
        // 30 simulated seconds of a once-per-second reader.
        for _ in 0..30 {
            clock.advance_secs(1);
            a.read(f.fid, 0, 8).unwrap();
        }
        let delta = net.stats().since(&before);
        assert!(
            delta.calls >= 9,
            "~10 revalidations expected over 30 s at a 3 s TTL, saw {}",
            delta.calls
        );
        assert!(a.stats().revalidations >= 9);
    }

    #[test]
    fn writes_always_go_to_server() {
        let (net, _, a, _) = setup();
        let root = a.root(VolumeId(1)).unwrap();
        let f = a.create(root, "w", 0o644).unwrap();
        let before = net.stats();
        for i in 0..20u8 {
            a.write(f.fid, 0, &[i; 64]).unwrap();
        }
        let delta = net.stats().since(&before);
        assert!(delta.calls >= 20, "every NFS write is an RPC");
    }
}
