//! End-to-end cache-coherence tests: cache managers against a live
//! protocol exporter over Episode, exercising the token protocol of §5
//! and the locking/serialization machinery of §6.

use dfs_client::{CacheManager, MemCache, OpenMode};
use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_rpc::{Addr, Network, PoolConfig};
use dfs_server::{FileServer, VldbReplica};
use dfs_types::{ByteRange, ClientId, DfsError, ServerId, SimClock, VolumeId};
use std::sync::Arc;

struct Cell {
    net: Network,
    clock: SimClock,
    servers: Vec<Arc<FileServer>>,
}

fn cell(n_servers: u32) -> Cell {
    let clock = SimClock::new();
    let net = Network::new(clock.clone(), 500);
    net.register(Addr::Vldb(0), VldbReplica::new(), PoolConfig::default());
    net.register(Addr::Kdc, dfs_rpc::KdcService::new(net.auth().clone()), PoolConfig::default());
    let mut servers = Vec::new();
    for i in 1..=n_servers {
        let disk = SimDisk::new(DiskConfig::with_blocks(16384));
        let ep = Episode::format(disk, clock.clone(), FormatParams::default()).unwrap();
        if i == 1 {
            ep.create_volume(VolumeId(1), "root.cell").unwrap();
        }
        servers.push(
            FileServer::start(
                net.clone(),
                ServerId(i),
                ep,
                vec![Addr::Vldb(0)],
                PoolConfig { workers: 8, revocation_workers: 4, require_auth: false },
            )
            .unwrap(),
        );
    }
    Cell { net, clock, servers }
}

fn client(cell: &Cell, n: u32) -> Arc<CacheManager> {
    CacheManager::start(cell.net.clone(), ClientId(n), vec![Addr::Vldb(0)], Arc::new(MemCache::new()))
}

/// A client with no background flusher, for tests that assert on exact
/// network traffic: the 2 ms flush interval would otherwise race the
/// test body and ship re-dirtied pages mid-measurement.
fn client_no_flusher(cell: &Cell, n: u32) -> Arc<CacheManager> {
    CacheManager::start_with_config(
        cell.net.clone(),
        ClientId(n),
        vec![Addr::Vldb(0)],
        Arc::new(MemCache::new()),
        dfs_client::WritebackConfig { flusher: false, ..Default::default() },
    )
}

#[test]
fn create_write_read_through_cache_manager() {
    let cell = cell(1);
    let cm = client(&cell, 1);
    let root = cm.root(VolumeId(1)).unwrap();
    let f = cm.create(root, "hello.txt", 0o644).unwrap();
    cm.write(f.fid, 0, b"cache manager").unwrap();
    assert_eq!(cm.read(f.fid, 0, 64).unwrap(), b"cache manager");
    assert_eq!(cm.read(f.fid, 6, 7).unwrap(), b"manager");
    let st = cm.getattr(f.fid).unwrap();
    assert_eq!(st.length, 13);
}

#[test]
fn repeated_reads_are_local_after_first_fetch() {
    let cell = cell(1);
    let cm = client(&cell, 1);
    let root = cm.root(VolumeId(1)).unwrap();
    let f = cm.create(root, "f", 0o644).unwrap();
    cm.write(f.fid, 0, &vec![7u8; 10_000]).unwrap();
    cm.fsync(f.fid).unwrap();

    let before = cell.net.stats();
    for _ in 0..50 {
        assert_eq!(cm.read(f.fid, 100, 500).unwrap(), vec![7u8; 500]);
    }
    let delta = cell.net.stats().since(&before);
    assert_eq!(delta.calls, 0, "reads under a data token cost zero RPCs (§5.2)");
    assert!(cm.stats().local_reads >= 50);
}

#[test]
fn writes_are_absorbed_locally_under_write_token() {
    let cell = cell(1);
    // No flusher: the test asserts an exact-zero RPC delta, which the
    // 2 ms background flush would otherwise race.
    let cm = client_no_flusher(&cell, 1);
    let root = cm.root(VolumeId(1)).unwrap();
    let f = cm.create(root, "f", 0o644).unwrap();
    cm.write(f.fid, 0, b"first").unwrap(); // Acquires the token.
    let before = cell.net.stats();
    for i in 0..100u64 {
        cm.write(f.fid, 0, format!("write {i}").as_bytes()).unwrap();
    }
    let delta = cell.net.stats().since(&before);
    assert_eq!(
        delta.calls, 0,
        "100 writes under a write token cost zero RPCs — the AFS/NFS contrast of §5.4"
    );
    assert!(cm.stats().local_writes >= 100);
    assert!(cm.dirty_pages(f.fid) > 0, "data is write-behind");
}

#[test]
fn single_system_semantics_between_two_clients() {
    // §5.4: "when one user modifies a file, other users see the
    // modifications as soon as the write system call is complete."
    let cell = cell(1);
    let a = client(&cell, 1);
    let b = client(&cell, 2);
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "shared", 0o666).unwrap();

    a.write(f.fid, 0, b"from A, round 1").unwrap();
    // No fsync, no close: B must still see it (the server revokes A's
    // write token, forcing the dirty pages back).
    assert_eq!(b.read(f.fid, 0, 64).unwrap(), b"from A, round 1");

    b.write(f.fid, 0, b"B overwrites!!!").unwrap();
    assert_eq!(a.read(f.fid, 0, 64).unwrap(), b"B overwrites!!!");
    assert!(a.stats().revocations >= 1, "A's tokens were revoked");
    assert!(b.stats().revocations >= 1, "B's tokens were revoked in turn");
}

#[test]
fn disjoint_byte_ranges_do_not_ping_pong() {
    // §5.4: byte-range tokens let clients modify disjoint parts of one
    // file without shipping it back and forth.
    let cell = cell(1);
    let a = client_no_flusher(&cell, 1);
    let b = client_no_flusher(&cell, 2);
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "big", 0o666).unwrap();
    // Lay the file out first.
    a.write(f.fid, 0, &vec![0u8; 256 * 1024]).unwrap();
    a.fsync(f.fid).unwrap();

    let half = 128 * 1024u64;
    // A claims the first half, B the second (byte-range tokens).
    a.acquire_data_token(f.fid, ByteRange::new(0, half), true).unwrap();
    b.acquire_data_token(f.fid, ByteRange::new(half, 256 * 1024), true).unwrap();
    a.write(f.fid, 0, b"A's half").unwrap();
    b.write(f.fid, half, b"B's half").unwrap();
    let before_a = a.stats();
    let before_b = b.stats();
    let before_net = cell.net.stats();
    for i in 0..50u64 {
        a.write(f.fid, (i * 64) % (half - 64), &[1u8; 64]).unwrap();
        b.write(f.fid, half + (i * 64) % (half - 64), &[2u8; 64]).unwrap();
    }
    let da = a.stats();
    let db = b.stats();
    let dn = cell.net.stats().since(&before_net);
    // Status tokens (whole-file) may ping-pong, but the *data* never
    // ships: no revocation ever forced a dirty store-back, and total
    // traffic is token-sized, not file-sized (the §5.4 contrast: AFS
    // would ship the 256 KiB file back and forth on every handoff).
    assert_eq!(
        da.revocation_stores - before_a.revocation_stores,
        0,
        "A never shipped its half"
    );
    assert_eq!(
        db.revocation_stores - before_b.revocation_stores,
        0,
        "B never shipped its half"
    );
    assert!(
        dn.bytes < 100 * 1024,
        "traffic {} bytes should be token-sized, not ~25 MiB of file ping-pong",
        dn.bytes
    );
}

#[test]
fn revocation_stores_dirty_data_back() {
    let cell = cell(1);
    let a = client(&cell, 1);
    let b = client(&cell, 2);
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "f", 0o666).unwrap();
    a.write(f.fid, 0, b"dirty in A's cache").unwrap();
    assert!(a.dirty_pages(f.fid) > 0);
    // B's read triggers revocation; A must store back first (§5.3).
    assert_eq!(b.read(f.fid, 0, 64).unwrap(), b"dirty in A's cache");
    assert_eq!(a.dirty_pages(f.fid), 0, "revocation flushed A's pages");
    assert!(a.stats().revocation_stores >= 1);
}

#[test]
fn lookup_caching_in_directory_layer() {
    let cell = cell(1);
    let cm = client(&cell, 1);
    let root = cm.root(VolumeId(1)).unwrap();
    cm.create(root, "cached-name", 0o644).unwrap();
    cm.lookup(root, "cached-name").unwrap();
    let before = cell.net.stats();
    for _ in 0..20 {
        cm.lookup(root, "cached-name").unwrap();
    }
    let delta = cell.net.stats().since(&before);
    assert_eq!(delta.calls, 0, "cached lookups cost zero RPCs (§4.3)");
    assert!(cm.stats().lookup_hits >= 20);
}

#[test]
fn cross_client_directory_invalidation() {
    let cell = cell(1);
    let a = client(&cell, 1);
    let b = client(&cell, 2);
    let root = a.root(VolumeId(1)).unwrap();
    a.create(root, "seen-by-both", 0o644).unwrap();
    // A caches the lookup (with dir tokens).
    a.lookup(root, "seen-by-both").unwrap();
    assert!(a.lookup(root, "nonexistent").is_err());
    // B removes the file; A's dir tokens are revoked.
    b.remove(root, "seen-by-both").unwrap();
    assert_eq!(
        a.lookup(root, "seen-by-both").unwrap_err(),
        DfsError::NotFound,
        "A must not serve the stale cached lookup"
    );
}

#[test]
fn open_token_write_vs_execute() {
    // The ETXTBSY case of §5.4: opening for write while another client
    // has the file open for execution is refused.
    let cell = cell(1);
    let a = client(&cell, 1);
    let b = client(&cell, 2);
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "program", 0o755).unwrap();
    a.open(f.fid, OpenMode::Execute).unwrap();
    assert_eq!(
        b.open(f.fid, OpenMode::Write).unwrap_err(),
        DfsError::OpenConflict,
        "cannot write a file being executed"
    );
    a.close(f.fid, OpenMode::Execute).unwrap();
    b.open(f.fid, OpenMode::Write).unwrap();
}

#[test]
fn exclusive_write_open_excludes_everyone() {
    let cell = cell(1);
    let a = client(&cell, 1);
    let b = client(&cell, 2);
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "x", 0o666).unwrap();
    a.open(f.fid, OpenMode::ExclusiveWrite).unwrap();
    assert_eq!(b.open(f.fid, OpenMode::Read).unwrap_err(), DfsError::OpenConflict);
    assert_eq!(b.open(f.fid, OpenMode::Write).unwrap_err(), DfsError::OpenConflict);
}

#[test]
fn lock_tokens_make_locking_local() {
    let cell = cell(1);
    let a = client(&cell, 1);
    let b = client(&cell, 2);
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "locked", 0o666).unwrap();
    // A acquires a lock token covering the first half.
    a.acquire_lock_token(f.fid, ByteRange::new(0, 1000), true).unwrap();
    let before = cell.net.stats();
    for i in 0..10 {
        a.lock(f.fid, ByteRange::new(i * 10, i * 10 + 5), true).unwrap();
        a.unlock(f.fid, ByteRange::new(i * 10, i * 10 + 5)).unwrap();
    }
    let delta = cell.net.stats().since(&before);
    assert_eq!(delta.calls, 0, "token-backed locks cost zero RPCs (§5.2)");
    // B's conflicting lock attempt: A retains the token because a lock
    // is held... first set a long-lived local lock.
    a.lock(f.fid, ByteRange::new(0, 100), true).unwrap();
    assert_eq!(
        b.lock(f.fid, ByteRange::new(50, 60), true).unwrap_err(),
        DfsError::LockConflict
    );
    // After A unlocks and the token is revocable, B succeeds.
    a.unlock(f.fid, ByteRange::new(0, 100)).unwrap();
    b.lock(f.fid, ByteRange::new(50, 60), true).unwrap();
}

#[test]
fn status_caching_and_invalidation() {
    let cell = cell(1);
    let a = client(&cell, 1);
    let b = client(&cell, 2);
    let root = a.root(VolumeId(1)).unwrap();
    let f = a.create(root, "st", 0o666).unwrap();
    a.getattr(f.fid).unwrap();
    let before = cell.net.stats();
    for _ in 0..10 {
        a.getattr(f.fid).unwrap();
    }
    assert_eq!(cell.net.stats().since(&before).calls, 0, "status cached under token");
    // B writes; A's status token is revoked; next getattr refetches and
    // sees the new length.
    b.write(f.fid, 0, &vec![1u8; 5000]).unwrap();
    let st = a.getattr(f.fid).unwrap();
    assert_eq!(st.length, 5000, "A sees B's new length immediately");
}

#[test]
fn truncate_via_setattr_invalidates_tail() {
    let cell = cell(1);
    let cm = client(&cell, 1);
    let root = cm.root(VolumeId(1)).unwrap();
    let f = cm.create(root, "t", 0o644).unwrap();
    cm.write(f.fid, 0, &vec![9u8; 20_000]).unwrap();
    let st = cm
        .setattr(f.fid, &dfs_vfs::SetAttrs::truncate(1000))
        .unwrap();
    assert_eq!(st.length, 1000);
    assert_eq!(cm.read(f.fid, 0, 4096).unwrap().len(), 1000);
    assert_eq!(cm.read(f.fid, 0, 4096).unwrap(), vec![9u8; 1000]);
}

#[test]
fn namespace_operations_via_client() {
    let cell = cell(1);
    let cm = client(&cell, 1);
    let root = cm.root(VolumeId(1)).unwrap();
    let d = cm.mkdir(root, "dir", 0o755).unwrap();
    let f = cm.create(d.fid, "file", 0o644).unwrap();
    cm.write(f.fid, 0, b"data").unwrap();
    cm.link(d.fid, "alias", f.fid).unwrap();
    let names: Vec<String> =
        cm.readdir(d.fid).unwrap().into_iter().map(|e| e.name).collect();
    assert_eq!(names.len(), 2);
    cm.rename(d.fid, "file", root, "moved").unwrap();
    assert!(cm.lookup(d.fid, "file").is_err());
    assert_eq!(cm.lookup(root, "moved").unwrap().fid, f.fid);
    cm.remove(root, "moved").unwrap();
    cm.remove(d.fid, "alias").unwrap();
    cm.rmdir(root, "dir").unwrap();
    assert!(cm.lookup(root, "dir").is_err());
    let s = cm.symlink(root, "ln", "/a/b").unwrap();
    assert_eq!(cm.readlink(s.fid).unwrap(), "/a/b");
}

#[test]
fn volume_move_is_transparent_to_clients() {
    let cell = cell(2);
    let cm = client(&cell, 1);
    let root = cm.root(VolumeId(1)).unwrap();
    let f = cm.create(root, "nomad", 0o644).unwrap();
    cm.write(f.fid, 0, b"before move").unwrap();
    cm.fsync(f.fid).unwrap();

    // Administrator moves the volume to server 2.
    use dfs_rpc::{CallClass, Request, Response};
    let resp = cell
        .net
        .call(
            Addr::Client(ClientId(99)),
            Addr::Server(ServerId(1)),
            None,
            CallClass::Normal,
            Request::VolMove { volume: VolumeId(1), target: ServerId(2) },
        )
        .unwrap();
    assert_eq!(resp, Response::Ok);

    // The same fid keeps working; the client re-consults the VLDB.
    assert_eq!(cm.read(f.fid, 0, 32).unwrap(), b"before move");
    cm.write(f.fid, 0, b"after move!").unwrap();
    assert_eq!(cm.read(f.fid, 0, 32).unwrap(), b"after move!");
    let _ = &cell.servers;
}

#[test]
fn authenticated_client_permissions() {
    let cell = cell(1);
    cell.net.auth().add_user(100, 777);
    cell.net.auth().add_user(200, 888);
    let a = client(&cell, 1);
    let b = client(&cell, 2);
    a.login(100, 777).unwrap();
    b.login(200, 888).unwrap();

    let root = a.root(VolumeId(1)).unwrap();
    // Open the root so plain users can create (server-side system cred
    // created it 0755, owner system).
    let admin = client(&cell, 3);
    admin
        .setattr(root, &dfs_vfs::SetAttrs { mode: Some(0o777), ..Default::default() })
        .unwrap();

    let f = a.create(root, "private", 0o600).unwrap();
    a.write(f.fid, 0, b"secret").unwrap();
    a.fsync(f.fid).unwrap();
    assert_eq!(
        b.read(f.fid, 0, 16).unwrap_err(),
        DfsError::PermissionDenied,
        "user 200 cannot read user 100's 0600 file"
    );
    assert_eq!(a.read(f.fid, 0, 16).unwrap(), b"secret");

    // Wrong password fails.
    assert_eq!(b.login(200, 1).unwrap_err(), DfsError::AuthenticationFailed);
    let _ = cell.clock.now();
}

#[test]
fn queued_revocation_race_is_handled() {
    // Exercise §6.3 heavily: many clients fetch tokens on the same file
    // while others' grants revoke them; queued revocations must never
    // leave a client using a dead token.
    let cell = cell(1);
    let clients: Vec<_> = (1..=4).map(|i| client(&cell, i)).collect();
    let root = clients[0].root(VolumeId(1)).unwrap();
    let f = clients[0].create(root, "contended", 0o666).unwrap();
    clients[0].write(f.fid, 0, &vec![0u8; 8192]).unwrap();

    let threads: Vec<_> = clients
        .iter()
        .enumerate()
        .map(|(i, cm)| {
            let cm = cm.clone();
            let fid = f.fid;
            std::thread::spawn(move || {
                for round in 0..30u64 {
                    let val = (i as u64 * 100 + round) as u8;
                    cm.write(fid, (round % 4) * 256, &[val; 64]).unwrap();
                    let data = cm.read(fid, (round % 4) * 256, 64).unwrap();
                    assert_eq!(data.len(), 64);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    // Every client's final view must agree with the server's.
    let reference = clients[0].read(f.fid, 0, 2048).unwrap();
    for cm in &clients[1..] {
        assert_eq!(cm.read(f.fid, 0, 2048).unwrap(), reference);
    }
}
