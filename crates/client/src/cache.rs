//! The cache layer's page stores (§4.2).
//!
//! "In AFS clients, vnode status information is cached in memory, while
//! file data are cached in disk files provided by the 'native' physical
//! file system. This structure is carried over to DEcorum, with the
//! exception that an in-memory version of the data cache is provided as
//! an option, enabling diskless clients to be used."
//!
//! [`DiskCache`] stores pages on a local [`SimDisk`] (so experiments see
//! client disk traffic); [`MemCache`] is the diskless variant.

use dfs_disk::{SimDisk, BLOCK_SIZE};
use dfs_types::lock::{rank, OrderedMutex};
use dfs_types::{DfsError, DfsResult, Fid};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Page size of the client data cache (one disk block).
pub const PAGE_SIZE: usize = BLOCK_SIZE;

/// A store for cached file pages, keyed by (fid, page index).
pub trait DataCache: Send + Sync {
    /// Reads a cached page, if present.
    fn read_page(&self, fid: Fid, page: u64) -> Option<Vec<u8>>;

    /// Writes (or replaces) a cached page.
    fn write_page(&self, fid: Fid, page: u64, data: &[u8]) -> DfsResult<()>;

    /// Drops one page.
    fn drop_page(&self, fid: Fid, page: u64);

    /// Drops every page of a file.
    fn evict_file(&self, fid: Fid);

    /// Bytes currently cached. O(1) and lock-free in both built-in
    /// caches (a maintained counter), so monitoring and the write-behind
    /// budget checks never contend with the page maps.
    fn bytes_used(&self) -> u64;
}

/// In-memory page cache: the diskless-client option (§4.2).
#[derive(Default)]
pub struct MemCache {
    pages: OrderedMutex<HashMap<(Fid, u64), Vec<u8>>, { rank::CLIENT_DATA_CACHE }>,
    bytes: AtomicU64,
}

impl MemCache {
    /// Creates an empty cache.
    pub fn new() -> MemCache {
        MemCache::default()
    }
}

impl DataCache for MemCache {
    fn read_page(&self, fid: Fid, page: u64) -> Option<Vec<u8>> {
        self.pages.lock().get(&(fid, page)).cloned()
    }

    fn write_page(&self, fid: Fid, page: u64, data: &[u8]) -> DfsResult<()> {
        let mut p = data.to_vec();
        p.resize(PAGE_SIZE, 0);
        if self.pages.lock().insert((fid, page), p).is_none() {
            self.bytes.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
        }
        Ok(())
    }

    fn drop_page(&self, fid: Fid, page: u64) {
        if self.pages.lock().remove(&(fid, page)).is_some() {
            self.bytes.fetch_sub(PAGE_SIZE as u64, Ordering::Relaxed);
        }
    }

    fn evict_file(&self, fid: Fid) {
        let mut pages = self.pages.lock();
        let before = pages.len();
        pages.retain(|(f, _), _| *f != fid);
        let dropped = (before - pages.len()) as u64;
        self.bytes.fetch_sub(dropped * PAGE_SIZE as u64, Ordering::Relaxed);
    }

    fn bytes_used(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Disk-backed page cache using a local [`SimDisk`] partition, as an
/// AFS-style client caches in its native file system.
pub struct DiskCache {
    disk: SimDisk,
    inner: OrderedMutex<DiskCacheInner, { rank::CLIENT_DATA_CACHE }>,
    bytes: AtomicU64,
}

struct DiskCacheInner {
    /// (fid, page) → local disk block.
    index: HashMap<(Fid, u64), u32>,
    /// Free local blocks.
    free: Vec<u32>,
    /// LRU order for clean-page eviction (approximate: insertion order).
    order: Vec<(Fid, u64)>,
}

impl DiskCache {
    /// Creates a cache over the whole of `disk`.
    pub fn new(disk: SimDisk) -> DiskCache {
        let free = (0..disk.blocks()).rev().collect();
        DiskCache {
            disk,
            inner: OrderedMutex::new(DiskCacheInner {
                index: HashMap::new(),
                free,
                order: Vec::new(),
            }),
            bytes: AtomicU64::new(0),
        }
    }

    /// The underlying local disk (for traffic statistics).
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }
}

impl DataCache for DiskCache {
    fn read_page(&self, fid: Fid, page: u64) -> Option<Vec<u8>> {
        let block = *self.inner.lock().index.get(&(fid, page))?;
        self.disk.read(block).ok().map(|b| b.to_vec())
    }

    fn write_page(&self, fid: Fid, page: u64, data: &[u8]) -> DfsResult<()> {
        let mut inner = self.inner.lock();
        let block = match inner.index.get(&(fid, page)) {
            Some(b) => *b,
            None => {
                let b = match inner.free.pop() {
                    Some(b) => {
                        self.bytes.fetch_add(PAGE_SIZE as u64, Ordering::Relaxed);
                        b
                    }
                    None => {
                        // Cache full: evict the oldest other page. One
                        // mapping replaces another, so `bytes` is net
                        // unchanged.
                        let victim = inner
                            .order
                            .iter()
                            .position(|k| *k != (fid, page))
                            .ok_or(DfsError::NoSpace)?;
                        let key = inner.order.remove(victim);
                        inner.index.remove(&key).expect("ordered page in index")
                    }
                };
                inner.index.insert((fid, page), b);
                inner.order.push((fid, page));
                b
            }
        };
        let mut buf = [0u8; PAGE_SIZE];
        buf[..data.len().min(PAGE_SIZE)].copy_from_slice(&data[..data.len().min(PAGE_SIZE)]);
        self.disk.write(block, &buf)?;
        Ok(())
    }

    fn drop_page(&self, fid: Fid, page: u64) {
        let mut inner = self.inner.lock();
        if let Some(b) = inner.index.remove(&(fid, page)) {
            inner.free.push(b);
            inner.order.retain(|k| *k != (fid, page));
            self.bytes.fetch_sub(PAGE_SIZE as u64, Ordering::Relaxed);
        }
    }

    fn evict_file(&self, fid: Fid) {
        let mut inner = self.inner.lock();
        let keys: Vec<(Fid, u64)> =
            inner.index.keys().filter(|(f, _)| *f == fid).copied().collect();
        let mut dropped = 0u64;
        for k in keys {
            if let Some(b) = inner.index.remove(&k) {
                inner.free.push(b);
                dropped += 1;
            }
        }
        inner.order.retain(|(f, _)| *f != fid);
        self.bytes.fetch_sub(dropped * PAGE_SIZE as u64, Ordering::Relaxed);
    }

    fn bytes_used(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_disk::DiskConfig;
    use dfs_types::{VnodeId, VolumeId};

    fn fid(n: u32) -> Fid {
        Fid::new(VolumeId(1), VnodeId(n), 1)
    }

    fn check_basic(cache: &dyn DataCache) {
        assert!(cache.read_page(fid(1), 0).is_none());
        cache.write_page(fid(1), 0, b"hello").unwrap();
        let p = cache.read_page(fid(1), 0).unwrap();
        assert_eq!(&p[..5], b"hello");
        assert_eq!(p.len(), PAGE_SIZE);
        cache.write_page(fid(1), 7, &[9u8; PAGE_SIZE]).unwrap();
        assert!(cache.bytes_used() >= 2 * PAGE_SIZE as u64);
        cache.drop_page(fid(1), 0);
        assert!(cache.read_page(fid(1), 0).is_none());
        assert!(cache.read_page(fid(1), 7).is_some());
        cache.evict_file(fid(1));
        assert!(cache.read_page(fid(1), 7).is_none());
    }

    #[test]
    fn mem_cache_basics() {
        check_basic(&MemCache::new());
    }

    #[test]
    fn disk_cache_basics() {
        let cache = DiskCache::new(SimDisk::new(DiskConfig::with_blocks(64)));
        check_basic(&cache);
    }

    #[test]
    fn disk_cache_charges_local_disk_traffic() {
        let disk = SimDisk::new(DiskConfig::with_blocks(64));
        let cache = DiskCache::new(disk.clone());
        cache.write_page(fid(1), 0, &[1u8; PAGE_SIZE]).unwrap();
        cache.read_page(fid(1), 0).unwrap();
        let s = disk.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
    }

    #[test]
    fn disk_cache_evicts_when_full() {
        let cache = DiskCache::new(SimDisk::new(DiskConfig::with_blocks(4)));
        for p in 0..4 {
            cache.write_page(fid(1), p, &[p as u8; 8]).unwrap();
        }
        // A fifth page forces eviction of the oldest.
        cache.write_page(fid(2), 0, b"new").unwrap();
        assert!(cache.read_page(fid(2), 0).is_some());
        assert!(cache.read_page(fid(1), 0).is_none(), "oldest page evicted");
    }

    fn check_byte_accounting(cache: &dyn DataCache) {
        assert_eq!(cache.bytes_used(), 0);
        cache.write_page(fid(1), 0, b"a").unwrap();
        cache.write_page(fid(1), 1, b"b").unwrap();
        cache.write_page(fid(2), 0, b"c").unwrap();
        assert_eq!(cache.bytes_used(), 3 * PAGE_SIZE as u64);
        // Overwrites do not double-charge.
        cache.write_page(fid(1), 0, b"a2").unwrap();
        assert_eq!(cache.bytes_used(), 3 * PAGE_SIZE as u64);
        cache.drop_page(fid(1), 1);
        cache.drop_page(fid(1), 1); // double drop is a no-op
        assert_eq!(cache.bytes_used(), 2 * PAGE_SIZE as u64);
        cache.evict_file(fid(1));
        assert_eq!(cache.bytes_used(), PAGE_SIZE as u64);
        cache.evict_file(fid(2));
        assert_eq!(cache.bytes_used(), 0);
    }

    #[test]
    fn mem_cache_byte_counter_stays_exact() {
        check_byte_accounting(&MemCache::new());
    }

    #[test]
    fn disk_cache_byte_counter_stays_exact() {
        check_byte_accounting(&DiskCache::new(SimDisk::new(DiskConfig::with_blocks(64))));
    }

    #[test]
    fn disk_cache_counter_constant_across_full_cache_eviction() {
        let cache = DiskCache::new(SimDisk::new(DiskConfig::with_blocks(4)));
        for p in 0..4 {
            cache.write_page(fid(1), p, &[p as u8; 8]).unwrap();
        }
        assert_eq!(cache.bytes_used(), 4 * PAGE_SIZE as u64);
        // Replacement eviction: one page out, one in — no net change.
        cache.write_page(fid(2), 0, b"new").unwrap();
        assert_eq!(cache.bytes_used(), 4 * PAGE_SIZE as u64);
    }

    #[test]
    fn overwrite_reuses_block() {
        let cache = DiskCache::new(SimDisk::new(DiskConfig::with_blocks(2)));
        cache.write_page(fid(1), 0, b"v1").unwrap();
        cache.write_page(fid(1), 0, b"v2").unwrap();
        cache.write_page(fid(1), 1, b"other").unwrap();
        assert_eq!(&cache.read_page(fid(1), 0).unwrap()[..2], b"v2");
    }
}
