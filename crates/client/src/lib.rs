//! The DEcorum client cache manager (§4, §6).
//!
//! A [`CacheManager`] implements the four layers of Figure 2:
//!
//! * **resource layer** (§4.1): authenticated connections (tickets from
//!   the KDC) and a volume-location cache over the VLDB, with
//!   re-lookup on `NoSuchVolume` so volume moves are transparent;
//! * **cache layer** (§4.2): status and data caching guarded by typed
//!   tokens; the data store is pluggable ([`DiskCache`] or the diskless
//!   [`MemCache`]);
//! * **directory layer** (§4.3): cached results of individual lookups,
//!   valid while the directory's status/data tokens are held;
//! * **vnode layer** (§4.4): the file-system API.
//!
//! Deadlock avoidance follows §6 exactly: each cached vnode carries
//! **two locks** — a high-level lock held for the duration of a client
//! operation, and a low-level lock that is *released across RPCs* and
//! re-taken to merge results. Revocations from the server take only the
//! low-level lock. Server responses and revocations are merged in
//! serialization-stamp order (§6.2–6.4): newer status always wins and
//! old status is never written over new. Revocations for tokens not yet
//! known (the race of §6.3) are queued and processed when the in-flight
//! RPC completes.

pub mod cache;

pub use cache::{DataCache, DiskCache, MemCache, PAGE_SIZE};

use dfs_rpc::{
    Addr, CallClass, CallContext, Network, PoolConfig, Request, Response, RpcService, Ticket,
    TokenRequest,
};
use dfs_server::VldbHandle;
use dfs_token::{Token, TokenTypes};
use dfs_types::lock::{rank, OrderedMutex};
use dfs_types::{
    Acl, ByteRange, ClientId, DfsError, DfsResult, FileStatus, Fid, SerializationStamp, ServerId,
    VolumeId,
};
use dfs_vfs::{DirEntry, SetAttrs};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Pages fetched per miss (read-ahead granularity).
const FETCH_PAGES: u64 = 16;

/// An open mode, mapped onto the open-token subtypes of Figure 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpenMode {
    /// Normal reading.
    Read,
    /// Normal writing.
    Write,
    /// Executing (excludes writers — ETXTBSY).
    Execute,
    /// Shared reading (excludes writers).
    SharedRead,
    /// Exclusive writing (excludes everyone).
    ExclusiveWrite,
}

impl OpenMode {
    fn token(self) -> TokenTypes {
        match self {
            OpenMode::Read => TokenTypes::OPEN_READ,
            OpenMode::Write => TokenTypes::OPEN_WRITE,
            OpenMode::Execute => TokenTypes::OPEN_EXECUTE,
            OpenMode::SharedRead => TokenTypes::OPEN_SHARED_READ,
            OpenMode::ExclusiveWrite => TokenTypes::OPEN_EXCLUSIVE_WRITE,
        }
    }
}

/// Client-side statistics.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Reads served entirely from the cache under a data token.
    pub local_reads: u64,
    /// Reads that needed a FetchData RPC.
    pub remote_reads: u64,
    /// Writes absorbed locally under a write token (no RPC at all).
    pub local_writes: u64,
    /// Writes that needed a token-acquisition RPC first.
    pub write_token_fetches: u64,
    /// Lookups served from the directory-layer cache.
    pub lookup_hits: u64,
    /// Lookups that went to the server.
    pub lookup_misses: u64,
    /// Revocations received.
    pub revocations: u64,
    /// Revocations answered "retained" (held locks/opens).
    pub retained: u64,
    /// Revocations queued for a not-yet-known token (§6.3 race).
    pub queued_revocations: u64,
    /// Dirty pages stored back from revocation handlers.
    pub revocation_stores: u64,
    /// Status merges ignored because the stamp was stale (§6.3).
    pub stale_status_dropped: u64,
    /// Retries while a volume was busy moving.
    pub busy_retries: u64,
}

#[derive(Clone, Debug)]
struct HeldLock {
    range: ByteRange,
    write: bool,
    local: bool,
}

/// Low-level (per-vnode) state, guarded by the vnode's low lock.
#[derive(Default)]
struct VnState {
    status: Option<FileStatus>,
    /// Highest serialization stamp merged so far (§6.2).
    stamp: SerializationStamp,
    tokens: Vec<Token>,
    /// Pages present in the data cache and covered by a token.
    valid: BTreeSet<u64>,
    /// Pages modified locally and not yet stored back.
    dirty: BTreeSet<u64>,
    /// Directory layer: name → status of individual lookups (§4.3).
    names: HashMap<String, FileStatus>,
    /// Cached full listing.
    listing: Option<Vec<DirEntry>>,
    /// Revocations that arrived for tokens we do not know yet (§6.3).
    queued: Vec<(Token, TokenTypes, SerializationStamp)>,
    /// Number of client-initiated RPCs in flight for this vnode.
    in_flight: u32,
    /// True when the cached status was updated locally under a
    /// status-write token and not yet pushed back.
    status_dirty: bool,
    /// Local byte-range locks (token-backed or server-backed).
    locks: Vec<HeldLock>,
    /// Open modes currently held.
    opens: Vec<TokenTypes>,
}

impl VnState {
    fn find_token(&self, types: TokenTypes, range: &ByteRange) -> Option<&Token> {
        self.tokens
            .iter()
            .find(|t| t.types.contains(types) && t.range.contains_range(range))
    }

    /// Returns true if the union of held tokens carrying any of `types`
    /// covers every byte of `range`.
    fn covered(&self, types: TokenTypes, range: &ByteRange) -> bool {
        if range.is_empty() {
            return true;
        }
        let mut spans: Vec<ByteRange> = self
            .tokens
            .iter()
            .filter(|t| t.types.intersects(types))
            .map(|t| t.range)
            .collect();
        spans.sort_by_key(|r| r.start);
        let mut pos = range.start;
        for s in spans {
            if s.start > pos {
                break;
            }
            pos = pos.max(s.end.min(range.end));
            if pos >= range.end {
                return true;
            }
        }
        pos >= range.end
    }

    fn has_types(&self, types: TokenTypes) -> bool {
        self.tokens.iter().any(|t| t.types.contains(types))
    }


    fn merge_status(&mut self, status: FileStatus, stamp: SerializationStamp) -> bool {
        if stamp > self.stamp || self.status.is_none() {
            self.stamp = self.stamp.max(stamp);
            self.status = Some(status);
            true
        } else {
            false
        }
    }

    fn status_trusted(&self) -> bool {
        self.status.is_some()
            && self
                .tokens
                .iter()
                .any(|t| t.types.intersects(TokenTypes(
                    TokenTypes::STATUS_READ.0 | TokenTypes::STATUS_WRITE.0,
                )))
    }

    fn dir_trusted(&self) -> bool {
        self.tokens.iter().any(|t| {
            t.types.contains(TokenTypes::STATUS_READ) && t.types.contains(TokenTypes::DATA_READ)
        })
    }
}

struct CVnode {
    fid: Fid,
    /// High-level lock: serializes client operations on the file (§6.1).
    /// Held across RPCs *by design*: revocation handlers only ever take
    /// `lo`, so a server calling back into us can never need `hi`.
    // dfs-lint: allow(guard-across-rpc)
    hi: OrderedMutex<(), { rank::CLIENT_VNODE_HI }>,
    /// Low-level lock: guards the cached state; released across RPCs.
    lo: OrderedMutex<VnState, { rank::CLIENT_VNODE_LO }>,
}

/// The cache manager: the DEcorum client (§4).
pub struct CacheManager {
    id: ClientId,
    addr: Addr,
    net: Network,
    vldb: VldbHandle,
    data: Arc<dyn DataCache>,
    ticket: OrderedMutex<Option<Ticket>, { rank::CLIENT_RESOURCE }>,
    vnodes: OrderedMutex<HashMap<Fid, Arc<CVnode>>, { rank::CLIENT_VNODE_TABLE }>,
    locations: OrderedMutex<HashMap<VolumeId, ServerId>, { rank::CLIENT_RESOURCE }>,
    roots: OrderedMutex<HashMap<VolumeId, Fid>, { rank::CLIENT_RESOURCE }>,
    stats: OrderedMutex<ClientStats, { rank::STATS }>,
}

impl CacheManager {
    /// Starts a cache manager, binding its callback service at
    /// `Client(id)`.
    ///
    /// `data` chooses disk-backed or diskless caching (§4.2).
    pub fn start(
        net: Network,
        id: ClientId,
        vldb_replicas: Vec<Addr>,
        data: Arc<dyn DataCache>,
    ) -> Arc<CacheManager> {
        let addr = Addr::Client(id);
        let cm = Arc::new(CacheManager {
            id,
            addr,
            net: net.clone(),
            vldb: VldbHandle::new(net.clone(), addr, vldb_replicas),
            data,
            ticket: OrderedMutex::new(None),
            vnodes: OrderedMutex::new(HashMap::new()),
            locations: OrderedMutex::new(HashMap::new()),
            roots: OrderedMutex::new(HashMap::new()),
            stats: OrderedMutex::new(ClientStats::default()),
        });
        net.register(
            addr,
            cm.clone(),
            PoolConfig { workers: 2, revocation_workers: 2, require_auth: false },
        );
        cm
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Client statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats.lock().clone()
    }

    /// Authenticates as `user` via the KDC (§3.7, §4.1).
    pub fn login(&self, user: u32, secret: u64) -> DfsResult<()> {
        let resp = self
            .net
            .call(self.addr, Addr::Kdc, None, CallClass::Normal, Request::Login { user, secret })?;
        match resp {
            Response::TicketGranted(t) => {
                *self.ticket.lock() = Some(t);
                Ok(())
            }
            Response::Err(e) => Err(e),
            _ => Err(DfsError::Internal("bad KDC response")),
        }
    }

    // ------------------------------------------------------------------
    // Resource layer (§4.1)
    // ------------------------------------------------------------------

    fn server_for(&self, volume: VolumeId) -> DfsResult<ServerId> {
        if let Some(s) = self.locations.lock().get(&volume) {
            return Ok(*s);
        }
        let s = self.vldb.lookup(volume)?;
        self.locations.lock().insert(volume, s);
        Ok(s)
    }

    /// Sends a file RPC, retrying transparently across volume moves
    /// (re-consulting the VLDB) and brief volume-busy windows (§2.1).
    fn file_rpc(&self, volume: VolumeId, req: Request) -> DfsResult<Response> {
        let ticket = *self.ticket.lock();
        for _attempt in 0..50 {
            let server = self.server_for(volume)?;
            let resp = self.net.call(
                self.addr,
                Addr::Server(server),
                ticket,
                CallClass::Normal,
                req.clone(),
            );
            match resp {
                Ok(Response::Err(DfsError::NoSuchVolume)) => {
                    self.locations.lock().remove(&volume);
                    // Force a fresh VLDB lookup next iteration.
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                Ok(Response::Err(DfsError::VolumeBusy)) => {
                    self.stats.lock().busy_retries += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Ok(other) => return Ok(other),
                Err(DfsError::Unreachable) => {
                    self.locations.lock().remove(&volume);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                Err(e) => return Err(e),
            }
        }
        Err(DfsError::Timeout)
    }

    // ------------------------------------------------------------------
    // Vnode table
    // ------------------------------------------------------------------

    fn vnode(&self, fid: Fid) -> Arc<CVnode> {
        let mut vnodes = self.vnodes.lock();
        vnodes
            .entry(fid)
            .or_insert_with(|| {
                Arc::new(CVnode {
                    fid,
                    hi: OrderedMutex::new(()),
                    lo: OrderedMutex::new(VnState::default()),
                })
            })
            .clone()
    }

    /// Merges an RPC response's tokens/status into the vnode and then
    /// applies any queued revocations, all in stamp order (§6.3).
    fn absorb(
        &self,
        vn: &CVnode,
        lo: &mut VnState,
        status: Option<(FileStatus, SerializationStamp)>,
        tokens: Vec<Token>,
    ) {
        if let Some((status, stamp)) = status {
            if !lo.merge_status(status, stamp) {
                self.stats.lock().stale_status_dropped += 1;
            }
        }
        for t in tokens {
            lo.tokens.push(t);
        }
        let queued = std::mem::take(&mut lo.queued);
        for (token, types, stamp) in queued {
            self.apply_revocation(vn, lo, &token, types, stamp);
        }
    }

    /// Processes one typed revocation against the low-level state.
    ///
    /// Only the `types` bits are taken; remaining bits of the token stay
    /// held. Dirty pages (for data-write bits) or local status (for
    /// status-write bits) are stored back first (§5.3). Returns false if
    /// the bits are retained (held locks/opens, §5.3).
    // dfs-lint: allow(guard-across-rpc) — store-backs triggered by a
    // revocation use CallClass::Revocation, which the server serves
    // grant-free (§6.3): the reply cannot block on a further revocation
    // to us, so holding the caller's `lo` guard across the send is safe.
    fn apply_revocation(
        &self,
        vn: &CVnode,
        lo: &mut VnState,
        token: &Token,
        types: TokenTypes,
        stamp: SerializationStamp,
    ) -> bool {
        let Some(pos) = lo.tokens.iter().position(|t| t.id == token.id) else {
            return true; // Already gone (returned voluntarily).
        };
        let to_drop = TokenTypes(lo.tokens[pos].types.0 & types.0);
        if to_drop.is_empty() {
            return true;
        }
        let held_range = lo.tokens[pos].range;
        // Lock and open tokens may be kept if still in use (§5.3).
        if to_drop.intersects(TokenTypes(TokenTypes::LOCK_READ.0 | TokenTypes::LOCK_WRITE.0))
            && lo.locks.iter().any(|l| l.local && l.range.overlaps(&held_range))
        {
            self.stats.lock().retained += 1;
            return false;
        }
        if to_drop.intersects(TokenTypes::OPEN_MASK) && !lo.opens.is_empty() {
            self.stats.lock().retained += 1;
            return false;
        }
        // Store back what the revoked bits let us dirty (§5.3, §6.4):
        // data-write bits flush dirty pages in the range; status-write
        // bits push the locally-updated status (length and mtime — the
        // data itself stays cached under the data token we still hold).
        if to_drop.contains(TokenTypes::DATA_WRITE) {
            let _ = self.store_dirty(vn, lo, Some(held_range), CallClass::Revocation);
        } else if to_drop.contains(TokenTypes::STATUS_WRITE) && lo.status_dirty {
            if let Some(st) = lo.status.clone() {
                let ticket = *self.ticket.lock();
                if let Ok(server) = self.server_for(vn.fid.volume) {
                    let attrs = SetAttrs {
                        length: Some(st.length),
                        mtime: Some(st.mtime),
                        ..SetAttrs::default()
                    };
                    let resp = self.net.call(
                        self.addr,
                        Addr::Server(server),
                        ticket,
                        CallClass::Revocation,
                        Request::StoreStatus { fid: vn.fid, attrs },
                    );
                    if let Ok(Response::Status { status, stamp, .. }) = resp {
                        lo.merge_status(status, stamp);
                    }
                    lo.status_dirty = false;
                }
            }
        }
        // Strip the bits; drop the token entirely when nothing is left.
        lo.tokens[pos].types = lo.tokens[pos].types.minus(to_drop);
        if lo.tokens[pos].types.is_empty() {
            lo.tokens.remove(pos);
        }
        // Drop cache coverage no longer under any token.
        let still_covered: Vec<ByteRange> = lo
            .tokens
            .iter()
            .filter(|t| {
                t.types
                    .intersects(TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::DATA_WRITE.0))
            })
            .map(|t| t.range)
            .collect();
        if to_drop
            .intersects(TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::DATA_WRITE.0))
        {
            let dropped: Vec<u64> = lo
                .valid
                .iter()
                .copied()
                .filter(|p| {
                    let r = ByteRange::at(p * PAGE_SIZE as u64, PAGE_SIZE as u64);
                    held_range.overlaps(&r) && !still_covered.iter().any(|c| c.contains_range(&r))
                })
                .collect();
            for p in dropped {
                lo.valid.remove(&p);
                self.data.drop_page(vn.fid, p);
            }
            // Directory-content caches ride on the data token.
            lo.names.clear();
            lo.listing = None;
        }
        if to_drop
            .intersects(TokenTypes(TokenTypes::STATUS_READ.0 | TokenTypes::STATUS_WRITE.0))
        {
            lo.names.clear();
            lo.listing = None;
        }
        lo.stamp = lo.stamp.max(stamp);
        true
    }

    /// Stores dirty pages (optionally only those in `range`) back to the
    /// file server, merging the returned status by stamp (§6.3).
    // dfs-lint: allow(guard-across-rpc) — callers hold `lo` across the
    // sends. Revocation-class stores are grant-free at the server
    // (§6.3), and for normal-class stores a concurrent revocation aimed
    // at us does not block on `lo`: the revoke handler queues into
    // `lo.queued` when the vnode is in flight (§6.4) and `absorb`
    // applies it afterwards.
    fn store_dirty(
        &self,
        vn: &CVnode,
        lo: &mut VnState,
        range: Option<ByteRange>,
        class: CallClass,
    ) -> DfsResult<()> {
        let eof = lo.status.as_ref().map(|s| s.length).unwrap_or(u64::MAX);
        let pages: Vec<u64> = lo
            .dirty
            .iter()
            .copied()
            .filter(|p| {
                range.is_none_or(|r| {
                    r.overlaps(&ByteRange::at(p * PAGE_SIZE as u64, PAGE_SIZE as u64))
                })
            })
            .collect();
        let ticket = *self.ticket.lock();
        let server = self.server_for(vn.fid.volume)?;
        for p in pages {
            let Some(bytes) = self.data.read_page(vn.fid, p) else { continue };
            let offset = p * PAGE_SIZE as u64;
            let len = (PAGE_SIZE as u64).min(eof.saturating_sub(offset)) as usize;
            if len == 0 {
                lo.dirty.remove(&p);
                continue;
            }
            let resp = self.net.call(
                self.addr,
                Addr::Server(server),
                ticket,
                class,
                Request::StoreData { fid: vn.fid, offset, data: bytes[..len].to_vec() },
            )?;
            match resp {
                Response::Status { status, stamp, .. } => {
                    if !lo.merge_status(status, stamp) {
                        self.stats.lock().stale_status_dropped += 1;
                    }
                }
                Response::Err(e) => return Err(e),
                _ => return Err(DfsError::Internal("bad StoreData response")),
            }
            lo.dirty.remove(&p);
            if class == CallClass::Revocation {
                self.stats.lock().revocation_stores += 1;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Vnode layer: the file API (§4.4)
    // ------------------------------------------------------------------

    /// Returns the root fid of a volume.
    pub fn root(&self, volume: VolumeId) -> DfsResult<Fid> {
        if let Some(f) = self.roots.lock().get(&volume) {
            return Ok(*f);
        }
        match self.file_rpc(volume, Request::GetRoot { volume })?.into_result()? {
            Response::FidIs(f) => {
                self.roots.lock().insert(volume, f);
                Ok(f)
            }
            _ => Err(DfsError::Internal("bad GetRoot response")),
        }
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read(&self, fid: Fid, offset: u64, len: usize) -> DfsResult<Vec<u8>> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        for round in 0..256u32 {
            // Fast path first, while the low-level lock is still held
            // from the previous round's merge: a freshly-granted token
            // cannot be revoked between absorb and this check.
            if lo.status_trusted() {
                let st = lo.status.clone().expect("trusted implies present");
                let end = st.length.min(offset + len as u64);
                if offset >= end {
                    self.stats.lock().local_reads += 1;
                    return Ok(Vec::new());
                }
                let want = ByteRange::new(offset, end);
                let first = offset / PAGE_SIZE as u64;
                let last = (end - 1) / PAGE_SIZE as u64;
                let readable = TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::DATA_WRITE.0);
                if lo.covered(readable, &want)
                    && (first..=last).all(|p| lo.valid.contains(&p))
                {
                    let mut out = Vec::with_capacity((end - offset) as usize);
                    for p in first..=last {
                        let page =
                            self.data.read_page(fid, p).unwrap_or_else(|| vec![0; PAGE_SIZE]);
                        let ps = p * PAGE_SIZE as u64;
                        let s = offset.max(ps) - ps;
                        let e = (end - ps).min(PAGE_SIZE as u64);
                        out.extend_from_slice(&page[s as usize..e as usize]);
                    }
                    self.stats.lock().local_reads += 1;
                    return Ok(out);
                }
            }

            if round > 4 {
                // Contended token: back off outside the locks so another
                // client can finish its handoff, then re-acquire.
                drop(lo);
                std::thread::sleep(std::time::Duration::from_micros(u64::from(round) * 100));
                lo = vn.lo.lock();
            }
            // Miss: fetch a chunk with read tokens, releasing the low
            // lock across the RPC (§6.1), then merge and retry.
            let first = offset / PAGE_SIZE as u64;
            let pages = (len as u64).div_ceil(PAGE_SIZE as u64).max(1).max(FETCH_PAGES);
            let fetch_off = first * PAGE_SIZE as u64;
            let fetch_len = (pages * PAGE_SIZE as u64) as u32;
            let fetch_range = ByteRange::at(fetch_off, fetch_len as u64);
            lo.in_flight += 1;
            drop(lo);
            let resp = self.file_rpc(
                fid.volume,
                Request::FetchData {
                    fid,
                    offset: fetch_off,
                    len: fetch_len,
                    want: TokenRequest::ranged(
                        TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0),
                        fetch_range,
                    ),
                },
            );
            lo = vn.lo.lock();
            lo.in_flight -= 1;
            let (bytes, status, tokens, stamp) = match resp?.into_result()? {
                Response::Data { bytes, status, tokens, stamp } => (bytes, status, tokens, stamp),
                _ => return Err(DfsError::Internal("bad FetchData response")),
            };
            // Install fetched pages; locally-dirty pages are newer than
            // anything the server returned (we hold the write token).
            let whole_pages = bytes.len() / PAGE_SIZE;
            for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
                let p = first + i as u64;
                if !lo.dirty.contains(&p) {
                    self.data.write_page(fid, p, chunk)?;
                    if i < whole_pages || status.length <= fetch_off + bytes.len() as u64 {
                        lo.valid.insert(p);
                    }
                }
            }
            self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
            self.stats.lock().remote_reads += 1;
        }
        Err(DfsError::Timeout)
    }

    /// Writes `data` at `offset`; absorbed locally when a write token is
    /// held ("update the data ... without storing the data back to the
    /// server or even notifying the server", §5.2).
    pub fn write(&self, fid: Fid, offset: u64, data: &[u8]) -> DfsResult<FileStatus> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        let want = ByteRange::at(offset, data.len() as u64);
        let needed = TokenTypes(TokenTypes::DATA_WRITE.0 | TokenTypes::STATUS_WRITE.0);

        for round in 0..256u32 {
            if lo.covered(TokenTypes::DATA_WRITE, &want)
                && lo.has_types(TokenTypes::STATUS_WRITE)
                && lo.status.is_some()
            {
                // Partial first/last pages need their old contents.
                let first = offset / PAGE_SIZE as u64;
                let last = (offset + data.len() as u64 - 1) / PAGE_SIZE as u64;
                let eof = lo.status.as_ref().map(|s| s.length).unwrap_or(0);
                let mut need_fetch = Vec::new();
                for p in [first, last] {
                    let ps = p * PAGE_SIZE as u64;
                    let full = offset <= ps && offset + data.len() as u64 >= ps + PAGE_SIZE as u64;
                    if !full && !lo.valid.contains(&p) && ps < eof {
                        need_fetch.push(p);
                    }
                }
                need_fetch.dedup();
                if !need_fetch.is_empty() {
                    let need_fetch2 = need_fetch.clone();
                    lo.in_flight += 1;
                    drop(lo);
                    for p in need_fetch {
                        let resp = self.file_rpc(
                            fid.volume,
                            Request::FetchData {
                                fid,
                                offset: p * PAGE_SIZE as u64,
                                len: PAGE_SIZE as u32,
                                want: None,
                            },
                        );
                        if let Ok(Response::Data { bytes, .. }) = resp {
                            self.data.write_page(fid, p, &bytes)?;
                        }
                    }
                    lo = vn.lo.lock();
                    lo.in_flight -= 1;
                    for p in need_fetch2 {
                        lo.valid.insert(p);
                    }
                    // Tokens may have been revoked while fetching (§6.3):
                    // drain the queue and re-check coverage.
                    self.absorb(&vn, &mut lo, None, Vec::new());
                    continue;
                }
                // Apply the write to cached pages.
                let mut done = 0usize;
                let mut pos = offset;
                while done < data.len() {
                    let p = pos / PAGE_SIZE as u64;
                    let within = (pos % PAGE_SIZE as u64) as usize;
                    let n = (PAGE_SIZE - within).min(data.len() - done);
                    let mut page =
                        self.data.read_page(fid, p).unwrap_or_else(|| vec![0; PAGE_SIZE]);
                    page[within..within + n].copy_from_slice(&data[done..done + n]);
                    self.data.write_page(fid, p, &page)?;
                    lo.valid.insert(p);
                    lo.dirty.insert(p);
                    pos += n as u64;
                    done += n;
                }
                let st = lo.status.as_mut().expect("checked above");
                st.length = st.length.max(offset + data.len() as u64);
                st.mtime = self.net.clock().now();
                st.data_version += 1;
                let out = st.clone();
                lo.status_dirty = true;
                self.stats.lock().local_writes += 1;
                return Ok(out);
            }

            if round > 4 {
                drop(lo);
                std::thread::sleep(std::time::Duration::from_micros(u64::from(round) * 100));
                lo = vn.lo.lock();
            }
            // Acquire data and status tokens in one combined grant over
            // a page-aligned hull so nearby writes stay local; typed
            // partial revocation means a later status conflict will not
            // take the byte-range data bits with it (§5.2, §5.4).
            let hull = ByteRange::new(
                (offset / PAGE_SIZE as u64) * PAGE_SIZE as u64,
                (offset + data.len() as u64).div_ceil(PAGE_SIZE as u64).max(FETCH_PAGES)
                    * PAGE_SIZE as u64,
            );
            lo.in_flight += 1;
            drop(lo);
            let resp = self.file_rpc(
                fid.volume,
                Request::GetToken {
                    fid,
                    want: TokenRequest {
                        types: TokenTypes(
                            needed.0 | TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0,
                        ),
                        range: hull,
                    },
                },
            );
            lo = vn.lo.lock();
            lo.in_flight -= 1;
            match resp?.into_result()? {
                Response::Status { status, tokens, stamp } => {
                    self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
                }
                _ => return Err(DfsError::Internal("bad GetToken response")),
            }
            self.stats.lock().write_token_fetches += 1;
        }
        Err(DfsError::Timeout)
    }

    /// Prefetches data tokens over `range` so subsequent reads (and
    /// writes, with `write = true`) in that range are served locally —
    /// how a partitioned workload claims its byte range (§5.4).
    pub fn acquire_data_token(&self, fid: Fid, range: ByteRange, write: bool) -> DfsResult<()> {
        let types = if write {
            TokenTypes(
                TokenTypes::DATA_WRITE.0
                    | TokenTypes::DATA_READ.0
                    | TokenTypes::STATUS_WRITE.0
                    | TokenTypes::STATUS_READ.0,
            )
        } else {
            TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0)
        };
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        lo.in_flight += 1;
        drop(lo);
        let resp = self
            .file_rpc(fid.volume, Request::GetToken { fid, want: TokenRequest { types, range } });
        let mut lo = vn.lo.lock();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Status { status, tokens, stamp } => {
                self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
                Ok(())
            }
            _ => Err(DfsError::Internal("bad GetToken response")),
        }
    }

    /// Flushes dirty data and returns the file's status.
    pub fn fsync(&self, fid: Fid) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        self.store_dirty(&vn, &mut lo, None, CallClass::Normal)
    }

    /// Looks up `name` in `dir`, consulting the directory layer first
    /// (§4.3: "the client must in general cache the results of
    /// individual lookups").
    pub fn lookup(&self, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        let vn = self.vnode(dir);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        if lo.dir_trusted() {
            if let Some(st) = lo.names.get(name) {
                self.stats.lock().lookup_hits += 1;
                return Ok(st.clone());
            }
            if lo.listing.is_some()
                && !lo.listing.as_ref().unwrap().iter().any(|e| e.name == name)
            {
                self.stats.lock().lookup_hits += 1;
                return Err(DfsError::NotFound);
            }
        }
        lo.in_flight += 1;
        drop(lo);
        self.stats.lock().lookup_misses += 1;
        let resp = self.file_rpc(
            dir.volume,
            Request::Lookup {
                dir,
                name: name.to_string(),
                want: TokenRequest::whole(TokenTypes(
                    TokenTypes::STATUS_READ.0 | TokenTypes::DATA_READ.0,
                )),
            },
        );
        let mut lo = vn.lo.lock();
        lo.in_flight -= 1;
        match resp?.into_result() {
            Ok(Response::Status { status, tokens, stamp }) => {
                self.absorb(&vn, &mut lo, None, tokens);
                lo.names.insert(name.to_string(), status.clone());
                drop(lo);
                // Seed the child vnode's status too.
                let child = self.vnode(status.fid);
                let mut clo = child.lo.lock();
                if !clo.merge_status(status.clone(), stamp) {
                    self.stats.lock().stale_status_dropped += 1;
                }
                Ok(status)
            }
            Ok(_) => Err(DfsError::Internal("bad Lookup response")),
            Err(e) => Err(e),
        }
    }

    /// Lists a directory, cached under the directory's data token.
    pub fn readdir(&self, dir: Fid) -> DfsResult<Vec<DirEntry>> {
        let vn = self.vnode(dir);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        if lo.dir_trusted() {
            if let Some(l) = &lo.listing {
                self.stats.lock().lookup_hits += 1;
                return Ok(l.clone());
            }
        }
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(dir.volume, Request::Readdir { dir });
        let mut lo = vn.lo.lock();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Entries(entries) => {
                if lo.dir_trusted() {
                    lo.listing = Some(entries.clone());
                }
                Ok(entries)
            }
            _ => Err(DfsError::Internal("bad Readdir response")),
        }
    }

    fn namespace_rpc(&self, dir: Fid, req: Request) -> DfsResult<FileStatus> {
        let vn = self.vnode(dir);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(dir.volume, req);
        let mut lo = vn.lo.lock();
        lo.in_flight -= 1;
        match resp?.into_result() {
            Ok(Response::Status { status, tokens, stamp }) => {
                self.absorb(&vn, &mut lo, None, tokens);
                // We made this change ourselves: our directory caches can
                // be updated in place (the server did not revoke our own
                // tokens, §5.2 same-host compatibility).
                lo.listing = None;
                drop(lo);
                let child = self.vnode(status.fid);
                let mut clo = child.lo.lock();
                clo.merge_status(status.clone(), stamp);
                Ok(status)
            }
            Ok(Response::Ok) => Ok(FileStatus::default()),
            Ok(_) => Err(DfsError::Internal("bad namespace response")),
            Err(e) => Err(e),
        }
    }

    /// Creates a regular file.
    pub fn create(&self, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        let st =
            self.namespace_rpc(dir, Request::Create { dir, name: name.into(), mode })?;
        let vn = self.vnode(dir);
        let mut lo = vn.lo.lock();
        lo.names.insert(name.to_string(), st.clone());
        Ok(st)
    }

    /// Creates a directory.
    pub fn mkdir(&self, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        let st = self.namespace_rpc(dir, Request::Mkdir { dir, name: name.into(), mode })?;
        let vn = self.vnode(dir);
        vn.lo.lock().names.insert(name.to_string(), st.clone());
        Ok(st)
    }

    /// Creates a symlink.
    pub fn symlink(&self, dir: Fid, name: &str, target: &str) -> DfsResult<FileStatus> {
        self.namespace_rpc(
            dir,
            Request::Symlink { dir, name: name.into(), target: target.into() },
        )
    }

    /// Reads a symlink target.
    pub fn readlink(&self, fid: Fid) -> DfsResult<String> {
        match self.file_rpc(fid.volume, Request::Readlink { fid })?.into_result()? {
            Response::Target(t) => Ok(t),
            _ => Err(DfsError::Internal("bad Readlink response")),
        }
    }

    /// Adds a hard link.
    pub fn link(&self, dir: Fid, name: &str, target: Fid) -> DfsResult<FileStatus> {
        self.namespace_rpc(dir, Request::Link { dir, name: name.into(), target })
    }

    /// Removes a file.
    pub fn remove(&self, dir: Fid, name: &str) -> DfsResult<()> {
        let st = self.namespace_rpc(dir, Request::Remove { dir, name: name.into() })?;
        let vn = self.vnode(dir);
        vn.lo.lock().names.remove(name);
        // Invalidate the victim's cached state.
        let victim = self.vnode(st.fid);
        let mut vlo = victim.lo.lock();
        vlo.status = None;
        vlo.valid.clear();
        vlo.dirty.clear();
        self.data.evict_file(st.fid);
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, dir: Fid, name: &str) -> DfsResult<()> {
        let vn = self.vnode(dir);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(dir.volume, Request::Rmdir { dir, name: name.into() });
        let mut lo = vn.lo.lock();
        lo.in_flight -= 1;
        resp?.into_result()?;
        lo.names.remove(name);
        lo.listing = None;
        Ok(())
    }

    /// Renames an entry.
    pub fn rename(
        &self,
        src_dir: Fid,
        src_name: &str,
        dst_dir: Fid,
        dst_name: &str,
    ) -> DfsResult<()> {
        self.file_rpc(
            src_dir.volume,
            Request::Rename {
                src_dir,
                src_name: src_name.into(),
                dst_dir,
                dst_name: dst_name.into(),
            },
        )?
        .into_result()?;
        for (d, n) in [(src_dir, src_name), (dst_dir, dst_name)] {
            let vn = self.vnode(d);
            let mut lo = vn.lo.lock();
            lo.names.remove(n);
            lo.listing = None;
        }
        Ok(())
    }

    /// Returns the file's status, from cache when the token allows.
    pub fn getattr(&self, fid: Fid) -> DfsResult<FileStatus> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        if lo.status_trusted() {
            self.stats.lock().local_reads += 1;
            return Ok(lo.status.clone().expect("trusted implies present"));
        }
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(
            fid.volume,
            Request::FetchStatus { fid, want: TokenRequest::whole(TokenTypes::STATUS_READ) },
        );
        let mut lo = vn.lo.lock();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Status { status, tokens, stamp } => {
                self.absorb(&vn, &mut lo, Some((status.clone(), stamp)), tokens);
                Ok(lo.status.clone().unwrap_or(status))
            }
            _ => Err(DfsError::Internal("bad FetchStatus response")),
        }
    }

    /// Changes attributes (truncation goes to the server).
    pub fn setattr(&self, fid: Fid, attrs: &SetAttrs) -> DfsResult<FileStatus> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        // Push dirty data first so truncation happens after our writes.
        self.store_dirty(&vn, &mut lo, None, CallClass::Normal)?;
        lo.in_flight += 1;
        drop(lo);
        let resp =
            self.file_rpc(fid.volume, Request::StoreStatus { fid, attrs: attrs.clone() });
        let mut lo = vn.lo.lock();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Status { status, tokens, stamp } => {
                if let Some(len) = attrs.length {
                    // Truncation invalidates cached pages past the end.
                    let keep = len.div_ceil(PAGE_SIZE as u64);
                    let dropped: Vec<u64> =
                        lo.valid.iter().copied().filter(|p| *p >= keep).collect();
                    for p in dropped {
                        lo.valid.remove(&p);
                        lo.dirty.remove(&p);
                        self.data.drop_page(fid, p);
                    }
                }
                self.absorb(&vn, &mut lo, Some((status.clone(), stamp)), tokens);
                Ok(lo.status.clone().unwrap_or(status))
            }
            _ => Err(DfsError::Internal("bad StoreStatus response")),
        }
    }

    /// Reads a file's ACL.
    pub fn get_acl(&self, fid: Fid) -> DfsResult<Acl> {
        match self.file_rpc(fid.volume, Request::GetAcl { fid })?.into_result()? {
            Response::AclIs(a) => Ok(a),
            _ => Err(DfsError::Internal("bad GetAcl response")),
        }
    }

    /// Replaces a file's ACL.
    pub fn set_acl(&self, fid: Fid, acl: &Acl) -> DfsResult<()> {
        self.file_rpc(fid.volume, Request::SetAcl { fid, acl: acl.clone() })?
            .into_result()?;
        Ok(())
    }

    /// Opens the file in `mode`, obtaining the matching open token.
    pub fn open(&self, fid: Fid, mode: OpenMode) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        let tok = mode.token();
        if !lo.has_types(tok) {
            lo.in_flight += 1;
            drop(lo);
            let resp = self.file_rpc(
                fid.volume,
                Request::GetToken {
                    fid,
                    want: TokenRequest { types: tok, range: ByteRange::WHOLE },
                },
            );
            lo = vn.lo.lock();
            lo.in_flight -= 1;
            match resp?.into_result()? {
                Response::Status { status, tokens, stamp } => {
                    self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
                }
                _ => return Err(DfsError::Internal("bad GetToken response")),
            }
        }
        lo.opens.push(tok);
        Ok(())
    }

    /// Closes one open handle, storing dirty data back (AFS-compatible
    /// behaviour; with tokens this is not required for consistency).
    pub fn close(&self, fid: Fid, mode: OpenMode) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        let tok = mode.token();
        if let Some(i) = lo.opens.iter().position(|t| *t == tok) {
            lo.opens.remove(i);
        }
        self.store_dirty(&vn, &mut lo, None, CallClass::Normal)
    }

    /// Sets a byte-range lock, locally when a lock token is held (§5.2).
    pub fn lock(&self, fid: Fid, range: ByteRange, write: bool) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        let needed = if write { TokenTypes::LOCK_WRITE } else { TokenTypes::LOCK_READ };
        if lo.find_token(needed, &range).is_some() {
            // Local conflict check among our own lockers.
            if lo.locks.iter().any(|l| l.range.overlaps(&range) && (l.write || write)) {
                return Err(DfsError::LockConflict);
            }
            lo.locks.push(HeldLock { range, write, local: true });
            return Ok(());
        }
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(fid.volume, Request::SetLock { fid, range, write });
        let mut lo = vn.lo.lock();
        lo.in_flight -= 1;
        resp?.into_result()?;
        lo.locks.push(HeldLock { range, write, local: false });
        Ok(())
    }

    /// Tries to obtain a lock *token* so subsequent locks are local.
    pub fn acquire_lock_token(&self, fid: Fid, range: ByteRange, write: bool) -> DfsResult<()> {
        let types = if write { TokenTypes::LOCK_WRITE } else { TokenTypes::LOCK_READ };
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        lo.in_flight += 1;
        drop(lo);
        let resp = self
            .file_rpc(fid.volume, Request::GetToken { fid, want: TokenRequest { types, range } });
        let mut lo = vn.lo.lock();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Status { status, tokens, stamp } => {
                self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
                Ok(())
            }
            _ => Err(DfsError::Internal("bad GetToken response")),
        }
    }

    /// Releases a byte-range lock.
    pub fn unlock(&self, fid: Fid, range: ByteRange) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lo.lock();
        let mut was_remote = false;
        lo.locks.retain(|l| {
            if l.range.overlaps(&range) {
                was_remote |= !l.local;
                false
            } else {
                true
            }
        });
        if was_remote {
            lo.in_flight += 1;
            drop(lo);
            let resp = self.file_rpc(fid.volume, Request::ReleaseLock { fid, range });
            let mut lo2 = vn.lo.lock();
            lo2.in_flight -= 1;
            resp?.into_result()?;
        }
        Ok(())
    }

    /// Returns tokens currently held on a fid (diagnostics/tests).
    pub fn held_tokens(&self, fid: Fid) -> Vec<Token> {
        self.vnode(fid).lo.lock().tokens.clone()
    }

    /// Returns the number of dirty (unstored) pages for a fid.
    pub fn dirty_pages(&self, fid: Fid) -> usize {
        self.vnode(fid).lo.lock().dirty.len()
    }

}

impl RpcService for CacheManager {
    fn dispatch(&self, _ctx: CallContext, req: Request) -> Response {
        match req {
            Request::RevokeToken { token, types, stamp } => {
                self.stats.lock().revocations += 1;
                let vn = {
                    let vnodes = self.vnodes.lock();
                    vnodes.get(&token.fid).cloned()
                };
                let Some(vn) = vn else {
                    return Response::RevokeAck { returned: true };
                };
                // Revocations take ONLY the low-level lock (§6.1): the
                // high-level lock may be held by one of our own
                // operations blocked on this very server.
                let mut lo = vn.lo.lock();
                let known = lo.tokens.iter().any(|t| t.id == token.id);
                if !known {
                    if lo.in_flight > 0 {
                        // §6.3: the call that returns this token is still
                        // in flight; queue the revocation for processing
                        // when the reply arrives.
                        lo.queued.push((token, types, stamp));
                        self.stats.lock().queued_revocations += 1;
                    }
                    return Response::RevokeAck { returned: true };
                }
                let returned = self.apply_revocation(&vn, &mut lo, &token, types, stamp);
                Response::RevokeAck { returned }
            }
            Request::Ping => Response::Ok,
            _ => Response::Err(DfsError::InvalidArgument),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_token::TokenId;
    use dfs_types::{VnodeId, VolumeId};

    fn tok(id: u64, types: TokenTypes, range: ByteRange) -> Token {
        Token {
            id: TokenId(id),
            fid: Fid::new(VolumeId(1), VnodeId(1), 1),
            types,
            range,
        }
    }

    #[test]
    fn coverage_union_of_tokens() {
        let mut st = VnState::default();
        st.tokens.push(tok(1, TokenTypes::DATA_READ, ByteRange::new(0, 100)));
        st.tokens.push(tok(2, TokenTypes::DATA_READ, ByteRange::new(100, 200)));
        assert!(st.covered(TokenTypes::DATA_READ, &ByteRange::new(0, 200)));
        assert!(st.covered(TokenTypes::DATA_READ, &ByteRange::new(50, 150)));
        assert!(!st.covered(TokenTypes::DATA_READ, &ByteRange::new(150, 250)));
        assert!(!st.covered(TokenTypes::DATA_WRITE, &ByteRange::new(0, 10)));
        assert!(st.covered(TokenTypes::DATA_READ, &ByteRange::new(5, 5)), "empty range");
    }

    #[test]
    fn coverage_with_gap_fails() {
        let mut st = VnState::default();
        st.tokens.push(tok(1, TokenTypes::DATA_WRITE, ByteRange::new(0, 100)));
        st.tokens.push(tok(2, TokenTypes::DATA_WRITE, ByteRange::new(150, 300)));
        assert!(!st.covered(TokenTypes::DATA_WRITE, &ByteRange::new(0, 300)));
        assert!(st.covered(TokenTypes::DATA_WRITE, &ByteRange::new(160, 290)));
    }

    #[test]
    fn merge_status_is_monotone_in_stamps() {
        let mut st = VnState::default();
        let s5 = FileStatus { length: 5, ..Default::default() };
        assert!(st.merge_status(s5, SerializationStamp(5)));
        let s3 = FileStatus { length: 3, ..Default::default() };
        assert!(!st.merge_status(s3, SerializationStamp(3)), "older stamp rejected (§6.3)");
        assert_eq!(st.status.as_ref().unwrap().length, 5);
        let s9 = FileStatus { length: 9, ..Default::default() };
        assert!(st.merge_status(s9, SerializationStamp(9)));
        assert_eq!(st.status.as_ref().unwrap().length, 9);
        assert_eq!(st.stamp, SerializationStamp(9));
    }

    #[test]
    fn status_trust_requires_token() {
        let mut st = VnState::default();
        st.merge_status(FileStatus::default(), SerializationStamp(1));
        assert!(!st.status_trusted(), "status without a token is untrusted");
        st.tokens.push(tok(1, TokenTypes::STATUS_READ, ByteRange::WHOLE));
        assert!(st.status_trusted());
        assert!(!st.dir_trusted(), "dir trust needs data+status read");
        st.tokens.push(tok(2, TokenTypes(TokenTypes::STATUS_READ.0 | TokenTypes::DATA_READ.0), ByteRange::WHOLE));
        assert!(st.dir_trusted());
    }

    #[test]
    fn open_mode_token_mapping() {
        assert_eq!(OpenMode::Read.token(), TokenTypes::OPEN_READ);
        assert_eq!(OpenMode::Write.token(), TokenTypes::OPEN_WRITE);
        assert_eq!(OpenMode::Execute.token(), TokenTypes::OPEN_EXECUTE);
        assert_eq!(OpenMode::SharedRead.token(), TokenTypes::OPEN_SHARED_READ);
        assert_eq!(OpenMode::ExclusiveWrite.token(), TokenTypes::OPEN_EXCLUSIVE_WRITE);
    }

    #[test]
    fn find_token_requires_full_containment() {
        let mut st = VnState::default();
        st.tokens.push(tok(1, TokenTypes::LOCK_WRITE, ByteRange::new(10, 20)));
        assert!(st.find_token(TokenTypes::LOCK_WRITE, &ByteRange::new(12, 18)).is_some());
        assert!(st.find_token(TokenTypes::LOCK_WRITE, &ByteRange::new(5, 18)).is_none());
        assert!(st.find_token(TokenTypes::LOCK_READ, &ByteRange::new(12, 18)).is_none());
        assert!(st.has_types(TokenTypes::LOCK_WRITE));
        assert!(!st.has_types(TokenTypes::OPEN_READ));
    }
}
