//! The DEcorum client cache manager (§4, §6).
//!
//! A [`CacheManager`] implements the four layers of Figure 2:
//!
//! * **resource layer** (§4.1): authenticated connections (tickets from
//!   the KDC) and a volume-location cache over the VLDB, with
//!   re-lookup on `NoSuchVolume` so volume moves are transparent;
//! * **cache layer** (§4.2): status and data caching guarded by typed
//!   tokens; the data store is pluggable ([`DiskCache`] or the diskless
//!   [`MemCache`]);
//! * **directory layer** (§4.3): cached results of individual lookups,
//!   valid while the directory's status/data tokens are held;
//! * **vnode layer** (§4.4): the file-system API.
//!
//! Deadlock avoidance follows §6 exactly: each cached vnode carries
//! **two locks** — a high-level lock held for the duration of a client
//! operation, and a low-level lock that is *released across RPCs* and
//! re-taken to merge results. Revocations from the server take only the
//! low-level lock. Server responses and revocations are merged in
//! serialization-stamp order (§6.2–6.4): newer status always wins and
//! old status is never written over new. Revocations for tokens not yet
//! known (the race of §6.3) are queued and processed when the in-flight
//! RPC completes.

pub mod cache;

pub use cache::{DataCache, DiskCache, MemCache, PAGE_SIZE};

use dfs_rpc::{
    Addr, CallClass, CallContext, Network, PoolConfig, Request, Response, RpcService, Ticket,
    TokenRequest,
};
use dfs_server::VldbHandle;
use dfs_token::{Token, TokenTypes};
use dfs_types::lock::{rank, OrderedCondvar, OrderedMutex, OrderedMutexGuard};
use dfs_types::{
    Acl, ByteRange, ClientId, DfsError, DfsResult, FileStatus, Fid, SerializationStamp, ServerId,
    SnapshotCell, VolumeId,
};
use dfs_vfs::{DirEntry, SetAttrs, WriteExtent};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Pages fetched per miss (read-ahead granularity).
const FETCH_PAGES: u64 = 16;

/// Pages coalesced into one store-back extent (64 KB of 4 KB pages).
pub const STORE_EXTENT_PAGES: usize = 16;

/// Most volumes tracked by the location cache. A cell has few volumes a
/// client actually touches; bounding the cache keeps a scanner of many
/// volumes from growing client state without limit.
const LOCATION_CACHE_CAP: usize = 256;

thread_local! {
    /// Set while this thread runs the crash-recovery pipeline so epoch
    /// observations made by recovery's own RPCs do not recurse into it.
    static IN_RECOVERY: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Tuning for the write-behind pipeline (coalesced store-backs and the
/// background flusher).
#[derive(Clone, Debug)]
pub struct WritebackConfig {
    /// Most contiguous dirty pages coalesced into one extent.
    pub extent_pages: usize,
    /// Most extents shipped per store-back RPC (via `StoreDataVec`).
    pub max_extents_per_rpc: usize,
    /// Ship multi-extent `StoreDataVec` RPCs; when false every extent
    /// goes out as its own `StoreData`.
    pub use_vec_rpc: bool,
    /// Run the background flusher ("background store" daemon).
    pub flusher: bool,
    /// Flusher pass interval when idle.
    pub flush_interval: Duration,
    /// Dirty pages (client-wide) above which the flusher is kicked;
    /// above twice this budget the writing thread flushes synchronously
    /// (backpressure).
    pub dirty_budget_pages: usize,
}

impl Default for WritebackConfig {
    fn default() -> Self {
        WritebackConfig {
            extent_pages: STORE_EXTENT_PAGES,
            max_extents_per_rpc: 8,
            use_vec_rpc: true,
            flusher: true,
            flush_interval: Duration::from_millis(2),
            dirty_budget_pages: 256,
        }
    }
}

impl WritebackConfig {
    /// The pre-pipeline behaviour: one 4 KB `StoreData` per dirty page,
    /// no background flusher, no backpressure. Benchmarks use this as
    /// the before-side of before/after comparisons.
    pub fn legacy() -> Self {
        WritebackConfig {
            extent_pages: 1,
            max_extents_per_rpc: 1,
            use_vec_rpc: false,
            flusher: false,
            flush_interval: Duration::from_millis(2),
            dirty_budget_pages: usize::MAX,
        }
    }
}

/// An open mode, mapped onto the open-token subtypes of Figure 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpenMode {
    /// Normal reading.
    Read,
    /// Normal writing.
    Write,
    /// Executing (excludes writers — ETXTBSY).
    Execute,
    /// Shared reading (excludes writers).
    SharedRead,
    /// Exclusive writing (excludes everyone).
    ExclusiveWrite,
}

impl OpenMode {
    fn token(self) -> TokenTypes {
        match self {
            OpenMode::Read => TokenTypes::OPEN_READ,
            OpenMode::Write => TokenTypes::OPEN_WRITE,
            OpenMode::Execute => TokenTypes::OPEN_EXECUTE,
            OpenMode::SharedRead => TokenTypes::OPEN_SHARED_READ,
            OpenMode::ExclusiveWrite => TokenTypes::OPEN_EXCLUSIVE_WRITE,
        }
    }
}

/// Client-side statistics.
#[derive(Clone, Debug, Default)]
pub struct ClientStats {
    /// Reads served entirely from the cache under a data token.
    pub local_reads: u64,
    /// Subset of `local_reads` (and trusted `getattr`s) satisfied from
    /// the published token snapshot without taking any vnode lock
    /// (§6.1 seqlock fast path).
    pub lockfree_reads: u64,
    /// Reads that needed a FetchData RPC.
    pub remote_reads: u64,
    /// Writes absorbed locally under a write token (no RPC at all).
    pub local_writes: u64,
    /// Writes that needed a token-acquisition RPC first.
    pub write_token_fetches: u64,
    /// Lookups served from the directory-layer cache.
    pub lookup_hits: u64,
    /// Lookups that went to the server.
    pub lookup_misses: u64,
    /// Revocations received.
    pub revocations: u64,
    /// Revocations answered "retained" (held locks/opens).
    pub retained: u64,
    /// Revocations queued for a not-yet-known token (§6.3 race).
    pub queued_revocations: u64,
    /// Dirty pages stored back from revocation handlers.
    pub revocation_stores: u64,
    /// Status merges ignored because the stamp was stale (§6.3).
    pub stale_status_dropped: u64,
    /// Retries while a volume was busy moving.
    pub busy_retries: u64,
    /// Token-contention backoff rounds slept in `read`/`write`.
    pub backoff_rounds: u64,
    /// Store-back RPCs sent (StoreData + StoreDataVec, normal class).
    pub storeback_rpcs: u64,
    /// Extents carried by those RPCs.
    pub storeback_extents: u64,
    /// Pages carried by those RPCs.
    pub storeback_pages: u64,
    /// Background-flusher passes that found dirty data.
    pub flusher_passes: u64,
    /// Writes that flushed synchronously because the dirty-page budget
    /// was exceeded twice over (backpressure).
    pub backpressure_flushes: u64,
    /// Transport-level retries: the server was crashed, unreachable or
    /// timed out and the RPC was re-sent after a backoff.
    pub transport_retries: u64,
    /// RPCs refused with `GraceWait` (server in its post-restart grace
    /// window) and retried.
    pub grace_waits: u64,
    /// Recovery passes run after observing a server epoch change.
    pub recoveries: u64,
    /// Tokens re-granted through `ReestablishTokens` during recovery.
    pub tokens_reestablished: u64,
    /// Files revalidated after a restart whose cached pages were kept
    /// (`DataVersion` unchanged, AFS-style).
    pub reval_kept: u64,
    /// Files revalidated after a restart whose cached pages were
    /// discarded (`DataVersion` changed or revalidation failed).
    pub reval_dropped: u64,
    /// Dirty write-behind pages replayed by the recovery pipeline.
    pub recovery_replayed_pages: u64,
    /// `WrongServer` redirects followed after a volume moved (§2.1).
    pub wrong_server_redirects: u64,
    /// Location-cache entries evicted to stay within the size bound.
    pub location_evictions: u64,
    /// RPCs abandoned with `Unavailable` after the retry budget
    /// (`DFS_RPC_RETRY_BUDGET`) was exhausted.
    pub unavailable_giveups: u64,
    /// Read-class RPCs answered by a §3.8 read-only replica while the
    /// volume's primary was unreachable.
    pub replica_failovers: u64,
    /// Reads served with bounded-stale replica data (never cached as
    /// token-backed state).
    pub stale_reads: u64,
    /// Largest staleness bound (µs) stamped on any replica-served
    /// response observed by this client.
    pub max_stale_us: u64,
}

impl ClientStats {
    /// Returns `self - earlier` counter-by-counter, for time-series
    /// sampling (the scenario driver snapshots per interval). The one
    /// non-counter, `max_stale_us`, is a high-water mark and carries
    /// the current watermark through unchanged.
    pub fn since(&self, earlier: &ClientStats) -> ClientStats {
        ClientStats {
            local_reads: self.local_reads - earlier.local_reads,
            lockfree_reads: self.lockfree_reads - earlier.lockfree_reads,
            remote_reads: self.remote_reads - earlier.remote_reads,
            local_writes: self.local_writes - earlier.local_writes,
            write_token_fetches: self.write_token_fetches - earlier.write_token_fetches,
            lookup_hits: self.lookup_hits - earlier.lookup_hits,
            lookup_misses: self.lookup_misses - earlier.lookup_misses,
            revocations: self.revocations - earlier.revocations,
            retained: self.retained - earlier.retained,
            queued_revocations: self.queued_revocations - earlier.queued_revocations,
            revocation_stores: self.revocation_stores - earlier.revocation_stores,
            stale_status_dropped: self.stale_status_dropped - earlier.stale_status_dropped,
            busy_retries: self.busy_retries - earlier.busy_retries,
            backoff_rounds: self.backoff_rounds - earlier.backoff_rounds,
            storeback_rpcs: self.storeback_rpcs - earlier.storeback_rpcs,
            storeback_extents: self.storeback_extents - earlier.storeback_extents,
            storeback_pages: self.storeback_pages - earlier.storeback_pages,
            flusher_passes: self.flusher_passes - earlier.flusher_passes,
            backpressure_flushes: self.backpressure_flushes - earlier.backpressure_flushes,
            transport_retries: self.transport_retries - earlier.transport_retries,
            grace_waits: self.grace_waits - earlier.grace_waits,
            recoveries: self.recoveries - earlier.recoveries,
            tokens_reestablished: self.tokens_reestablished - earlier.tokens_reestablished,
            reval_kept: self.reval_kept - earlier.reval_kept,
            reval_dropped: self.reval_dropped - earlier.reval_dropped,
            recovery_replayed_pages: self.recovery_replayed_pages
                - earlier.recovery_replayed_pages,
            wrong_server_redirects: self.wrong_server_redirects - earlier.wrong_server_redirects,
            location_evictions: self.location_evictions - earlier.location_evictions,
            unavailable_giveups: self.unavailable_giveups - earlier.unavailable_giveups,
            replica_failovers: self.replica_failovers - earlier.replica_failovers,
            stale_reads: self.stale_reads - earlier.stale_reads,
            max_stale_us: self.max_stale_us,
        }
    }

    /// Adds `other`'s counters into `self`, for fleet-wide aggregation.
    /// `max_stale_us` folds as a max.
    pub fn merge(&mut self, other: &ClientStats) {
        self.local_reads += other.local_reads;
        self.lockfree_reads += other.lockfree_reads;
        self.remote_reads += other.remote_reads;
        self.local_writes += other.local_writes;
        self.write_token_fetches += other.write_token_fetches;
        self.lookup_hits += other.lookup_hits;
        self.lookup_misses += other.lookup_misses;
        self.revocations += other.revocations;
        self.retained += other.retained;
        self.queued_revocations += other.queued_revocations;
        self.revocation_stores += other.revocation_stores;
        self.stale_status_dropped += other.stale_status_dropped;
        self.busy_retries += other.busy_retries;
        self.backoff_rounds += other.backoff_rounds;
        self.storeback_rpcs += other.storeback_rpcs;
        self.storeback_extents += other.storeback_extents;
        self.storeback_pages += other.storeback_pages;
        self.flusher_passes += other.flusher_passes;
        self.backpressure_flushes += other.backpressure_flushes;
        self.transport_retries += other.transport_retries;
        self.grace_waits += other.grace_waits;
        self.recoveries += other.recoveries;
        self.tokens_reestablished += other.tokens_reestablished;
        self.reval_kept += other.reval_kept;
        self.reval_dropped += other.reval_dropped;
        self.recovery_replayed_pages += other.recovery_replayed_pages;
        self.wrong_server_redirects += other.wrong_server_redirects;
        self.location_evictions += other.location_evictions;
        self.unavailable_giveups += other.unavailable_giveups;
        self.replica_failovers += other.replica_failovers;
        self.stale_reads += other.stale_reads;
        self.max_stale_us = self.max_stale_us.max(other.max_stale_us);
    }
}

/// Bounded volume→(server, generation) location cache (§4.1). Installs
/// are generation-monotone: a stale `WrongServer` hint arriving after a
/// fresh VLDB lookup can never roll an entry back to the old owner.
#[derive(Default)]
struct LocationCache {
    map: HashMap<VolumeId, (ServerId, u64)>,
    /// Insertion order, for cheap eviction at the cap.
    order: VecDeque<VolumeId>,
}

#[derive(Clone, Debug)]
struct HeldLock {
    range: ByteRange,
    write: bool,
    local: bool,
}

/// Low-level (per-vnode) state, guarded by the vnode's low lock.
#[derive(Default)]
struct VnState {
    status: Option<FileStatus>,
    /// Highest serialization stamp merged so far (§6.2).
    stamp: SerializationStamp,
    tokens: Vec<Token>,
    /// Pages present in the data cache and covered by a token.
    valid: BTreeSet<u64>,
    /// Pages modified locally and not yet stored back, each tagged with
    /// the `write_seq` of its last local write. A store-back snapshots
    /// (page, seq) pairs, releases the low lock for the RPC, and on
    /// return cleans a page only if its seq is unchanged — a page
    /// re-dirtied mid-flight stays dirty (no lost update).
    dirty: BTreeMap<u64, u64>,
    /// Monotone counter stamped onto dirty pages, bumped per write.
    write_seq: u64,
    /// Directory layer: name → status of individual lookups (§4.3).
    names: HashMap<String, FileStatus>,
    /// Cached full listing.
    listing: Option<Vec<DirEntry>>,
    /// Revocations that arrived for tokens we do not know yet (§6.3).
    queued: Vec<(Token, TokenTypes, SerializationStamp)>,
    /// Number of client-initiated RPCs in flight for this vnode.
    in_flight: u32,
    /// True when the cached status was updated locally under a
    /// status-write token and not yet pushed back.
    status_dirty: bool,
    /// Local byte-range locks (token-backed or server-backed).
    locks: Vec<HeldLock>,
    /// Open modes currently held.
    opens: Vec<TokenTypes>,
}

/// Returns true if the union of tokens carrying any of `types` covers
/// every byte of `range`. Shared by the locked [`VnState`] checks and
/// the lock-free [`TokenView`] fast path so both judge coverage
/// identically.
fn tokens_cover(tokens: &[Token], types: TokenTypes, range: &ByteRange) -> bool {
    if range.is_empty() {
        return true;
    }
    let mut spans: Vec<ByteRange> = tokens
        .iter()
        .filter(|t| t.types.intersects(types))
        .map(|t| t.range)
        .collect();
    spans.sort_by_key(|r| r.start);
    let mut pos = range.start;
    for s in spans {
        if s.start > pos {
            break;
        }
        pos = pos.max(s.end.min(range.end));
        if pos >= range.end {
            return true;
        }
    }
    pos >= range.end
}

/// True if any token carries a status guarantee (read or write) — the
/// condition under which the cached `FileStatus` may be believed.
fn tokens_trust_status(tokens: &[Token]) -> bool {
    tokens.iter().any(|t| {
        t.types
            .intersects(TokenTypes(TokenTypes::STATUS_READ.0 | TokenTypes::STATUS_WRITE.0))
    })
}

impl VnState {
    fn find_token(&self, types: TokenTypes, range: &ByteRange) -> Option<&Token> {
        self.tokens
            .iter()
            .find(|t| t.types.contains(types) && t.range.contains_range(range))
    }

    /// Returns true if the union of held tokens carrying any of `types`
    /// covers every byte of `range`.
    fn covered(&self, types: TokenTypes, range: &ByteRange) -> bool {
        tokens_cover(&self.tokens, types, range)
    }

    fn has_types(&self, types: TokenTypes) -> bool {
        self.tokens.iter().any(|t| t.types.contains(types))
    }


    fn merge_status(&mut self, status: FileStatus, stamp: SerializationStamp) -> bool {
        if stamp > self.stamp || self.status.is_none() {
            self.stamp = self.stamp.max(stamp);
            self.status = Some(status);
            true
        } else {
            false
        }
    }

    fn status_trusted(&self) -> bool {
        self.status.is_some() && tokens_trust_status(&self.tokens)
    }

    fn dir_trusted(&self) -> bool {
        self.tokens.iter().any(|t| {
            t.types.contains(TokenTypes::STATUS_READ) && t.types.contains(TokenTypes::DATA_READ)
        })
    }
}

/// Immutable snapshot of a vnode's token-relevant state, republished
/// through [`CVnode::published`] every time a `lo` guard that mutated
/// the state is released. The lock-free fast path (§6.1) reads it to
/// satisfy cache hits without touching `CLIENT_VNODE_LO`.
struct TokenView {
    status: Option<FileStatus>,
    tokens: Vec<Token>,
    /// Pages present in the data cache and covered by a token, as of
    /// the publishing guard's release.
    valid: BTreeSet<u64>,
}

impl TokenView {
    fn of(state: &VnState) -> TokenView {
        TokenView {
            status: state.status.clone(),
            tokens: state.tokens.clone(),
            valid: state.valid.clone(),
        }
    }
}

struct CVnode {
    fid: Fid,
    /// High-level lock: serializes client operations on the file (§6.1).
    /// Held across RPCs *by design*: revocation handlers only ever take
    /// `lo`, so a server calling back into us can never need `hi`.
    // dfs-lint: allow(guard-across-rpc)
    hi: OrderedMutex<(), { rank::CLIENT_VNODE_HI }>,
    /// Low-level lock: guards the cached state; released across RPCs.
    /// Always acquired through [`CVnode::lock_lo`], whose guard
    /// maintains `lo_seq`/`published` for the lock-free fast path.
    lo: OrderedMutex<VnState, { rank::CLIENT_VNODE_LO }>,
    /// Seqlock word for the fast path: odd while a `lo` holder may be
    /// mutating the state, even when `published` is current. Bumped to
    /// odd on a guard's first mutable access, back to even after the
    /// guard republishes on release.
    lo_seq: AtomicU64,
    /// Latest published [`TokenView`]; empty until the first mutation.
    published: SnapshotCell<TokenView>,
}

impl CVnode {
    /// Acquires the low-level lock through the publishing guard. Every
    /// `lo` acquisition must go through here: a bare `self.lo.lock()`
    /// could mutate state without invalidating the published snapshot,
    /// and the fast path would serve stale hits forever.
    fn lock_lo(&self) -> LoGuard<'_> {
        LoGuard { inner: self.lo.lock(), vn: self, mutated: false }
    }
}

/// Guard for [`CVnode::lo`] that drives the §6.1 fast-path seqlock:
/// the first mutable dereference flips `lo_seq` odd (fast-path readers
/// fall back to the mutex), and dropping a guard that mutated state
/// republishes the [`TokenView`] and flips the seq even again — both
/// while the mutex is still held, so a snapshot can never go backwards.
struct LoGuard<'a> {
    /// Declared before `vn` for documentation only; the publish happens
    /// in `Drop::drop`'s body, while `inner` is still alive.
    inner: OrderedMutexGuard<'a, VnState, { rank::CLIENT_VNODE_LO }>,
    vn: &'a CVnode,
    mutated: bool,
}

impl std::ops::Deref for LoGuard<'_> {
    type Target = VnState;
    fn deref(&self) -> &VnState {
        &self.inner
    }
}

impl std::ops::DerefMut for LoGuard<'_> {
    fn deref_mut(&mut self) -> &mut VnState {
        if !self.mutated {
            self.mutated = true;
            // Odd: mutation in progress, fast path must fall back.
            self.vn.lo_seq.fetch_add(1, Ordering::SeqCst);
        }
        &mut self.inner
    }
}

impl Drop for LoGuard<'_> {
    fn drop(&mut self) {
        if self.mutated {
            // Still under the mutex here: `inner` drops after this
            // body, so the published view matches the state the next
            // `lo` holder will see and the even seq ratifies it.
            self.vn.published.store(Arc::new(TokenView::of(&self.inner)));
            self.vn.lo_seq.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Wake/stop flags for the background flusher, guarded at rank
/// `CLIENT_FLUSHER` so writers may kick it while holding a vnode `lo`.
#[derive(Default)]
struct FlusherCtl {
    stop: bool,
    kicked: bool,
    /// Set by the recovery pipeline to quiesce background store-backs
    /// while tokens are being reestablished.
    paused: bool,
}

/// A coalesced run of dirty pages snapshotted for one store-back
/// extent: contiguous bytes starting at `offset`, plus the (page,
/// write_seq) tags needed to clean only un-re-dirtied pages afterwards.
struct PendingExtent {
    offset: u64,
    data: Vec<u8>,
    pages: Vec<(u64, u64)>,
}

/// The cache manager: the DEcorum client (§4).
pub struct CacheManager {
    id: ClientId,
    addr: Addr,
    net: Network,
    vldb: VldbHandle,
    data: Arc<dyn DataCache>,
    wb: WritebackConfig,
    /// Client-wide dirty-page count, maintained by the `note_dirty` /
    /// `note_clean` helpers so budget checks never walk the vnode table.
    dirty_total: AtomicU64,
    flusher_ctl: OrderedMutex<FlusherCtl, { rank::CLIENT_FLUSHER }>,
    flusher_cv: OrderedCondvar,
    flusher_join: parking_lot::Mutex<Option<std::thread::JoinHandle<()>>>,
    ticket: OrderedMutex<Option<Ticket>, { rank::CLIENT_RESOURCE }>,
    /// Serializes the crash-recovery pipeline. Ranked between the vnode
    /// high locks and the vnode table: the operation that *detects* an
    /// epoch change holds at most one vnode's `hi`, and recovery itself
    /// takes only `lo` locks underneath.
    // dfs-lint: allow(guard-across-rpc) — held across the reestablish /
    // revalidate sends by design: the server serves reestablishment
    // without issuing revocations back to us, and revocation handlers
    // here take only vnode `lo` locks, never this gate.
    recovery_gate: OrderedMutex<(), { rank::CLIENT_RECOVERY }>,
    /// Last epoch observed from each file server (resource layer).
    known_epochs: OrderedMutex<HashMap<ServerId, u64>, { rank::CLIENT_RESOURCE }>,
    vnodes: OrderedMutex<HashMap<Fid, Arc<CVnode>>, { rank::CLIENT_VNODE_TABLE }>,
    locations: OrderedMutex<LocationCache, { rank::CLIENT_RESOURCE }>,
    roots: OrderedMutex<HashMap<VolumeId, Fid>, { rank::CLIENT_RESOURCE }>,
    stats: OrderedMutex<ClientStats, { rank::STATS }>,
    /// Whether the §6.1 lock-free read/getattr fast path is enabled.
    /// `DFS_NO_LOCKFREE=1` disables it (ablation knob for benchmarks);
    /// the seqlock/publish machinery still runs so the knob isolates
    /// only the hit path.
    lockfree: bool,
    /// Total attempts `file_rpc` spends (across redirects, busy waits,
    /// grace waits and transport retries) before giving up with an
    /// honest `Unavailable`. `DFS_RPC_RETRY_BUDGET` overrides.
    retry_budget: u32,
}

impl CacheManager {
    /// Starts a cache manager, binding its callback service at
    /// `Client(id)`.
    ///
    /// `data` chooses disk-backed or diskless caching (§4.2).
    pub fn start(
        net: Network,
        id: ClientId,
        vldb_replicas: Vec<Addr>,
        data: Arc<dyn DataCache>,
    ) -> Arc<CacheManager> {
        Self::start_with_config(net, id, vldb_replicas, data, WritebackConfig::default())
    }

    /// Starts a cache manager with explicit write-behind tuning.
    pub fn start_with_config(
        net: Network,
        id: ClientId,
        vldb_replicas: Vec<Addr>,
        data: Arc<dyn DataCache>,
        wb: WritebackConfig,
    ) -> Arc<CacheManager> {
        let addr = Addr::Client(id);
        let cm = Arc::new(CacheManager {
            id,
            addr,
            net: net.clone(),
            vldb: VldbHandle::new(net.clone(), addr, vldb_replicas),
            data,
            wb,
            dirty_total: AtomicU64::new(0),
            flusher_ctl: OrderedMutex::new(FlusherCtl::default()),
            flusher_cv: OrderedCondvar::new(),
            flusher_join: parking_lot::Mutex::new(None),
            ticket: OrderedMutex::new(None),
            recovery_gate: OrderedMutex::new(()),
            known_epochs: OrderedMutex::new(HashMap::new()),
            vnodes: OrderedMutex::new(HashMap::new()),
            locations: OrderedMutex::new(LocationCache::default()),
            roots: OrderedMutex::new(HashMap::new()),
            stats: OrderedMutex::new(ClientStats::default()),
            lockfree: std::env::var("DFS_NO_LOCKFREE").map_or(true, |v| v != "1"),
            retry_budget: std::env::var("DFS_RPC_RETRY_BUDGET")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|b| *b > 0)
                .unwrap_or(50),
        });
        net.register(
            addr,
            cm.clone(),
            PoolConfig { workers: 2, revocation_workers: 2, require_auth: false },
        );
        if cm.wb.flusher {
            let weak = Arc::downgrade(&cm);
            let handle = std::thread::Builder::new()
                .name(format!("dfs-flusher-{}", id.0))
                .spawn(move || Self::flusher_main(weak))
                .expect("spawn flusher");
            *cm.flusher_join.lock() = Some(handle);
        }
        cm
    }

    /// The background store daemon: wakes on a timer or a kick, and
    /// trickles dirty pages out via `store_back`. It takes no vnode
    /// `hi` lock ever, and drops its control lock before flushing, so
    /// it can never hold a guard across an RPC send.
    fn flusher_main(weak: Weak<CacheManager>) {
        loop {
            // Upgrade per iteration: holding only a weak reference lets
            // the cache manager be dropped while the daemon sleeps.
            let Some(cm) = weak.upgrade() else { return };
            let mut ctl = cm.flusher_ctl.lock();
            if !ctl.stop && !ctl.kicked {
                cm.flusher_cv.wait_for(&mut ctl, cm.wb.flush_interval);
            }
            let stop = ctl.stop;
            let paused = ctl.paused;
            ctl.kicked = false;
            drop(ctl);
            if !paused && cm.dirty_total.load(Ordering::Relaxed) > 0 {
                cm.stats.lock().flusher_passes += 1;
                let _ = cm.store_back_all();
            }
            if stop {
                return;
            }
        }
    }

    /// Wakes the flusher ahead of its timer.
    fn kick_flusher(&self) {
        self.flusher_ctl.lock().kicked = true;
        self.flusher_cv.notify_all();
    }

    /// Quiesces (or resumes) the background flusher around recovery.
    fn set_flusher_paused(&self, paused: bool) {
        self.flusher_ctl.lock().paused = paused;
        if !paused {
            self.flusher_cv.notify_all();
        }
    }

    /// Stops the background flusher (flushing remaining dirty data) and
    /// stores back anything still dirty. Idempotent.
    pub fn shutdown(&self) -> DfsResult<()> {
        let handle = self.flusher_join.lock().take();
        if let Some(h) = handle {
            self.flusher_ctl.lock().stop = true;
            self.flusher_cv.notify_all();
            let _ = h.join();
        }
        self.store_back_all()
    }

    /// Stores every dirty page of every vnode back to its server.
    pub fn store_back_all(&self) -> DfsResult<()> {
        let targets: Vec<Arc<CVnode>> = self.vnodes.lock().values().cloned().collect();
        let mut first_err = None;
        for vn in targets {
            if vn.lock_lo().dirty.is_empty() {
                continue;
            }
            if let Err(e) = self.store_back(&vn, None) {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// This client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Client statistics.
    pub fn stats(&self) -> ClientStats {
        self.stats.lock().clone()
    }

    /// Authenticates as `user` via the KDC (§3.7, §4.1).
    pub fn login(&self, user: u32, secret: u64) -> DfsResult<()> {
        let resp = self
            .net
            .call(self.addr, Addr::Kdc, None, CallClass::Normal, Request::Login { user, secret })?;
        match resp {
            Response::TicketGranted(t) => {
                *self.ticket.lock() = Some(t);
                Ok(())
            }
            Response::Err(e) => Err(e),
            _ => Err(DfsError::Internal("bad KDC response")),
        }
    }

    // ------------------------------------------------------------------
    // Resource layer (§4.1)
    // ------------------------------------------------------------------

    fn server_for(&self, volume: VolumeId) -> DfsResult<ServerId> {
        if let Some((s, _)) = self.locations.lock().map.get(&volume).copied() {
            return Ok(s);
        }
        let (s, g) = self.vldb.lookup_gen(volume)?;
        self.loc_install(volume, s, g);
        Ok(s)
    }

    /// Installs a location entry if it is strictly newer than what is
    /// cached (by VLDB generation). Returns whether it was installed.
    fn loc_install(&self, volume: VolumeId, server: ServerId, generation: u64) -> bool {
        let (installed, evicted) = {
            let mut loc = self.locations.lock();
            match loc.map.get(&volume).copied() {
                Some((_, g)) if generation <= g => (false, 0),
                Some(_) => {
                    loc.map.insert(volume, (server, generation));
                    (true, 0)
                }
                None => {
                    let mut evicted = 0u64;
                    while loc.map.len() >= LOCATION_CACHE_CAP {
                        let Some(old) = loc.order.pop_front() else { break };
                        if loc.map.remove(&old).is_some() {
                            evicted += 1;
                        }
                    }
                    loc.map.insert(volume, (server, generation));
                    loc.order.push_back(volume);
                    (true, evicted)
                }
            }
        };
        if evicted > 0 {
            self.stats.lock().location_evictions += evicted;
        }
        installed
    }

    /// Drops a cached location (the next use re-resolves via the VLDB).
    /// The eviction queue entry goes too: leaving it would let repeated
    /// invalidate/reinstall cycles grow `order` without bound and make
    /// eviction pop a reinstalled entry via its stale duplicate.
    fn loc_invalidate(&self, volume: VolumeId) {
        let mut loc = self.locations.lock();
        loc.map.remove(&volume);
        loc.order.retain(|v| *v != volume);
    }

    /// Follows a `WrongServer` redirect: install the hint when newer;
    /// when it is not (a stale hint), distrust the cache entirely so the
    /// next attempt re-resolves through the VLDB.
    fn follow_redirect(&self, volume: VolumeId, hint: ServerId, generation: u64) {
        self.stats.lock().wrong_server_redirects += 1;
        if !self.loc_install(volume, hint, generation) {
            self.loc_invalidate(volume);
        }
    }

    /// Sends a file RPC, retrying transparently across volume moves
    /// (re-consulting the VLDB), brief volume-busy windows (§2.1),
    /// crashed or unreachable servers, and post-restart grace windows.
    /// Every `Status`/`Data` response carries the server's epoch; a
    /// change from the last one seen runs the recovery pipeline before
    /// the response is handed back.
    fn file_rpc(&self, volume: VolumeId, req: Request) -> DfsResult<Response> {
        let ticket = *self.ticket.lock();
        let key = volume.0.wrapping_mul(0x9E37_79B9);
        // Consecutive attempts on which the primary was unreachable;
        // read-class requests fail over to a §3.8 replica once this
        // crosses the threshold (one dropped packet is not an outage).
        const FAILOVER_AFTER: u32 = 2;
        let mut down = 0u32;
        for attempt in 0..self.retry_budget {
            let server = match self.server_for(volume) {
                Ok(s) => Some(s),
                // Even the VLDB cannot place the volume right now. A
                // replica may still hold it read-only; otherwise keep
                // burning budget so a recovering VLDB gets retried.
                Err(DfsError::Unreachable | DfsError::Timeout | DfsError::Crashed) => None,
                Err(e) => return Err(e),
            };
            let Some(server) = server else {
                down += 1;
                if down >= FAILOVER_AFTER {
                    if let Some(resp) = self.replica_fallback(volume, &req, ticket) {
                        return Ok(resp);
                    }
                }
                self.backoff_keyed(key, attempt + 1);
                continue;
            };
            let resp = self.net.call(
                self.addr,
                Addr::Server(server),
                ticket,
                CallClass::Normal,
                req.clone(),
            );
            match resp {
                Ok(Response::WrongServer { hint, generation }) => {
                    // The volume moved (§2.1): chase the hint and retry
                    // immediately — with a live hint this costs exactly
                    // one extra hop, no backoff needed.
                    down = 0;
                    self.follow_redirect(volume, hint, generation);
                }
                Ok(Response::Err(DfsError::NoSuchVolume)) => {
                    // Force a fresh VLDB lookup next iteration.
                    down = 0;
                    self.loc_invalidate(volume);
                    self.backoff_keyed(key, attempt + 1);
                }
                Ok(Response::Err(DfsError::VolumeBusy)) => {
                    down = 0;
                    self.stats.lock().busy_retries += 1;
                    self.backoff_keyed(key, attempt + 1);
                }
                Ok(Response::Err(DfsError::GraceWait)) => {
                    // The server restarted and admits only token
                    // reestablishment: learn its new epoch, recover,
                    // and retry once the grace gate admits us.
                    down = 0;
                    self.stats.lock().grace_waits += 1;
                    self.probe_epoch(server, ticket);
                    self.backoff_keyed(key, attempt + 1);
                }
                Ok(Response::Err(DfsError::Crashed)) => {
                    // Reached the node but its disk is down; it will be
                    // restarted (or the volume moved), so re-resolve
                    // this volume and retry.
                    self.stats.lock().transport_retries += 1;
                    self.loc_invalidate(volume);
                    down += 1;
                    if down >= FAILOVER_AFTER {
                        if let Some(resp) = self.replica_fallback(volume, &req, ticket) {
                            return Ok(resp);
                        }
                    }
                    self.backoff_keyed(key, attempt + 1);
                }
                Ok(other) => {
                    if let Response::Status { epoch, .. } | Response::Data { epoch, .. } =
                        &other
                    {
                        self.note_epoch(server, *epoch, ticket);
                    }
                    return Ok(other);
                }
                Err(DfsError::Unreachable | DfsError::Crashed | DfsError::Timeout) => {
                    // Invalidate only this volume's entry: other volumes
                    // cached against other servers stay warm, and this
                    // one re-resolves through the VLDB (which reflects a
                    // move or a restarted replacement).
                    self.stats.lock().transport_retries += 1;
                    self.loc_invalidate(volume);
                    down += 1;
                    if down >= FAILOVER_AFTER {
                        if let Some(resp) = self.replica_fallback(volume, &req, ticket) {
                            return Ok(resp);
                        }
                    }
                    self.backoff_keyed(key, attempt + 1);
                }
                Err(e) => return Err(e),
            }
        }
        // The budget is spent: report honest unavailability rather than
        // a timeout the caller would be tempted to retry forever.
        self.stats.lock().unavailable_giveups += 1;
        Err(DfsError::Unavailable)
    }

    /// Attempts a bounded-stale read from a §3.8 read-only replica after
    /// the primary has been unreachable for several attempts. Only
    /// requests a replica can answer with an explicit staleness stamp
    /// are eligible, and token wants are stripped: a replica's grants
    /// mean nothing at the primary and must never install as
    /// token-backed cache state.
    fn replica_fallback(
        &self,
        volume: VolumeId,
        req: &Request,
        ticket: Option<Ticket>,
    ) -> Option<Response> {
        let stripped = match req {
            Request::FetchStatus { fid, .. } => Request::FetchStatus { fid: *fid, want: None },
            Request::FetchData { fid, offset, len, .. } => {
                Request::FetchData { fid: *fid, offset: *offset, len: *len, want: None }
            }
            _ => return None,
        };
        let replicas = self.vldb.replicas_of(volume).ok()?;
        for r in replicas {
            let resp =
                self.net.call(self.addr, Addr::Server(r), ticket, CallClass::Normal, stripped.clone());
            if let Ok(resp @ (Response::Status { .. } | Response::Data { .. })) = resp {
                let (Response::Status { stale_us, .. } | Response::Data { stale_us, .. }) = &resp
                else {
                    unreachable!()
                };
                // A zero stamp means this server is not serving the
                // volume as a replica after all; only stamped (bounded-
                // stale) answers may flow back through this path.
                if *stale_us == 0 {
                    continue;
                }
                let mut st = self.stats.lock();
                st.replica_failovers += 1;
                st.max_stale_us = st.max_stale_us.max(*stale_us);
                return Some(resp);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Vnode table
    // ------------------------------------------------------------------

    fn vnode(&self, fid: Fid) -> Arc<CVnode> {
        let mut vnodes = self.vnodes.lock();
        vnodes
            .entry(fid)
            .or_insert_with(|| {
                Arc::new(CVnode {
                    fid,
                    hi: OrderedMutex::new(()),
                    lo: OrderedMutex::new(VnState::default()),
                    lo_seq: AtomicU64::new(0),
                    published: SnapshotCell::new(),
                })
            })
            .clone()
    }

    /// Merges an RPC response's tokens/status into the vnode and then
    /// applies any queued revocations, all in stamp order (§6.3).
    fn absorb(
        &self,
        vn: &CVnode,
        lo: &mut VnState,
        status: Option<(FileStatus, SerializationStamp)>,
        tokens: Vec<Token>,
    ) {
        if let Some((status, stamp)) = status {
            if !lo.merge_status(status, stamp) {
                self.stats.lock().stale_status_dropped += 1;
            }
        }
        for t in tokens {
            lo.tokens.push(t);
        }
        let queued = std::mem::take(&mut lo.queued);
        for (token, types, stamp) in queued {
            // A queued revocation may target a token granted by a reply
            // that is *still* in flight — e.g. the flusher's store-back
            // lands (and absorbs) before the FetchData that carries the
            // token. Applying it now would discard it as "already gone"
            // and the token would later install unrevoked, serving stale
            // data forever. Keep it queued until the token shows up or
            // every in-flight reply has been merged.
            if lo.in_flight > 0 && !lo.tokens.iter().any(|t| t.id == token.id) {
                lo.queued.push((token, types, stamp));
                continue;
            }
            self.apply_revocation(vn, lo, &token, types, stamp);
        }
    }

    /// Processes one typed revocation against the low-level state.
    ///
    /// Only the `types` bits are taken; remaining bits of the token stay
    /// held. Dirty pages (for data-write bits) or local status (for
    /// status-write bits) are stored back first (§5.3). Returns false if
    /// the bits are retained (held locks/opens, §5.3).
    // dfs-lint: allow(guard-across-rpc) — store-backs triggered by a
    // revocation use CallClass::Revocation, which the server serves
    // grant-free (§6.3): the reply cannot block on a further revocation
    // to us, so holding the caller's `lo` guard across the send is safe.
    fn apply_revocation(
        &self,
        vn: &CVnode,
        lo: &mut VnState,
        token: &Token,
        types: TokenTypes,
        stamp: SerializationStamp,
    ) -> bool {
        let Some(pos) = lo.tokens.iter().position(|t| t.id == token.id) else {
            return true; // Already gone (returned voluntarily).
        };
        let to_drop = TokenTypes(lo.tokens[pos].types.0 & types.0);
        if to_drop.is_empty() {
            return true;
        }
        let held_range = lo.tokens[pos].range;
        // Lock and open tokens may be kept if still in use (§5.3).
        if to_drop.intersects(TokenTypes(TokenTypes::LOCK_READ.0 | TokenTypes::LOCK_WRITE.0))
            && lo.locks.iter().any(|l| l.local && l.range.overlaps(&held_range))
        {
            self.stats.lock().retained += 1;
            return false;
        }
        if to_drop.intersects(TokenTypes::OPEN_MASK) && !lo.opens.is_empty() {
            self.stats.lock().retained += 1;
            return false;
        }
        // Store back what the revoked bits let us dirty (§5.3, §6.4):
        // data-write bits flush dirty pages in the range; status-write
        // bits push the locally-updated status (length and mtime — the
        // data itself stays cached under the data token we still hold).
        if to_drop.contains(TokenTypes::DATA_WRITE) {
            let _ = self.store_dirty(vn, lo, Some(held_range), CallClass::Revocation);
        } else if to_drop.contains(TokenTypes::STATUS_WRITE) && lo.status_dirty {
            if let Some(st) = lo.status.clone() {
                let ticket = *self.ticket.lock();
                let attrs = SetAttrs {
                    length: Some(st.length),
                    mtime: Some(st.mtime),
                    ..SetAttrs::default()
                };
                // Chase the volume across at most a few moves: a
                // `WrongServer` reply re-resolves and retries at the
                // new owner so the status push is never dropped.
                for _ in 0..4u32 {
                    let Ok(server) = self.server_for(vn.fid.volume) else { break };
                    let resp = self.net.call(
                        self.addr,
                        Addr::Server(server),
                        ticket,
                        CallClass::Revocation,
                        Request::StoreStatus { fid: vn.fid, attrs: attrs.clone() },
                    );
                    match resp {
                        Ok(Response::Status { status, stamp, .. }) => {
                            lo.merge_status(status, stamp);
                            // Only a successful push cleans the flag: a
                            // failed store-back keeps the status dirty
                            // so a later flush can retry it.
                            lo.status_dirty = false;
                            break;
                        }
                        Ok(Response::WrongServer { hint, generation }) => {
                            self.follow_redirect(vn.fid.volume, hint, generation);
                        }
                        _ => break,
                    }
                }
            }
        }
        // Strip the bits; drop the token entirely when nothing is left.
        lo.tokens[pos].types = lo.tokens[pos].types.minus(to_drop);
        if lo.tokens[pos].types.is_empty() {
            lo.tokens.remove(pos);
        }
        // Drop cache coverage no longer under any token.
        let still_covered: Vec<ByteRange> = lo
            .tokens
            .iter()
            .filter(|t| {
                t.types
                    .intersects(TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::DATA_WRITE.0))
            })
            .map(|t| t.range)
            .collect();
        if to_drop
            .intersects(TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::DATA_WRITE.0))
        {
            let dropped: Vec<u64> = lo
                .valid
                .iter()
                .copied()
                .filter(|p| {
                    let r = ByteRange::at(p * PAGE_SIZE as u64, PAGE_SIZE as u64);
                    held_range.overlaps(&r) && !still_covered.iter().any(|c| c.contains_range(&r))
                })
                .collect();
            for p in dropped {
                lo.valid.remove(&p);
                self.data.drop_page(vn.fid, p);
            }
            // Directory-content caches ride on the data token.
            lo.names.clear();
            lo.listing = None;
        }
        if to_drop
            .intersects(TokenTypes(TokenTypes::STATUS_READ.0 | TokenTypes::STATUS_WRITE.0))
        {
            lo.names.clear();
            lo.listing = None;
        }
        lo.stamp = lo.stamp.max(stamp);
        true
    }

    // ------------------------------------------------------------------
    // Write-behind pipeline: coalesced store-backs (§4.2, §5.3)
    // ------------------------------------------------------------------

    /// Marks `page` dirty with the given write sequence, maintaining the
    /// client-wide dirty-page counter.
    fn note_dirty(&self, lo: &mut VnState, page: u64, seq: u64) {
        if lo.dirty.insert(page, seq).is_none() {
            self.dirty_total.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks `page` clean, maintaining the client-wide counter.
    fn note_clean(&self, lo: &mut VnState, page: u64) {
        if lo.dirty.remove(&page).is_some() {
            self.dirty_total.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Drops every dirty page of a vnode (file removal).
    fn clear_dirty(&self, lo: &mut VnState) {
        let n = lo.dirty.len() as u64;
        lo.dirty.clear();
        self.dirty_total.fetch_sub(n, Ordering::Relaxed);
    }

    /// Coalesces dirty pages (optionally restricted to `range`) into up
    /// to `max_extents` contiguous extents of at most
    /// `wb.extent_pages` pages each, snapshotting page contents and
    /// (page, seq) tags under the caller's `lo` guard. The last extent
    /// is clamped at EOF (partial final page); pages wholly beyond EOF
    /// or whose cached contents are gone are dropped from the dirty set
    /// on the spot.
    fn collect_extents(
        &self,
        fid: Fid,
        lo: &mut VnState,
        range: Option<ByteRange>,
        max_extents: usize,
        eof: u64,
    ) -> Vec<PendingExtent> {
        let snapshot: Vec<(u64, u64)> = lo
            .dirty
            .iter()
            .map(|(&p, &s)| (p, s))
            .filter(|(p, _)| {
                range.is_none_or(|r| {
                    r.overlaps(&ByteRange::at(p * PAGE_SIZE as u64, PAGE_SIZE as u64))
                })
            })
            .collect();
        let mut out: Vec<PendingExtent> = Vec::new();
        for (p, seq) in snapshot {
            let offset = p * PAGE_SIZE as u64;
            let len = (PAGE_SIZE as u64).min(eof.saturating_sub(offset)) as usize;
            if len == 0 {
                // Truncated past this page since it was dirtied.
                self.note_clean(lo, p);
                continue;
            }
            let Some(bytes) = self.data.read_page(fid, p) else {
                // Contents evicted from the cache: nothing left to store.
                self.note_clean(lo, p);
                continue;
            };
            // Append when contiguous with the previous page and under
            // the extent budget; a partial (EOF) page never matches the
            // byte-contiguity check, so it always ends its extent.
            let can_append = out.last().is_some_and(|e| {
                e.offset + e.data.len() as u64 == offset && e.pages.len() < self.wb.extent_pages
            });
            if can_append {
                let e = out.last_mut().expect("checked non-empty");
                e.data.extend_from_slice(&bytes[..len]);
                e.pages.push((p, seq));
            } else {
                if out.len() == max_extents {
                    break;
                }
                out.push(PendingExtent {
                    offset,
                    data: bytes[..len].to_vec(),
                    pages: vec![(p, seq)],
                });
            }
        }
        out
    }

    /// Builds the wire request for a batch — a flat `StoreData` for a
    /// single extent (16 bytes cheaper), `StoreDataVec` otherwise — and
    /// returns the (page, seq) tags the batch carries.
    fn storeback_request(fid: Fid, batch: Vec<PendingExtent>) -> (Request, Vec<(u64, u64)>) {
        let mut pages = Vec::new();
        let mut extents = Vec::with_capacity(batch.len());
        for e in batch {
            pages.extend(e.pages);
            extents.push(WriteExtent { offset: e.offset, data: e.data });
        }
        let req = if extents.len() == 1 {
            let e = extents.pop().expect("one extent");
            Request::StoreData { fid, offset: e.offset, data: e.data }
        } else {
            Request::StoreDataVec { fid, extents }
        };
        (req, pages)
    }

    /// Most extents per store-back RPC under the current config.
    fn max_extents(&self) -> usize {
        if self.wb.use_vec_rpc {
            self.wb.max_extents_per_rpc
        } else {
            1
        }
    }

    /// Stores dirty pages (optionally only those in `range`) back to the
    /// file server from *revocation* context, merging the returned
    /// status by stamp (§6.3). The caller's `lo` guard is held across
    /// the sends — safe only because revocation-class stores are served
    /// grant-free (§6.3): the reply cannot block on a further revocation
    /// aimed back at us. Normal-path store-backs use [`store_back`],
    /// which drops the guard instead.
    ///
    /// [`store_back`]: CacheManager::store_back
    // dfs-lint: allow(guard-across-rpc) — revocation-class stores are
    // grant-free at the server (§6.3), so holding the caller's `lo`
    // guard across the send cannot deadlock.
    fn store_dirty(
        &self,
        vn: &CVnode,
        lo: &mut VnState,
        range: Option<ByteRange>,
        class: CallClass,
    ) -> DfsResult<()> {
        let ticket = *self.ticket.lock();
        // Clamp against the EOF as of flush start: a reply merged after
        // a partial store reports the server's (shorter) length, which
        // must not EOF-discard pages still waiting in the dirty set.
        let eof = lo.status.as_ref().map(|s| s.length).unwrap_or(u64::MAX);
        let mut redirects = 0u32;
        loop {
            // Re-resolve per round: a volume move mid-revocation means
            // the dirty data must chase the volume to its new server.
            let server = self.server_for(vn.fid.volume)?;
            let batch = self.collect_extents(vn.fid, lo, range, self.max_extents(), eof);
            if batch.is_empty() {
                return Ok(());
            }
            let (req, pages) = Self::storeback_request(vn.fid, batch);
            let resp = self.net.call(self.addr, Addr::Server(server), ticket, class, req)?;
            match resp {
                Response::Status { status, stamp, .. } => {
                    if !lo.merge_status(status, stamp) {
                        self.stats.lock().stale_status_dropped += 1;
                    }
                }
                Response::WrongServer { hint, generation } => {
                    // Nothing was stored: the pages stay dirty and the
                    // next round re-collects them against the new owner.
                    redirects += 1;
                    if redirects > 8 {
                        return Err(DfsError::Timeout);
                    }
                    self.follow_redirect(vn.fid.volume, hint, generation);
                    continue;
                }
                Response::Err(e) => return Err(e),
                _ => return Err(DfsError::Internal("bad StoreData response")),
            }
            // `lo` was held throughout: no page can have been re-dirtied.
            let n = pages.len() as u64;
            for (p, _) in pages {
                self.note_clean(lo, p);
            }
            if class == CallClass::Revocation {
                self.stats.lock().revocation_stores += n;
            }
        }
    }

    /// The normal-path store-back: coalesces dirty pages into extents
    /// and ships them with the vnode's low-level lock **released across
    /// every send** (§6.1) — no `guard-across-rpc` suppression needed.
    /// Pages re-dirtied while an RPC was in flight keep their dirty bit
    /// (their write_seq no longer matches the snapshot) and go out on a
    /// later round; queued revocations are absorbed after each reply.
    fn store_back(&self, vn: &Arc<CVnode>, range: Option<ByteRange>) -> DfsResult<()> {
        let mut lo = vn.lock_lo();
        loop {
            // The EOF as the local writer sees it at snapshot time:
            // extents are clamped against the same status the dirty-set
            // snapshot below comes from.
            let eof = lo.status.as_ref().map_or(u64::MAX, |s| s.length);
            let batch = self.collect_extents(vn.fid, &mut lo, range, self.max_extents(), eof);
            if batch.is_empty() {
                return Ok(());
            }
            let n_extents = batch.len() as u64;
            let (req, pages) = Self::storeback_request(vn.fid, batch);
            lo.in_flight += 1;
            drop(lo);
            {
                let mut st = self.stats.lock();
                st.storeback_rpcs += 1;
                st.storeback_extents += n_extents;
                st.storeback_pages += pages.len() as u64;
            }
            let resp = self.file_rpc(vn.fid.volume, req);
            lo = vn.lock_lo();
            lo.in_flight -= 1;
            // The local length as of *now* — writes during the RPC
            // flight may have extended the file past what this store
            // carried. The reply's status wins the stamp comparison
            // but reflects only the stored prefix; letting its shorter
            // length stand would EOF-discard those still-dirty pages on
            // the next round (and shrink what a concurrent local
            // getattr observes), so re-extend while status is dirty.
            let local_len = lo.status.as_ref().map(|s| s.length);
            match resp?.into_result()? {
                Response::Status { status, stamp, .. } => {
                    if !lo.merge_status(status, stamp) {
                        self.stats.lock().stale_status_dropped += 1;
                    }
                }
                _ => return Err(DfsError::Internal("bad store-back response")),
            }
            if lo.status_dirty {
                if let (Some(l), Some(st)) = (local_len, lo.status.as_mut()) {
                    st.length = st.length.max(l);
                }
            }
            // Clean only pages unchanged since the snapshot (no lost
            // updates); re-dirtied pages stay for the next round.
            for (p, seq) in pages {
                if lo.dirty.get(&p) == Some(&seq) {
                    self.note_clean(&mut lo, p);
                }
            }
            // Revocations may have queued while we were in flight (§6.3).
            self.absorb(vn, &mut lo, None, Vec::new());
        }
    }

    /// Jittered, capped backoff for retry loops: linear ramp capped at
    /// 2 ms, with a deterministic per-(client, key, round) jitter in the
    /// upper half so colliding clients desynchronize.
    fn backoff_keyed(&self, key: u64, round: u32) {
        const BASE_US: u64 = 100;
        const CAP_US: u64 = 2_000;
        let step = (BASE_US * u64::from(round)).min(CAP_US);
        let seed = (u64::from(self.id.0) << 40) ^ key ^ u64::from(round);
        let jitter = StdRng::seed_from_u64(seed).gen_range_u64(step / 2 + 1);
        self.stats.lock().backoff_rounds += 1;
        std::thread::sleep(Duration::from_micros(step / 2 + jitter));
    }

    /// Token-contention backoff keyed by fid (used by `read`/`write`).
    fn backoff(&self, fid: Fid, round: u32) {
        self.backoff_keyed(
            (u64::from(fid.vnode.0) << 8) ^ fid.volume.0.wrapping_mul(0x9E37_79B9),
            round,
        );
    }

    // ------------------------------------------------------------------
    // Crash recovery: epoch tracking, reestablishment, replay (§3.2)
    // ------------------------------------------------------------------

    /// Asks a server for its current epoch (a `GraceWait` refusal
    /// carries none) and runs recovery if it changed.
    fn probe_epoch(&self, server: ServerId, ticket: Option<Ticket>) {
        let resp = self.net.call(
            self.addr,
            Addr::Server(server),
            ticket,
            CallClass::Normal,
            Request::GetEpoch,
        );
        if let Ok(Response::EpochIs { epoch, .. }) = resp {
            self.note_epoch(server, epoch, ticket);
        }
    }

    /// Records an observed server epoch. A change from a previously
    /// known epoch means the server crashed and restarted, losing all
    /// token state: run the recovery pipeline before proceeding.
    fn note_epoch(&self, server: ServerId, epoch: u64, ticket: Option<Ticket>) {
        if IN_RECOVERY.with(|f| f.get()) {
            return; // Recovery's own RPCs must not recurse.
        }
        {
            let mut known = self.known_epochs.lock();
            match known.get(&server).copied() {
                Some(prev) if prev == epoch => return,
                Some(_) => {}
                None => {
                    // First contact: nothing cached under an older epoch.
                    known.insert(server, epoch);
                    return;
                }
            }
        }
        self.recover(server, epoch, ticket);
    }

    /// The client half of the crash-restart pipeline, serialized by the
    /// recovery gate and idempotent (the epoch is re-checked under it):
    ///
    /// 1. quiesce the background flusher;
    /// 2. drop every token held from the dead epoch (gone server-side)
    ///    and reset per-vnode stamp floors — the restarted server's
    ///    serialization stamps start over;
    /// 3. re-register the dropped set through one `ReestablishTokens`
    ///    RPC (granted without conflict during the server's grace
    ///    window; claims not returned fall back to the normal grant
    ///    path on demand);
    /// 4. revalidate clean cached files against post-restart
    ///    attributes, keeping data pages whose `DataVersion` is
    ///    unchanged (AFS-style);
    /// 5. replay still-dirty write-behind pages through the ordinary
    ///    store-back path — an acked store survived in the journal, an
    ///    unacked one is still dirty here, so no update is lost.
    fn recover(&self, server: ServerId, epoch: u64, ticket: Option<Ticket>) {
        let _gate = self.recovery_gate.lock();
        {
            let mut known = self.known_epochs.lock();
            if known.get(&server) == Some(&epoch) {
                return; // Another thread already recovered this epoch.
            }
            known.insert(server, epoch);
        }
        self.stats.lock().recoveries += 1;
        IN_RECOVERY.with(|f| f.set(true));
        self.set_flusher_paused(true);
        self.recover_inner(server, epoch, ticket);
        self.set_flusher_paused(false);
        IN_RECOVERY.with(|f| f.set(false));
    }

    fn recover_inner(&self, server: ServerId, epoch: u64, ticket: Option<Ticket>) {
        // Cached vnodes living on the restarted server.
        let all: Vec<Arc<CVnode>> = self.vnodes.lock().values().cloned().collect();
        let mine: Vec<Arc<CVnode>> = all
            .into_iter()
            .filter(|vn| self.server_for(vn.fid.volume).ok() == Some(server))
            .collect();
        // Drop dead-epoch tokens, remembering what we held so it can be
        // claimed back; reset stamp floors so the restarted server's
        // stamps are accepted.
        let mut claims: Vec<Token> = Vec::new();
        for vn in &mine {
            let mut lo = vn.lock_lo();
            claims.append(&mut lo.tokens);
            lo.queued.clear(); // Revocations of dead tokens are moot.
            lo.stamp = SerializationStamp::default();
        }
        // One batched reestablish call re-registers the whole set.
        let granted = if claims.is_empty() {
            Vec::new()
        } else {
            match self.net.call(
                self.addr,
                Addr::Server(server),
                ticket,
                CallClass::Normal,
                Request::ReestablishTokens { epoch, tokens: claims },
            ) {
                Ok(Response::Reestablished { tokens, .. }) => tokens,
                // Grace already over, or the server bounced again: fall
                // back to the normal grant path on demand.
                _ => Vec::new(),
            }
        };
        self.stats.lock().tokens_reestablished += granted.len() as u64;
        for t in granted {
            let vn = self.vnode(t.fid);
            vn.lock_lo().tokens.push(t);
        }
        // Replay files with dirty pages; revalidate the rest. A vnode
        // whose pages were all acked pre-crash may still carry
        // `status_dirty` (only a revocation-driven `StoreStatus` clears
        // it), but its cached status already reflects the server's
        // reply to the last store — so it revalidates like a clean one.
        for vn in &mine {
            let (has_dirty, cached_dv) = {
                let lo = vn.lock_lo();
                (!lo.dirty.is_empty(), lo.status.as_ref().map(|s| s.data_version))
            };
            if has_dirty {
                // Locally-modified data is newer than anything the
                // server recovered; push it back out. Pages whose
                // stores were acked pre-crash are clean here and
                // durable there; everything else is still dirty.
                let replayed = vn.lock_lo().dirty.len() as u64;
                if self.store_back(vn, None).is_ok() {
                    self.stats.lock().recovery_replayed_pages += replayed;
                }
                continue;
            }
            let Some(cached_dv) = cached_dv else { continue };
            let resp = self
                .file_rpc(vn.fid.volume, Request::FetchStatus { fid: vn.fid, want: None })
                .and_then(|r| r.into_result());
            let mut lo = vn.lock_lo();
            match resp {
                // A replica-served (stale-stamped) status cannot
                // revalidate a cache: only the primary's answer is
                // authoritative, so stale falls to the distrust arm.
                Ok(Response::Status { status, tokens, stamp, stale_us: 0, .. }) => {
                    let keep = status.data_version == cached_dv;
                    if !keep {
                        let dropped: Vec<u64> = lo.valid.iter().copied().collect();
                        for p in dropped {
                            lo.valid.remove(&p);
                            self.data.drop_page(vn.fid, p);
                        }
                    }
                    self.absorb(vn, &mut lo, Some((status, stamp)), tokens);
                    let mut st = self.stats.lock();
                    if keep {
                        st.reval_kept += 1;
                    } else {
                        st.reval_dropped += 1;
                    }
                }
                _ => {
                    // Could not revalidate: distrust the cached copy.
                    let dropped: Vec<u64> = lo.valid.iter().copied().collect();
                    for p in dropped {
                        lo.valid.remove(&p);
                        self.data.drop_page(vn.fid, p);
                    }
                    // dfs-lint: allow(lock-gap) — not a stale write-back: the
                    // revalidation happens against the *fresh* FetchStatus
                    // reply (`status.data_version == cached_dv` above), and
                    // this branch only invalidates cached state; it never
                    // writes a pre-gap snapshot into the vnode.
                    lo.status = None;
                    self.stats.lock().reval_dropped += 1;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Vnode layer: the file API (§4.4)
    // ------------------------------------------------------------------

    /// Returns the root fid of a volume.
    pub fn root(&self, volume: VolumeId) -> DfsResult<Fid> {
        if let Some(f) = self.roots.lock().get(&volume) {
            return Ok(*f);
        }
        match self.file_rpc(volume, Request::GetRoot { volume })?.into_result()? {
            Response::FidIs(f) => {
                self.roots.lock().insert(volume, f);
                Ok(f)
            }
            _ => Err(DfsError::Internal("bad GetRoot response")),
        }
    }

    /// Attempts to satisfy a read entirely from the published
    /// [`TokenView`] without taking either vnode lock (§6.1 fast path).
    ///
    /// Seqlock protocol: sample `lo_seq` (must be even — odd means a
    /// `lo` holder is mutating), load the snapshot, validate coverage
    /// and copy the bytes, then re-check that `lo_seq` is unchanged.
    /// Publishing happens under the `lo` mutex before the seq returns
    /// to even, so an unchanged even seq proves the snapshot was
    /// current for the whole copy. Any surprise — missing page, stale
    /// seq — returns `None` and the caller falls back to the mutex
    /// path.
    fn try_lockfree_read(
        &self,
        vn: &CVnode,
        fid: Fid,
        offset: u64,
        len: usize,
    ) -> Option<Vec<u8>> {
        let s1 = vn.lo_seq.load(Ordering::SeqCst);
        if s1 & 1 == 1 {
            return None;
        }
        let view = vn.published.load()?;
        if !tokens_trust_status(&view.tokens) {
            return None;
        }
        let st = view.status.as_ref()?;
        let end = st.length.min(offset + len as u64);
        let mut out = Vec::new();
        if offset < end {
            let want = ByteRange::new(offset, end);
            let readable = TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::DATA_WRITE.0);
            if !tokens_cover(&view.tokens, readable, &want) {
                return None;
            }
            let first = offset / PAGE_SIZE as u64;
            let last = (end - 1) / PAGE_SIZE as u64;
            if !(first..=last).all(|p| view.valid.contains(&p)) {
                return None;
            }
            out.reserve((end - offset) as usize);
            for p in first..=last {
                // Unlike the locked path, eviction here means bail, not
                // zero-fill: without the lock we cannot tell a racing
                // evict from a never-written hole.
                let page = self.data.read_page(fid, p)?;
                let ps = p * PAGE_SIZE as u64;
                let s = offset.max(ps) - ps;
                let e = (end - ps).min(PAGE_SIZE as u64);
                out.extend_from_slice(&page[s as usize..e as usize]);
            }
        }
        if vn.lo_seq.load(Ordering::SeqCst) != s1 {
            return None;
        }
        let mut stats = self.stats.lock();
        stats.local_reads += 1;
        stats.lockfree_reads += 1;
        Some(out)
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read(&self, fid: Fid, offset: u64, len: usize) -> DfsResult<Vec<u8>> {
        let vn = self.vnode(fid);
        if self.lockfree {
            if let Some(out) = self.try_lockfree_read(&vn, fid, offset, len) {
                return Ok(out);
            }
        }
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        for round in 0..256u32 {
            // Fast path first, while the low-level lock is still held
            // from the previous round's merge: a freshly-granted token
            // cannot be revoked between absorb and this check.
            if lo.status_trusted() {
                let st = lo.status.clone().expect("trusted implies present");
                let end = st.length.min(offset + len as u64);
                if offset >= end {
                    self.stats.lock().local_reads += 1;
                    return Ok(Vec::new());
                }
                let want = ByteRange::new(offset, end);
                let first = offset / PAGE_SIZE as u64;
                let last = (end - 1) / PAGE_SIZE as u64;
                let readable = TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::DATA_WRITE.0);
                if lo.covered(readable, &want)
                    && (first..=last).all(|p| lo.valid.contains(&p))
                {
                    let mut out = Vec::with_capacity((end - offset) as usize);
                    for p in first..=last {
                        let page =
                            self.data.read_page(fid, p).unwrap_or_else(|| vec![0; PAGE_SIZE]);
                        let ps = p * PAGE_SIZE as u64;
                        let s = offset.max(ps) - ps;
                        let e = (end - ps).min(PAGE_SIZE as u64);
                        out.extend_from_slice(&page[s as usize..e as usize]);
                    }
                    self.stats.lock().local_reads += 1;
                    return Ok(out);
                }
            }

            if round > 4 {
                // Contended token: back off outside the locks so another
                // client can finish its handoff, then re-acquire.
                drop(lo);
                self.backoff(fid, round);
                lo = vn.lock_lo();
            }
            // Miss: fetch a chunk with read tokens, releasing the low
            // lock across the RPC (§6.1), then merge and retry.
            let first = offset / PAGE_SIZE as u64;
            let pages = (len as u64).div_ceil(PAGE_SIZE as u64).max(1).max(FETCH_PAGES);
            let fetch_off = first * PAGE_SIZE as u64;
            let fetch_len = (pages * PAGE_SIZE as u64) as u32;
            let fetch_range = ByteRange::at(fetch_off, fetch_len as u64);
            lo.in_flight += 1;
            drop(lo);
            let resp = self.file_rpc(
                fid.volume,
                Request::FetchData {
                    fid,
                    offset: fetch_off,
                    len: fetch_len,
                    want: TokenRequest::ranged(
                        TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0),
                        fetch_range,
                    ),
                },
            );
            lo = vn.lock_lo();
            lo.in_flight -= 1;
            let (bytes, status, tokens, stamp) = match resp?.into_result()? {
                Response::Data { bytes, status, tokens, stamp, stale_us, .. } => {
                    if stale_us > 0 {
                        // A §3.8 replica answered while the primary was
                        // down: hand the bytes straight to the caller.
                        // Nothing installs — the replica's tokens and
                        // stamps mean nothing at the primary, and a
                        // bounded-stale page must never masquerade as
                        // token-backed cache state.
                        self.stats.lock().stale_reads += 1;
                        let end = status.length.min(offset + len as u64);
                        if offset >= end {
                            return Ok(Vec::new());
                        }
                        let s = (offset - fetch_off) as usize;
                        let e = ((end - fetch_off) as usize).min(bytes.len());
                        return Ok(bytes.get(s..e).unwrap_or(&[]).to_vec());
                    }
                    (bytes, status, tokens, stamp)
                }
                _ => return Err(DfsError::Internal("bad FetchData response")),
            };
            // Install fetched pages; locally-dirty pages are newer than
            // anything the server returned (we hold the write token).
            let whole_pages = bytes.len() / PAGE_SIZE;
            for (i, chunk) in bytes.chunks(PAGE_SIZE).enumerate() {
                let p = first + i as u64;
                if !lo.dirty.contains_key(&p) {
                    self.data.write_page(fid, p, chunk)?;
                    if i < whole_pages || status.length <= fetch_off + bytes.len() as u64 {
                        lo.valid.insert(p);
                    }
                }
            }
            self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
            self.stats.lock().remote_reads += 1;
        }
        Err(DfsError::Timeout)
    }

    /// Writes `data` at `offset`; absorbed locally when a write token is
    /// held ("update the data ... without storing the data back to the
    /// server or even notifying the server", §5.2).
    pub fn write(&self, fid: Fid, offset: u64, data: &[u8]) -> DfsResult<FileStatus> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        let want = ByteRange::at(offset, data.len() as u64);
        let needed = TokenTypes(TokenTypes::DATA_WRITE.0 | TokenTypes::STATUS_WRITE.0);

        for round in 0..256u32 {
            if lo.covered(TokenTypes::DATA_WRITE, &want)
                && lo.has_types(TokenTypes::STATUS_WRITE)
                && lo.status.is_some()
            {
                // Partial first/last pages need their old contents.
                let first = offset / PAGE_SIZE as u64;
                let last = (offset + data.len() as u64 - 1) / PAGE_SIZE as u64;
                let eof = lo.status.as_ref().map(|s| s.length).unwrap_or(0);
                let mut need_fetch = Vec::new();
                for p in [first, last] {
                    let ps = p * PAGE_SIZE as u64;
                    let full = offset <= ps && offset + data.len() as u64 >= ps + PAGE_SIZE as u64;
                    if !full && !lo.valid.contains(&p) && ps < eof {
                        need_fetch.push(p);
                    }
                }
                need_fetch.dedup();
                if !need_fetch.is_empty() {
                    let need_fetch2 = need_fetch.clone();
                    lo.in_flight += 1;
                    drop(lo);
                    for p in need_fetch {
                        let resp = self.file_rpc(
                            fid.volume,
                            Request::FetchData {
                                fid,
                                offset: p * PAGE_SIZE as u64,
                                len: PAGE_SIZE as u32,
                                want: None,
                            },
                        );
                        // `stale_us: 0`: a replica's bounded-stale page
                        // must never be merged under a write token — the
                        // unmodified part of the page would store back
                        // stale bytes (a lost update).
                        if let Ok(Response::Data { bytes, stale_us: 0, .. }) = resp {
                            self.data.write_page(fid, p, &bytes)?;
                        }
                    }
                    lo = vn.lock_lo();
                    lo.in_flight -= 1;
                    for p in need_fetch2 {
                        lo.valid.insert(p);
                    }
                    // Tokens may have been revoked while fetching (§6.3):
                    // drain the queue and re-check coverage.
                    self.absorb(&vn, &mut lo, None, Vec::new());
                    continue;
                }
                // Apply the write to cached pages, stamping each dirty
                // page with a fresh write sequence (lost-update guard
                // for store-backs that release `lo` mid-flight).
                lo.write_seq += 1;
                let seq = lo.write_seq;
                let mut done = 0usize;
                let mut pos = offset;
                while done < data.len() {
                    let p = pos / PAGE_SIZE as u64;
                    let within = (pos % PAGE_SIZE as u64) as usize;
                    let n = (PAGE_SIZE - within).min(data.len() - done);
                    let mut page =
                        self.data.read_page(fid, p).unwrap_or_else(|| vec![0; PAGE_SIZE]);
                    page[within..within + n].copy_from_slice(&data[done..done + n]);
                    self.data.write_page(fid, p, &page)?;
                    lo.valid.insert(p);
                    self.note_dirty(&mut lo, p, seq);
                    pos += n as u64;
                    done += n;
                }
                let st = lo.status.as_mut().expect("checked above");
                st.length = st.length.max(offset + data.len() as u64);
                st.mtime = self.net.clock().now();
                st.data_version += 1;
                let out = st.clone();
                lo.status_dirty = true;
                self.stats.lock().local_writes += 1;
                // Dirty-page budget (write-behind backpressure): over
                // budget, nudge the flusher; over twice the budget, this
                // writer pays for the flush itself.
                if self.wb.flusher {
                    let dirty = self.dirty_total.load(Ordering::Relaxed) as usize;
                    if dirty > self.wb.dirty_budget_pages.saturating_mul(2) {
                        self.stats.lock().backpressure_flushes += 1;
                        drop(lo);
                        self.store_back(&vn, None)?;
                    } else if dirty > self.wb.dirty_budget_pages {
                        self.kick_flusher();
                    }
                }
                return Ok(out);
            }

            if round > 4 {
                drop(lo);
                self.backoff(fid, round);
                lo = vn.lock_lo();
            }
            // Acquire data and status tokens in one combined grant over
            // a page-aligned hull so nearby writes stay local; typed
            // partial revocation means a later status conflict will not
            // take the byte-range data bits with it (§5.2, §5.4).
            let hull = ByteRange::new(
                (offset / PAGE_SIZE as u64) * PAGE_SIZE as u64,
                (offset + data.len() as u64).div_ceil(PAGE_SIZE as u64).max(FETCH_PAGES)
                    * PAGE_SIZE as u64,
            );
            lo.in_flight += 1;
            drop(lo);
            let resp = self.file_rpc(
                fid.volume,
                Request::GetToken {
                    fid,
                    want: TokenRequest {
                        types: TokenTypes(
                            needed.0 | TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0,
                        ),
                        range: hull,
                    },
                },
            );
            lo = vn.lock_lo();
            lo.in_flight -= 1;
            match resp?.into_result()? {
                Response::Status { status, tokens, stamp, .. } => {
                    self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
                }
                _ => return Err(DfsError::Internal("bad GetToken response")),
            }
            self.stats.lock().write_token_fetches += 1;
        }
        Err(DfsError::Timeout)
    }

    /// Prefetches data tokens over `range` so subsequent reads (and
    /// writes, with `write = true`) in that range are served locally —
    /// how a partitioned workload claims its byte range (§5.4).
    pub fn acquire_data_token(&self, fid: Fid, range: ByteRange, write: bool) -> DfsResult<()> {
        let types = if write {
            TokenTypes(
                TokenTypes::DATA_WRITE.0
                    | TokenTypes::DATA_READ.0
                    | TokenTypes::STATUS_WRITE.0
                    | TokenTypes::STATUS_READ.0,
            )
        } else {
            TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0)
        };
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        lo.in_flight += 1;
        drop(lo);
        let resp = self
            .file_rpc(fid.volume, Request::GetToken { fid, want: TokenRequest { types, range } });
        let mut lo = vn.lock_lo();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Status { status, tokens, stamp, .. } => {
                self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
                Ok(())
            }
            _ => Err(DfsError::Internal("bad GetToken response")),
        }
    }

    /// Flushes dirty data and returns when it is durable at the server.
    pub fn fsync(&self, fid: Fid) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let had_dirty = !vn.lock_lo().dirty.is_empty();
        self.store_back(&vn, None)?;
        if !had_dirty {
            // Nothing shipped, so no store-back forced the server's
            // log. The caller still asked for durability — a freshly
            // created (or renamed, chmod'ed, ...) file must survive a
            // crash — so force the log explicitly.
            self.file_rpc(fid.volume, Request::Fsync { fid })?.into_result()?;
        }
        Ok(())
    }

    /// Looks up `name` in `dir`, consulting the directory layer first
    /// (§4.3: "the client must in general cache the results of
    /// individual lookups").
    pub fn lookup(&self, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        let vn = self.vnode(dir);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        if lo.dir_trusted() {
            if let Some(st) = lo.names.get(name) {
                self.stats.lock().lookup_hits += 1;
                return Ok(st.clone());
            }
            if lo.listing.is_some()
                && !lo.listing.as_ref().unwrap().iter().any(|e| e.name == name)
            {
                self.stats.lock().lookup_hits += 1;
                return Err(DfsError::NotFound);
            }
        }
        lo.in_flight += 1;
        drop(lo);
        self.stats.lock().lookup_misses += 1;
        let resp = self.file_rpc(
            dir.volume,
            Request::Lookup {
                dir,
                name: name.to_string(),
                want: TokenRequest::whole(TokenTypes(
                    TokenTypes::STATUS_READ.0 | TokenTypes::DATA_READ.0,
                )),
            },
        );
        let mut lo = vn.lock_lo();
        lo.in_flight -= 1;
        match resp?.into_result() {
            Ok(Response::Status { status, tokens, stamp, .. }) => {
                self.absorb(&vn, &mut lo, None, tokens);
                lo.names.insert(name.to_string(), status.clone());
                drop(lo);
                // Seed the child vnode's status too.
                let child = self.vnode(status.fid);
                let mut clo = child.lock_lo();
                if !clo.merge_status(status.clone(), stamp) {
                    self.stats.lock().stale_status_dropped += 1;
                }
                Ok(status)
            }
            Ok(_) => Err(DfsError::Internal("bad Lookup response")),
            Err(e) => Err(e),
        }
    }

    /// Lists a directory, cached under the directory's data token.
    pub fn readdir(&self, dir: Fid) -> DfsResult<Vec<DirEntry>> {
        let vn = self.vnode(dir);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        if lo.dir_trusted() {
            if let Some(l) = &lo.listing {
                self.stats.lock().lookup_hits += 1;
                return Ok(l.clone());
            }
        }
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(dir.volume, Request::Readdir { dir });
        let mut lo = vn.lock_lo();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Entries(entries) => {
                if lo.dir_trusted() {
                    lo.listing = Some(entries.clone());
                }
                Ok(entries)
            }
            _ => Err(DfsError::Internal("bad Readdir response")),
        }
    }

    fn namespace_rpc(&self, dir: Fid, req: Request) -> DfsResult<FileStatus> {
        let vn = self.vnode(dir);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(dir.volume, req);
        let mut lo = vn.lock_lo();
        lo.in_flight -= 1;
        match resp?.into_result() {
            Ok(Response::Status { status, tokens, stamp, .. }) => {
                self.absorb(&vn, &mut lo, None, tokens);
                // We made this change ourselves: our directory caches can
                // be updated in place (the server did not revoke our own
                // tokens, §5.2 same-host compatibility).
                lo.listing = None;
                drop(lo);
                let child = self.vnode(status.fid);
                let mut clo = child.lock_lo();
                clo.merge_status(status.clone(), stamp);
                Ok(status)
            }
            Ok(Response::Ok) => Ok(FileStatus::default()),
            Ok(_) => Err(DfsError::Internal("bad namespace response")),
            Err(e) => Err(e),
        }
    }

    /// Creates a regular file.
    pub fn create(&self, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        let st =
            self.namespace_rpc(dir, Request::Create { dir, name: name.into(), mode })?;
        let vn = self.vnode(dir);
        let mut lo = vn.lock_lo();
        lo.names.insert(name.to_string(), st.clone());
        Ok(st)
    }

    /// Creates a directory.
    pub fn mkdir(&self, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        let st = self.namespace_rpc(dir, Request::Mkdir { dir, name: name.into(), mode })?;
        let vn = self.vnode(dir);
        vn.lock_lo().names.insert(name.to_string(), st.clone());
        Ok(st)
    }

    /// Creates a symlink.
    pub fn symlink(&self, dir: Fid, name: &str, target: &str) -> DfsResult<FileStatus> {
        self.namespace_rpc(
            dir,
            Request::Symlink { dir, name: name.into(), target: target.into() },
        )
    }

    /// Reads a symlink target.
    pub fn readlink(&self, fid: Fid) -> DfsResult<String> {
        match self.file_rpc(fid.volume, Request::Readlink { fid })?.into_result()? {
            Response::Target(t) => Ok(t),
            _ => Err(DfsError::Internal("bad Readlink response")),
        }
    }

    /// Adds a hard link.
    pub fn link(&self, dir: Fid, name: &str, target: Fid) -> DfsResult<FileStatus> {
        self.namespace_rpc(dir, Request::Link { dir, name: name.into(), target })
    }

    /// Removes a file.
    pub fn remove(&self, dir: Fid, name: &str) -> DfsResult<()> {
        let st = self.namespace_rpc(dir, Request::Remove { dir, name: name.into() })?;
        let vn = self.vnode(dir);
        vn.lock_lo().names.remove(name);
        // Invalidate the victim's cached state.
        let victim = self.vnode(st.fid);
        let mut vlo = victim.lock_lo();
        vlo.status = None;
        vlo.valid.clear();
        self.clear_dirty(&mut vlo);
        self.data.evict_file(st.fid);
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&self, dir: Fid, name: &str) -> DfsResult<()> {
        let vn = self.vnode(dir);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(dir.volume, Request::Rmdir { dir, name: name.into() });
        let mut lo = vn.lock_lo();
        lo.in_flight -= 1;
        resp?.into_result()?;
        lo.names.remove(name);
        lo.listing = None;
        Ok(())
    }

    /// Renames an entry.
    pub fn rename(
        &self,
        src_dir: Fid,
        src_name: &str,
        dst_dir: Fid,
        dst_name: &str,
    ) -> DfsResult<()> {
        self.file_rpc(
            src_dir.volume,
            Request::Rename {
                src_dir,
                src_name: src_name.into(),
                dst_dir,
                dst_name: dst_name.into(),
            },
        )?
        .into_result()?;
        for (d, n) in [(src_dir, src_name), (dst_dir, dst_name)] {
            let vn = self.vnode(d);
            let mut lo = vn.lock_lo();
            lo.names.remove(n);
            lo.listing = None;
        }
        Ok(())
    }

    /// Returns the file's status, from cache when the token allows.
    pub fn getattr(&self, fid: Fid) -> DfsResult<FileStatus> {
        let vn = self.vnode(fid);
        if self.lockfree {
            // Same seqlock dance as `try_lockfree_read`, but only the
            // status needs validating — no pages to copy.
            let s1 = vn.lo_seq.load(Ordering::SeqCst);
            if s1 & 1 == 0 {
                if let Some(view) = vn.published.load() {
                    if let Some(st) = view.status.as_ref() {
                        if tokens_trust_status(&view.tokens)
                            && vn.lo_seq.load(Ordering::SeqCst) == s1
                        {
                            let st = st.clone();
                            let mut stats = self.stats.lock();
                            stats.local_reads += 1;
                            stats.lockfree_reads += 1;
                            return Ok(st);
                        }
                    }
                }
            }
        }
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        if lo.status_trusted() {
            self.stats.lock().local_reads += 1;
            return Ok(lo.status.clone().expect("trusted implies present"));
        }
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(
            fid.volume,
            Request::FetchStatus { fid, want: TokenRequest::whole(TokenTypes::STATUS_READ) },
        );
        let mut lo = vn.lock_lo();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Status { status, tokens, stamp, stale_us, .. } => {
                if stale_us > 0 {
                    // Replica-served while the primary is down: report
                    // the bounded-stale status without absorbing it —
                    // the replica's stamp must not poison the vnode's
                    // stamp ordering for when the primary returns.
                    self.stats.lock().stale_reads += 1;
                    return Ok(status);
                }
                self.absorb(&vn, &mut lo, Some((status.clone(), stamp)), tokens);
                Ok(lo.status.clone().unwrap_or(status))
            }
            _ => Err(DfsError::Internal("bad FetchStatus response")),
        }
    }

    /// Changes attributes (truncation goes to the server).
    pub fn setattr(&self, fid: Fid, attrs: &SetAttrs) -> DfsResult<FileStatus> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        // Push dirty data first so truncation happens after our writes.
        self.store_back(&vn, None)?;
        let mut lo = vn.lock_lo();
        lo.in_flight += 1;
        drop(lo);
        let resp =
            self.file_rpc(fid.volume, Request::StoreStatus { fid, attrs: attrs.clone() });
        let mut lo = vn.lock_lo();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Status { status, tokens, stamp, .. } => {
                if let Some(len) = attrs.length {
                    // Truncation invalidates cached pages past the end.
                    let keep = len.div_ceil(PAGE_SIZE as u64);
                    let dropped: Vec<u64> =
                        lo.valid.iter().copied().filter(|p| *p >= keep).collect();
                    for p in dropped {
                        lo.valid.remove(&p);
                        self.note_clean(&mut lo, p);
                        self.data.drop_page(fid, p);
                    }
                }
                self.absorb(&vn, &mut lo, Some((status.clone(), stamp)), tokens);
                Ok(lo.status.clone().unwrap_or(status))
            }
            _ => Err(DfsError::Internal("bad StoreStatus response")),
        }
    }

    /// Reads a file's ACL.
    pub fn get_acl(&self, fid: Fid) -> DfsResult<Acl> {
        match self.file_rpc(fid.volume, Request::GetAcl { fid })?.into_result()? {
            Response::AclIs(a) => Ok(a),
            _ => Err(DfsError::Internal("bad GetAcl response")),
        }
    }

    /// Replaces a file's ACL.
    pub fn set_acl(&self, fid: Fid, acl: &Acl) -> DfsResult<()> {
        self.file_rpc(fid.volume, Request::SetAcl { fid, acl: acl.clone() })?
            .into_result()?;
        Ok(())
    }

    /// Opens the file in `mode`, obtaining the matching open token.
    pub fn open(&self, fid: Fid, mode: OpenMode) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        let tok = mode.token();
        if !lo.has_types(tok) {
            lo.in_flight += 1;
            drop(lo);
            let resp = self.file_rpc(
                fid.volume,
                Request::GetToken {
                    fid,
                    want: TokenRequest { types: tok, range: ByteRange::WHOLE },
                },
            );
            lo = vn.lock_lo();
            lo.in_flight -= 1;
            match resp?.into_result()? {
                Response::Status { status, tokens, stamp, .. } => {
                    self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
                }
                _ => return Err(DfsError::Internal("bad GetToken response")),
            }
        }
        lo.opens.push(tok);
        Ok(())
    }

    /// Closes one open handle, storing dirty data back (AFS-compatible
    /// behaviour; with tokens this is not required for consistency).
    pub fn close(&self, fid: Fid, mode: OpenMode) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let tok = mode.token();
        {
            let mut lo = vn.lock_lo();
            if let Some(i) = lo.opens.iter().position(|t| *t == tok) {
                lo.opens.remove(i);
            }
        }
        self.store_back(&vn, None)
    }

    /// Sets a byte-range lock, locally when a lock token is held (§5.2).
    pub fn lock(&self, fid: Fid, range: ByteRange, write: bool) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        let needed = if write { TokenTypes::LOCK_WRITE } else { TokenTypes::LOCK_READ };
        if lo.find_token(needed, &range).is_some() {
            // Local conflict check among our own lockers.
            if lo.locks.iter().any(|l| l.range.overlaps(&range) && (l.write || write)) {
                return Err(DfsError::LockConflict);
            }
            lo.locks.push(HeldLock { range, write, local: true });
            return Ok(());
        }
        lo.in_flight += 1;
        drop(lo);
        let resp = self.file_rpc(fid.volume, Request::SetLock { fid, range, write });
        let mut lo = vn.lock_lo();
        lo.in_flight -= 1;
        resp?.into_result()?;
        lo.locks.push(HeldLock { range, write, local: false });
        Ok(())
    }

    /// Tries to obtain a lock *token* so subsequent locks are local.
    pub fn acquire_lock_token(&self, fid: Fid, range: ByteRange, write: bool) -> DfsResult<()> {
        let types = if write { TokenTypes::LOCK_WRITE } else { TokenTypes::LOCK_READ };
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        lo.in_flight += 1;
        drop(lo);
        let resp = self
            .file_rpc(fid.volume, Request::GetToken { fid, want: TokenRequest { types, range } });
        let mut lo = vn.lock_lo();
        lo.in_flight -= 1;
        match resp?.into_result()? {
            Response::Status { status, tokens, stamp, .. } => {
                self.absorb(&vn, &mut lo, Some((status, stamp)), tokens);
                Ok(())
            }
            _ => Err(DfsError::Internal("bad GetToken response")),
        }
    }

    /// Releases a byte-range lock.
    pub fn unlock(&self, fid: Fid, range: ByteRange) -> DfsResult<()> {
        let vn = self.vnode(fid);
        let _hi = vn.hi.lock();
        let mut lo = vn.lock_lo();
        let mut was_remote = false;
        lo.locks.retain(|l| {
            if l.range.overlaps(&range) {
                was_remote |= !l.local;
                false
            } else {
                true
            }
        });
        if was_remote {
            lo.in_flight += 1;
            drop(lo);
            let resp = self.file_rpc(fid.volume, Request::ReleaseLock { fid, range });
            let mut lo2 = vn.lock_lo();
            lo2.in_flight -= 1;
            resp?.into_result()?;
        }
        Ok(())
    }

    /// Returns tokens currently held on a fid (diagnostics/tests).
    pub fn held_tokens(&self, fid: Fid) -> Vec<Token> {
        self.vnode(fid).lock_lo().tokens.clone()
    }

    /// Returns the number of dirty (unstored) pages for a fid.
    pub fn dirty_pages(&self, fid: Fid) -> usize {
        self.vnode(fid).lock_lo().dirty.len()
    }

    /// Client-wide count of dirty (unstored) pages, O(1).
    pub fn total_dirty_pages(&self) -> u64 {
        self.dirty_total.load(Ordering::Relaxed)
    }

}

impl CacheManager {
    /// Handles one incoming revocation — shared by the single-token
    /// `RevokeToken` arm and the batched `RevokeVec` fan-out. Returns
    /// whether the token was returned.
    fn handle_revocation(&self, token: Token, types: TokenTypes, stamp: SerializationStamp) -> bool {
        self.stats.lock().revocations += 1;
        let vn = {
            let vnodes = self.vnodes.lock();
            vnodes.get(&token.fid).cloned()
        };
        let Some(vn) = vn else {
            return true;
        };
        // Revocations take ONLY the low-level lock (§6.1): the
        // high-level lock may be held by one of our own
        // operations blocked on this very server.
        let mut lo = vn.lock_lo();
        let known = lo.tokens.iter().any(|t| t.id == token.id);
        if !known {
            if lo.in_flight > 0 {
                // §6.3: the call that returns this token is still
                // in flight; queue the revocation for processing
                // when the reply arrives.
                lo.queued.push((token, types, stamp));
                self.stats.lock().queued_revocations += 1;
            }
            return true;
        }
        self.apply_revocation(&vn, &mut lo, &token, types, stamp)
    }
}

impl RpcService for CacheManager {
    fn dispatch(&self, _ctx: CallContext, req: Request) -> Response {
        match req {
            Request::RevokeToken { token, types, stamp } => {
                let returned = self.handle_revocation(token, types, stamp);
                Response::RevokeAck { returned }
            }
            Request::RevokeVec { items } => {
                // Fan a batched revocation out to the per-fid handler;
                // the single ack answers every item, in order. Each
                // item takes (and releases) its own vnode's lo lock —
                // a batch may span many files.
                let returned = items
                    .into_iter()
                    .map(|(token, types, stamp)| self.handle_revocation(token, types, stamp))
                    .collect();
                Response::RevokeVecAck { returned }
            }
            Request::Ping => Response::Ok,
            _ => Response::Err(DfsError::InvalidArgument),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_token::TokenId;
    use dfs_types::{VnodeId, VolumeId};

    fn tok(id: u64, types: TokenTypes, range: ByteRange) -> Token {
        Token {
            id: TokenId(id),
            fid: Fid::new(VolumeId(1), VnodeId(1), 1),
            types,
            range,
        }
    }

    #[test]
    fn coverage_union_of_tokens() {
        let mut st = VnState::default();
        st.tokens.push(tok(1, TokenTypes::DATA_READ, ByteRange::new(0, 100)));
        st.tokens.push(tok(2, TokenTypes::DATA_READ, ByteRange::new(100, 200)));
        assert!(st.covered(TokenTypes::DATA_READ, &ByteRange::new(0, 200)));
        assert!(st.covered(TokenTypes::DATA_READ, &ByteRange::new(50, 150)));
        assert!(!st.covered(TokenTypes::DATA_READ, &ByteRange::new(150, 250)));
        assert!(!st.covered(TokenTypes::DATA_WRITE, &ByteRange::new(0, 10)));
        assert!(st.covered(TokenTypes::DATA_READ, &ByteRange::new(5, 5)), "empty range");
    }

    #[test]
    fn coverage_with_gap_fails() {
        let mut st = VnState::default();
        st.tokens.push(tok(1, TokenTypes::DATA_WRITE, ByteRange::new(0, 100)));
        st.tokens.push(tok(2, TokenTypes::DATA_WRITE, ByteRange::new(150, 300)));
        assert!(!st.covered(TokenTypes::DATA_WRITE, &ByteRange::new(0, 300)));
        assert!(st.covered(TokenTypes::DATA_WRITE, &ByteRange::new(160, 290)));
    }

    #[test]
    fn merge_status_is_monotone_in_stamps() {
        let mut st = VnState::default();
        let s5 = FileStatus { length: 5, ..Default::default() };
        assert!(st.merge_status(s5, SerializationStamp(5)));
        let s3 = FileStatus { length: 3, ..Default::default() };
        assert!(!st.merge_status(s3, SerializationStamp(3)), "older stamp rejected (§6.3)");
        assert_eq!(st.status.as_ref().unwrap().length, 5);
        let s9 = FileStatus { length: 9, ..Default::default() };
        assert!(st.merge_status(s9, SerializationStamp(9)));
        assert_eq!(st.status.as_ref().unwrap().length, 9);
        assert_eq!(st.stamp, SerializationStamp(9));
    }

    #[test]
    fn status_trust_requires_token() {
        let mut st = VnState::default();
        st.merge_status(FileStatus::default(), SerializationStamp(1));
        assert!(!st.status_trusted(), "status without a token is untrusted");
        st.tokens.push(tok(1, TokenTypes::STATUS_READ, ByteRange::WHOLE));
        assert!(st.status_trusted());
        assert!(!st.dir_trusted(), "dir trust needs data+status read");
        st.tokens.push(tok(2, TokenTypes(TokenTypes::STATUS_READ.0 | TokenTypes::DATA_READ.0), ByteRange::WHOLE));
        assert!(st.dir_trusted());
    }

    #[test]
    fn location_cache_order_survives_invalidate_reinstall_cycles() {
        use crate::cache::MemCache;
        use dfs_types::{ClientId, ServerId, SimClock};

        let net = Network::new(SimClock::new(), 0);
        let cm = CacheManager::start(net, ClientId(1), Vec::new(), Arc::new(MemCache::new()));
        // A crash-failover or stale-hint loop invalidates and reinstalls
        // the same volume over and over; the eviction queue must not
        // accumulate a duplicate per cycle.
        for _ in 0..10 * LOCATION_CACHE_CAP {
            cm.loc_install(VolumeId(7), ServerId(1), 1);
            cm.loc_invalidate(VolumeId(7));
        }
        cm.loc_install(VolumeId(7), ServerId(1), 1);
        {
            let loc = cm.locations.lock();
            assert_eq!(loc.map.len(), 1);
            assert_eq!(loc.order.len(), 1, "one queue entry per cached volume");
        }
        // Fill to the cap: the churned volume must not be evicted by a
        // stale duplicate while fresher entries survive.
        for v in 100..100 + LOCATION_CACHE_CAP as u64 - 1 {
            cm.loc_install(VolumeId(v), ServerId(1), 1);
        }
        let loc = cm.locations.lock();
        assert!(loc.map.len() <= LOCATION_CACHE_CAP);
        assert!(loc.map.contains_key(&VolumeId(7)), "no stale dup got it evicted early");
        drop(loc);
        let _ = cm.shutdown();
    }

    #[test]
    fn queued_revocation_survives_unrelated_absorb_while_reply_in_flight() {
        use crate::cache::MemCache;
        use dfs_types::{ClientId, SimClock};

        let net = Network::new(SimClock::new(), 0);
        let cm = CacheManager::start(net, ClientId(1), Vec::new(), Arc::new(MemCache::new()));
        let fid = Fid::new(VolumeId(1), VnodeId(1), 1);
        let vn = cm.vnode(fid);
        let t = tok(
            42,
            TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0),
            ByteRange::WHOLE,
        );

        // A revocation arrives for a token whose granting reply is still
        // in flight (§6.3): it parks in the queue. Two RPCs are out —
        // say a FetchData and a flusher store-back.
        {
            let mut lo = vn.lock_lo();
            lo.in_flight = 2;
            lo.queued.push((t.clone(), t.types, SerializationStamp(7)));
        }
        // The unrelated reply (no tokens) merges first: the queued
        // revocation must survive this drain — its token is airborne.
        {
            let mut lo = vn.lock_lo();
            lo.in_flight -= 1;
            cm.absorb(&vn, &mut lo, None, Vec::new());
            assert_eq!(lo.queued.len(), 1, "revocation of an in-flight token must stay queued");
        }
        // The granting reply lands: the token installs and the parked
        // revocation strips it in the same merge.
        {
            let mut lo = vn.lock_lo();
            lo.in_flight -= 1;
            cm.absorb(&vn, &mut lo, None, vec![t.clone()]);
            assert!(lo.queued.is_empty());
            assert!(lo.tokens.is_empty(), "token must not survive its queued revocation");
        }
        // A revocation whose token never arrives is dropped once nothing
        // is in flight any more (returned voluntarily — genuinely moot).
        {
            let mut lo = vn.lock_lo();
            lo.queued.push((
                tok(43, TokenTypes::DATA_READ, ByteRange::WHOLE),
                TokenTypes::DATA_READ,
                SerializationStamp(9),
            ));
            cm.absorb(&vn, &mut lo, None, Vec::new());
            assert!(lo.queued.is_empty(), "moot revocation dropped when nothing is in flight");
        }
        let _ = cm.shutdown();
    }

    #[test]
    fn open_mode_token_mapping() {
        assert_eq!(OpenMode::Read.token(), TokenTypes::OPEN_READ);
        assert_eq!(OpenMode::Write.token(), TokenTypes::OPEN_WRITE);
        assert_eq!(OpenMode::Execute.token(), TokenTypes::OPEN_EXECUTE);
        assert_eq!(OpenMode::SharedRead.token(), TokenTypes::OPEN_SHARED_READ);
        assert_eq!(OpenMode::ExclusiveWrite.token(), TokenTypes::OPEN_EXCLUSIVE_WRITE);
    }

    #[test]
    fn find_token_requires_full_containment() {
        let mut st = VnState::default();
        st.tokens.push(tok(1, TokenTypes::LOCK_WRITE, ByteRange::new(10, 20)));
        assert!(st.find_token(TokenTypes::LOCK_WRITE, &ByteRange::new(12, 18)).is_some());
        assert!(st.find_token(TokenTypes::LOCK_WRITE, &ByteRange::new(5, 18)).is_none());
        assert!(st.find_token(TokenTypes::LOCK_READ, &ByteRange::new(12, 18)).is_none());
        assert!(st.has_types(TokenTypes::LOCK_WRITE));
        assert!(!st.has_types(TokenTypes::OPEN_READ));
    }
}
