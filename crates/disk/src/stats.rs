//! Disk operation statistics.

/// Counters accumulated by a [`SimDisk`](crate::SimDisk).
///
/// `busy_us` is the simulated time the disk spent servicing requests
/// under the configured [`CostModel`](crate::CostModel); experiments
/// report it as "disk time".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Blocks read.
    pub reads: u64,
    /// Blocks written (into the volatile cache or synchronously).
    pub writes: u64,
    /// Blocks made durable on stable storage.
    pub stable_writes: u64,
    /// Flush/sync operations (each `flush`, `flush_range`, `write_sync`).
    pub syncs: u64,
    /// Accesses that followed the previous access sequentially.
    pub sequential_ops: u64,
    /// Accesses that required a seek.
    pub random_ops: u64,
    /// Simulated microseconds the disk was busy.
    pub busy_us: u64,
    /// Writes discarded by crash injection.
    pub lost_writes: u64,
    /// Torn (half-applied) writes produced by crash injection.
    pub torn_writes: u64,
}

impl DiskStats {
    /// Returns `self - earlier`, counter by counter (saturating).
    ///
    /// Useful for measuring one phase of an experiment: snapshot before,
    /// snapshot after, and diff.
    pub fn since(&self, earlier: &DiskStats) -> DiskStats {
        DiskStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            stable_writes: self.stable_writes.saturating_sub(earlier.stable_writes),
            syncs: self.syncs.saturating_sub(earlier.syncs),
            sequential_ops: self.sequential_ops.saturating_sub(earlier.sequential_ops),
            random_ops: self.random_ops.saturating_sub(earlier.random_ops),
            busy_us: self.busy_us.saturating_sub(earlier.busy_us),
            lost_writes: self.lost_writes.saturating_sub(earlier.lost_writes),
            torn_writes: self.torn_writes.saturating_sub(earlier.torn_writes),
        }
    }

    /// Total I/O operations (reads plus stable writes).
    pub fn total_ios(&self) -> u64 {
        self.reads + self.stable_writes
    }

    /// Simulated busy time in milliseconds.
    pub fn busy_ms(&self) -> f64 {
        self.busy_us as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_diffs_counters() {
        let a = DiskStats { reads: 10, writes: 5, busy_us: 100, ..DiskStats::default() };
        let b = DiskStats { reads: 25, writes: 9, busy_us: 400, ..DiskStats::default() };
        let d = b.since(&a);
        assert_eq!(d.reads, 15);
        assert_eq!(d.writes, 4);
        assert_eq!(d.busy_us, 300);
    }

    #[test]
    fn since_saturates_instead_of_underflowing() {
        let a = DiskStats { reads: 10, ..DiskStats::default() };
        let b = DiskStats::default();
        assert_eq!(b.since(&a).reads, 0);
    }

    #[test]
    fn totals() {
        let s = DiskStats { reads: 3, stable_writes: 4, busy_us: 1500, ..DiskStats::default() };
        assert_eq!(s.total_ios(), 7);
        assert!((s.busy_ms() - 1.5).abs() < 1e-9);
    }
}
