//! A simulated block device for the DEcorum file system reproduction.
//!
//! The paper's performance arguments (§2.2) are about *disk-operation
//! counts and patterns*: the Berkeley FFS schedules many synchronous and
//! asynchronous metadata writes scattered across the disk, while a logging
//! file system batches metadata into sequential appends to a log. This
//! crate provides a block device that:
//!
//! * stores blocks sparsely in memory (so a simulated 1 GiB aggregate does
//!   not cost 1 GiB of RAM),
//! * models a volatile write cache with an explicit [`SimDisk::flush`],
//!   so crash injection can drop or tear unflushed writes,
//! * charges every operation against a seek/rotation/transfer cost model,
//!   distinguishing sequential from random access, and
//! * keeps full [`DiskStats`] so experiments can report operation counts
//!   and simulated elapsed disk time.

pub mod stats;

pub use stats::DiskStats;

use dfs_types::{DfsError, DfsResult};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Size of a disk block in bytes.
pub const BLOCK_SIZE: usize = 4096;

/// One disk block's worth of bytes.
pub type Block = Box<[u8; BLOCK_SIZE]>;

fn zero_block() -> Block {
    Box::new([0u8; BLOCK_SIZE])
}

/// Cost model for the simulated disk, in microseconds.
///
/// Defaults approximate a circa-1990 SCSI disk: 16 ms average seek,
/// half-rotation latency of ~8 ms at 3600 rpm, and about 1 MiB/s
/// sustained transfer (4 ms per 4 KiB block). The experiments depend on
/// the *ratios* (random ≫ sequential), not the absolute values.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Average seek time charged for a non-sequential access.
    pub seek_us: u64,
    /// Average rotational latency charged for a non-sequential access.
    pub rotational_us: u64,
    /// Transfer time per block, charged on every access.
    pub transfer_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { seek_us: 16_000, rotational_us: 8_000, transfer_us: 4_000 }
    }
}

impl CostModel {
    /// Cost of one access that follows the previous access sequentially.
    pub fn sequential_us(&self) -> u64 {
        self.transfer_us
    }

    /// Cost of one access requiring a seek and rotational delay.
    pub fn random_us(&self) -> u64 {
        self.seek_us + self.rotational_us + self.transfer_us
    }
}

/// Configuration for a [`SimDisk`].
#[derive(Clone, Debug)]
pub struct DiskConfig {
    /// Number of addressable blocks.
    pub blocks: u32,
    /// Cost model used to charge simulated time.
    pub cost: CostModel,
}

impl Default for DiskConfig {
    fn default() -> Self {
        DiskConfig { blocks: 16 * 1024, cost: CostModel::default() }
    }
}

impl DiskConfig {
    /// Returns a config with the given number of blocks and default costs.
    pub fn with_blocks(blocks: u32) -> Self {
        DiskConfig { blocks, ..DiskConfig::default() }
    }

    /// Returns a config sized to hold at least `bytes` bytes.
    pub fn with_capacity_bytes(bytes: u64) -> Self {
        let blocks = bytes.div_ceil(BLOCK_SIZE as u64);
        Self::with_blocks(u32::try_from(blocks).expect("disk too large"))
    }
}

struct DiskInner {
    /// Durable contents; blocks absent from the map read as zeroes.
    stable: BTreeMap<u32, Block>,
    /// Writes accepted but not yet flushed to stable storage.
    volatile: BTreeMap<u32, Block>,
    /// Blocks marked bad by media-failure injection.
    bad: Vec<(u32, u32)>,
    /// Head position: block following the last access, for sequentiality.
    head: Option<u32>,
    /// Whether the disk has crashed (all I/O refused until `power_on`).
    crashed: bool,
    stats: DiskStats,
}

impl DiskInner {
    fn charge(&mut self, block: u32, cost: &CostModel) -> u64 {
        let sequential = self.head == Some(block);
        self.head = Some(block.wrapping_add(1));
        if sequential {
            self.stats.sequential_ops += 1;
            self.stats.busy_us += cost.sequential_us();
            cost.sequential_us()
        } else {
            self.stats.random_ops += 1;
            self.stats.busy_us += cost.random_us();
            cost.random_us()
        }
    }

    fn is_bad(&self, block: u32) -> bool {
        self.bad.iter().any(|&(s, e)| s <= block && block < e)
    }
}

/// A simulated disk: sparse stable storage plus a volatile write cache.
///
/// All methods take `&self`; the disk is internally synchronized and can
/// be shared between the journal daemon, file system threads, and crash
/// injection harnesses by cloning the handle.
///
/// # Examples
///
/// ```
/// use dfs_disk::{SimDisk, DiskConfig, BLOCK_SIZE};
///
/// let disk = SimDisk::new(DiskConfig::with_blocks(128));
/// let mut data = [0u8; BLOCK_SIZE];
/// data[0] = 0xEE;
/// disk.write(5, &data).unwrap();
/// disk.flush().unwrap();
/// assert_eq!(disk.read(5).unwrap()[0], 0xEE);
/// ```
#[derive(Clone)]
pub struct SimDisk {
    cfg: DiskConfig,
    inner: Arc<Mutex<DiskInner>>,
}

impl SimDisk {
    /// Creates a zero-filled disk with the given configuration.
    pub fn new(cfg: DiskConfig) -> Self {
        SimDisk {
            cfg,
            inner: Arc::new(Mutex::new(DiskInner {
                stable: BTreeMap::new(),
                volatile: BTreeMap::new(),
                bad: Vec::new(),
                head: None,
                crashed: false,
                stats: DiskStats::default(),
            })),
        }
    }

    /// Returns the number of addressable blocks.
    pub fn blocks(&self) -> u32 {
        self.cfg.blocks
    }

    /// Returns the disk's cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cfg.cost
    }

    fn check(&self, block: u32) -> DfsResult<()> {
        if block >= self.cfg.blocks {
            return Err(DfsError::InvalidArgument);
        }
        Ok(())
    }

    /// Reads one block, serving unflushed writes from the cache first.
    pub fn read(&self, block: u32) -> DfsResult<Block> {
        self.check(block)?;
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DfsError::Crashed);
        }
        if inner.is_bad(block) {
            return Err(DfsError::MediaFailure);
        }
        inner.stats.reads += 1;
        inner.charge(block, &self.cfg.cost);
        if let Some(b) = inner.volatile.get(&block) {
            return Ok(b.clone());
        }
        Ok(inner.stable.get(&block).cloned().unwrap_or_else(zero_block))
    }

    /// Writes one block into the volatile cache.
    ///
    /// The write is *not* durable until [`SimDisk::flush`] (or
    /// [`SimDisk::write_sync`]) completes; a crash discards it. No time
    /// is charged here — the cache absorbs the write — matching how the
    /// paper's FFS comparison charges actual disk traffic, not queuing.
    pub fn write(&self, block: u32, data: &[u8; BLOCK_SIZE]) -> DfsResult<()> {
        self.check(block)?;
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DfsError::Crashed);
        }
        if inner.is_bad(block) {
            return Err(DfsError::MediaFailure);
        }
        inner.stats.writes += 1;
        inner.volatile.insert(block, Box::new(*data));
        Ok(())
    }

    /// Writes one block and immediately makes it durable.
    ///
    /// This is the synchronous metadata write the Berkeley FFS issues on
    /// every inode/directory/indirect-block update (§2.2); it charges a
    /// full (usually random) disk access.
    pub fn write_sync(&self, block: u32, data: &[u8; BLOCK_SIZE]) -> DfsResult<()> {
        self.check(block)?;
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DfsError::Crashed);
        }
        if inner.is_bad(block) {
            return Err(DfsError::MediaFailure);
        }
        inner.stats.writes += 1;
        inner.stats.stable_writes += 1;
        inner.stats.syncs += 1;
        inner.charge(block, &self.cfg.cost);
        inner.volatile.remove(&block);
        inner.stable.insert(block, Box::new(*data));
        Ok(())
    }

    /// Flushes every cached write to stable storage.
    ///
    /// Blocks are written in ascending order so runs of consecutive
    /// blocks — e.g. a batch of log appends — are charged sequentially.
    pub fn flush(&self) -> DfsResult<()> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DfsError::Crashed);
        }
        if inner.volatile.is_empty() {
            return Ok(());
        }
        inner.stats.syncs += 1;
        let pending: Vec<(u32, Block)> = std::mem::take(&mut inner.volatile).into_iter().collect();
        for (block, data) in pending {
            inner.stats.stable_writes += 1;
            inner.charge(block, &self.cfg.cost);
            inner.stable.insert(block, data);
        }
        Ok(())
    }

    /// Flushes only the blocks in `[start, end)`.
    pub fn flush_range(&self, start: u32, end: u32) -> DfsResult<()> {
        let mut inner = self.inner.lock();
        if inner.crashed {
            return Err(DfsError::Crashed);
        }
        let keys: Vec<u32> = inner.volatile.range(start..end).map(|(&k, _)| k).collect();
        if keys.is_empty() {
            return Ok(());
        }
        inner.stats.syncs += 1;
        for block in keys {
            let data = inner.volatile.remove(&block).expect("key just listed");
            inner.stats.stable_writes += 1;
            inner.charge(block, &self.cfg.cost);
            inner.stable.insert(block, data);
        }
        Ok(())
    }

    /// Simulates a power failure: every unflushed write is lost.
    ///
    /// If `tear` names a currently-unflushed block, only the first half of
    /// that write reaches stable storage — a torn write, the worst case a
    /// recovery procedure must tolerate. I/O fails with
    /// [`DfsError::Crashed`] until [`SimDisk::power_on`].
    pub fn crash(&self, tear: Option<u32>) {
        let mut inner = self.inner.lock();
        if let Some(block) = tear {
            if let Some(data) = inner.volatile.get(&block).cloned() {
                let mut torn = inner.stable.get(&block).cloned().unwrap_or_else(zero_block);
                torn[..BLOCK_SIZE / 2].copy_from_slice(&data[..BLOCK_SIZE / 2]);
                inner.stable.insert(block, torn);
                inner.stats.torn_writes += 1;
            }
        }
        let lost = inner.volatile.len() as u64;
        inner.stats.lost_writes += lost;
        inner.volatile.clear();
        inner.crashed = true;
        inner.head = None;
    }

    /// Brings a crashed disk back on line; stable contents survive.
    pub fn power_on(&self) {
        self.inner.lock().crashed = false;
    }

    /// Returns true if the disk is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.inner.lock().crashed
    }

    /// Marks the block range `[start, end)` as bad media.
    ///
    /// Subsequent reads and writes of those blocks fail with
    /// [`DfsError::MediaFailure`]; the paper notes media failure still
    /// requires salvaging even with logging (§2.2).
    pub fn inject_media_failure(&self, start: u32, end: u32) {
        self.inner.lock().bad.push((start, end));
    }

    /// Returns a snapshot of the accumulated statistics.
    pub fn stats(&self) -> DiskStats {
        self.inner.lock().stats.clone()
    }

    /// Resets the statistics counters to zero (contents untouched).
    pub fn reset_stats(&self) {
        let mut inner = self.inner.lock();
        inner.stats = DiskStats::default();
        inner.head = None;
    }

    /// Returns the number of distinct blocks ever written to stable storage.
    pub fn stable_block_count(&self) -> usize {
        self.inner.lock().stable.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> SimDisk {
        SimDisk::new(DiskConfig::with_blocks(256))
    }

    fn filled(byte: u8) -> [u8; BLOCK_SIZE] {
        [byte; BLOCK_SIZE]
    }

    #[test]
    fn read_back_after_flush() {
        let d = disk();
        d.write(3, &filled(7)).unwrap();
        assert_eq!(d.read(3).unwrap()[0], 7, "cache serves unflushed write");
        d.flush().unwrap();
        assert_eq!(d.read(3).unwrap()[100], 7);
    }

    #[test]
    fn unwritten_blocks_read_as_zero() {
        let d = disk();
        assert_eq!(d.read(200).unwrap()[0], 0);
    }

    #[test]
    fn out_of_range_access_fails() {
        let d = disk();
        assert_eq!(d.read(256).unwrap_err(), DfsError::InvalidArgument);
        assert_eq!(d.write(999, &filled(1)).unwrap_err(), DfsError::InvalidArgument);
    }

    #[test]
    fn crash_loses_unflushed_writes() {
        let d = disk();
        d.write(1, &filled(1)).unwrap();
        d.flush().unwrap();
        d.write(1, &filled(2)).unwrap();
        d.write(2, &filled(3)).unwrap();
        d.crash(None);
        assert_eq!(d.read(1).unwrap_err(), DfsError::Crashed);
        d.power_on();
        assert_eq!(d.read(1).unwrap()[0], 1, "flushed value survives");
        assert_eq!(d.read(2).unwrap()[0], 0, "unflushed write lost");
        assert_eq!(d.stats().lost_writes, 2);
    }

    #[test]
    fn torn_write_applies_half_a_block() {
        let d = disk();
        d.write(9, &filled(0xAA)).unwrap();
        d.flush().unwrap();
        d.write(9, &filled(0xBB)).unwrap();
        d.crash(Some(9));
        d.power_on();
        let b = d.read(9).unwrap();
        assert_eq!(b[0], 0xBB, "first half of torn write present");
        assert_eq!(b[BLOCK_SIZE - 1], 0xAA, "second half is the old data");
        assert_eq!(d.stats().torn_writes, 1);
    }

    #[test]
    fn write_sync_is_durable_immediately() {
        let d = disk();
        d.write_sync(4, &filled(9)).unwrap();
        d.crash(None);
        d.power_on();
        assert_eq!(d.read(4).unwrap()[0], 9);
    }

    #[test]
    fn sequential_flush_is_cheaper_than_random() {
        let cost = CostModel::default();
        let d1 = disk();
        for b in 10..20 {
            d1.write(b, &filled(1)).unwrap();
        }
        d1.flush().unwrap();
        let seq = d1.stats();

        let d2 = disk();
        for b in [40u32, 4, 90, 17, 200, 63, 150, 8, 111, 33] {
            d2.write(b, &filled(1)).unwrap();
        }
        d2.flush().unwrap();
        let rnd = d2.stats();

        assert_eq!(seq.stable_writes, 10);
        assert_eq!(rnd.stable_writes, 10);
        assert!(seq.busy_us < rnd.busy_us, "sequential batch must be cheaper");
        // First block of the run seeks; the other 9 are sequential.
        assert_eq!(seq.busy_us, cost.random_us() + 9 * cost.sequential_us());
    }

    #[test]
    fn media_failure_injection() {
        let d = disk();
        d.write(50, &filled(1)).unwrap();
        d.flush().unwrap();
        d.inject_media_failure(50, 60);
        assert_eq!(d.read(50).unwrap_err(), DfsError::MediaFailure);
        assert_eq!(d.write(55, &filled(2)).unwrap_err(), DfsError::MediaFailure);
        assert_eq!(d.read(60).unwrap()[0], 0, "blocks outside range fine");
    }

    #[test]
    fn flush_range_only_persists_that_range() {
        let d = disk();
        d.write(10, &filled(1)).unwrap();
        d.write(100, &filled(2)).unwrap();
        d.flush_range(0, 50).unwrap();
        d.crash(None);
        d.power_on();
        assert_eq!(d.read(10).unwrap()[0], 1);
        assert_eq!(d.read(100).unwrap()[0], 0);
    }

    #[test]
    fn stats_track_counts() {
        let d = disk();
        d.write(1, &filled(1)).unwrap();
        d.write(2, &filled(2)).unwrap();
        d.flush().unwrap();
        d.read(1).unwrap();
        let s = d.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.stable_writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.syncs, 1);
        d.reset_stats();
        assert_eq!(d.stats().writes, 0);
    }

    #[test]
    fn clone_shares_contents() {
        let d = disk();
        let d2 = d.clone();
        d.write_sync(7, &filled(5)).unwrap();
        assert_eq!(d2.read(7).unwrap()[0], 5);
    }
}
