//! The DEcorum file server: protocol exporter and related servers (§3).
//!
//! A [`FileServer`] assembles, per the paper's Figure 1:
//!
//! * the **token manager** (§3.1) from [`dfs_token`];
//! * the **host model** (§3.2) — per-client state and revocation
//!   delivery tracking;
//! * the **vnode glue layer** (§3.3) — local access that synchronizes
//!   with remote guarantees, usable over *any* [`dfs_vfs::PhysicalFs`]
//!   (Episode or the FFS baseline: the interoperability goal of §1);
//! * the **volume registry** (local) and the replicated **VLDB** (§3.4);
//! * the **server procedures** (§3.5) — the RPC dispatch;
//! * the **volume server** (§3.6) — on-line volume motion;
//! * the **replication server** (§3.8) — lazy, bounded-staleness
//!   replicas driven by whole-volume tokens and incremental dumps.
//!
//! Authentication (§3.7) is enforced by the RPC substrate against the
//! shared Kerberos-style registry.

pub mod glue;
pub mod hosts;
pub mod locks;
pub mod vldb;

pub use glue::{Glue, LocalHost};
pub use hosts::{HostModel, HostRecord, RemoteHost, DEFAULT_LEASE_US};
pub use locks::LockTable;
pub use vldb::{VldbHandle, VldbReplica};

use dfs_journal::{HostLog, HostLogReplay};
use dfs_rpc::{
    Addr, CallClass, CallContext, Network, PoolConfig, Request, Response, RpcService,
    TokenRequest,
};
use dfs_token::{Token, TokenManager, TokenTypes};
use dfs_types::{
    ByteRange, ClientId, DfsError, DfsResult, Fid, HostId, ServerId, Timestamp, VnodeId,
    VolumeId,
};
use dfs_vfs::{Credentials, PhysicalFs, VfsPlus, WriteExtent};
use dfs_types::lock::{rank, OrderedMutex};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Read tokens a client wants to cache directory contents.
pub const DIR_READ: TokenTypes = TokenTypes(TokenTypes::STATUS_READ.0 | TokenTypes::DATA_READ.0);
/// Write tokens the server takes while mutating a directory.
pub const DIR_WRITE: TokenTypes =
    TokenTypes(TokenTypes::STATUS_WRITE.0 | TokenTypes::DATA_WRITE.0);

/// Most extents a single `StoreDataVec` may carry.
pub const MAX_STORE_EXTENTS: usize = 64;
/// Most payload bytes a single `StoreDataVec` may carry (8 MiB).
pub const MAX_STORE_BYTES: usize = 8 << 20;

/// Server operation statistics.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// File RPCs served.
    pub ops: u64,
    /// Calls refused because the volume was being moved.
    pub busy_rejections: u64,
    /// Calls refused because the post-restart grace window was open and
    /// the caller had not reestablished yet.
    pub grace_rejections: u64,
    /// Volume moves completed.
    pub moves: u64,
    /// Replica refresh passes that shipped data.
    pub replica_refreshes: u64,
    /// Calls for volumes not hosted here answered with `WrongServer`.
    pub wrong_server_redirects: u64,
    /// Calls for volumes not hosted here forwarded to the owner.
    pub forwards: u64,
    /// File RPCs served, by volume — the fleet load monitor's signal
    /// for picking the hottest volume when rebalancing.
    pub volume_ops: HashMap<VolumeId, u64>,
}

impl ServerStats {
    /// Adds `other`'s counters into `self` (`volume_ops` merged per
    /// key) — fleet-wide aggregation for the scenario driver.
    pub fn merge(&mut self, other: &ServerStats) {
        self.ops += other.ops;
        self.busy_rejections += other.busy_rejections;
        self.grace_rejections += other.grace_rejections;
        self.moves += other.moves;
        self.replica_refreshes += other.replica_refreshes;
        self.wrong_server_redirects += other.wrong_server_redirects;
        self.forwards += other.forwards;
        for (vol, n) in &other.volume_ops {
            *self.volume_ops.entry(*vol).or_default() += n;
        }
    }
}

struct ReplJob {
    volume: VolumeId,
    source: ServerId,
    max_staleness_us: u64,
    last_refresh: Timestamp,
    base_version: u64,
    dirty: bool,
}

/// Post-restart recovery state: while the grace window is open, only
/// hosts known to the previous instance may do file work, and only
/// after checking in via `ReestablishTokens` (Lustre-style recovery).
#[derive(Default)]
struct RecoveryState {
    /// Simulated-time deadline of the grace window; `None` = no grace
    /// window (normal operation).
    grace_until: Option<Timestamp>,
    /// Clients the previous instance knew about — the hosts allowed
    /// (and expected) to reestablish.
    expected: HashSet<ClientId>,
    /// Hosts that have checked in under the current epoch.
    checked_in: HashSet<ClientId>,
}

/// A DEcorum file server node.
pub struct FileServer {
    id: ServerId,
    addr: Addr,
    net: Network,
    physical: Arc<dyn PhysicalFs>,
    tm: Arc<TokenManager>,
    local_host: Arc<LocalHost>,
    hosts: Arc<HostModel>,
    locks: LockTable,
    vldb: VldbHandle,
    /// Restart epoch: 1 for a freshly started server, +1 per restart.
    /// Stamped into every `Status`/`Data` response so clients detect a
    /// crash-restart from ordinary traffic.
    epoch: u64,
    mounts: OrderedMutex<HashMap<VolumeId, Arc<dyn VfsPlus>>, { rank::VOLUME_REGISTRY }>,
    busy: OrderedMutex<HashSet<VolumeId>, { rank::VOLUME_REGISTRY }>,
    /// Volumes this server hosts (authoritative membership; a request
    /// for any other volume is redirected or forwarded, never mounted).
    hosted: OrderedMutex<HashSet<VolumeId>, { rank::VOLUME_REGISTRY }>,
    /// Volumes restored by an in-progress move but not yet handed over:
    /// the VLDB still names the source, so requests here keep being
    /// redirected until `VolInstallTokens` promotes the copy to
    /// `hosted` (a stale client hint must never read — let alone write
    /// — the phase-1 snapshot). `VolDiscard` empties this on a failed
    /// move.
    staged: OrderedMutex<HashSet<VolumeId>, { rank::VOLUME_REGISTRY }>,
    /// File RPCs currently executing, per volume — drained by a move's
    /// blackout phase so the delta dump sees no in-flight mutation.
    inflight: OrderedMutex<HashMap<VolumeId, u64>, { rank::VOLUME_REGISTRY }>,
    /// Where volumes this server moved away now live: the hint answered
    /// in `WrongServer` without a VLDB round trip (§2.1).
    routes: OrderedMutex<HashMap<VolumeId, (ServerId, u64)>, { rank::SERVER_ROUTES }>,
    repl: OrderedMutex<Vec<ReplJob>, { rank::VOLUME_REGISTRY }>,
    known_hosts: OrderedMutex<HashSet<HostId>, { rank::SERVER_HOSTS }>,
    recovery: OrderedMutex<RecoveryState, { rank::SERVER_HOSTS }>,
    /// Durable host/lease journal (the Episode aggregate's host-log
    /// ring). When present, the server records which clients hold
    /// tokens and when they were last heard from, so a restart can
    /// rebuild its expected-host set from disk even if the previous
    /// instance's memory is gone with the machine. `None` for physical
    /// file systems without a host-log region (the FFS baseline).
    host_log: Option<Arc<HostLog>>,
    stats: OrderedMutex<ServerStats, { rank::STATS }>,
}

impl FileServer {
    /// Builds a server over `physical`, binds it at `Server(id)`, and
    /// registers its existing volumes in the VLDB. The server starts at
    /// epoch 1 with no recovery grace window.
    pub fn start(
        net: Network,
        id: ServerId,
        physical: Arc<dyn PhysicalFs>,
        vldb_replicas: Vec<Addr>,
        pool: PoolConfig,
    ) -> DfsResult<Arc<FileServer>> {
        Self::start_instance(
            net,
            id,
            physical,
            None,
            vldb_replicas,
            pool,
            1,
            RecoveryState::default(),
        )
    }

    /// Like [`FileServer::start`], but with a durable host journal: the
    /// server records token-holder/lease facts into `host_log` as it
    /// runs, so a later [`FileServer::restart`] can rebuild recovery
    /// state from disk alone.
    pub fn start_journaled(
        net: Network,
        id: ServerId,
        physical: Arc<dyn PhysicalFs>,
        host_log: Option<Arc<HostLog>>,
        vldb_replicas: Vec<Addr>,
        pool: PoolConfig,
    ) -> DfsResult<Arc<FileServer>> {
        Self::start_instance(
            net,
            id,
            physical,
            host_log,
            vldb_replicas,
            pool,
            1,
            RecoveryState::default(),
        )
    }

    /// Restarts a server after a crash, on the same (journal-recovered)
    /// `physical`. Recovery state comes from the *durable* host journal
    /// replay, never from the dying instance's memory: the previous
    /// epoch is the highest epoch ever journaled, and the expected-host
    /// set is every journaled client that held tokens and was still
    /// inside its lease — so recovery survives losing the whole machine,
    /// not just the process. The new instance runs at `prev_epoch + 1`
    /// and opens a `grace_us`-long recovery window during which the
    /// expected hosts may reestablish their tokens. Grace ends early
    /// once every still-lease-live expected host has checked in;
    /// lease-expired hosts never pin the window.
    ///
    /// Binding the address replaces the crashed node on the network, so
    /// the restarted server is immediately reachable.
    #[allow(clippy::too_many_arguments)] // A restart is a whole-machine rebuild; the args are the machine.
    pub fn restart(
        net: Network,
        id: ServerId,
        physical: Arc<dyn PhysicalFs>,
        host_log: Option<Arc<HostLog>>,
        replay: &HostLogReplay,
        vldb_replicas: Vec<Addr>,
        pool: PoolConfig,
        grace_us: u64,
    ) -> DfsResult<Arc<FileServer>> {
        let now = net.clock().now();
        // Wait only for hosts that actually held tokens at their last
        // journaling and are still lease-live: a caller with nothing to
        // reestablish (or one long dead) must not pin the grace window.
        let expected: HashSet<ClientId> = replay
            .hosts
            .iter()
            .filter(|(_, (seen, holding))| {
                *holding && now.0.saturating_sub(*seen) <= DEFAULT_LEASE_US
            })
            .map(|(c, _)| ClientId(*c))
            .collect();
        let recovery = RecoveryState {
            grace_until: Some(Timestamp(now.0 + grace_us)),
            expected,
            checked_in: HashSet::new(),
        };
        // A replay that never saw a `ServerEpoch` (pre-host-log
        // aggregate) still restarts above the floor epoch of 1.
        let prev_epoch = replay.epoch.max(1);
        let srv = Self::start_instance(
            net,
            id,
            physical,
            host_log,
            vldb_replicas,
            pool,
            prev_epoch + 1,
            recovery,
        )?;
        // Seed the host model with journaled last-seen times so lease
        // expiry applies to hosts that never come back.
        for (c, (last_seen, _)) in &replay.hosts {
            srv.hosts.seed(ClientId(*c), Timestamp(*last_seen));
        }
        Ok(srv)
    }

    #[allow(clippy::too_many_arguments)]
    fn start_instance(
        net: Network,
        id: ServerId,
        physical: Arc<dyn PhysicalFs>,
        host_log: Option<Arc<HostLog>>,
        vldb_replicas: Vec<Addr>,
        pool: PoolConfig,
        epoch: u64,
        recovery: RecoveryState,
    ) -> DfsResult<Arc<FileServer>> {
        let addr = Addr::Server(id);
        let vldb = VldbHandle::new(net.clone(), addr, vldb_replicas);
        let srv = Arc::new(FileServer {
            id,
            addr,
            net: net.clone(),
            physical,
            tm: Arc::new(TokenManager::new()),
            local_host: LocalHost::new(HostId::Local(id.0)),
            hosts: Arc::new(HostModel::new()),
            locks: LockTable::new(),
            vldb,
            epoch,
            mounts: OrderedMutex::new(HashMap::new()),
            busy: OrderedMutex::new(HashSet::new()),
            hosted: OrderedMutex::new(HashSet::new()),
            staged: OrderedMutex::new(HashSet::new()),
            inflight: OrderedMutex::new(HashMap::new()),
            routes: OrderedMutex::new(HashMap::new()),
            repl: OrderedMutex::new(Vec::new()),
            known_hosts: OrderedMutex::new(HashSet::new()),
            recovery: OrderedMutex::new(recovery),
            host_log: host_log.clone(),
            stats: OrderedMutex::new(ServerStats::default()),
        });
        // Journal this instance's epoch before serving anything: a
        // crash from here on must restart at `epoch + 1` even if no
        // other host fact was ever recorded.
        if let Some(hl) = &host_log {
            hl.record_epoch(epoch)?;
        }
        srv.tm.register_host(srv.local_host.clone());
        for vol in srv.physical.list_volumes()? {
            srv.hosted.lock().insert(vol.id);
            srv.vldb.register(vol.id, id)?;
        }
        net.register(addr, srv.clone(), pool);
        Ok(srv)
    }

    /// Unbinds this server from the network (graceful shutdown; the
    /// physical file system stays with its owner for a later restart).
    pub fn stop(&self) {
        self.net.unregister(self.addr);
    }

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// This instance's restart epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// True while the post-restart grace window is open.
    pub fn in_grace(&self) -> bool {
        let now = self.net.clock().now();
        let mut rec = self.recovery.lock();
        self.grace_open(&mut rec, now)
    }

    /// Checks (and lazily closes) the grace window. Grace ends at the
    /// deadline or as soon as every expected host that is still inside
    /// its lease has checked in — dead clients don't pin the window.
    fn grace_open(
        &self,
        rec: &mut RecoveryState,
        now: Timestamp,
    ) -> bool {
        let Some(until) = rec.grace_until else { return false };
        let all_in = rec
            .expected
            .iter()
            .all(|c| rec.checked_in.contains(c) || !self.hosts.lease_live(*c, now));
        if now >= until || all_in {
            rec.grace_until = None;
            return false;
        }
        true
    }

    /// The token manager (diagnostics and tests).
    pub fn token_manager(&self) -> &Arc<TokenManager> {
        &self.tm
    }

    /// The host model (diagnostics).
    pub fn host_model(&self) -> &Arc<HostModel> {
        &self.hosts
    }

    /// Operation statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats.lock().clone()
    }

    /// Returns a glue-wrapped VFS for *local* access to a volume on this
    /// server — the path a local user's system calls take (Figure 1).
    ///
    /// Local operations acquire tokens exactly like remote clients, so
    /// they synchronize correctly with exported guarantees (§5.1, §5.5).
    pub fn local_volume(&self, vol: VolumeId) -> DfsResult<Arc<Glue>> {
        let fs = self.mount(vol)?;
        Ok(Arc::new(Glue::new(fs, self.tm.clone(), self.local_host.clone())))
    }

    fn mount(&self, vol: VolumeId) -> DfsResult<Arc<dyn VfsPlus>> {
        // Busy-volume gating happens in `dispatch` (so revocation-class
        // store-backs can land while a move is quiescing the volume).
        let mut mounts = self.mounts.lock();
        if let Some(v) = mounts.get(&vol) {
            return Ok(v.clone());
        }
        let mounted = self.physical.mount(vol)?;
        mounts.insert(vol, mounted.clone());
        Ok(mounted)
    }

    fn unmount(&self, vol: VolumeId) {
        self.mounts.lock().remove(&vol);
    }

    /// Maps the RPC caller to a token-manager host, registering the
    /// remote proxy on first contact (§5.1 host registration).
    fn host_for(&self, caller: Addr) -> DfsResult<HostId> {
        let host = match caller {
            Addr::Client(c) => HostId::Client(c),
            Addr::Server(s) => HostId::Replicator(s.0),
            _ => return Err(DfsError::InvalidArgument),
        };
        let mut known = self.known_hosts.lock();
        if known.insert(host) {
            match caller {
                Addr::Client(c) => self.tm.register_host(RemoteHost::client(
                    self.net.clone(),
                    self.addr,
                    c,
                    self.hosts.clone(),
                )),
                Addr::Server(s) => self.tm.register_host(RemoteHost::replicator(
                    self.net.clone(),
                    self.addr,
                    s,
                    self.hosts.clone(),
                )),
                _ => unreachable!(),
            }
        }
        Ok(host)
    }

    /// Builds credentials from the authenticated principal.
    fn cred_for(&self, ctx: &CallContext) -> Credentials {
        match ctx.principal {
            Some(user) => {
                Credentials { user, groups: self.net.auth().groups_of(user) }
            }
            // Unauthenticated calls run as the system principal; cells
            // that care configure `require_auth` on the node.
            None => Credentials::system(),
        }
    }

    /// Durable lease refresh: re-journal `client`'s last-seen time (and
    /// current token-holder status) once the on-disk fact has gone stale
    /// by a quarter of the lease. Coarse on purpose — one synchronous
    /// ring write per client per lease/4, not per RPC — and always an
    /// over-approximation in between: a restart reading a slightly old
    /// `last_seen` only shortens how long a dead client is waited for,
    /// never forgets a live one (the client's reestablishment doesn't
    /// depend on the journal being fresh).
    fn journal_lease_refresh(&self, client: ClientId, now: Timestamp) {
        let Some(hl) = &self.host_log else { return };
        let quarter = self.hosts.lease_us() / 4;
        let stale = hl
            .lease_of(client.0)
            .is_none_or(|(seen, _)| now.0.saturating_sub(seen) >= quarter);
        if stale {
            let holding = self.tm.token_holders().contains(&client);
            let _ = hl.record_lease(client.0, now.0, holding);
        }
    }

    /// Durably marks `host` as a token holder the moment it first keeps
    /// a grant. Eager (unlike the lease refresh) because this is the
    /// fact a restart's grace window is built from: a client that
    /// crashed the server one RPC after taking its first write token
    /// must already be in the journal. The holding flag is only cleared
    /// by a later lease refresh observing no tokens — over-inclusion
    /// merely extends grace, which is safe.
    fn journal_holding(&self, host: HostId) {
        let HostId::Client(c) = host else { return };
        let Some(hl) = &self.host_log else { return };
        if hl.lease_of(c.0).map(|(_, h)| h) != Some(true) {
            let _ = hl.record_lease(c.0, self.net.clock().now().0, true);
        }
    }

    /// Grants `base ∪ want` to `host` on `fid`, runs `f`, and either
    /// hands the token to the caller (if `want` was given) or releases
    /// it. Returns `f`'s result, the tokens to ship, and the stamp.
    fn with_grant<R>(
        &self,
        host: HostId,
        fid: Fid,
        base: TokenTypes,
        range: ByteRange,
        want: Option<TokenRequest>,
        f: impl FnOnce() -> DfsResult<R>,
    ) -> DfsResult<(R, Vec<Token>, dfs_types::SerializationStamp)> {
        let (types, range) = match &want {
            Some(w) => (base.union(w.types), range.union_hull(&w.range)),
            None => (base, range),
        };
        let (token, stamp) = self.tm.grant(host, fid, types, range)?;
        let result = f();
        let keep = want.is_some() && result.is_ok();
        if !keep {
            self.tm.release(host, token.id);
        } else {
            self.journal_holding(host);
        }
        match result {
            Ok(r) => Ok((r, if keep { vec![token] } else { Vec::new() }, stamp)),
            Err(e) => Err(e),
        }
    }

    fn volume_of(&self, fid: Fid) -> DfsResult<Arc<dyn VfsPlus>> {
        self.mount(fid.volume)
    }

    /// Applies a store-back batch through `Vfs::write_vec`: one journal
    /// transaction, one group commit, durable on return. Shared by
    /// `StoreData` (single extent) and `StoreDataVec`.
    fn store_extents(
        &self,
        ctx: &CallContext,
        cred: &Credentials,
        fid: Fid,
        extents: Vec<WriteExtent>,
    ) -> DfsResult<Response> {
        let host = self.host_for(ctx.caller)?;
        let fs = self.volume_of(fid)?;
        // Stores issued from token-revocation code (§6.3) run without
        // further token acquisition: the storing client holds the write
        // token being revoked, and granting here could nest revocation
        // chains past any pool bound.
        if ctx.class == CallClass::Revocation {
            let status = fs.write_vec(cred, fid, &extents)?;
            let stamp = self.tm.stamp(fid);
            return Ok(Response::Status { status, tokens: Vec::new(), stamp, epoch: self.epoch, stale_us: 0 });
        }
        // One grant covering the hull of all extents.
        let mut range = ByteRange::at(extents[0].offset, extents[0].data.len() as u64);
        for e in &extents[1..] {
            range = range.union_hull(&ByteRange::at(e.offset, e.data.len() as u64));
        }
        let (status, _tokens, stamp) = self.with_grant(
            host,
            fid,
            TokenTypes(TokenTypes::DATA_WRITE.0 | TokenTypes::STATUS_WRITE.0),
            range,
            None,
            || fs.write_vec(cred, fid, &extents),
        )?;
        Ok(Response::Status { status, tokens: Vec::new(), stamp, epoch: self.epoch, stale_us: 0 })
    }

    // ------------------------------------------------------------------
    // Volume motion (§3.6) and replication (§3.8)
    // ------------------------------------------------------------------

    /// Pulls back every outstanding guarantee on a volume: dirty data
    /// and status at clients are stored back before this returns.
    fn quiesce_volume(&self, volume: VolumeId) -> DfsResult<()> {
        let vol_fid = Fid::new(volume, VnodeId(0), 0);
        let (t, _) =
            self.tm.grant(HostId::Local(self.id.0), vol_fid, DIR_WRITE, ByteRange::WHOLE)?;
        self.tm.release(HostId::Local(self.id.0), t.id);
        Ok(())
    }

    /// Pulls back only the *write* guarantees on a volume: dirty data
    /// and status at clients are stored back, but read, lock, and open
    /// tokens survive — with their ids intact — so a live move can ship
    /// them to the target instead of revoking the world.
    fn quiesce_writes(&self, volume: VolumeId) -> DfsResult<()> {
        let vol_fid = Fid::new(volume, VnodeId(0), 0);
        let (t, _) =
            self.tm.grant(HostId::Local(self.id.0), vol_fid, DIR_READ, ByteRange::WHOLE)?;
        self.tm.release(HostId::Local(self.id.0), t.id);
        Ok(())
    }

    /// Drops one in-flight count for `volume` (entries vanish at zero so
    /// the map only holds active volumes).
    fn inflight_dec(&self, volume: VolumeId) {
        let mut inflight = self.inflight.lock();
        if let Some(n) = inflight.get_mut(&volume) {
            *n -= 1;
            if *n == 0 {
                inflight.remove(&volume);
            }
        }
    }

    /// Waits for file RPCs already past the busy gate to finish, so a
    /// move's delta dump sees no in-flight mutation.
    fn drain_inflight(&self, volume: VolumeId) {
        loop {
            let n = self.inflight.lock().get(&volume).copied().unwrap_or(0);
            if n == 0 {
                return;
            }
            std::thread::yield_now();
        }
    }

    /// Moves a volume to `target` **live** (§2.1: applications "are
    /// blocked for a short time" — only for the delta, not the bulk).
    ///
    /// Phase 1, volume fully available: store dirty client data back,
    /// clone-ship a consistent full snapshot to the target, and note
    /// its high-water data version. Writes keep landing here; anything
    /// newer than the snapshot travels in the phase-2 delta.
    ///
    /// Phase 2, short blackout: mark the volume busy (new file calls
    /// bounce with retryable `VolumeBusy`), pull back just the write
    /// guarantees (read/lock/open tokens survive), wait out calls that
    /// had already passed the busy gate, ship the delta dump, install
    /// the surviving client tokens at the target with ids preserved,
    /// flip the VLDB entry (generation bump), and note the new owner in
    /// the route table so this server answers `WrongServer` cheaply.
    fn move_volume(&self, volume: VolumeId, target: ServerId) -> DfsResult<()> {
        if target == self.id {
            return Err(DfsError::InvalidArgument);
        }
        if !self.hosted.lock().contains(&volume) {
            return Err(DfsError::NoSuchVolume);
        }
        // Phase 1: live bulk ship.
        self.quiesce_writes(volume)?;
        let full = self.physical.dump_volume(volume, 0)?;
        let base = full.max_data_version;
        if let Err(e) = self
            .net
            .call(
                self.addr,
                Addr::Server(target),
                None,
                CallClass::Normal,
                Request::VolRestore { dump: full, read_only: false },
            )
            .and_then(Response::into_result)
        {
            // A timed-out ship may still have landed; make sure no
            // staged copy survives the aborted move (best effort).
            let _ = self.net.call(
                self.addr,
                Addr::Server(target),
                None,
                CallClass::Normal,
                Request::VolDiscard { volume },
            );
            return Err(e);
        }

        // Phase 2: blackout.
        self.busy.lock().insert(volume);
        let result = (|| {
            self.quiesce_writes(volume)?;
            self.drain_inflight(volume);
            let mut delta = self.physical.dump_volume(volume, base)?;
            // A `base` of 0 (volume never written) dumps everything with
            // `since_version == 0`, which the restorer reads as "create
            // from scratch" — but the target already holds the phase-1
            // copy. Mark the dump incremental; applying every file over
            // the identical copy is harmless.
            delta.since_version = delta.since_version.max(1);
            self.net
                .call(
                    self.addr,
                    Addr::Server(target),
                    None,
                    CallClass::Normal,
                    Request::VolRestore { dump: delta, read_only: false },
                )?
                .into_result()?;
            // Ship the surviving guarantees: clients keep their cached
            // tokens across the move, and the target keeps stamping
            // above our serialization floors (§6.2).
            let (grants, stamps) = self.tm.export_volume(volume);
            let grants: Vec<(ClientId, Token)> = grants
                .into_iter()
                .filter_map(|(h, t)| match h {
                    HostId::Client(c) => Some((c, t)),
                    _ => None,
                })
                .collect();
            self.net
                .call(
                    self.addr,
                    Addr::Server(target),
                    None,
                    CallClass::Normal,
                    Request::VolInstallTokens { volume, grants, stamps },
                )?
                .into_result()?;
            // Flip ownership. Route note first, then drop from hosted:
            // the instant the routing gate starts redirecting, the hint
            // must already be there.
            self.vldb.register(volume, target)?;
            let generation = self.vldb.lookup_gen(volume).map(|(_, g)| g).unwrap_or(0);
            self.routes.lock().insert(volume, (target, generation));
            self.hosted.lock().remove(&volume);
            self.unmount(volume);
            self.physical.delete_volume(volume)?;
            self.tm.drop_volume(volume);
            Ok(())
        })();
        self.busy.lock().remove(&volume);
        if result.is_ok() {
            self.stats.lock().moves += 1;
        } else {
            // Phase 1 left a staged copy at the target; tell it to throw
            // the copy away so the fork cannot outlive the failed move
            // (best effort — an unreachable target discards nothing, but
            // its copy stays staged and is never served).
            let _ = self.net.call(
                self.addr,
                Addr::Server(target),
                None,
                CallClass::Normal,
                Request::VolDiscard { volume },
            );
        }
        result
    }

    /// Starts lazily replicating `volume` from `source` onto this
    /// server, with the given maximum staleness (§3.8).
    fn replica_add(&self, volume: VolumeId, source: ServerId, max_staleness_us: u64) -> DfsResult<()> {
        // Initial full fetch.
        let resp = self.net.call(
            self.addr,
            Addr::Server(source),
            None,
            CallClass::Normal,
            Request::VolDump { volume, since_version: 0 },
        )?;
        let dump = match resp.into_result()? {
            Response::Dump(d) => d,
            _ => return Err(DfsError::Internal("bad dump response")),
        };
        let base = dump.max_data_version;
        self.physical.restore_volume(&dump, true)?;
        self.unmount(volume);
        // The replica serves (read-only) copies of the volume itself —
        // it must not redirect readers back to the master.
        self.hosted.lock().insert(volume);
        // Whole-volume token: the guarantee that the replica may be used
        // until the master changes (§3.8).
        let _ = self.net.call(
            self.addr,
            Addr::Server(source),
            None,
            CallClass::Normal,
            Request::GetToken {
                fid: Fid::new(volume, VnodeId(0), 0),
                want: TokenRequest {
                    types: DIR_READ,
                    range: ByteRange::WHOLE,
                },
            },
        );
        self.repl.lock().push(ReplJob {
            volume,
            source,
            max_staleness_us,
            last_refresh: self.net.clock().now(),
            base_version: base,
            dirty: false,
        });
        // Advertise this replica in the VLDB so clients can find it
        // when the primary is down (§3.8 promotion). Best effort: a
        // replica that fails to advertise still serves direct readers.
        let _ = self.vldb.add_replica(volume, self.id);
        Ok(())
    }

    /// Stamps the replica staleness bound into a file response when the
    /// answering volume is a §3.8 replica: the age of its last refresh,
    /// clamped to ≥ 1 µs so even a just-refreshed replica is
    /// distinguishable from the primary (clients must not treat replica
    /// bytes as token-backed cacheable data). Primary-served volumes
    /// (no replication job) pass through with `stale_us` = 0.
    fn stamp_staleness(&self, volume: Option<VolumeId>, resp: Response) -> Response {
        let Some(v) = volume else { return resp };
        let age = {
            let jobs = self.repl.lock();
            jobs.iter()
                .find(|j| j.volume == v)
                .map(|j| self.net.clock().now().micros_since(j.last_refresh).max(1))
        };
        let Some(age) = age else { return resp };
        match resp {
            Response::Status { status, tokens, stamp, epoch, .. } => {
                Response::Status { status, tokens, stamp, epoch, stale_us: age }
            }
            Response::Data { bytes, status, tokens, stamp, epoch, .. } => {
                Response::Data { bytes, status, tokens, stamp, epoch, stale_us: age }
            }
            other => other,
        }
    }

    /// One replication pass: refreshes any replica past its staleness
    /// bound (or known-dirty via token revocation). Driven explicitly by
    /// `ReplTick` so experiments control simulated time.
    fn replica_tick(&self) -> DfsResult<()> {
        let now = self.net.clock().now();
        let due: Vec<(VolumeId, ServerId, u64)> = {
            let jobs = self.repl.lock();
            jobs.iter()
                .filter(|j| {
                    // Lazy: refresh only when the master is known to have
                    // changed (our whole-volume token was revoked) AND
                    // the staleness budget has been spent. An unchanged
                    // master costs no refresh traffic at all (§3.8).
                    j.dirty && now.micros_since(j.last_refresh) >= j.max_staleness_us
                })
                .map(|j| (j.volume, j.source, j.base_version))
                .collect()
        };
        for (volume, source, base) in due {
            let resp = self.net.call(
                self.addr,
                Addr::Server(source),
                None,
                CallClass::Normal,
                Request::VolDump { volume, since_version: base },
            )?;
            let dump = match resp.into_result()? {
                Response::Dump(d) => d,
                _ => continue,
            };
            let new_base = dump.max_data_version;
            let shipped = !dump.files.is_empty();
            if shipped {
                // The client of the replica "is guaranteed to always see
                // a consistent snapshot": swap-in happens under the
                // volume mount lock via restore.
                self.unmount(volume);
                self.physical.restore_volume(&dump, true)?;
            }
            // Re-arm the whole-volume token.
            let _ = self.net.call(
                self.addr,
                Addr::Server(source),
                None,
                CallClass::Normal,
                Request::GetToken {
                    fid: Fid::new(volume, VnodeId(0), 0),
                    want: TokenRequest { types: DIR_READ, range: ByteRange::WHOLE },
                },
            );
            let mut jobs = self.repl.lock();
            if let Some(j) = jobs.iter_mut().find(|j| j.volume == volume) {
                j.last_refresh = now;
                j.base_version = new_base;
                j.dirty = false;
            }
            if shipped {
                self.stats.lock().replica_refreshes += 1;
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The server procedures (§3.5)
    // ------------------------------------------------------------------

    fn handle(&self, ctx: &CallContext, req: Request) -> DfsResult<Response> {
        use Request as Q;
        use Response as P;
        let cred = self.cred_for(ctx);
        match req {
            Q::Ping => Ok(P::Ok),

            Q::GetRoot { volume } => {
                let fs = self.mount(volume)?;
                Ok(P::FidIs(fs.root()?))
            }

            Q::FetchStatus { fid, want } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(fid)?;
                let (status, tokens, stamp) = self.with_grant(
                    host,
                    fid,
                    TokenTypes::STATUS_READ,
                    ByteRange::WHOLE,
                    want,
                    || fs.getattr(&cred, fid),
                )?;
                Ok(P::Status { status, tokens, stamp, epoch: self.epoch, stale_us: 0 })
            }

            Q::FetchData { fid, offset, len, want } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(fid)?;
                let range = ByteRange::at(offset, len as u64);
                let ((bytes, status), tokens, stamp) = self.with_grant(
                    host,
                    fid,
                    TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0),
                    range,
                    want,
                    || {
                        let bytes = fs.read(&cred, fid, offset, len as usize)?;
                        let status = fs.getattr(&cred, fid)?;
                        Ok((bytes, status))
                    },
                )?;
                Ok(P::Data { bytes, status, tokens, stamp, epoch: self.epoch, stale_us: 0 })
            }

            Q::StoreData { fid, offset, data } => {
                let extents = vec![WriteExtent { offset, data }];
                self.store_extents(ctx, &cred, fid, extents)
            }

            Q::StoreDataVec { fid, extents } => {
                if extents.is_empty()
                    || extents.len() > MAX_STORE_EXTENTS
                    || extents.iter().map(|e| e.data.len()).sum::<usize>() > MAX_STORE_BYTES
                {
                    return Err(DfsError::InvalidArgument);
                }
                self.store_extents(ctx, &cred, fid, extents)
            }

            Q::StoreStatus { fid, attrs } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(fid)?;
                if ctx.class == CallClass::Revocation {
                    // Status pushed back from revocation code: grant-free
                    // (the storing client holds the status-write token).
                    let status = fs.setattr(&cred, fid, &attrs)?;
                    let stamp = self.tm.stamp(fid);
                    return Ok(P::Status { status, tokens: Vec::new(), stamp, epoch: self.epoch, stale_us: 0 });
                }
                let types = if attrs.length.is_some() { DIR_WRITE } else { TokenTypes::STATUS_WRITE };
                let (status, _t, stamp) = self.with_grant(
                    host,
                    fid,
                    types,
                    ByteRange::WHOLE,
                    None,
                    || fs.setattr(&cred, fid, &attrs),
                )?;
                Ok(P::Status { status, tokens: Vec::new(), stamp, epoch: self.epoch, stale_us: 0 })
            }

            Q::Fsync { fid } => {
                let fs = self.volume_of(fid)?;
                fs.fsync(&cred, fid)?;
                Ok(P::Ok)
            }

            Q::GetToken { fid, want } => {
                let host = self.host_for(ctx.caller)?;
                // Whole-volume tokens (vnode 0) have no status to fetch.
                if fid.vnode.0 == 0 {
                    let (token, stamp) = self.tm.grant(host, fid, want.types, want.range)?;
                    self.journal_holding(host);
                    return Ok(P::Status {
                        status: dfs_types::FileStatus { fid, stamp, ..Default::default() },
                        tokens: vec![token],
                        stamp,
                        epoch: self.epoch,
                        stale_us: 0,
                    });
                }
                let fs = self.volume_of(fid)?;
                let (status, tokens, stamp) = self.with_grant(
                    host,
                    fid,
                    TokenTypes::NONE,
                    want.range,
                    Some(want),
                    || fs.getattr(&cred, fid),
                )?;
                Ok(P::Status { status, tokens, stamp, epoch: self.epoch, stale_us: 0 })
            }

            Q::ReturnToken { fid, token } => {
                let host = self.host_for(ctx.caller)?;
                let _ = fid;
                self.tm.release(host, token);
                Ok(P::Ok)
            }

            Q::Lookup { dir, name, want } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(dir)?;
                let (status, tokens, _stamp) = self.with_grant(
                    host,
                    dir,
                    DIR_READ,
                    ByteRange::WHOLE,
                    want,
                    || fs.lookup(&cred, dir, &name),
                )?;
                let stamp = self.tm.stamp(status.fid);
                Ok(P::Status { status, tokens, stamp, epoch: self.epoch, stale_us: 0 })
            }

            Q::Create { dir, name, mode } => self.namespace_op(ctx, dir, |fs| {
                fs.create(&cred, dir, &name, mode)
            }),
            Q::Mkdir { dir, name, mode } => self.namespace_op(ctx, dir, |fs| {
                fs.mkdir(&cred, dir, &name, mode)
            }),
            Q::Symlink { dir, name, target } => self.namespace_op(ctx, dir, |fs| {
                fs.symlink(&cred, dir, &name, &target)
            }),
            Q::Link { dir, name, target } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(dir)?;
                let (t2, _) =
                    self.tm.grant(host, target, TokenTypes::STATUS_WRITE, ByteRange::WHOLE)?;
                let result = self.with_grant(host, dir, DIR_WRITE, ByteRange::WHOLE, None, || {
                    fs.link(&cred, dir, &name, target)
                });
                self.tm.release(host, t2.id);
                let (status, _t, stamp) = result?;
                Ok(P::Status { status, tokens: Vec::new(), stamp, epoch: self.epoch, stale_us: 0 })
            }

            Q::Remove { dir, name } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(dir)?;
                // Assure no remote users of the victim (§5.4): take an
                // exclusive-write open token plus write tokens on it.
                let victim = fs.lookup(&cred, dir, &name)?;
                let (vt, _) = self.tm.grant(
                    host,
                    victim.fid,
                    TokenTypes(
                        TokenTypes::OPEN_EXCLUSIVE_WRITE.0
                            | TokenTypes::STATUS_WRITE.0
                            | TokenTypes::DATA_WRITE.0,
                    ),
                    ByteRange::WHOLE,
                )?;
                let result = self.with_grant(host, dir, DIR_WRITE, ByteRange::WHOLE, None, || {
                    fs.remove(&cred, dir, &name)
                });
                self.tm.release(host, vt.id);
                let (status, _t, stamp) = result?;
                Ok(P::Status { status, tokens: Vec::new(), stamp, epoch: self.epoch, stale_us: 0 })
            }

            Q::Rmdir { dir, name } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(dir)?;
                let victim = fs.lookup(&cred, dir, &name)?;
                let (vt, _) = self.tm.grant(
                    host,
                    victim.fid,
                    TokenTypes(TokenTypes::STATUS_WRITE.0 | TokenTypes::DATA_WRITE.0),
                    ByteRange::WHOLE,
                )?;
                let result = self.with_grant(host, dir, DIR_WRITE, ByteRange::WHOLE, None, || {
                    fs.rmdir(&cred, dir, &name)
                });
                self.tm.release(host, vt.id);
                result?;
                Ok(P::Ok)
            }

            Q::Rename { src_dir, src_name, dst_dir, dst_name } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(src_dir)?;
                // Grant on both directories in fid order (deadlock
                // avoidance between concurrent server operations).
                let (a, b) = if src_dir <= dst_dir { (src_dir, dst_dir) } else { (dst_dir, src_dir) };
                let (t1, _) = self.tm.grant(host, a, DIR_WRITE, ByteRange::WHOLE)?;
                let t2 = if b != a {
                    Some(self.tm.grant(host, b, DIR_WRITE, ByteRange::WHOLE)?.0)
                } else {
                    None
                };
                let result = fs.rename(&cred, src_dir, &src_name, dst_dir, &dst_name);
                if let Some(t) = t2 {
                    self.tm.release(host, t.id);
                }
                self.tm.release(host, t1.id);
                result?;
                Ok(P::Ok)
            }

            Q::Readdir { dir } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(dir)?;
                let (entries, _t, _s) = self.with_grant(
                    host,
                    dir,
                    DIR_READ,
                    ByteRange::WHOLE,
                    None,
                    || fs.readdir(&cred, dir),
                )?;
                Ok(P::Entries(entries))
            }

            Q::Readlink { fid } => {
                let fs = self.volume_of(fid)?;
                Ok(P::Target(fs.readlink(&cred, fid)?))
            }

            Q::GetAcl { fid } => {
                let fs = self.volume_of(fid)?;
                Ok(P::AclIs(fs.get_acl(&cred, fid)?))
            }

            Q::SetAcl { fid, acl } => {
                let host = self.host_for(ctx.caller)?;
                let fs = self.volume_of(fid)?;
                let (_r, _t, _s) = self.with_grant(
                    host,
                    fid,
                    TokenTypes::STATUS_WRITE,
                    ByteRange::WHOLE,
                    None,
                    || fs.set_acl(&cred, fid, &acl),
                )?;
                Ok(P::Ok)
            }

            Q::SetLock { fid, range, write } => {
                let host = self.host_for(ctx.caller)?;
                self.volume_of(fid)?;
                // A server-mediated lock must first pull back conflicting
                // lock *tokens*: holders with active locks retain them,
                // which correctly refuses this lock (§5.3).
                let types =
                    if write { TokenTypes::LOCK_WRITE } else { TokenTypes::LOCK_READ };
                let (t, _) = self.tm.grant(host, fid, types, range)?;
                let result = self.locks.set(host, fid, range, write);
                self.tm.release(host, t.id);
                result?;
                Ok(P::Ok)
            }

            Q::ReleaseLock { fid, range } => {
                let host = self.host_for(ctx.caller)?;
                self.locks.release(host, fid, range);
                Ok(P::Ok)
            }

            Q::VolCreate { volume, name } => {
                self.physical.create_volume(volume, &name)?;
                self.hosted.lock().insert(volume);
                self.vldb.register(volume, self.id)?;
                Ok(P::Ok)
            }
            Q::VolDelete { volume } => {
                self.unmount(volume);
                self.physical.delete_volume(volume)?;
                self.hosted.lock().remove(&volume);
                self.vldb.unregister(volume)?;
                Ok(P::Ok)
            }
            Q::VolClone { src, clone, name } => {
                // Snapshot what clients have written, not just what has
                // been stored back: revoke outstanding write tokens.
                self.quiesce_volume(src)?;
                self.physical.clone_volume(src, clone, &name)?;
                self.hosted.lock().insert(clone);
                self.vldb.register(clone, self.id)?;
                Ok(P::Ok)
            }
            Q::VolDump { volume, since_version } => {
                self.quiesce_volume(volume)?;
                Ok(P::Dump(self.physical.dump_volume(volume, since_version)?))
            }
            Q::VolRestore { dump, read_only } => {
                let vol = dump.volume;
                self.physical.restore_volume(&dump, read_only)?;
                self.unmount(vol);
                // A move target keeps the shipped copy *staged* until the
                // handover completes (`VolInstallTokens`): the VLDB still
                // names the source, and a client holding a stale hint
                // aimed here must be redirected there — serving (or
                // accepting writes into) the phase-1 snapshot would fork
                // the volume, with the writes clobbered by the phase-2
                // delta.
                if !self.hosted.lock().contains(&vol) {
                    self.staged.lock().insert(vol);
                }
                Ok(P::Ok)
            }
            Q::VolInstallTokens { volume, grants, stamps } => {
                // A move source handing over the volume's coherence
                // state: install each surviving client grant verbatim
                // (ids preserved, so clients' cached tokens stay valid
                // and future revocations match them), and lift every
                // serialization counter to the source's floor so stamps
                // stay monotone across the move (§6.2).
                let now = self.net.clock().now();
                for (client, token) in grants {
                    if token.fid.volume != volume {
                        return Err(DfsError::InvalidArgument);
                    }
                    let host = self.host_for(Addr::Client(client))?;
                    // Count the shipped client as seen, so a later
                    // restart of *this* server expects it to recover —
                    // durably: the move's handover is exactly the kind
                    // of state a crashed target must not forget.
                    self.hosts.seed(client, now);
                    self.journal_holding(host);
                    self.tm.install_grant(host, token);
                }
                for (fid, stamp) in stamps {
                    self.tm.raise_stamp_floor(fid, stamp);
                }
                // Handover complete: the delta is applied and the
                // coherence state is in place, so the staged copy
                // becomes a hosted volume this server serves (the
                // source flips the VLDB right after this call returns).
                self.staged.lock().remove(&volume);
                self.hosted.lock().insert(volume);
                self.routes.lock().remove(&volume);
                Ok(P::Ok)
            }
            Q::VolDiscard { volume } => {
                // The source aborted a move after the bulk ship: throw
                // away the staged copy so this server cannot end up
                // claiming a stale fork of the volume. Already-promoted
                // (or never-staged) volumes are untouched.
                if self.staged.lock().remove(&volume) {
                    self.unmount(volume);
                    self.physical.delete_volume(volume)?;
                }
                Ok(P::Ok)
            }
            Q::VolInfo { volume } => Ok(P::VolumeIs(self.physical.volume_info(volume)?)),
            Q::VolList => Ok(P::Volumes(self.physical.list_volumes()?)),
            Q::VolMove { volume, target } => {
                self.move_volume(volume, target)?;
                Ok(P::Ok)
            }

            Q::ReplAdd { volume, source, max_staleness_us } => {
                self.replica_add(volume, source, max_staleness_us)?;
                Ok(P::Ok)
            }
            Q::ReplTick => {
                self.replica_tick()?;
                Ok(P::Ok)
            }

            Q::GetEpoch => Ok(P::EpochIs { epoch: self.epoch, in_grace: self.in_grace() }),

            Q::ReestablishTokens { epoch, tokens } => {
                let client = match ctx.caller {
                    Addr::Client(c) => c,
                    _ => return Err(DfsError::InvalidArgument),
                };
                if epoch != self.epoch {
                    // The caller is talking to a different instance than
                    // it thinks (e.g. we restarted again); it must
                    // re-probe before claiming anything.
                    return Err(DfsError::InvalidArgument);
                }
                let host = self.host_for(ctx.caller)?;
                let now = self.net.clock().now();
                let (in_grace, expected) = {
                    let mut rec = self.recovery.lock();
                    (self.grace_open(&mut rec, now), rec.expected.contains(&client))
                };
                let mut granted = Vec::new();
                if in_grace && expected {
                    // Re-grant claims that don't conflict with what other
                    // hosts already reestablished; conflicting claims are
                    // silently dropped (the honest pre-crash grant set is
                    // conflict-free, so drops only punish stale claims).
                    for t in tokens {
                        if let Some((token, _stamp)) =
                            self.tm.reestablish(host, t.fid, t.types, t.range)
                        {
                            granted.push(token);
                        }
                    }
                }
                if !granted.is_empty() {
                    // The re-grants make this client a holder under the
                    // *new* instance; journal that for the next crash.
                    self.journal_holding(host);
                }
                if expected {
                    let mut rec = self.recovery.lock();
                    rec.checked_in.insert(client);
                    // Last expected host in: close the window early.
                    self.grace_open(&mut rec, now);
                }
                Ok(P::Reestablished { epoch: self.epoch, tokens: granted })
            }

            Q::RevokeToken { token, types: _, stamp: _ } => {
                // We hold whole-volume replica tokens only: mark the
                // replica dirty and return the token (§3.8).
                let mut jobs = self.repl.lock();
                if let Some(j) = jobs.iter_mut().find(|j| j.volume == token.fid.volume) {
                    j.dirty = true;
                }
                Ok(P::RevokeAck { returned: true })
            }

            Q::RevokeVec { items } => {
                // Batched twin of RevokeToken: mark each token's volume
                // replica dirty and return every token, one answer per
                // item in request order.
                let mut jobs = self.repl.lock();
                let returned = items
                    .iter()
                    .map(|(token, _types, _stamp)| {
                        if let Some(j) =
                            jobs.iter_mut().find(|j| j.volume == token.fid.volume)
                        {
                            j.dirty = true;
                        }
                        true
                    })
                    .collect();
                Ok(P::RevokeVecAck { returned })
            }

            Q::Login { .. } | Q::VlLookup { .. } | Q::VlRegister { .. }
            | Q::VlUnregister { .. } | Q::VlList | Q::VlAddReplica { .. }
            | Q::VlReplicas { .. } => Err(DfsError::InvalidArgument),
        }
    }

    fn namespace_op(
        &self,
        ctx: &CallContext,
        dir: Fid,
        f: impl FnOnce(&Arc<dyn VfsPlus>) -> DfsResult<dfs_types::FileStatus>,
    ) -> DfsResult<Response> {
        let host = self.host_for(ctx.caller)?;
        let fs = self.volume_of(dir)?;
        let (status, _t, _s) =
            self.with_grant(host, dir, DIR_WRITE, ByteRange::WHOLE, None, || f(&fs))?;
        let stamp = self.tm.stamp(status.fid);
        Ok(Response::Status { status, tokens: Vec::new(), stamp, epoch: self.epoch, stale_us: 0 })
    }

    /// The volume a file RPC is about, if any. Admin traffic (volume
    /// motion, replication, VLDB, recovery probes) returns `None`: it
    /// is addressed to a specific server deliberately and must never be
    /// redirected or forwarded.
    fn volume_of_req(req: &Request) -> Option<VolumeId> {
        match req {
            Request::GetRoot { volume } => Some(*volume),
            _ => Self::fid_of(req).map(|f| f.volume),
        }
    }

    /// File RPCs cheap enough to answer by proxy: token-free one-shot
    /// reads. Everything else involves granting, returning, or storing
    /// under tokens, which must happen directly between the client and
    /// the owning server — those bounce with `WrongServer` instead.
    fn forwards_ok(req: &Request) -> bool {
        matches!(
            req,
            Request::GetRoot { .. }
                | Request::Readlink { .. }
                | Request::GetAcl { .. }
                | Request::Fsync { .. }
        )
    }

    /// Answers a call for a volume this server does not host: forward
    /// one-shot reads to the owner, redirect everything else with a
    /// `WrongServer` hint (route note if we moved it away ourselves,
    /// else a fresh VLDB lookup).
    fn not_hosted(&self, ctx: &CallContext, volume: VolumeId, req: Request) -> Response {
        let hint = self.routes.lock().get(&volume).copied();
        let hint = match hint {
            Some(h) => Some(h),
            None => match self.vldb.lookup_gen(volume) {
                Ok((server, generation)) if server != self.id => Some((server, generation)),
                _ => None,
            },
        };
        let Some((server, generation)) = hint else {
            return Response::Err(DfsError::NoSuchVolume);
        };
        if Self::forwards_ok(&req) {
            self.stats.lock().forwards += 1;
            // Forward over the trusted inter-server channel with the
            // caller's authenticated principal attached, so the owner's
            // ACL checks run against the real caller — a plain re-send
            // would arrive unauthenticated and either fail outright
            // (require_auth cells) or run as the system principal.
            return match self.net.call_forwarded(
                self.addr,
                Addr::Server(server),
                ctx.principal,
                ctx.class,
                req,
            ) {
                Ok(resp) => resp,
                // The owner is down. Surface that as a response: the
                // client's failover machinery owns retrying the owner,
                // not this bystander.
                Err(DfsError::Unreachable) | Err(DfsError::Crashed) => {
                    Response::Err(DfsError::Crashed)
                }
                Err(e) => Response::Err(e),
            };
        }
        self.stats.lock().wrong_server_redirects += 1;
        Response::WrongServer { hint: server, generation }
    }

    fn fid_of(req: &Request) -> Option<Fid> {
        match req {
            Request::FetchStatus { fid, .. }
            | Request::FetchData { fid, .. }
            | Request::StoreData { fid, .. }
            | Request::StoreDataVec { fid, .. }
            | Request::StoreStatus { fid, .. }
            | Request::Fsync { fid }
            | Request::GetToken { fid, .. }
            | Request::ReturnToken { fid, .. }
            | Request::Readlink { fid }
            | Request::GetAcl { fid }
            | Request::SetAcl { fid, .. }
            | Request::SetLock { fid, .. }
            | Request::ReleaseLock { fid, .. } => Some(*fid),
            Request::Lookup { dir, .. }
            | Request::Create { dir, .. }
            | Request::Mkdir { dir, .. }
            | Request::Symlink { dir, .. }
            | Request::Link { dir, .. }
            | Request::Remove { dir, .. }
            | Request::Rmdir { dir, .. }
            | Request::Readdir { dir } => Some(*dir),
            Request::Rename { src_dir, .. } => Some(*src_dir),
            _ => None,
        }
    }
}

impl RpcService for FileServer {
    fn dispatch(&self, ctx: CallContext, req: Request) -> Response {
        if let Addr::Client(c) = ctx.caller {
            let now = self.net.clock().now();
            self.hosts.saw_call(c, ctx.principal, now);
            self.journal_lease_refresh(c, now);
        }
        // Routing gate: a file call for a volume this server does not
        // host is forwarded or redirected before any recovery or busy
        // gating — the owner, not this server, holds the volume's
        // recovery story. Applies to every call class: a store-back
        // aimed at a moved-away volume must chase it too.
        let volume = Self::volume_of_req(&req);
        if let Some(v) = volume {
            if !self.hosted.lock().contains(&v) {
                return self.not_hosted(&ctx, v, req);
            }
        }
        // Post-restart recovery gate: while the grace window is open,
        // file work is admitted only from hosts that have reestablished
        // their tokens. Probes (Ping/GetEpoch), the reestablish call
        // itself, admin traffic, and revocation-class store-backs pass.
        if ctx.class != CallClass::Revocation
            && (Self::fid_of(&req).is_some() || matches!(req, Request::GetRoot { .. }))
        {
            let gated = {
                let now = self.net.clock().now();
                let mut rec = self.recovery.lock();
                self.grace_open(&mut rec, now)
                    && match ctx.caller {
                        Addr::Client(c) => !rec.checked_in.contains(&c),
                        // Peers (replicators) are not part of recovery.
                        _ => false,
                    }
            };
            if gated {
                self.stats.lock().grace_rejections += 1;
                return Response::Err(DfsError::GraceWait);
            }
        }
        // Track in-flight file work per volume *before* consulting the
        // busy gate. A move's blackout phase sets `busy` first and only
        // then drains `inflight`, so with this ordering a racing call
        // either increments early enough for the drain to wait on it,
        // or reads `busy` after the blackout began and backs out — it
        // can never slip a mutation in after the drain observed zero.
        if let Some(v) = volume {
            *self.inflight.lock().entry(v).or_insert(0) += 1;
        }
        // Volume motion blocks file access briefly (§2.1) — except for
        // revocation-triggered store-backs, which the move's own
        // quiescing is waiting on.
        if ctx.class != CallClass::Revocation {
            if let Some(v) = volume {
                if self.busy.lock().contains(&v) {
                    self.stats.lock().busy_rejections += 1;
                    self.inflight_dec(v);
                    return Response::Err(DfsError::VolumeBusy);
                }
            }
        }
        {
            let mut stats = self.stats.lock();
            stats.ops += 1;
            if let Some(v) = volume {
                *stats.volume_ops.entry(v).or_insert(0) += 1;
            }
        }
        let resp = match self.handle(&ctx, req) {
            Ok(resp) => resp,
            Err(e) => Response::Err(e),
        };
        let resp = self.stamp_staleness(volume, resp);
        if let Some(v) = volume {
            self.inflight_dec(v);
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_disk::{DiskConfig, SimDisk};
    use dfs_episode::{Episode, FormatParams};
    use dfs_types::{ClientId, SimClock};

    fn cell() -> (Network, Arc<FileServer>) {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 500);
        net.register(Addr::Vldb(0), VldbReplica::new(), PoolConfig::default());
        let disk = SimDisk::new(DiskConfig::with_blocks(16384));
        let ep = Episode::format(disk, clock, FormatParams::default()).unwrap();
        ep.create_volume(VolumeId(1), "root.cell").unwrap();
        let srv = FileServer::start(
            net.clone(),
            ServerId(1),
            ep,
            vec![Addr::Vldb(0)],
            PoolConfig::default(),
        )
        .unwrap();
        (net, srv)
    }

    fn call(net: &Network, req: Request) -> Response {
        net.call(Addr::Client(ClientId(7)), Addr::Server(ServerId(1)), None, CallClass::Normal, req)
            .unwrap()
    }

    #[test]
    fn get_root_and_create_and_fetch() {
        let (net, _srv) = cell();
        let root = match call(&net, Request::GetRoot { volume: VolumeId(1) }) {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        let created = match call(
            &net,
            Request::Create { dir: root, name: "hello".into(), mode: 0o644 },
        ) {
            Response::Status { status, .. } => status,
            other => panic!("{other:?}"),
        };
        match call(
            &net,
            Request::StoreData { fid: created.fid, offset: 0, data: b"remote!".to_vec() },
        ) {
            Response::Status { status, .. } => assert_eq!(status.length, 7),
            other => panic!("{other:?}"),
        }
        match call(
            &net,
            Request::FetchData { fid: created.fid, offset: 0, len: 32, want: None },
        ) {
            Response::Data { bytes, status, .. } => {
                assert_eq!(bytes, b"remote!");
                assert_eq!(status.length, 7);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn store_data_vec_applies_batch_in_one_group_commit() {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 500);
        net.register(Addr::Vldb(0), VldbReplica::new(), PoolConfig::default());
        let disk = SimDisk::new(DiskConfig::with_blocks(16384));
        let ep = Episode::format(disk, clock, FormatParams::default()).unwrap();
        ep.create_volume(VolumeId(1), "root.cell").unwrap();
        let _srv = FileServer::start(
            net.clone(),
            ServerId(1),
            ep.clone(),
            vec![Addr::Vldb(0)],
            PoolConfig::default(),
        )
        .unwrap();
        let root = match call(&net, Request::GetRoot { volume: VolumeId(1) }) {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        let f = match call(&net, Request::Create { dir: root, name: "v".into(), mode: 0o644 }) {
            Response::Status { status, .. } => status,
            other => panic!("{other:?}"),
        };
        let before = ep.journal().stats().syncs;
        let extents = vec![
            WriteExtent { offset: 0, data: vec![1u8; 4096] },
            WriteExtent { offset: 4096, data: vec![2u8; 4096] },
            WriteExtent { offset: 16384, data: vec![3u8; 100] },
        ];
        match call(&net, Request::StoreDataVec { fid: f.fid, extents }) {
            Response::Status { status, .. } => assert_eq!(status.length, 16484),
            other => panic!("{other:?}"),
        }
        // The whole batch forced the log exactly once.
        assert_eq!(ep.journal().stats().syncs, before + 1);
        match call(&net, Request::FetchData { fid: f.fid, offset: 4096, len: 8, want: None }) {
            Response::Data { bytes, .. } => assert_eq!(bytes, vec![2u8; 8]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn store_data_vec_rejects_malformed_batches() {
        let (net, _srv) = cell();
        let root = match call(&net, Request::GetRoot { volume: VolumeId(1) }) {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        let f = match call(&net, Request::Create { dir: root, name: "m".into(), mode: 0o644 }) {
            Response::Status { status, .. } => status,
            other => panic!("{other:?}"),
        };
        // Empty batch.
        assert_eq!(
            call(&net, Request::StoreDataVec { fid: f.fid, extents: vec![] }),
            Response::Err(DfsError::InvalidArgument)
        );
        // Too many extents.
        let many = (0..=MAX_STORE_EXTENTS as u64)
            .map(|i| WriteExtent { offset: i * 8192, data: vec![0u8; 1] })
            .collect();
        assert_eq!(
            call(&net, Request::StoreDataVec { fid: f.fid, extents: many }),
            Response::Err(DfsError::InvalidArgument)
        );
        // Too many payload bytes.
        let fat = vec![WriteExtent { offset: 0, data: vec![0u8; MAX_STORE_BYTES + 1] }];
        assert_eq!(
            call(&net, Request::StoreDataVec { fid: f.fid, extents: fat }),
            Response::Err(DfsError::InvalidArgument)
        );
    }

    #[test]
    fn stamps_increase_per_file() {
        let (net, _srv) = cell();
        let root = match call(&net, Request::GetRoot { volume: VolumeId(1) }) {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        let s1 = match call(&net, Request::FetchStatus { fid: root, want: None }) {
            Response::Status { stamp, .. } => stamp,
            other => panic!("{other:?}"),
        };
        let s2 = match call(&net, Request::FetchStatus { fid: root, want: None }) {
            Response::Status { stamp, .. } => stamp,
            other => panic!("{other:?}"),
        };
        assert!(s2 > s1, "per-file serialization stamps must increase (§6.2)");
    }

    #[test]
    fn vldb_learns_server_volumes_on_start() {
        let (net, srv) = cell();
        let vldb = VldbHandle::new(net, Addr::Client(ClientId(9)), vec![Addr::Vldb(0)]);
        assert_eq!(vldb.lookup(VolumeId(1)).unwrap(), srv.id());
    }

    #[test]
    fn local_and_remote_access_synchronize() {
        // The §5.5 example in miniature: a local user and a remote user
        // write the same file; token conflicts force serialization.
        let (net, srv) = cell();
        let root = match call(&net, Request::GetRoot { volume: VolumeId(1) }) {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        let f = match call(&net, Request::Create { dir: root, name: "x".into(), mode: 0o666 }) {
            Response::Status { status, .. } => status,
            other => panic!("{other:?}"),
        };
        // Remote client writes via RPC.
        call(&net, Request::StoreData { fid: f.fid, offset: 0, data: b"remote".to_vec() });
        // Local user reads through the glue layer.
        let local = srv.local_volume(VolumeId(1)).unwrap();
        let cred = Credentials::system();
        use dfs_vfs::Vfs;
        assert_eq!(local.read(&cred, f.fid, 0, 16).unwrap(), b"remote");
        // Local write, then remote read.
        local.write(&cred, f.fid, 0, b"local!").unwrap();
        match call(&net, Request::FetchData { fid: f.fid, offset: 0, len: 16, want: None }) {
            Response::Data { bytes, .. } => assert_eq!(bytes, b"local!"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn namespace_round_trip() {
        let (net, _srv) = cell();
        let root = match call(&net, Request::GetRoot { volume: VolumeId(1) }) {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        call(&net, Request::Mkdir { dir: root, name: "d".into(), mode: 0o755 });
        let d = match call(&net, Request::Lookup { dir: root, name: "d".into(), want: None }) {
            Response::Status { status, .. } => status,
            other => panic!("{other:?}"),
        };
        assert!(d.is_dir());
        call(&net, Request::Create { dir: d.fid, name: "f".into(), mode: 0o644 });
        let entries = match call(&net, Request::Readdir { dir: d.fid }) {
            Response::Entries(e) => e,
            other => panic!("{other:?}"),
        };
        assert_eq!(entries.len(), 1);
        call(&net, Request::Rename {
            src_dir: d.fid,
            src_name: "f".into(),
            dst_dir: root,
            dst_name: "g".into(),
        });
        assert!(matches!(
            call(&net, Request::Lookup { dir: root, name: "g".into(), want: None }),
            Response::Status { .. }
        ));
        call(&net, Request::Remove { dir: root, name: "g".into() });
        assert!(matches!(
            call(&net, Request::Lookup { dir: root, name: "g".into(), want: None }),
            Response::Err(DfsError::NotFound)
        ));
        call(&net, Request::Rmdir { dir: root, name: "d".into() });
        assert!(matches!(
            call(&net, Request::Lookup { dir: root, name: "d".into(), want: None }),
            Response::Err(DfsError::NotFound)
        ));
    }

    #[test]
    fn server_side_locks() {
        let (net, _srv) = cell();
        let root = match call(&net, Request::GetRoot { volume: VolumeId(1) }) {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        let f = match call(&net, Request::Create { dir: root, name: "l".into(), mode: 0o666 }) {
            Response::Status { status, .. } => status,
            other => panic!("{other:?}"),
        };
        let lock = |c: u32, write: bool| {
            net.call(
                Addr::Client(ClientId(c)),
                Addr::Server(ServerId(1)),
                None,
                CallClass::Normal,
                Request::SetLock { fid: f.fid, range: ByteRange::new(0, 100), write },
            )
            .unwrap()
        };
        assert_eq!(lock(1, true), Response::Ok);
        assert_eq!(lock(2, true), Response::Err(DfsError::LockConflict));
        net.call(
            Addr::Client(ClientId(1)),
            Addr::Server(ServerId(1)),
            None,
            CallClass::Normal,
            Request::ReleaseLock { fid: f.fid, range: ByteRange::new(0, 100) },
        )
        .unwrap();
        assert_eq!(lock(2, true), Response::Ok);
    }

    #[test]
    fn volume_move_between_servers() {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 500);
        net.register(Addr::Vldb(0), VldbReplica::new(), PoolConfig::default());
        let mk = |n: u32| {
            let disk = SimDisk::new(DiskConfig::with_blocks(16384));
            let ep = Episode::format(disk, clock.clone(), FormatParams::default()).unwrap();
            FileServer::start(
                net.clone(),
                ServerId(n),
                ep,
                vec![Addr::Vldb(0)],
                PoolConfig::default(),
            )
            .unwrap()
        };
        let s1 = mk(1);
        let s2 = mk(2);
        // Create a volume with content on s1.
        let c = Addr::Client(ClientId(1));
        let send = |to: ServerId, req: Request| {
            net.call(c, Addr::Server(to), None, CallClass::Normal, req).unwrap()
        };
        send(ServerId(1), Request::VolCreate { volume: VolumeId(7), name: "proj".into() });
        let root = match send(ServerId(1), Request::GetRoot { volume: VolumeId(7) }) {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        let f = match send(
            ServerId(1),
            Request::Create { dir: root, name: "file".into(), mode: 0o644 },
        ) {
            Response::Status { status, .. } => status,
            other => panic!("{other:?}"),
        };
        send(ServerId(1), Request::StoreData { fid: f.fid, offset: 0, data: b"movable".to_vec() });

        // Move it.
        assert_eq!(
            send(ServerId(1), Request::VolMove { volume: VolumeId(7), target: ServerId(2) }),
            Response::Ok
        );
        assert_eq!(s1.stats().moves, 1);

        // VLDB points at s2; fids still resolve; data survived.
        let vldb = VldbHandle::new(net.clone(), c, vec![Addr::Vldb(0)]);
        assert_eq!(vldb.lookup(VolumeId(7)).unwrap(), ServerId(2));
        match send(ServerId(2), Request::FetchData { fid: f.fid, offset: 0, len: 16, want: None }) {
            Response::Data { bytes, .. } => assert_eq!(bytes, b"movable"),
            other => panic!("{other:?}"),
        }
        // The old server redirects with a hint at the new owner.
        assert!(matches!(
            send(ServerId(1), Request::FetchStatus { fid: f.fid, want: None }),
            Response::WrongServer { hint: ServerId(2), .. }
        ));
        assert!(s1.stats().wrong_server_redirects >= 1);
        // Token-free one-shot calls are forwarded transparently.
        match send(ServerId(1), Request::GetRoot { volume: VolumeId(7) }) {
            Response::FidIs(r) => assert_eq!(r, root),
            other => panic!("{other:?}"),
        }
        assert!(s1.stats().forwards >= 1);
        let _ = s2;
    }

    #[test]
    fn unknown_volume_redirects_via_vldb() {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 500);
        net.register(Addr::Vldb(0), VldbReplica::new(), PoolConfig::default());
        let mk = |n: u32| {
            let disk = SimDisk::new(DiskConfig::with_blocks(16384));
            let ep = Episode::format(disk, clock.clone(), FormatParams::default()).unwrap();
            FileServer::start(
                net.clone(),
                ServerId(n),
                ep,
                vec![Addr::Vldb(0)],
                PoolConfig::default(),
            )
            .unwrap()
        };
        let _s1 = mk(1);
        let _s2 = mk(2);
        let c = Addr::Client(ClientId(1));
        let send = |to: ServerId, req: Request| {
            net.call(c, Addr::Server(to), None, CallClass::Normal, req).unwrap()
        };
        // Volume 9 lives on s2; a file call misdirected at s1 gets a
        // hint from the VLDB even though s1 never hosted the volume.
        send(ServerId(2), Request::VolCreate { volume: VolumeId(9), name: "elsewhere".into() });
        let fid = Fid::new(VolumeId(9), VnodeId(1), 1);
        assert!(matches!(
            send(ServerId(1), Request::FetchStatus { fid, want: None }),
            Response::WrongServer { hint: ServerId(2), .. }
        ));
        // A volume nobody hosts is an error, not a redirect loop.
        let ghost = Fid::new(VolumeId(99), VnodeId(1), 1);
        assert!(matches!(
            send(ServerId(1), Request::FetchStatus { fid: ghost, want: None }),
            Response::Err(DfsError::NoSuchVolume)
        ));
    }

    #[test]
    fn lazy_replication_ships_increments() {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 500);
        net.register(Addr::Vldb(0), VldbReplica::new(), PoolConfig::default());
        let mk = |n: u32| {
            let disk = SimDisk::new(DiskConfig::with_blocks(16384));
            let ep = Episode::format(disk, clock.clone(), FormatParams::default()).unwrap();
            FileServer::start(
                net.clone(),
                ServerId(n),
                ep,
                vec![Addr::Vldb(0)],
                PoolConfig::default(),
            )
            .unwrap()
        };
        let _s1 = mk(1);
        let s2 = mk(2);
        let c = Addr::Client(ClientId(1));
        let send = |to: ServerId, req: Request| {
            net.call(c, Addr::Server(to), None, CallClass::Normal, req).unwrap()
        };
        send(ServerId(1), Request::VolCreate { volume: VolumeId(7), name: "src".into() });
        let root = match send(ServerId(1), Request::GetRoot { volume: VolumeId(7) }) {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        let f = match send(
            ServerId(1),
            Request::Create { dir: root, name: "data".into(), mode: 0o644 },
        ) {
            Response::Status { status, .. } => status,
            other => panic!("{other:?}"),
        };
        send(ServerId(1), Request::StoreData { fid: f.fid, offset: 0, data: b"v1".to_vec() });

        // Replicate onto s2 with a 10-minute staleness bound.
        let ten_min = 600 * 1_000_000;
        assert_eq!(
            send(
                ServerId(2),
                Request::ReplAdd { volume: VolumeId(7), source: ServerId(1), max_staleness_us: ten_min },
            ),
            Response::Ok
        );
        // Replica serves v1 (read-only).
        match send(ServerId(2), Request::FetchData { fid: f.fid, offset: 0, len: 8, want: None }) {
            Response::Data { bytes, .. } => assert_eq!(bytes, b"v1"),
            other => panic!("{other:?}"),
        }
        // Master changes; replica stays at v1 until the bound expires.
        send(ServerId(1), Request::StoreData { fid: f.fid, offset: 0, data: b"v2".to_vec() });
        send(ServerId(2), Request::ReplTick);
        match send(ServerId(2), Request::FetchData { fid: f.fid, offset: 0, len: 8, want: None }) {
            Response::Data { bytes, .. } => {
                // The write revoked the whole-volume token, marking the
                // replica dirty: the next tick refreshes regardless of
                // the staleness clock. Both v1 and v2 are acceptable
                // here; the guarantee is only "no more than ten minutes
                // stale", and never regressing.
                assert!(bytes == b"v2" || bytes == b"v1");
            }
            other => panic!("{other:?}"),
        }
        clock.advance_micros(ten_min + 1);
        send(ServerId(2), Request::ReplTick);
        match send(ServerId(2), Request::FetchData { fid: f.fid, offset: 0, len: 8, want: None }) {
            Response::Data { bytes, .. } => assert_eq!(bytes, b"v2", "bound expired: must refresh"),
            other => panic!("{other:?}"),
        }
        assert!(s2.stats().replica_refreshes >= 1);
    }

    #[test]
    fn authenticated_permissions_flow_through() {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), 0);
        net.register(Addr::Vldb(0), VldbReplica::new(), PoolConfig::default());
        let disk = SimDisk::new(DiskConfig::with_blocks(16384));
        let ep = Episode::format(disk, clock, FormatParams::default()).unwrap();
        ep.create_volume(VolumeId(1), "v").unwrap();
        let _srv = FileServer::start(
            net.clone(),
            ServerId(1),
            ep,
            vec![Addr::Vldb(0)],
            PoolConfig { require_auth: true, ..PoolConfig::default() },
        )
        .unwrap();
        net.auth().add_user(100, 42);
        let ticket = net.auth().login(100, 42).unwrap();
        let c = Addr::Client(ClientId(1));

        // Unauthenticated call is refused.
        let r = net
            .call(c, Addr::Server(ServerId(1)), None, CallClass::Normal, Request::VolList)
            .unwrap();
        assert_eq!(r, Response::Err(DfsError::AuthenticationFailed));

        // Authenticated call succeeds, and the cred is user 100 — who
        // cannot write the system-owned root (mode 0755).
        let root = match net
            .call(
                c,
                Addr::Server(ServerId(1)),
                Some(ticket),
                CallClass::Normal,
                Request::GetRoot { volume: VolumeId(1) },
            )
            .unwrap()
        {
            Response::FidIs(f) => f,
            other => panic!("{other:?}"),
        };
        let r = net
            .call(
                c,
                Addr::Server(ServerId(1)),
                Some(ticket),
                CallClass::Normal,
                Request::Create { dir: root, name: "nope".into(), mode: 0o644 },
            )
            .unwrap();
        assert_eq!(r, Response::Err(DfsError::PermissionDenied));
    }
}
