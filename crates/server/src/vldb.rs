//! The volume location database (§3.4).
//!
//! "A global replicated database describing which volumes are on which
//! servers, provides service to remote clients." Each [`VldbReplica`] is
//! an independent RPC service; writers update every replica, readers may
//! consult any one — the classic read-one/write-all scheme appropriate
//! for a slowly-changing administrative database.
//!
//! Every entry carries a **generation number**, bumped each time the
//! volume changes servers (a re-register at the same server is a no-op).
//! Generations let clients and servers order location information:
//! caches only accept strictly newer entries, so a stale `WrongServer`
//! hint arriving after a fresh lookup can never roll a cache back to the
//! old owner.

use dfs_rpc::{Addr, CallClass, CallContext, Network, Request, Response, RpcService};
use dfs_types::lock::{rank, OrderedMutex};
use dfs_types::{DfsError, DfsResult, ServerId, VolumeId};
use std::collections::HashMap;
use std::sync::Arc;

/// One replica of the volume location database.
pub struct VldbReplica {
    map: OrderedMutex<HashMap<VolumeId, (ServerId, u64)>, { rank::VOLUME_REGISTRY }>,
    /// Read-only replica servers per volume (§3.8): where clients fail
    /// over when the primary is down. Kept separate from the location
    /// map so primary moves never disturb the replica set.
    replicas: OrderedMutex<HashMap<VolumeId, Vec<ServerId>>, { rank::SERVER_ROUTES }>,
}

impl VldbReplica {
    /// Creates an empty replica.
    pub fn new() -> Arc<VldbReplica> {
        Arc::new(VldbReplica {
            map: OrderedMutex::new(HashMap::new()),
            replicas: OrderedMutex::new(HashMap::new()),
        })
    }

    /// Number of entries (diagnostics).
    pub fn len(&self) -> usize {
        self.map.lock().len()
    }

    /// Returns true if the replica holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.lock().is_empty()
    }
}

impl RpcService for VldbReplica {
    fn dispatch(&self, _ctx: CallContext, req: Request) -> Response {
        match req {
            Request::VlLookup { volume } => match self.map.lock().get(&volume) {
                Some(&(server, generation)) => Response::Location { server, generation },
                None => Response::Err(DfsError::NoSuchVolume),
            },
            Request::VlRegister { volume, server } => {
                let mut map = self.map.lock();
                match map.get_mut(&volume) {
                    // Same server: keep the generation (idempotent
                    // re-registration at restart must not invalidate
                    // every client's location cache).
                    Some(entry) if entry.0 == server => {}
                    Some(entry) => *entry = (server, entry.1 + 1),
                    None => {
                        map.insert(volume, (server, 1));
                    }
                }
                Response::Ok
            }
            Request::VlUnregister { volume } => {
                self.map.lock().remove(&volume);
                self.replicas.lock().remove(&volume);
                Response::Ok
            }
            Request::VlAddReplica { volume, server } => {
                let mut reps = self.replicas.lock();
                let list = reps.entry(volume).or_default();
                if !list.contains(&server) {
                    list.push(server);
                }
                Response::Ok
            }
            Request::VlReplicas { volume } => {
                Response::Replicas(self.replicas.lock().get(&volume).cloned().unwrap_or_default())
            }
            Request::VlList => {
                let entries =
                    self.map.lock().iter().map(|(v, &(s, g))| (*v, s, g)).collect();
                Response::Locations(entries)
            }
            _ => Response::Err(DfsError::InvalidArgument),
        }
    }
}

/// Client-side handle to the replicated VLDB.
///
/// Reads try replicas in order (failing over past crashed ones); writes
/// go to every reachable replica.
#[derive(Clone)]
pub struct VldbHandle {
    net: Network,
    from: Addr,
    replicas: Vec<Addr>,
}

impl VldbHandle {
    /// Creates a handle used by `from` against the given replicas.
    pub fn new(net: Network, from: Addr, replicas: Vec<Addr>) -> VldbHandle {
        VldbHandle { net, from, replicas }
    }

    /// Looks up the server hosting `volume`.
    pub fn lookup(&self, volume: VolumeId) -> DfsResult<ServerId> {
        self.lookup_gen(volume).map(|(s, _)| s)
    }

    /// Looks up the server hosting `volume` plus the entry's generation.
    pub fn lookup_gen(&self, volume: VolumeId) -> DfsResult<(ServerId, u64)> {
        let mut last = DfsError::Unreachable;
        for &r in &self.replicas {
            match self.net.call(self.from, r, None, CallClass::Normal, Request::VlLookup { volume })
            {
                Ok(Response::Location { server, generation }) => return Ok((server, generation)),
                Ok(Response::Err(e)) => return Err(e),
                Ok(_) => return Err(DfsError::Internal("bad VLDB response")),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Registers (or moves) `volume` at `server` on every replica.
    pub fn register(&self, volume: VolumeId, server: ServerId) -> DfsResult<()> {
        let mut any = false;
        for &r in &self.replicas {
            if self
                .net
                .call(self.from, r, None, CallClass::Normal, Request::VlRegister { volume, server })
                .is_ok()
            {
                any = true;
            }
        }
        if any {
            Ok(())
        } else {
            Err(DfsError::Unreachable)
        }
    }

    /// Registers `server` as a read-only replica of `volume` on every
    /// reachable VLDB replica.
    pub fn add_replica(&self, volume: VolumeId, server: ServerId) -> DfsResult<()> {
        let mut any = false;
        for &r in &self.replicas {
            if self
                .net
                .call(
                    self.from,
                    r,
                    None,
                    CallClass::Normal,
                    Request::VlAddReplica { volume, server },
                )
                .is_ok()
            {
                any = true;
            }
        }
        if any {
            Ok(())
        } else {
            Err(DfsError::Unreachable)
        }
    }

    /// The read-only replica servers of `volume`, from the first
    /// reachable VLDB replica (empty when the volume has none).
    pub fn replicas_of(&self, volume: VolumeId) -> DfsResult<Vec<ServerId>> {
        let mut last = DfsError::Unreachable;
        for &r in &self.replicas {
            match self.net.call(self.from, r, None, CallClass::Normal, Request::VlReplicas { volume })
            {
                Ok(Response::Replicas(list)) => return Ok(list),
                Ok(Response::Err(e)) => return Err(e),
                Ok(_) => return Err(DfsError::Internal("bad VLDB response")),
                Err(e) => last = e,
            }
        }
        Err(last)
    }

    /// Removes `volume` from every replica.
    pub fn unregister(&self, volume: VolumeId) -> DfsResult<()> {
        for &r in &self.replicas {
            let _ = self
                .net
                .call(self.from, r, None, CallClass::Normal, Request::VlUnregister { volume });
        }
        Ok(())
    }

    /// Lists every entry (from the first reachable replica).
    pub fn list(&self) -> DfsResult<Vec<(VolumeId, ServerId, u64)>> {
        for &r in &self.replicas {
            if let Ok(Response::Locations(l)) =
                self.net.call(self.from, r, None, CallClass::Normal, Request::VlList)
            {
                return Ok(l);
            }
        }
        Err(DfsError::Unreachable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_rpc::PoolConfig;
    use dfs_types::{ClientId, SimClock};

    fn setup(n: u32) -> (Network, VldbHandle) {
        let net = Network::new(SimClock::new(), 0);
        let mut replicas = Vec::new();
        for i in 0..n {
            let addr = Addr::Vldb(i);
            net.register(addr, VldbReplica::new(), PoolConfig::default());
            replicas.push(addr);
        }
        let handle = VldbHandle::new(net.clone(), Addr::Client(ClientId(1)), replicas);
        (net, handle)
    }

    #[test]
    fn register_lookup_cycle() {
        let (_, vldb) = setup(3);
        vldb.register(VolumeId(5), ServerId(2)).unwrap();
        assert_eq!(vldb.lookup(VolumeId(5)).unwrap(), ServerId(2));
        assert_eq!(vldb.lookup(VolumeId(6)).unwrap_err(), DfsError::NoSuchVolume);
    }

    #[test]
    fn lookup_survives_replica_crash() {
        let (net, vldb) = setup(3);
        vldb.register(VolumeId(5), ServerId(2)).unwrap();
        net.set_crashed(Addr::Vldb(0), true);
        assert_eq!(vldb.lookup(VolumeId(5)).unwrap(), ServerId(2), "fails over to replica 1");
    }

    #[test]
    fn move_updates_location() {
        let (_, vldb) = setup(2);
        vldb.register(VolumeId(5), ServerId(1)).unwrap();
        vldb.register(VolumeId(5), ServerId(9)).unwrap();
        assert_eq!(vldb.lookup(VolumeId(5)).unwrap(), ServerId(9));
        vldb.unregister(VolumeId(5)).unwrap();
        assert!(vldb.lookup(VolumeId(5)).is_err());
    }

    #[test]
    fn generation_bumps_only_when_the_server_changes() {
        let (_, vldb) = setup(2);
        vldb.register(VolumeId(5), ServerId(1)).unwrap();
        assert_eq!(vldb.lookup_gen(VolumeId(5)).unwrap(), (ServerId(1), 1));
        // Idempotent re-registration (server restart) keeps the entry.
        vldb.register(VolumeId(5), ServerId(1)).unwrap();
        assert_eq!(vldb.lookup_gen(VolumeId(5)).unwrap(), (ServerId(1), 1));
        // A move bumps it.
        vldb.register(VolumeId(5), ServerId(9)).unwrap();
        assert_eq!(vldb.lookup_gen(VolumeId(5)).unwrap(), (ServerId(9), 2));
        vldb.register(VolumeId(5), ServerId(1)).unwrap();
        assert_eq!(vldb.lookup_gen(VolumeId(5)).unwrap(), (ServerId(1), 3));
    }

    #[test]
    fn list_enumerates() {
        let (_, vldb) = setup(1);
        vldb.register(VolumeId(1), ServerId(1)).unwrap();
        vldb.register(VolumeId(2), ServerId(2)).unwrap();
        let mut l = vldb.list().unwrap();
        l.sort();
        assert_eq!(l, vec![(VolumeId(1), ServerId(1), 1), (VolumeId(2), ServerId(2), 1)]);
    }
}
