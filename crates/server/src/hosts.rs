//! The host model (§3.2) and the remote-client token-host proxy.
//!
//! The host model "maintains structures describing authenticated
//! individuals that have made RPC's to it, and the client managers from
//! which the RPC's originated" — including whether revocation messages
//! have all been delivered.

use dfs_rpc::{Addr, CallClass, Network, Request, Response};
use dfs_token::{RevokeResult, Token, TokenHost, TokenTypes};
use dfs_types::lock::{rank, OrderedMutex};
use dfs_types::{ClientId, HostId, SerializationStamp, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-client state kept by a file server.
#[derive(Clone, Debug, Default)]
pub struct HostRecord {
    /// Last authenticated principal seen from this client.
    pub principal: Option<u32>,
    /// RPCs received from this client.
    pub calls: u64,
    /// Revocations sent to this client.
    pub revocations_sent: u64,
    /// Revocations acknowledged.
    pub revocations_acked: u64,
    /// Last time we heard from the client.
    pub last_seen: Timestamp,
}

/// The server's registry of known clients.
#[derive(Default)]
pub struct HostModel {
    records: OrderedMutex<HashMap<ClientId, HostRecord>, { rank::HOST_TABLE }>,
}

impl HostModel {
    /// Creates an empty host model.
    pub fn new() -> HostModel {
        HostModel::default()
    }

    /// Notes an incoming call from `client`.
    pub fn saw_call(&self, client: ClientId, principal: Option<u32>, now: Timestamp) {
        let mut recs = self.records.lock();
        let r = recs.entry(client).or_default();
        r.calls += 1;
        if principal.is_some() {
            r.principal = principal;
        }
        r.last_seen = now;
    }

    /// Notes a revocation sent to / acknowledged by `client`.
    pub fn saw_revocation(&self, client: ClientId, acked: bool) {
        let mut recs = self.records.lock();
        let r = recs.entry(client).or_default();
        r.revocations_sent += 1;
        if acked {
            r.revocations_acked += 1;
        }
    }

    /// Returns true if every revocation sent to `client` was delivered.
    pub fn revocations_quiesced(&self, client: ClientId) -> bool {
        let recs = self.records.lock();
        recs.get(&client).is_none_or(|r| r.revocations_sent == r.revocations_acked)
    }

    /// Returns a snapshot of one client's record.
    pub fn record(&self, client: ClientId) -> Option<HostRecord> {
        self.records.lock().get(&client).cloned()
    }

    /// Lists all known clients.
    pub fn clients(&self) -> Vec<ClientId> {
        self.records.lock().keys().copied().collect()
    }
}

/// Token-manager host proxy for a remote token holder — a cache manager
/// or a replication server on another file server. Revocations become
/// server→peer RPCs (§5.3).
pub struct RemoteHost {
    net: Network,
    server_addr: Addr,
    peer: Addr,
    host_id: HostId,
    model: Arc<HostModel>,
}

impl RemoteHost {
    /// Creates the proxy for cache manager `client`.
    pub fn client(
        net: Network,
        server_addr: Addr,
        client: ClientId,
        model: Arc<HostModel>,
    ) -> Arc<RemoteHost> {
        Arc::new(RemoteHost {
            net,
            server_addr,
            peer: Addr::Client(client),
            host_id: HostId::Client(client),
            model,
        })
    }

    /// Creates the proxy for a replication server on `server` (§3.8).
    pub fn replicator(
        net: Network,
        server_addr: Addr,
        server: dfs_types::ServerId,
        model: Arc<HostModel>,
    ) -> Arc<RemoteHost> {
        Arc::new(RemoteHost {
            net,
            server_addr,
            peer: Addr::Server(server),
            host_id: HostId::Replicator(server.0),
            model,
        })
    }
}

impl TokenHost for RemoteHost {
    fn host_id(&self) -> HostId {
        self.host_id
    }

    fn revoke(
        &self,
        token: &Token,
        types: TokenTypes,
        stamp: SerializationStamp,
    ) -> RevokeResult {
        // Server→peer revocation RPC; dispatched on the peer's
        // revocation pool so a busy peer can always serve it (§6.4).
        let resp = self.net.call(
            self.server_addr,
            self.peer,
            None,
            CallClass::Revocation,
            Request::RevokeToken { token: token.clone(), types, stamp },
        );
        let client = match self.peer {
            Addr::Client(c) => Some(c),
            _ => None,
        };
        match resp {
            Ok(Response::RevokeAck { returned }) => {
                if let Some(c) = client {
                    self.model.saw_revocation(c, true);
                }
                if returned {
                    RevokeResult::Returned
                } else {
                    RevokeResult::Retained
                }
            }
            _ => {
                // Unreachable peer: treat its tokens as returned (a
                // production server would also mark the client dead).
                if let Some(c) = client {
                    self.model.saw_revocation(c, false);
                }
                RevokeResult::Returned
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_model_tracks_calls_and_revocations() {
        let m = HostModel::new();
        let c = ClientId(1);
        m.saw_call(c, Some(42), Timestamp(10));
        m.saw_call(c, None, Timestamp(20));
        let r = m.record(c).unwrap();
        assert_eq!(r.calls, 2);
        assert_eq!(r.principal, Some(42), "principal sticks");
        assert_eq!(r.last_seen, Timestamp(20));

        assert!(m.revocations_quiesced(c));
        m.saw_revocation(c, true);
        assert!(m.revocations_quiesced(c));
        m.saw_revocation(c, false);
        assert!(!m.revocations_quiesced(c));
    }

    #[test]
    fn unknown_client_is_quiesced() {
        let m = HostModel::new();
        assert!(m.revocations_quiesced(ClientId(99)));
        assert!(m.record(ClientId(99)).is_none());
    }
}
