//! The host model (§3.2) and the remote-client token-host proxy.
//!
//! The host model "maintains structures describing authenticated
//! individuals that have made RPC's to it, and the client managers from
//! which the RPC's originated" — including whether revocation messages
//! have all been delivered.

use dfs_rpc::{Addr, CallClass, Network, Request, Response};
use dfs_token::{shards_from_env, RevokeItem, RevokeResult, Token, TokenHost, TokenTypes};
use dfs_types::lock::{rank, OrderedShardedMutex};
use dfs_types::{ClientId, HostId, SerializationStamp, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-client state kept by a file server.
#[derive(Clone, Debug, Default)]
pub struct HostRecord {
    /// Last authenticated principal seen from this client.
    pub principal: Option<u32>,
    /// RPCs received from this client.
    pub calls: u64,
    /// Revocations sent to this client.
    pub revocations_sent: u64,
    /// Revocations acknowledged.
    pub revocations_acked: u64,
    /// Last time we heard from the client.
    pub last_seen: Timestamp,
}

/// Default client lease: a client silent for longer is presumed dead
/// (simulated time, §3.2 — production DFS ties this to the token
/// lifetime the server hands out).
pub const DEFAULT_LEASE_US: u64 = 60_000_000;

/// The server's registry of known clients.
///
/// Client-id-hash sharded at rank [`rank::HOST_SHARD`], mirroring the
/// token manager's fid-hash shards: bookkeeping for calls and
/// revocations on disjoint clients never contends. Per-client
/// operations touch exactly one shard; registry-wide queries (lease
/// scans, snapshots) visit the shards one at a time — they are
/// monitoring reads and need no cross-shard atomicity.
pub struct HostModel {
    records: OrderedShardedMutex<HashMap<ClientId, HostRecord>, { rank::HOST_SHARD }>,
    /// A client whose `last_seen` is older than this is lease-expired:
    /// it no longer blocks revocation quiescence or pins a post-restart
    /// grace window.
    lease_us: u64,
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel::new()
    }
}

impl HostModel {
    /// Creates an empty host model with the default lease.
    pub fn new() -> HostModel {
        HostModel::with_lease(DEFAULT_LEASE_US)
    }

    /// Creates an empty host model with an explicit lease (µs of
    /// simulated time) and the environment-selected shard count
    /// (`DFS_TOKEN_SHARDS` — one knob sizes both sharded tables).
    pub fn with_lease(lease_us: u64) -> HostModel {
        HostModel {
            records: OrderedShardedMutex::new(shards_from_env(), HashMap::new),
            lease_us,
        }
    }

    /// The shard holding `client`'s record.
    fn shard_of(&self, client: ClientId) -> usize {
        let n = self.records.shard_count();
        if n <= 1 {
            return 0;
        }
        ((u64::from(client.0).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % n
    }

    /// The configured lease in microseconds.
    pub fn lease_us(&self) -> u64 {
        self.lease_us
    }

    /// True if `client` is known and inside its lease at `now`.
    pub fn lease_live(&self, client: ClientId, now: Timestamp) -> bool {
        self.records
            .lock(self.shard_of(client))
            .get(&client)
            .is_some_and(|r| now.0.saturating_sub(r.last_seen.0) <= self.lease_us)
    }

    /// Known clients still inside their lease at `now`.
    pub fn live_clients(&self, now: Timestamp) -> Vec<ClientId> {
        let mut out = Vec::new();
        for i in 0..self.records.shard_count() {
            out.extend(
                self.records
                    .lock(i)
                    .iter()
                    .filter(|(_, r)| now.0.saturating_sub(r.last_seen.0) <= self.lease_us)
                    .map(|(c, _)| *c),
            );
        }
        out
    }

    /// True if every revocation sent to every *lease-live* client was
    /// acknowledged. A crashed client with outstanding revocations
    /// blocks this only until its lease runs out.
    pub fn revocations_all_acked(&self, now: Timestamp) -> bool {
        (0..self.records.shard_count()).all(|i| {
            self.records.lock(i).iter().all(|(_, r)| {
                r.revocations_sent == r.revocations_acked
                    || now.0.saturating_sub(r.last_seen.0) > self.lease_us
            })
        })
    }

    /// Snapshot of every known client and when it was last heard from —
    /// the handoff a restarting server uses as its expected-host set
    /// (standing in for a durably-stored host table).
    pub fn snapshot(&self) -> Vec<(ClientId, Timestamp)> {
        let mut out = Vec::new();
        for i in 0..self.records.shard_count() {
            out.extend(self.records.lock(i).iter().map(|(c, r)| (*c, r.last_seen)));
        }
        out
    }

    /// Seeds a record without counting a call — used by a restarting
    /// server to carry the previous instance's last-seen times forward
    /// so lease expiry applies to hosts that never reconnect.
    pub fn seed(&self, client: ClientId, last_seen: Timestamp) {
        let mut recs = self.records.lock(self.shard_of(client));
        let r = recs.entry(client).or_default();
        if last_seen > r.last_seen {
            r.last_seen = last_seen;
        }
    }

    /// Notes an incoming call from `client`.
    pub fn saw_call(&self, client: ClientId, principal: Option<u32>, now: Timestamp) {
        let mut recs = self.records.lock(self.shard_of(client));
        let r = recs.entry(client).or_default();
        r.calls += 1;
        if principal.is_some() {
            r.principal = principal;
        }
        r.last_seen = now;
    }

    /// Notes a revocation sent to / acknowledged by `client`.
    pub fn saw_revocation(&self, client: ClientId, acked: bool) {
        let mut recs = self.records.lock(self.shard_of(client));
        let r = recs.entry(client).or_default();
        r.revocations_sent += 1;
        if acked {
            r.revocations_acked += 1;
        }
    }

    /// Returns true if every revocation sent to `client` was delivered.
    pub fn revocations_quiesced(&self, client: ClientId) -> bool {
        let recs = self.records.lock(self.shard_of(client));
        recs.get(&client).is_none_or(|r| r.revocations_sent == r.revocations_acked)
    }

    /// Returns a snapshot of one client's record.
    pub fn record(&self, client: ClientId) -> Option<HostRecord> {
        self.records.lock(self.shard_of(client)).get(&client).cloned()
    }

    /// Lists all known clients.
    pub fn clients(&self) -> Vec<ClientId> {
        let mut out = Vec::new();
        for i in 0..self.records.shard_count() {
            out.extend(self.records.lock(i).keys().copied());
        }
        out
    }
}

/// Token-manager host proxy for a remote token holder — a cache manager
/// or a replication server on another file server. Revocations become
/// server→peer RPCs (§5.3).
pub struct RemoteHost {
    net: Network,
    server_addr: Addr,
    peer: Addr,
    host_id: HostId,
    model: Arc<HostModel>,
    /// Ship multi-token revocations as one `RevokeVec` RPC. On by
    /// default; `DFS_NO_REVOKE_BATCH=1` falls back to per-token
    /// `RevokeToken` round trips (the ablation baseline).
    batch: bool,
}

fn batching_enabled() -> bool {
    std::env::var("DFS_NO_REVOKE_BATCH").map_or(true, |v| v != "1")
}

impl RemoteHost {
    /// Creates the proxy for cache manager `client`.
    pub fn client(
        net: Network,
        server_addr: Addr,
        client: ClientId,
        model: Arc<HostModel>,
    ) -> Arc<RemoteHost> {
        Arc::new(RemoteHost {
            net,
            server_addr,
            peer: Addr::Client(client),
            host_id: HostId::Client(client),
            model,
            batch: batching_enabled(),
        })
    }

    /// Creates the proxy for a replication server on `server` (§3.8).
    pub fn replicator(
        net: Network,
        server_addr: Addr,
        server: dfs_types::ServerId,
        model: Arc<HostModel>,
    ) -> Arc<RemoteHost> {
        Arc::new(RemoteHost {
            net,
            server_addr,
            peer: Addr::Server(server),
            host_id: HostId::Replicator(server.0),
            model,
            batch: batching_enabled(),
        })
    }

    fn client_id(&self) -> Option<ClientId> {
        match self.peer {
            Addr::Client(c) => Some(c),
            _ => None,
        }
    }
}

impl TokenHost for RemoteHost {
    fn host_id(&self) -> HostId {
        self.host_id
    }

    fn revoke(
        &self,
        token: &Token,
        types: TokenTypes,
        stamp: SerializationStamp,
    ) -> RevokeResult {
        // Server→peer revocation RPC; dispatched on the peer's
        // revocation pool so a busy peer can always serve it (§6.4).
        let resp = self.net.call(
            self.server_addr,
            self.peer,
            None,
            CallClass::Revocation,
            Request::RevokeToken { token: token.clone(), types, stamp },
        );
        let client = self.client_id();
        match resp {
            Ok(Response::RevokeAck { returned }) => {
                if let Some(c) = client {
                    self.model.saw_revocation(c, true);
                }
                if returned {
                    RevokeResult::Returned
                } else {
                    RevokeResult::Retained
                }
            }
            _ => {
                // Unreachable peer: treat its tokens as returned (a
                // production server would also mark the client dead).
                if let Some(c) = client {
                    self.model.saw_revocation(c, false);
                }
                RevokeResult::Returned
            }
        }
    }

    fn revoke_batch(&self, items: &[RevokeItem]) -> Vec<RevokeResult> {
        // A single token needs no vec framing (wire compatibility with
        // peers that predate `RevokeVec`), and the ablation knob drops
        // to per-token round trips entirely.
        if items.len() <= 1 || !self.batch {
            return items
                .iter()
                .map(|i| self.revoke(&i.token, i.types, i.stamp))
                .collect();
        }
        let resp = self.net.call(
            self.server_addr,
            self.peer,
            None,
            CallClass::Revocation,
            Request::RevokeVec {
                items: items
                    .iter()
                    .map(|i| (i.token.clone(), i.types, i.stamp))
                    .collect(),
            },
        );
        let client = self.client_id();
        match resp {
            Ok(Response::RevokeVecAck { returned }) => items
                .iter()
                .enumerate()
                .map(|(i, _)| match returned.get(i) {
                    // Every token in the batch is accounted exactly
                    // once: answered entries count as acked, entries
                    // missing from a short ack count as sent-unacked
                    // and are treated as returned (the retry round
                    // re-revokes any that actually survive).
                    Some(&r) => {
                        if let Some(c) = client {
                            self.model.saw_revocation(c, true);
                        }
                        if r {
                            RevokeResult::Returned
                        } else {
                            RevokeResult::Retained
                        }
                    }
                    None => {
                        if let Some(c) = client {
                            self.model.saw_revocation(c, false);
                        }
                        RevokeResult::Returned
                    }
                })
                .collect(),
            _ => {
                // Unreachable peer: all tokens treated as returned,
                // each counted as an unacked revocation.
                if let Some(c) = client {
                    for _ in items {
                        self.model.saw_revocation(c, false);
                    }
                }
                vec![RevokeResult::Returned; items.len()]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_model_tracks_calls_and_revocations() {
        let m = HostModel::new();
        let c = ClientId(1);
        m.saw_call(c, Some(42), Timestamp(10));
        m.saw_call(c, None, Timestamp(20));
        let r = m.record(c).unwrap();
        assert_eq!(r.calls, 2);
        assert_eq!(r.principal, Some(42), "principal sticks");
        assert_eq!(r.last_seen, Timestamp(20));

        assert!(m.revocations_quiesced(c));
        m.saw_revocation(c, true);
        assert!(m.revocations_quiesced(c));
        m.saw_revocation(c, false);
        assert!(!m.revocations_quiesced(c));
    }

    #[test]
    fn unknown_client_is_quiesced() {
        let m = HostModel::new();
        assert!(m.revocations_quiesced(ClientId(99)));
        assert!(m.record(ClientId(99)).is_none());
    }

    #[test]
    fn crashed_client_blocks_all_acked_until_lease_expires() {
        let m = HostModel::with_lease(1_000);
        let live = ClientId(1);
        let dead = ClientId(2);
        m.saw_call(live, None, Timestamp(100));
        m.saw_call(dead, None, Timestamp(100));
        // The dead client misses a revocation (sent but never acked).
        m.saw_revocation(dead, false);
        m.saw_revocation(live, true);
        assert!(!m.revocations_all_acked(Timestamp(500)), "sent > acked must block");
        // The live client keeps calling; the dead one goes silent. Once
        // its lease runs out it stops pinning quiescence.
        m.saw_call(live, None, Timestamp(1_500));
        assert!(
            m.revocations_all_acked(Timestamp(1_500)),
            "lease expiry must unblock a crashed client"
        );
        assert!(m.lease_live(live, Timestamp(1_500)));
        assert!(!m.lease_live(dead, Timestamp(1_500)));
        assert_eq!(m.live_clients(Timestamp(1_500)), vec![live]);
    }

    #[test]
    fn snapshot_reports_last_seen() {
        let m = HostModel::new();
        m.saw_call(ClientId(3), Some(7), Timestamp(42));
        let snap = m.snapshot();
        assert_eq!(snap, vec![(ClientId(3), Timestamp(42))]);
    }

    #[test]
    fn sharded_model_sees_every_client_across_shards() {
        let m = HostModel::new();
        for n in 0..32 {
            m.saw_call(ClientId(n), None, Timestamp(10 + u64::from(n)));
        }
        let mut clients = m.clients();
        clients.sort_by_key(|c| c.0);
        assert_eq!(clients.len(), 32, "iteration spans every shard");
        assert_eq!(m.live_clients(Timestamp(50)).len(), 32);
        assert_eq!(m.snapshot().len(), 32);
        for n in 0..32 {
            assert_eq!(m.record(ClientId(n)).unwrap().last_seen, Timestamp(10 + u64::from(n)));
        }
        m.saw_revocation(ClientId(7), false);
        assert!(!m.revocations_all_acked(Timestamp(50)), "any shard's debt blocks");
    }

    use dfs_rpc::{CallContext, PoolConfig, RpcService};
    use dfs_token::TokenId;
    use dfs_types::{ByteRange, Fid, ServerId, SimClock, VnodeId, VolumeId};
    use parking_lot::Mutex;

    /// Peer service answering `RevokeVec` with a scripted ack vector,
    /// recording what arrived.
    struct ScriptedPeer {
        acks: Vec<bool>,
        seen: Mutex<Vec<usize>>,
    }

    impl RpcService for ScriptedPeer {
        fn dispatch(&self, _ctx: CallContext, req: Request) -> Response {
            match req {
                Request::RevokeVec { items } => {
                    self.seen.lock().push(items.len());
                    Response::RevokeVecAck { returned: self.acks.clone() }
                }
                Request::RevokeToken { .. } => {
                    self.seen.lock().push(1);
                    Response::RevokeAck { returned: true }
                }
                _ => Response::Err(dfs_types::DfsError::InvalidArgument),
            }
        }
    }

    fn batch_items(n: u64) -> Vec<RevokeItem> {
        (1..=n)
            .map(|i| RevokeItem {
                token: Token {
                    id: TokenId(i),
                    fid: Fid::new(VolumeId(1), VnodeId(i as u32), 1),
                    types: TokenTypes::DATA_WRITE,
                    range: ByteRange::WHOLE,
                },
                types: TokenTypes::DATA_WRITE,
                stamp: SerializationStamp(i),
            })
            .collect()
    }

    fn remote_host_with_peer(acks: Vec<bool>) -> (Arc<RemoteHost>, Arc<ScriptedPeer>, Arc<HostModel>) {
        let net = Network::new(SimClock::new(), 0);
        let peer = Arc::new(ScriptedPeer { acks, seen: Mutex::new(Vec::new()) });
        net.register(Addr::Client(ClientId(1)), peer.clone(), PoolConfig::default());
        let model = Arc::new(HostModel::new());
        let host = RemoteHost::client(net, Addr::Server(ServerId(1)), ClientId(1), model.clone());
        (host, peer, model)
    }

    #[test]
    fn batched_revoke_acks_every_token_exactly_once_mixed() {
        let (host, peer, model) = remote_host_with_peer(vec![true, false, true]);
        let results = host.revoke_batch(&batch_items(3));
        assert_eq!(
            results,
            vec![RevokeResult::Returned, RevokeResult::Retained, RevokeResult::Returned],
            "per-token answers preserved in order"
        );
        assert_eq!(*peer.seen.lock(), vec![3], "one RPC carried the whole batch");
        let rec = model.record(ClientId(1)).unwrap();
        assert_eq!(rec.revocations_sent, 3, "each token counted once");
        assert_eq!(rec.revocations_acked, 3);
        assert!(model.revocations_quiesced(ClientId(1)));
    }

    #[test]
    fn short_ack_counts_tail_as_sent_but_unacked() {
        let (host, _peer, model) = remote_host_with_peer(vec![true]);
        let results = host.revoke_batch(&batch_items(3));
        assert_eq!(results, vec![RevokeResult::Returned; 3], "missing answers treated as returned");
        let rec = model.record(ClientId(1)).unwrap();
        assert_eq!(rec.revocations_sent, 3);
        assert_eq!(rec.revocations_acked, 1, "unanswered tokens stay unacked");
        assert!(!model.revocations_quiesced(ClientId(1)));
    }

    #[test]
    fn single_item_batch_uses_plain_revoke_token() {
        let (host, peer, model) = remote_host_with_peer(vec![]);
        let results = host.revoke_batch(&batch_items(1));
        assert_eq!(results, vec![RevokeResult::Returned]);
        assert_eq!(*peer.seen.lock(), vec![1], "no vec framing for one token");
        let rec = model.record(ClientId(1)).unwrap();
        assert_eq!(rec.revocations_sent, 1);
        assert_eq!(rec.revocations_acked, 1);
    }
}
