//! The host model (§3.2) and the remote-client token-host proxy.
//!
//! The host model "maintains structures describing authenticated
//! individuals that have made RPC's to it, and the client managers from
//! which the RPC's originated" — including whether revocation messages
//! have all been delivered.

use dfs_rpc::{Addr, CallClass, Network, Request, Response};
use dfs_token::{RevokeResult, Token, TokenHost, TokenTypes};
use dfs_types::lock::{rank, OrderedMutex};
use dfs_types::{ClientId, HostId, SerializationStamp, Timestamp};
use std::collections::HashMap;
use std::sync::Arc;

/// Per-client state kept by a file server.
#[derive(Clone, Debug, Default)]
pub struct HostRecord {
    /// Last authenticated principal seen from this client.
    pub principal: Option<u32>,
    /// RPCs received from this client.
    pub calls: u64,
    /// Revocations sent to this client.
    pub revocations_sent: u64,
    /// Revocations acknowledged.
    pub revocations_acked: u64,
    /// Last time we heard from the client.
    pub last_seen: Timestamp,
}

/// Default client lease: a client silent for longer is presumed dead
/// (simulated time, §3.2 — production DFS ties this to the token
/// lifetime the server hands out).
pub const DEFAULT_LEASE_US: u64 = 60_000_000;

/// The server's registry of known clients.
pub struct HostModel {
    records: OrderedMutex<HashMap<ClientId, HostRecord>, { rank::HOST_TABLE }>,
    /// A client whose `last_seen` is older than this is lease-expired:
    /// it no longer blocks revocation quiescence or pins a post-restart
    /// grace window.
    lease_us: u64,
}

impl Default for HostModel {
    fn default() -> Self {
        HostModel::new()
    }
}

impl HostModel {
    /// Creates an empty host model with the default lease.
    pub fn new() -> HostModel {
        HostModel::with_lease(DEFAULT_LEASE_US)
    }

    /// Creates an empty host model with an explicit lease (µs of
    /// simulated time).
    pub fn with_lease(lease_us: u64) -> HostModel {
        HostModel { records: OrderedMutex::new(HashMap::new()), lease_us }
    }

    /// The configured lease in microseconds.
    pub fn lease_us(&self) -> u64 {
        self.lease_us
    }

    /// True if `client` is known and inside its lease at `now`.
    pub fn lease_live(&self, client: ClientId, now: Timestamp) -> bool {
        self.records
            .lock()
            .get(&client)
            .is_some_and(|r| now.0.saturating_sub(r.last_seen.0) <= self.lease_us)
    }

    /// Known clients still inside their lease at `now`.
    pub fn live_clients(&self, now: Timestamp) -> Vec<ClientId> {
        self.records
            .lock()
            .iter()
            .filter(|(_, r)| now.0.saturating_sub(r.last_seen.0) <= self.lease_us)
            .map(|(c, _)| *c)
            .collect()
    }

    /// True if every revocation sent to every *lease-live* client was
    /// acknowledged. A crashed client with outstanding revocations
    /// blocks this only until its lease runs out.
    pub fn revocations_all_acked(&self, now: Timestamp) -> bool {
        self.records.lock().iter().all(|(_, r)| {
            r.revocations_sent == r.revocations_acked
                || now.0.saturating_sub(r.last_seen.0) > self.lease_us
        })
    }

    /// Snapshot of every known client and when it was last heard from —
    /// the handoff a restarting server uses as its expected-host set
    /// (standing in for a durably-stored host table).
    pub fn snapshot(&self) -> Vec<(ClientId, Timestamp)> {
        self.records.lock().iter().map(|(c, r)| (*c, r.last_seen)).collect()
    }

    /// Seeds a record without counting a call — used by a restarting
    /// server to carry the previous instance's last-seen times forward
    /// so lease expiry applies to hosts that never reconnect.
    pub fn seed(&self, client: ClientId, last_seen: Timestamp) {
        let mut recs = self.records.lock();
        let r = recs.entry(client).or_default();
        if last_seen > r.last_seen {
            r.last_seen = last_seen;
        }
    }

    /// Notes an incoming call from `client`.
    pub fn saw_call(&self, client: ClientId, principal: Option<u32>, now: Timestamp) {
        let mut recs = self.records.lock();
        let r = recs.entry(client).or_default();
        r.calls += 1;
        if principal.is_some() {
            r.principal = principal;
        }
        r.last_seen = now;
    }

    /// Notes a revocation sent to / acknowledged by `client`.
    pub fn saw_revocation(&self, client: ClientId, acked: bool) {
        let mut recs = self.records.lock();
        let r = recs.entry(client).or_default();
        r.revocations_sent += 1;
        if acked {
            r.revocations_acked += 1;
        }
    }

    /// Returns true if every revocation sent to `client` was delivered.
    pub fn revocations_quiesced(&self, client: ClientId) -> bool {
        let recs = self.records.lock();
        recs.get(&client).is_none_or(|r| r.revocations_sent == r.revocations_acked)
    }

    /// Returns a snapshot of one client's record.
    pub fn record(&self, client: ClientId) -> Option<HostRecord> {
        self.records.lock().get(&client).cloned()
    }

    /// Lists all known clients.
    pub fn clients(&self) -> Vec<ClientId> {
        self.records.lock().keys().copied().collect()
    }
}

/// Token-manager host proxy for a remote token holder — a cache manager
/// or a replication server on another file server. Revocations become
/// server→peer RPCs (§5.3).
pub struct RemoteHost {
    net: Network,
    server_addr: Addr,
    peer: Addr,
    host_id: HostId,
    model: Arc<HostModel>,
}

impl RemoteHost {
    /// Creates the proxy for cache manager `client`.
    pub fn client(
        net: Network,
        server_addr: Addr,
        client: ClientId,
        model: Arc<HostModel>,
    ) -> Arc<RemoteHost> {
        Arc::new(RemoteHost {
            net,
            server_addr,
            peer: Addr::Client(client),
            host_id: HostId::Client(client),
            model,
        })
    }

    /// Creates the proxy for a replication server on `server` (§3.8).
    pub fn replicator(
        net: Network,
        server_addr: Addr,
        server: dfs_types::ServerId,
        model: Arc<HostModel>,
    ) -> Arc<RemoteHost> {
        Arc::new(RemoteHost {
            net,
            server_addr,
            peer: Addr::Server(server),
            host_id: HostId::Replicator(server.0),
            model,
        })
    }
}

impl TokenHost for RemoteHost {
    fn host_id(&self) -> HostId {
        self.host_id
    }

    fn revoke(
        &self,
        token: &Token,
        types: TokenTypes,
        stamp: SerializationStamp,
    ) -> RevokeResult {
        // Server→peer revocation RPC; dispatched on the peer's
        // revocation pool so a busy peer can always serve it (§6.4).
        let resp = self.net.call(
            self.server_addr,
            self.peer,
            None,
            CallClass::Revocation,
            Request::RevokeToken { token: token.clone(), types, stamp },
        );
        let client = match self.peer {
            Addr::Client(c) => Some(c),
            _ => None,
        };
        match resp {
            Ok(Response::RevokeAck { returned }) => {
                if let Some(c) = client {
                    self.model.saw_revocation(c, true);
                }
                if returned {
                    RevokeResult::Returned
                } else {
                    RevokeResult::Retained
                }
            }
            _ => {
                // Unreachable peer: treat its tokens as returned (a
                // production server would also mark the client dead).
                if let Some(c) = client {
                    self.model.saw_revocation(c, false);
                }
                RevokeResult::Returned
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_model_tracks_calls_and_revocations() {
        let m = HostModel::new();
        let c = ClientId(1);
        m.saw_call(c, Some(42), Timestamp(10));
        m.saw_call(c, None, Timestamp(20));
        let r = m.record(c).unwrap();
        assert_eq!(r.calls, 2);
        assert_eq!(r.principal, Some(42), "principal sticks");
        assert_eq!(r.last_seen, Timestamp(20));

        assert!(m.revocations_quiesced(c));
        m.saw_revocation(c, true);
        assert!(m.revocations_quiesced(c));
        m.saw_revocation(c, false);
        assert!(!m.revocations_quiesced(c));
    }

    #[test]
    fn unknown_client_is_quiesced() {
        let m = HostModel::new();
        assert!(m.revocations_quiesced(ClientId(99)));
        assert!(m.record(ClientId(99)).is_none());
    }

    #[test]
    fn crashed_client_blocks_all_acked_until_lease_expires() {
        let m = HostModel::with_lease(1_000);
        let live = ClientId(1);
        let dead = ClientId(2);
        m.saw_call(live, None, Timestamp(100));
        m.saw_call(dead, None, Timestamp(100));
        // The dead client misses a revocation (sent but never acked).
        m.saw_revocation(dead, false);
        m.saw_revocation(live, true);
        assert!(!m.revocations_all_acked(Timestamp(500)), "sent > acked must block");
        // The live client keeps calling; the dead one goes silent. Once
        // its lease runs out it stops pinning quiescence.
        m.saw_call(live, None, Timestamp(1_500));
        assert!(
            m.revocations_all_acked(Timestamp(1_500)),
            "lease expiry must unblock a crashed client"
        );
        assert!(m.lease_live(live, Timestamp(1_500)));
        assert!(!m.lease_live(dead, Timestamp(1_500)));
        assert_eq!(m.live_clients(Timestamp(1_500)), vec![live]);
    }

    #[test]
    fn snapshot_reports_last_seen() {
        let m = HostModel::new();
        m.saw_call(ClientId(3), Some(7), Timestamp(42));
        let snap = m.snapshot();
        assert_eq!(snap, vec![(ClientId(3), Timestamp(42))]);
    }
}
