//! Server-side byte-range file locks.
//!
//! "Without holding a lock token, a client must call the server to set a
//! file lock" (§5.2). This table is where those server-mediated locks
//! live; clients holding lock tokens manage equivalent state locally.
//!
//! Like the token manager (PR 8), the held-lock map is sharded by fid
//! hash behind an [`OrderedShardedMutex`] at rank `LOCK_SHARD`: every
//! `set`/`release`/`count` touches exactly one shard, and
//! [`LockTable::release_owner`] walks the shards one at a time without
//! ever nesting two guards, so lock-heavy mixed workloads stop
//! serializing on a single table mutex. The shard count comes from
//! `DFS_LOCK_SHARDS` (default 8, clamped to 1..=256), mirroring
//! `DFS_TOKEN_SHARDS`.

use dfs_types::lock::{rank, OrderedShardedMutex};
use dfs_types::{ByteRange, DfsError, DfsResult, Fid, HostId};
use std::collections::HashMap;

/// Default shard count when `DFS_LOCK_SHARDS` is unset.
const DEFAULT_LOCK_SHARDS: usize = 8;

/// Reads the lock-table shard count from `DFS_LOCK_SHARDS`, clamped to
/// `1..=256`. Read once per table, at construction.
fn shards_from_env() -> usize {
    std::env::var("DFS_LOCK_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.clamp(1, 256))
        .unwrap_or(DEFAULT_LOCK_SHARDS)
}

/// One held lock.
#[derive(Clone, Debug, PartialEq, Eq)]
struct HeldLock {
    owner: HostId,
    range: ByteRange,
    write: bool,
}

/// A per-server table of byte-range file locks, sharded by fid hash.
pub struct LockTable {
    shards: OrderedShardedMutex<HashMap<Fid, Vec<HeldLock>>, { rank::LOCK_SHARD }>,
}

impl Default for LockTable {
    fn default() -> LockTable {
        LockTable::new()
    }
}

impl LockTable {
    /// Creates an empty table with the environment-selected shard count.
    pub fn new() -> LockTable {
        LockTable::with_shards(shards_from_env())
    }

    /// Creates an empty table with exactly `n` shards (tests).
    pub fn with_shards(n: usize) -> LockTable {
        LockTable { shards: OrderedShardedMutex::new(n.clamp(1, 256), HashMap::new) }
    }

    /// The shard holding `fid`'s locks — same `(volume, vnode)` hash as
    /// the token shards, so a file's locks live wholly in one shard.
    fn shard_of(&self, fid: Fid) -> usize {
        dfs_token::shard_index(fid.volume, fid.vnode.0, self.shards.shard_count())
    }

    /// Sets a read or write lock, failing on conflict.
    ///
    /// Two read locks may overlap; a write lock conflicts with any
    /// overlapping lock held by another owner.
    pub fn set(&self, owner: HostId, fid: Fid, range: ByteRange, write: bool) -> DfsResult<()> {
        let mut locks = self.shards.lock(self.shard_of(fid));
        let held = locks.entry(fid).or_default();
        for l in held.iter() {
            if l.owner != owner && l.range.overlaps(&range) && (l.write || write) {
                return Err(DfsError::LockConflict);
            }
        }
        held.push(HeldLock { owner, range, write });
        Ok(())
    }

    /// Releases `owner`'s locks over `range`, POSIX-style: only the
    /// requested bytes are unlocked. A held lock extending past either
    /// end of `range` is trimmed (or split in two, when `range` falls in
    /// its middle) rather than dropped wholesale.
    pub fn release(&self, owner: HostId, fid: Fid, range: ByteRange) {
        let mut locks = self.shards.lock(self.shard_of(fid));
        if let Some(held) = locks.get_mut(&fid) {
            let mut kept = Vec::with_capacity(held.len());
            for l in held.drain(..) {
                if l.owner != owner || !l.range.overlaps(&range) {
                    kept.push(l);
                    continue;
                }
                if l.range.start < range.start {
                    kept.push(HeldLock {
                        owner: l.owner,
                        range: ByteRange::new(l.range.start, range.start),
                        write: l.write,
                    });
                }
                if range.end < l.range.end {
                    kept.push(HeldLock {
                        owner: l.owner,
                        range: ByteRange::new(range.end, l.range.end),
                        write: l.write,
                    });
                }
            }
            *held = kept;
            if held.is_empty() {
                locks.remove(&fid);
            }
        }
    }

    /// Releases everything held by `owner` (client death). Walks the
    /// shards sequentially — one guard live at a time, never nested —
    /// so owners dying concurrently cannot deadlock and per-file
    /// traffic on other shards keeps flowing.
    pub fn release_owner(&self, owner: HostId) {
        for i in 0..self.shards.shard_count() {
            let mut locks = self.shards.lock(i);
            for held in locks.values_mut() {
                held.retain(|l| l.owner != owner);
            }
            locks.retain(|_, v| !v.is_empty());
        }
    }

    /// Returns the number of locks held on `fid`.
    pub fn count(&self, fid: Fid) -> usize {
        self.shards.lock(self.shard_of(fid)).get(&fid).map_or(0, |v| v.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_types::{ClientId, VnodeId, VolumeId};

    fn fid() -> Fid {
        Fid::new(VolumeId(1), VnodeId(1), 1)
    }

    fn host(n: u32) -> HostId {
        HostId::Client(ClientId(n))
    }

    #[test]
    fn read_locks_share_write_locks_exclude() {
        let t = LockTable::new();
        t.set(host(1), fid(), ByteRange::new(0, 10), false).unwrap();
        t.set(host(2), fid(), ByteRange::new(5, 15), false).unwrap();
        assert_eq!(
            t.set(host(3), fid(), ByteRange::new(0, 5), true).unwrap_err(),
            DfsError::LockConflict
        );
        t.set(host(3), fid(), ByteRange::new(20, 30), true).unwrap();
    }

    #[test]
    fn same_owner_may_overlap_itself() {
        let t = LockTable::new();
        t.set(host(1), fid(), ByteRange::new(0, 10), true).unwrap();
        t.set(host(1), fid(), ByteRange::new(5, 15), true).unwrap();
    }

    #[test]
    fn release_unblocks() {
        let t = LockTable::new();
        t.set(host(1), fid(), ByteRange::new(0, 10), true).unwrap();
        assert!(t.set(host(2), fid(), ByteRange::new(0, 10), false).is_err());
        t.release(host(1), fid(), ByteRange::new(0, 10));
        t.set(host(2), fid(), ByteRange::new(0, 10), false).unwrap();
    }

    #[test]
    fn release_of_subrange_keeps_remainders() {
        let t = LockTable::new();
        t.set(host(1), fid(), ByteRange::new(0, 100), true).unwrap();
        // Unlocking the middle splits the lock; both ends stay held.
        t.release(host(1), fid(), ByteRange::new(40, 60));
        assert_eq!(t.count(fid()), 2);
        t.set(host(2), fid(), ByteRange::new(40, 60), true).unwrap();
        assert_eq!(
            t.set(host(2), fid(), ByteRange::new(0, 40), false).unwrap_err(),
            DfsError::LockConflict,
            "left remainder still held"
        );
        assert_eq!(
            t.set(host(2), fid(), ByteRange::new(60, 100), false).unwrap_err(),
            DfsError::LockConflict,
            "right remainder still held"
        );
    }

    #[test]
    fn release_trims_overlapping_edge() {
        let t = LockTable::new();
        t.set(host(1), fid(), ByteRange::new(10, 30), true).unwrap();
        // Release a range overhanging the left edge: only [20, 30) stays.
        t.release(host(1), fid(), ByteRange::new(0, 20));
        assert_eq!(t.count(fid()), 1);
        t.set(host(2), fid(), ByteRange::new(10, 20), true).unwrap();
        assert_eq!(
            t.set(host(2), fid(), ByteRange::new(20, 30), true).unwrap_err(),
            DfsError::LockConflict
        );
    }

    #[test]
    fn release_owner_drops_everything() {
        let t = LockTable::new();
        t.set(host(1), fid(), ByteRange::new(0, 10), true).unwrap();
        t.set(host(1), Fid::new(VolumeId(1), VnodeId(2), 1), ByteRange::WHOLE, true).unwrap();
        t.release_owner(host(1));
        assert_eq!(t.count(fid()), 0);
        t.set(host(2), fid(), ByteRange::new(0, 10), true).unwrap();
    }

    #[test]
    fn sharding_is_observationally_transparent() {
        // Same sequence of operations against 1-shard and 5-shard
        // tables ends in the same observable state.
        for shards in [1usize, 5] {
            let t = LockTable::with_shards(shards);
            let fids: Vec<Fid> =
                (1u32..=16).map(|v| Fid::new(VolumeId(u64::from(v % 3 + 1)), VnodeId(v), 1)).collect();
            for (i, &f) in fids.iter().enumerate() {
                t.set(host((i % 4) as u32), f, ByteRange::new(0, 10), i % 2 == 0).unwrap();
            }
            t.release_owner(host(0));
            for (i, &f) in fids.iter().enumerate() {
                let expect = if i % 4 == 0 { 0 } else { 1 };
                assert_eq!(t.count(f), expect, "shards={shards} fid #{i}");
            }
        }
    }
}
