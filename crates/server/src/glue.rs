//! The Vnode glue layer (§3.3, §5.1).
//!
//! "For each Vnode operation provided by a conventional file system, a
//! corresponding 'wrapper' operation is substituted that obtains tokens
//! and then performs the original operation." The glue layer is what
//! makes *local* access on a file server — and any non-DEcorum exporter
//! on the same host — synchronize with guarantees exported to remote
//! DEcorum clients: it is itself just another client of the token
//! manager (§5.1).
//!
//! The local host's revoke procedure blocks while a local operation is
//! in progress on the file (local callers hold tokens only for the
//! duration of a Vnode call, §5.5), then returns the token: the glue
//! never caches anything, so there is nothing to store back.

use dfs_token::{RevokeResult, Token, TokenHost, TokenManager, TokenTypes};
use dfs_types::{
    Acl, ByteRange, DfsResult, FileStatus, Fid, HostId, SerializationStamp,
};
use dfs_types::lock::{rank, OrderedCondvar, OrderedMutex};
use dfs_vfs::{Credentials, DirEntry, SetAttrs, Vfs, VfsPlus};
use std::collections::HashMap;
use std::sync::Arc;

/// The glue layer's registration with the token manager: tracks which
/// fids have a local operation in flight so revocations wait for them.
pub struct LocalHost {
    id: HostId,
    active: OrderedMutex<HashMap<Fid, usize>, { rank::HOST_TABLE }>,
    cv: OrderedCondvar,
}

impl LocalHost {
    /// Creates the local host for a server.
    pub fn new(id: HostId) -> Arc<LocalHost> {
        Arc::new(LocalHost {
            id,
            active: OrderedMutex::new(HashMap::new()),
            cv: OrderedCondvar::new(),
        })
    }

    fn enter(&self, fid: Fid) {
        *self.active.lock().entry(fid).or_insert(0) += 1;
    }

    fn exit(&self, fid: Fid) {
        let mut active = self.active.lock();
        if let Some(n) = active.get_mut(&fid) {
            *n -= 1;
            if *n == 0 {
                active.remove(&fid);
            }
        }
        self.cv.notify_all();
    }
}

impl TokenHost for LocalHost {
    fn host_id(&self) -> HostId {
        self.id
    }

    fn revoke(
        &self,
        token: &Token,
        _types: TokenTypes,
        _stamp: SerializationStamp,
    ) -> RevokeResult {
        // Wait until no local operation is using this file, then yield.
        let mut active = self.active.lock();
        while active.contains_key(&token.fid) {
            self.cv.wait(&mut active);
        }
        RevokeResult::Returned
    }
}

/// The glue-wrapped view of a physical file system volume.
///
/// Presents the same VFS+ interface it is given ("transparent from the
/// point of view of the programmer"), but every operation first obtains
/// the tokens that make it serializable against remote holders.
pub struct Glue {
    fs: Arc<dyn VfsPlus>,
    tm: Arc<TokenManager>,
    host: Arc<LocalHost>,
}

impl Glue {
    /// Wraps `fs` with token acquisition against `tm`.
    pub fn new(fs: Arc<dyn VfsPlus>, tm: Arc<TokenManager>, host: Arc<LocalHost>) -> Glue {
        tm.register_host(host.clone());
        Glue { fs, tm, host }
    }

    /// Runs `f` while holding `types` over `range` of `fid`.
    fn with_tokens<R>(
        &self,
        fid: Fid,
        types: TokenTypes,
        range: ByteRange,
        f: impl FnOnce() -> DfsResult<R>,
    ) -> DfsResult<R> {
        let (token, _stamp) = self.tm.grant(self.host.id, fid, types, range)?;
        self.host.enter(fid);
        let result = f();
        self.host.exit(fid);
        // Local callers return tokens as soon as the call completes
        // (§5.5: "it can return the token any time after the VOP_RDWR
        // call has completed execution").
        self.tm.release(self.host.id, token.id);
        result
    }

    /// Runs `f` holding tokens on two files, granted in fid order so two
    /// glue operations cannot deadlock against each other.
    fn with_tokens2<R>(
        &self,
        a: (Fid, TokenTypes),
        b: (Fid, TokenTypes),
        f: impl FnOnce() -> DfsResult<R>,
    ) -> DfsResult<R> {
        let (first, second) = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let (t1, _) = self.tm.grant(self.host.id, first.0, first.1, ByteRange::WHOLE)?;
        if first.0 == second.0 {
            self.host.enter(first.0);
            let result = f();
            self.host.exit(first.0);
            self.tm.release(self.host.id, t1.id);
            return result;
        }
        let t2 = match self.tm.grant(self.host.id, second.0, second.1, ByteRange::WHOLE) {
            Ok((t, _)) => t,
            Err(e) => {
                self.tm.release(self.host.id, t1.id);
                return Err(e);
            }
        };
        self.host.enter(first.0);
        self.host.enter(second.0);
        let result = f();
        self.host.exit(second.0);
        self.host.exit(first.0);
        self.tm.release(self.host.id, t2.id);
        self.tm.release(self.host.id, t1.id);
        result
    }
}

const DIR_WRITE: TokenTypes =
    TokenTypes(TokenTypes::STATUS_WRITE.0 | TokenTypes::DATA_WRITE.0);
const DIR_READ: TokenTypes = TokenTypes(TokenTypes::STATUS_READ.0 | TokenTypes::DATA_READ.0);

impl Vfs for Glue {
    fn volume_id(&self) -> dfs_types::VolumeId {
        self.fs.volume_id()
    }

    fn root(&self) -> DfsResult<Fid> {
        self.fs.root()
    }

    fn lookup(&self, cred: &Credentials, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        self.with_tokens(dir, DIR_READ, ByteRange::WHOLE, || self.fs.lookup(cred, dir, name))
    }

    fn create(&self, cred: &Credentials, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        self.with_tokens(dir, DIR_WRITE, ByteRange::WHOLE, || self.fs.create(cred, dir, name, mode))
    }

    fn mkdir(&self, cred: &Credentials, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        self.with_tokens(dir, DIR_WRITE, ByteRange::WHOLE, || self.fs.mkdir(cred, dir, name, mode))
    }

    fn symlink(
        &self,
        cred: &Credentials,
        dir: Fid,
        name: &str,
        target: &str,
    ) -> DfsResult<FileStatus> {
        self.with_tokens(dir, DIR_WRITE, ByteRange::WHOLE, || {
            self.fs.symlink(cred, dir, name, target)
        })
    }

    fn link(&self, cred: &Credentials, dir: Fid, name: &str, target: Fid) -> DfsResult<FileStatus> {
        self.with_tokens2((dir, DIR_WRITE), (target, TokenTypes::STATUS_WRITE), || {
            self.fs.link(cred, dir, name, target)
        })
    }

    fn remove(&self, cred: &Credentials, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        // Deleting needs assurance the file has no remote users (§5.4):
        // an exclusive-write open token on the victim.
        let victim = self.fs.lookup(cred, dir, name)?;
        self.with_tokens2(
            (dir, DIR_WRITE),
            (
                victim.fid,
                TokenTypes(
                    TokenTypes::OPEN_EXCLUSIVE_WRITE.0 | TokenTypes::STATUS_WRITE.0,
                ),
            ),
            || self.fs.remove(cred, dir, name),
        )
    }

    fn rmdir(&self, cred: &Credentials, dir: Fid, name: &str) -> DfsResult<()> {
        let victim = self.fs.lookup(cred, dir, name)?;
        self.with_tokens2((dir, DIR_WRITE), (victim.fid, TokenTypes::STATUS_WRITE), || {
            self.fs.rmdir(cred, dir, name)
        })
    }

    fn rename(
        &self,
        cred: &Credentials,
        src_dir: Fid,
        src_name: &str,
        dst_dir: Fid,
        dst_name: &str,
    ) -> DfsResult<()> {
        self.with_tokens2((src_dir, DIR_WRITE), (dst_dir, DIR_WRITE), || {
            self.fs.rename(cred, src_dir, src_name, dst_dir, dst_name)
        })
    }

    fn readdir(&self, cred: &Credentials, dir: Fid) -> DfsResult<Vec<DirEntry>> {
        self.with_tokens(dir, DIR_READ, ByteRange::WHOLE, || self.fs.readdir(cred, dir))
    }

    fn read(&self, cred: &Credentials, file: Fid, offset: u64, len: usize) -> DfsResult<Vec<u8>> {
        self.with_tokens(
            file,
            TokenTypes(TokenTypes::DATA_READ.0 | TokenTypes::STATUS_READ.0),
            ByteRange::at(offset, len as u64),
            || self.fs.read(cred, file, offset, len),
        )
    }

    fn write(
        &self,
        cred: &Credentials,
        file: Fid,
        offset: u64,
        data: &[u8],
    ) -> DfsResult<FileStatus> {
        self.with_tokens(
            file,
            TokenTypes(TokenTypes::DATA_WRITE.0 | TokenTypes::STATUS_WRITE.0),
            ByteRange::at(offset, data.len() as u64),
            || self.fs.write(cred, file, offset, data),
        )
    }

    fn getattr(&self, cred: &Credentials, file: Fid) -> DfsResult<FileStatus> {
        self.with_tokens(file, TokenTypes::STATUS_READ, ByteRange::WHOLE, || {
            self.fs.getattr(cred, file)
        })
    }

    fn setattr(&self, cred: &Credentials, file: Fid, attrs: &SetAttrs) -> DfsResult<FileStatus> {
        let types = if attrs.length.is_some() {
            TokenTypes(TokenTypes::STATUS_WRITE.0 | TokenTypes::DATA_WRITE.0)
        } else {
            TokenTypes::STATUS_WRITE
        };
        self.with_tokens(file, types, ByteRange::WHOLE, || self.fs.setattr(cred, file, attrs))
    }

    fn readlink(&self, cred: &Credentials, file: Fid) -> DfsResult<String> {
        self.with_tokens(file, TokenTypes::DATA_READ, ByteRange::WHOLE, || {
            self.fs.readlink(cred, file)
        })
    }

    fn fsync(&self, cred: &Credentials, file: Fid) -> DfsResult<()> {
        self.fs.fsync(cred, file)
    }

    fn sync(&self) -> DfsResult<()> {
        self.fs.sync()
    }
}

impl VfsPlus for Glue {
    fn get_acl(&self, cred: &Credentials, file: Fid) -> DfsResult<Acl> {
        self.with_tokens(file, TokenTypes::STATUS_READ, ByteRange::WHOLE, || {
            self.fs.get_acl(cred, file)
        })
    }

    fn set_acl(&self, cred: &Credentials, file: Fid, acl: &Acl) -> DfsResult<()> {
        self.with_tokens(file, TokenTypes::STATUS_WRITE, ByteRange::WHOLE, || {
            self.fs.set_acl(cred, file, acl)
        })
    }
}
