//! Property-based tests for the foundation types.

use dfs_types::{Acl, AclEntry, ByteRange, Principal, Rights};
use proptest::prelude::*;

fn range_strategy() -> impl Strategy<Value = ByteRange> {
    (0u64..10_000, 0u64..10_000).prop_map(|(a, b)| {
        let (s, e) = if a <= b { (a, b) } else { (b, a) };
        ByteRange::new(s, e)
    })
}

proptest! {
    #[test]
    fn overlap_is_symmetric(a in range_strategy(), b in range_strategy()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn intersect_iff_overlap(a in range_strategy(), b in range_strategy()) {
        prop_assert_eq!(a.intersect(&b).is_some(), a.overlaps(&b));
    }

    #[test]
    fn intersection_is_contained(a in range_strategy(), b in range_strategy()) {
        if let Some(i) = a.intersect(&b) {
            prop_assert!(a.contains_range(&i));
            prop_assert!(b.contains_range(&i));
            prop_assert!(!i.is_empty());
        }
    }

    #[test]
    fn hull_contains_both(a in range_strategy(), b in range_strategy()) {
        let h = a.union_hull(&b);
        prop_assert!(h.contains_range(&a));
        prop_assert!(h.contains_range(&b));
    }

    #[test]
    fn containment_implies_overlap_or_empty(a in range_strategy(), b in range_strategy()) {
        if a.contains_range(&b) && !b.is_empty() {
            prop_assert!(a.overlaps(&b));
        }
    }

    #[test]
    fn whole_contains_everything(a in range_strategy()) {
        prop_assert!(ByteRange::WHOLE.contains_range(&a));
    }

    #[test]
    fn point_membership_matches_range(a in range_strategy(), p in 0u64..10_000) {
        prop_assert_eq!(a.contains(p), a.overlaps(&ByteRange::new(p, p + 1)));
    }
}

fn rights_strategy() -> impl Strategy<Value = Rights> {
    (0u8..64).prop_map(Rights)
}

fn principal_strategy() -> impl Strategy<Value = Principal> {
    prop_oneof![
        (0u32..8).prop_map(Principal::User),
        (0u32..4).prop_map(Principal::Group),
        Just(Principal::Authenticated),
        Just(Principal::Anyone),
    ]
}

fn entry_strategy() -> impl Strategy<Value = AclEntry> {
    (principal_strategy(), rights_strategy(), rights_strategy())
        .prop_map(|(who, allow, deny)| AclEntry { who, allow, deny })
}

proptest! {
    #[test]
    fn rights_algebra(a in rights_strategy(), b in rights_strategy()) {
        let u = a | b;
        prop_assert!(u.allows(a) && u.allows(b));
        prop_assert!(!(a.minus(b)).allows(b) || b.is_empty());
        prop_assert_eq!((a & b).allows(a & b), true);
    }

    #[test]
    fn acl_deny_always_wins(
        entries in proptest::collection::vec(entry_strategy(), 0..12),
        user in 0u32..8,
        groups in proptest::collection::vec(0u32..4, 0..3),
        owner in 0u32..8,
    ) {
        let acl = Acl { entries: entries.clone() };
        let r = acl.rights_for(user, &groups, owner);
        // Any right explicitly denied by a matching entry must be absent
        // (except CONTROL for the owner, which is inalienable).
        for e in &entries {
            let matches = match e.who {
                Principal::User(u) => u == user,
                Principal::Group(g) => groups.contains(&g),
                _ => true,
            };
            if matches {
                let denied = e.deny.minus(if user == owner { Rights::CONTROL } else { Rights::NONE });
                prop_assert!(
                    (r & denied).is_empty(),
                    "denied rights {:?} leaked into {:?}",
                    denied,
                    r
                );
            }
        }
    }

    #[test]
    fn acl_entry_order_is_irrelevant(
        entries in proptest::collection::vec(entry_strategy(), 0..8),
        user in 0u32..8,
        owner in 0u32..8,
    ) {
        let acl = Acl { entries: entries.clone() };
        let mut rev = entries;
        rev.reverse();
        let acl_rev = Acl { entries: rev };
        prop_assert_eq!(acl.rights_for(user, &[], owner), acl_rev.rights_for(user, &[], owner));
    }

    #[test]
    fn owner_always_retains_control(
        entries in proptest::collection::vec(entry_strategy(), 0..8),
        owner in 0u32..8,
    ) {
        let acl = Acl { entries };
        prop_assert!(acl.rights_for(owner, &[], owner).allows(Rights::CONTROL));
    }
}
