//! File status (vnode attributes) and per-file serialization stamps.

use crate::clock::Timestamp;
use crate::id::Fid;

/// The type of object a vnode names.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[derive(Default)]
pub enum FileType {
    /// A regular file.
    #[default]
    Regular,
    /// A directory.
    Directory,
    /// A symbolic link (also used for AFS-style mount points).
    Symlink,
}


/// The per-file serialization counter the file server stamps on every
/// reference to a file (§6.2).
///
/// If operation `Ox` on a file is serialized at the server before `Oy`,
/// the stamp returned by `Ox` is strictly less than the stamp returned by
/// `Oy`. Clients use the stamp to merge concurrently-returned status
/// information in server order, never overwriting newer status with older
/// (§6.3–6.4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash)]
pub struct SerializationStamp(pub u64);

impl SerializationStamp {
    /// Returns the next stamp in sequence.
    pub fn next(self) -> SerializationStamp {
        SerializationStamp(self.0 + 1)
    }
}

/// Status information associated with a file — what `stat(2)` reports,
/// plus the DEcorum data version and serialization stamp.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FileStatus {
    /// The file's global identifier.
    pub fid: Fid,
    /// Regular file, directory, or symlink.
    pub ftype: FileType,
    /// Length of the file in bytes.
    pub length: u64,
    /// Owning user id.
    pub owner: u32,
    /// Owning group id.
    pub group: u32,
    /// UNIX mode bits (the ACL is authoritative; these are advisory).
    pub mode: u16,
    /// Number of directory entries referring to the file.
    pub nlink: u32,
    /// Last data modification time.
    pub mtime: Timestamp,
    /// Last status change time.
    pub ctime: Timestamp,
    /// Monotone version of the file's data, bumped on every write;
    /// the replication server uses it to fetch only changed files (§3.8).
    pub data_version: u64,
    /// Per-file serialization stamp of the reference that produced this
    /// status (§6.2); newer stamps supersede older status.
    pub stamp: SerializationStamp,
}

impl FileStatus {
    /// Returns true if this status is strictly newer, by serialization
    /// stamp, than `other` — the merge rule of §6.3.
    pub fn supersedes(&self, other: &FileStatus) -> bool {
        self.stamp > other.stamp
    }

    /// Returns true for directories.
    pub fn is_dir(&self) -> bool {
        self.ftype == FileType::Directory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamps_are_totally_ordered() {
        let a = SerializationStamp(1);
        let b = a.next();
        assert!(b > a);
        assert_eq!(b, SerializationStamp(2));
    }

    #[test]
    fn status_merge_rule_uses_stamp() {
        let old = FileStatus { stamp: SerializationStamp(5), ..Default::default() };
        let new = FileStatus { stamp: SerializationStamp(6), ..Default::default() };
        assert!(new.supersedes(&old));
        assert!(!old.supersedes(&new));
        assert!(!old.supersedes(&old), "equal stamps do not supersede");
    }

    #[test]
    fn default_file_type_is_regular() {
        assert_eq!(FileType::default(), FileType::Regular);
        assert!(!FileStatus::default().is_dir());
    }
}
