//! Principals, rights, and POSIX-style access control lists.
//!
//! DEcorum extends AFS's directory-only ACLs so that *any* file or
//! directory may carry an ACL (§2.3). The rights vocabulary follows the
//! AFS/DFS tradition: read, write, execute (lookup for directories),
//! insert, delete, and control (administer the ACL itself).

use std::fmt;

/// A set of access rights, represented as a bit mask.
///
/// # Examples
///
/// ```
/// use dfs_types::Rights;
///
/// let rw = Rights::READ | Rights::WRITE;
/// assert!(rw.allows(Rights::READ));
/// assert!(!rw.allows(Rights::CONTROL));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Rights(pub u8);

impl Rights {
    /// No rights at all.
    pub const NONE: Rights = Rights(0);
    /// Read file data or list a directory.
    pub const READ: Rights = Rights(1 << 0);
    /// Write file data.
    pub const WRITE: Rights = Rights(1 << 1);
    /// Execute a file, or look up names in a directory.
    pub const EXECUTE: Rights = Rights(1 << 2);
    /// Insert new entries into a directory.
    pub const INSERT: Rights = Rights(1 << 3);
    /// Delete entries from a directory.
    pub const DELETE: Rights = Rights(1 << 4);
    /// Administer the ACL and status of the file.
    pub const CONTROL: Rights = Rights(1 << 5);
    /// Every right.
    pub const ALL: Rights = Rights(0b11_1111);

    /// Returns true if `self` includes every right in `needed`.
    pub fn allows(self, needed: Rights) -> bool {
        self.0 & needed.0 == needed.0
    }

    /// Returns true if no rights are present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns the rights present in `self` but not in `other`.
    pub fn minus(self, other: Rights) -> Rights {
        Rights(self.0 & !other.0)
    }
}

impl std::ops::BitOr for Rights {
    type Output = Rights;
    fn bitor(self, rhs: Rights) -> Rights {
        Rights(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for Rights {
    fn bitor_assign(&mut self, rhs: Rights) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for Rights {
    type Output = Rights;
    fn bitand(self, rhs: Rights) -> Rights {
        Rights(self.0 & rhs.0)
    }
}

impl fmt::Debug for Rights {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        for (bit, ch) in [
            (Rights::READ, 'r'),
            (Rights::WRITE, 'w'),
            (Rights::EXECUTE, 'x'),
            (Rights::INSERT, 'i'),
            (Rights::DELETE, 'd'),
            (Rights::CONTROL, 'c'),
        ] {
            s.push(if self.allows(bit) { ch } else { '-' });
        }
        f.write_str(&s)
    }
}

/// An authenticated identity, or a wildcard class of identities.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Principal {
    /// A single authenticated user, by registry id.
    User(u32),
    /// A group of users, by registry id; membership is resolved by the
    /// authentication registry (the PasswdEtc analogue).
    Group(u32),
    /// Any user that presented a valid ticket.
    Authenticated,
    /// Anyone, including unauthenticated callers.
    Anyone,
}

/// One ACL entry pairing a principal with allowed and denied rights.
///
/// Deny entries take precedence over allow entries for the same caller,
/// mirroring POSIX.6/DCE semantics where a mask or negative entry can
/// subtract rights granted by broader entries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AclEntry {
    /// Who the entry applies to.
    pub who: Principal,
    /// Rights granted by this entry.
    pub allow: Rights,
    /// Rights explicitly denied by this entry.
    pub deny: Rights,
}

impl AclEntry {
    /// Returns an entry granting `allow` to `who` with no denials.
    pub fn allow(who: Principal, allow: Rights) -> Self {
        AclEntry { who, allow, deny: Rights::NONE }
    }

    /// Returns an entry denying `deny` to `who` with no grants.
    pub fn deny(who: Principal, deny: Rights) -> Self {
        AclEntry { who, allow: Rights::NONE, deny }
    }
}

/// An access control list: an ordered list of [`AclEntry`] values.
///
/// Evaluation unions the `allow` sets of every entry matching the caller,
/// then subtracts the union of matching `deny` sets. The owner of a file
/// always retains [`Rights::CONTROL`] so an ACL cannot lock out its
/// administrator.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Acl {
    /// The entries, in evaluation order.
    pub entries: Vec<AclEntry>,
}

impl Acl {
    /// Returns an empty ACL (grants nothing by itself).
    pub fn new() -> Self {
        Acl { entries: Vec::new() }
    }

    /// Returns the classic UNIX-like default: owner gets everything,
    /// any authenticated user may read and execute.
    pub fn unix_default(owner: u32) -> Self {
        Acl {
            entries: vec![
                AclEntry::allow(Principal::User(owner), Rights::ALL),
                AclEntry::allow(Principal::Authenticated, Rights::READ | Rights::EXECUTE),
            ],
        }
    }

    /// Adds an entry to the end of the list.
    pub fn push(&mut self, entry: AclEntry) {
        self.entries.push(entry);
    }

    /// Evaluates the rights of `user` (member of `groups`) under this ACL.
    ///
    /// `owner` is the file's owning uid; owners always retain CONTROL.
    pub fn rights_for(&self, user: u32, groups: &[u32], owner: u32) -> Rights {
        let matches = |who: Principal| match who {
            Principal::User(u) => u == user,
            Principal::Group(g) => groups.contains(&g),
            Principal::Authenticated | Principal::Anyone => true,
        };
        let mut allowed = Rights::NONE;
        let mut denied = Rights::NONE;
        for e in &self.entries {
            if matches(e.who) {
                allowed |= e.allow;
                denied |= e.deny;
            }
        }
        let mut r = allowed.minus(denied);
        if user == owner {
            r |= Rights::CONTROL;
        }
        r
    }

    /// Returns the number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns true if the list has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rights_bit_operations() {
        let r = Rights::READ | Rights::WRITE;
        assert!(r.allows(Rights::READ));
        assert!(r.allows(Rights::WRITE));
        assert!(!r.allows(Rights::READ | Rights::CONTROL));
        assert_eq!(r.minus(Rights::WRITE), Rights::READ);
        assert_eq!(format!("{:?}", r), "rw----");
        assert_eq!(format!("{:?}", Rights::ALL), "rwxidc");
    }

    #[test]
    fn unix_default_acl_semantics() {
        let acl = Acl::unix_default(100);
        let owner = acl.rights_for(100, &[], 100);
        assert!(owner.allows(Rights::ALL));
        let other = acl.rights_for(200, &[], 100);
        assert!(other.allows(Rights::READ | Rights::EXECUTE));
        assert!(!other.allows(Rights::WRITE));
    }

    #[test]
    fn deny_overrides_allow() {
        let mut acl = Acl::unix_default(1);
        acl.push(AclEntry::deny(Principal::User(2), Rights::READ));
        let r = acl.rights_for(2, &[], 1);
        assert!(!r.allows(Rights::READ), "explicit deny must win");
        assert!(r.allows(Rights::EXECUTE));
    }

    #[test]
    fn group_membership_grants_rights() {
        let mut acl = Acl::new();
        acl.push(AclEntry::allow(Principal::Group(7), Rights::WRITE));
        assert!(acl.rights_for(3, &[7], 1).allows(Rights::WRITE));
        assert!(!acl.rights_for(3, &[8], 1).allows(Rights::WRITE));
    }

    #[test]
    fn owner_always_keeps_control() {
        let acl = Acl::new();
        let r = acl.rights_for(5, &[], 5);
        assert!(r.allows(Rights::CONTROL));
        assert!(!acl.rights_for(6, &[], 5).allows(Rights::CONTROL));
    }

    #[test]
    fn anyone_matches_every_caller() {
        let mut acl = Acl::new();
        acl.push(AclEntry::allow(Principal::Anyone, Rights::READ));
        assert!(acl.rights_for(42, &[], 1).allows(Rights::READ));
    }
}
