//! Common types shared by every DEcorum file system subsystem.
//!
//! This crate deliberately has no dependencies beyond the standard library
//! and the lock primitives: it defines the vocabulary — identifiers,
//! errors, access rights, byte ranges, file status, the lock hierarchy —
//! that the disk, journal, physical file systems, token manager, protocol
//! exporter, and cache manager all speak.

pub mod acl;
pub mod clock;
pub mod error;
pub mod id;
pub mod lock;
pub mod range;
pub mod snapshot;
pub mod status;

pub use acl::{Acl, AclEntry, Principal, Rights};
pub use clock::{SimClock, Timestamp};
pub use error::{DfsError, DfsResult};
pub use id::{AggregateId, CellId, ClientId, Fid, HostId, ServerId, VnodeId, VolumeId};
pub use lock::{
    held_ranks, rank, LockRank, OrderedCondvar, OrderedMutex, OrderedMutexGuard, OrderedRwLock,
    OrderedRwLockReadGuard, OrderedRwLockWriteGuard, OrderedShardGuard, OrderedShardedMutex,
};
pub use range::ByteRange;
pub use snapshot::SnapshotCell;
pub use status::{FileStatus, FileType, SerializationStamp};
