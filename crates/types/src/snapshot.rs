//! `SnapshotCell`: a lock-free publish/load cell for immutable
//! snapshots, in the style of `ArcSwap` / epoch-based RCU.
//!
//! The client cache manager publishes an immutable view of each vnode's
//! token state through one of these so the read fast path can check
//! token coverage without taking the vnode's `CLIENT_VNODE_LO` mutex
//! (§6.1). Readers are wait-free apart from the `Arc` clone: they bump
//! a reader count, load the current pointer, and clone the `Arc`.
//! Writers swap the pointer and defer freeing the old snapshot until no
//! reader can still be dereferencing it.
//!
//! Memory reclamation is a simple deferred-drop list: a swapped-out
//! snapshot is dropped immediately when no reader is active, otherwise
//! parked on a garbage list drained by the next writer (or the last
//! exiting reader) that observes a quiescent moment. The safety
//! argument, with every atomic at `SeqCst` so all operations fall into
//! one total order:
//!
//! * a reader increments `active` **before** loading `ptr`, so any
//!   pointer it loads is either current at that instant or was swapped
//!   out *after* the increment;
//! * a writer (or draining reader) frees garbage only when it observes
//!   `active == 0` *after* the swap that retired the pointer — by the
//!   total order, every reader that could have loaded the retired
//!   pointer has already decremented.

use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering::SeqCst};
use std::sync::Arc;

/// A cell holding an `Arc<T>` snapshot that can be loaded without
/// locks and replaced atomically. `None` until the first `store`.
pub struct SnapshotCell<T> {
    /// Current snapshot as a raw `Arc` pointer (null = never stored).
    ptr: AtomicPtr<T>,
    /// Readers currently between `fetch_add` and `fetch_sub`.
    active: AtomicUsize,
    /// Swapped-out snapshots awaiting a quiescent moment.
    garbage: parking_lot::Mutex<Vec<*const T>>,
}

// Raw pointers to Arc-managed values; the Arcs themselves carry the
// Send + Sync obligations.
unsafe impl<T: Send + Sync> Send for SnapshotCell<T> {}
unsafe impl<T: Send + Sync> Sync for SnapshotCell<T> {}

impl<T> SnapshotCell<T> {
    /// An empty cell; `load` returns `None` until the first `store`.
    pub fn new() -> Self {
        SnapshotCell {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
            active: AtomicUsize::new(0),
            garbage: parking_lot::Mutex::new(Vec::new()),
        }
    }

    /// Loads the current snapshot without blocking writers.
    pub fn load(&self) -> Option<Arc<T>> {
        self.active.fetch_add(1, SeqCst);
        let p = self.ptr.load(SeqCst);
        let out = if p.is_null() {
            None
        } else {
            // Safe: `p` was current after our `active` increment, so no
            // concurrent `store`/drain can have freed it (they only free
            // retired pointers once `active` reads 0 after the swap).
            unsafe {
                Arc::increment_strong_count(p);
                Some(Arc::from_raw(p))
            }
        };
        if self.active.fetch_sub(1, SeqCst) == 1 {
            self.drain_garbage();
        }
        out
    }

    /// Publishes a new snapshot, retiring the previous one.
    pub fn store(&self, value: Arc<T>) {
        let new = Arc::into_raw(value) as *mut T;
        let old = self.ptr.swap(new, SeqCst);
        if !old.is_null() {
            self.garbage.lock().push(old);
        }
        self.drain_garbage();
    }

    /// Drops parked snapshots if no reader is active. Retired pointers
    /// are unreachable (never re-installed), so a reader arriving after
    /// the `active` check can only load the current pointer.
    fn drain_garbage(&self) {
        let mut garbage = self.garbage.lock();
        if !garbage.is_empty() && self.active.load(SeqCst) == 0 {
            for p in garbage.drain(..) {
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
    }
}

impl<T> Default for SnapshotCell<T> {
    fn default() -> Self {
        SnapshotCell::new()
    }
}

impl<T> Drop for SnapshotCell<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        if !p.is_null() {
            unsafe { drop(Arc::from_raw(p)) };
        }
        for p in self.garbage.get_mut().drain(..) {
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn empty_cell_loads_none() {
        let c: SnapshotCell<u32> = SnapshotCell::new();
        assert!(c.load().is_none());
    }

    #[test]
    fn store_then_load_round_trips() {
        let c = SnapshotCell::new();
        c.store(Arc::new(41u32));
        assert_eq!(*c.load().unwrap(), 41);
        c.store(Arc::new(42u32));
        assert_eq!(*c.load().unwrap(), 42);
    }

    #[test]
    fn old_snapshot_stays_valid_while_held() {
        let c = SnapshotCell::new();
        c.store(Arc::new(vec![1u8, 2, 3]));
        let held = c.load().unwrap();
        c.store(Arc::new(vec![9u8]));
        // The retired snapshot is still alive through our Arc.
        assert_eq!(*held, vec![1, 2, 3]);
        assert_eq!(*c.load().unwrap(), vec![9]);
    }

    /// Counts live instances so the churn test can prove nothing leaks
    /// and nothing double-frees.
    struct Counted(Arc<AtomicU64>, u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            self.0.fetch_sub(1, SeqCst);
        }
    }

    #[test]
    fn concurrent_load_store_churn_neither_leaks_nor_tears() {
        let live = Arc::new(AtomicU64::new(0));
        let cell = Arc::new(SnapshotCell::new());
        live.fetch_add(1, SeqCst);
        cell.store(Arc::new(Counted(live.clone(), 0)));
        let mut threads = Vec::new();
        for _ in 0..4 {
            let cell = cell.clone();
            threads.push(std::thread::spawn(move || {
                let mut last = 0u64;
                for _ in 0..20_000 {
                    let s = cell.load().expect("stored before spawn");
                    // Values only move forward (each store bumps it).
                    assert!(s.1 >= last, "snapshot went backwards");
                    last = s.1;
                }
            }));
        }
        for i in 1..=10_000u64 {
            live.fetch_add(1, SeqCst);
            cell.store(Arc::new(Counted(live.clone(), i)));
        }
        for t in threads {
            t.join().unwrap();
        }
        drop(cell);
        assert_eq!(live.load(SeqCst), 0, "every snapshot dropped exactly once");
    }
}
