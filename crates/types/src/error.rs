//! The error type shared by every DEcorum subsystem.

use std::fmt;

/// Result alias used throughout the DEcorum crates.
pub type DfsResult<T> = Result<T, DfsError>;

/// Errors returned by file system, token, RPC, and administration calls.
///
/// The variants mirror the failure classes a 1990 UNIX kernel would report
/// as errno values, plus the distributed-system failures (stale fids,
/// unreachable hosts, revoked tokens) that the DEcorum design introduces.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DfsError {
    /// The named file or directory entry does not exist.
    NotFound,
    /// A directory operation was applied to a non-directory.
    NotDirectory,
    /// A file operation was applied to a directory.
    IsDirectory,
    /// The name already exists in the target directory.
    Exists,
    /// A directory being removed or overwritten is not empty.
    NotEmpty,
    /// The caller lacks the rights required by the file's ACL or mode.
    PermissionDenied,
    /// The aggregate has no free blocks or anode slots left.
    NoSpace,
    /// The supplied name is empty, too long, or contains `/` or NUL.
    InvalidName,
    /// A byte offset, length, or parameter was out of range.
    InvalidArgument,
    /// The fid's uniquifier no longer matches the vnode slot.
    StaleFid,
    /// The volume is not known to this server or aggregate.
    NoSuchVolume,
    /// The volume is offline (being moved, cloned, or salvaged).
    VolumeBusy,
    /// The volume (or volume clone) is read-only.
    ReadOnlyVolume,
    /// The aggregate is not known to this server.
    NoSuchAggregate,
    /// A file lock conflicts with one held by another opener.
    LockConflict,
    /// An open mode conflicts with existing opens (open-token matrix).
    OpenConflict,
    /// The simulated disk failed the operation (media failure injection).
    MediaFailure,
    /// The disk, server, or client has been deliberately crashed.
    Crashed,
    /// The remote host did not answer within the RPC timeout.
    Timeout,
    /// The remote host refused or cannot be reached.
    Unreachable,
    /// The service stayed unreachable past the client's whole retry
    /// budget and no replica could serve the request: the honest
    /// give-up, reported instead of retrying forever.
    Unavailable,
    /// The server is inside its post-restart recovery grace period and
    /// admits only token reestablishment from known hosts; new work must
    /// wait until the grace window closes.
    GraceWait,
    /// Authentication failed: missing, expired, or forged ticket.
    AuthenticationFailed,
    /// The caller's token was revoked while the operation was in flight.
    TokenRevoked,
    /// The journal log is full and cannot accept the transaction.
    LogFull,
    /// An internal invariant was violated; the subsystem names it.
    Internal(&'static str),
}

impl DfsError {
    /// Returns true for errors a client may transparently retry.
    ///
    /// Token revocation and volume-busy conditions are transient: the
    /// cache manager re-fetches tokens or waits for the volume move to
    /// finish and re-issues the operation (§2.1, §5.3).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            DfsError::TokenRevoked
                | DfsError::VolumeBusy
                | DfsError::Timeout
                | DfsError::GraceWait
        )
    }
}

impl fmt::Display for DfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DfsError::NotFound => write!(f, "no such file or directory"),
            DfsError::NotDirectory => write!(f, "not a directory"),
            DfsError::IsDirectory => write!(f, "is a directory"),
            DfsError::Exists => write!(f, "file exists"),
            DfsError::NotEmpty => write!(f, "directory not empty"),
            DfsError::PermissionDenied => write!(f, "permission denied"),
            DfsError::NoSpace => write!(f, "no space left on aggregate"),
            DfsError::InvalidName => write!(f, "invalid file name"),
            DfsError::InvalidArgument => write!(f, "invalid argument"),
            DfsError::StaleFid => write!(f, "stale file identifier"),
            DfsError::NoSuchVolume => write!(f, "no such volume"),
            DfsError::VolumeBusy => write!(f, "volume busy"),
            DfsError::ReadOnlyVolume => write!(f, "read-only volume"),
            DfsError::NoSuchAggregate => write!(f, "no such aggregate"),
            DfsError::LockConflict => write!(f, "file lock conflict"),
            DfsError::OpenConflict => write!(f, "open mode conflict"),
            DfsError::MediaFailure => write!(f, "media failure"),
            DfsError::Crashed => write!(f, "node has crashed"),
            DfsError::Timeout => write!(f, "rpc timeout"),
            DfsError::Unreachable => write!(f, "host unreachable"),
            DfsError::Unavailable => write!(f, "service unavailable (retry budget exhausted)"),
            DfsError::GraceWait => write!(f, "server in recovery grace period"),
            DfsError::AuthenticationFailed => write!(f, "authentication failed"),
            DfsError::TokenRevoked => write!(f, "token revoked"),
            DfsError::LogFull => write!(f, "journal log full"),
            DfsError::Internal(what) => write!(f, "internal error: {what}"),
        }
    }
}

impl std::error::Error for DfsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_classification() {
        assert!(DfsError::TokenRevoked.is_retryable());
        assert!(DfsError::VolumeBusy.is_retryable());
        assert!(DfsError::GraceWait.is_retryable());
        assert!(!DfsError::PermissionDenied.is_retryable());
        assert!(!DfsError::NotFound.is_retryable());
        assert!(!DfsError::Unavailable.is_retryable(), "the give-up error is final");
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(DfsError::NotFound.to_string(), "no such file or directory");
        assert_eq!(
            DfsError::Internal("bitmap desync").to_string(),
            "internal error: bitmap desync"
        );
    }
}
