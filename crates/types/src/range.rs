//! Half-open byte ranges used by data and lock tokens.
//!
//! The paper's data and lock tokens cover "a range of bytes in a file"
//! (§5.2); two same-type tokens conflict only if their ranges overlap.
//! Ranges are half-open `[start, end)`; `end == u64::MAX` means
//! "to end of file", which is how a whole-file token is expressed.

/// A half-open byte range `[start, end)` within a file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ByteRange {
    /// First byte covered by the range.
    pub start: u64,
    /// One past the last byte covered; `u64::MAX` means unbounded.
    pub end: u64,
}

impl ByteRange {
    /// The range covering the entire file.
    pub const WHOLE: ByteRange = ByteRange { start: 0, end: u64::MAX };

    /// Returns the range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`; construct ranges from validated offsets.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "byte range start {start} exceeds end {end}");
        ByteRange { start, end }
    }

    /// Returns the range covering `len` bytes starting at `offset`.
    pub fn at(offset: u64, len: u64) -> Self {
        ByteRange::new(offset, offset.saturating_add(len))
    }

    /// Returns true if the range covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Returns the number of bytes covered (saturating).
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Returns true if the two ranges share at least one byte.
    pub fn overlaps(&self, other: &ByteRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.start < other.end && other.start < self.end
    }

    /// Returns true if `self` covers every byte of `other`.
    pub fn contains_range(&self, other: &ByteRange) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// Returns true if `self` covers the byte at `offset`.
    pub fn contains(&self, offset: u64) -> bool {
        self.start <= offset && offset < self.end
    }

    /// Returns the intersection of the two ranges, if non-empty.
    pub fn intersect(&self, other: &ByteRange) -> Option<ByteRange> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(ByteRange { start, end })
        } else {
            None
        }
    }

    /// Returns the smallest range covering both inputs.
    pub fn union_hull(&self, other: &ByteRange) -> ByteRange {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        ByteRange { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_symmetric_and_half_open() {
        let a = ByteRange::new(0, 10);
        let b = ByteRange::new(10, 20);
        assert!(!a.overlaps(&b), "touching half-open ranges do not overlap");
        assert!(!b.overlaps(&a));
        let c = ByteRange::new(9, 11);
        assert!(a.overlaps(&c) && c.overlaps(&a));
    }

    #[test]
    fn empty_ranges_never_overlap() {
        let e = ByteRange::new(5, 5);
        assert!(e.is_empty());
        assert!(!e.overlaps(&ByteRange::WHOLE));
        assert!(!ByteRange::WHOLE.overlaps(&e));
    }

    #[test]
    fn whole_file_range_contains_everything() {
        assert!(ByteRange::WHOLE.contains_range(&ByteRange::new(0, 1)));
        assert!(ByteRange::WHOLE.contains_range(&ByteRange::at(1 << 40, 4096)));
        assert!(ByteRange::WHOLE.contains(u64::MAX - 1));
    }

    #[test]
    fn intersect_and_hull() {
        let a = ByteRange::new(0, 100);
        let b = ByteRange::new(50, 150);
        assert_eq!(a.intersect(&b), Some(ByteRange::new(50, 100)));
        assert_eq!(a.union_hull(&b), ByteRange::new(0, 150));
        assert_eq!(a.intersect(&ByteRange::new(100, 200)), None);
    }

    #[test]
    fn at_builds_offset_length_ranges() {
        let r = ByteRange::at(4096, 8192);
        assert_eq!(r.start, 4096);
        assert_eq!(r.end, 12288);
        assert_eq!(r.len(), 8192);
    }

    #[test]
    #[should_panic(expected = "byte range start")]
    fn inverted_range_panics() {
        let _ = ByteRange::new(10, 5);
    }
}
