//! Ranked locks: the workspace-wide lock hierarchy and its runtime
//! enforcement.
//!
//! Every long-lived lock in the coherence path carries a static
//! [`LockRank`]. A thread may only acquire a lock whose rank is
//! **strictly greater** than every rank it already holds; debug builds
//! keep a thread-local stack of held ranks and panic on the first
//! violation, turning a potential deadlock into a deterministic test
//! failure at the exact acquisition site. Release builds compile the
//! bookkeeping away — an [`OrderedMutex`] is exactly a `parking_lot`
//! mutex.
//!
//! # The global hierarchy
//!
//! Ranks ascend in the order locks may be nested (acquired-later ⇒
//! higher rank). The tiers, lowest first:
//!
//! | rank constant          | value | guards |
//! |------------------------|-------|--------|
//! | `CLIENT_VNODE_HI`      |  10   | per-vnode high-level operation lock (§6.1) |
//! | `CLIENT_RECOVERY`      |  15   | client crash-recovery serialization (one epoch transition at a time) |
//! | `CLIENT_VNODE_TABLE`   |  20   | cache manager's fid → vnode map |
//! | `CLIENT_VNODE_LO`      |  30   | per-vnode low-level state lock (§6.1) |
//! | `CLIENT_RESOURCE`      |  40   | ticket, volume-location and root caches (§4.1) |
//! | `CLIENT_DATA_CACHE`    |  50   | client page stores (§4.2) |
//! | `CLIENT_FLUSHER`       |  60   | background-store daemon control block (wake/stop flags) |
//! | `FLEET_REGISTRY`       |  90   | fleet-wide server registry and volume placement plan |
//! | `VOLUME_REGISTRY`      | 100   | server volume tables, VLDB replica map (§3.4) |
//! | `SERVER_ROUTES`        | 105   | per-server route hints for moved-away volumes (§2.1) |
//! | `SERVER_HOSTS`         | 110   | server's known-client set |
//! | `TOKEN_MANAGER`        | 120   | the token manager's host registry (§5; the grant table itself is sharded at `TOKEN_SHARD`) |
//! | `TOKEN_SHARD`          | 122   | one fid-hash shard of the token manager's grant/stamp tables (§5); same-rank nesting allowed only in ascending shard-index order |
//! | `HOST_TABLE`           | 130   | host model records, local-host activity (§3.2) |
//! | `HOST_SHARD`           | 132   | one client-hash shard of the host model's records; same index rule as `TOKEN_SHARD` |
//! | `LOCK_TABLE`           | 140   | server byte-range lock table (§3.6; the held-lock map itself is sharded at `LOCK_SHARD`) |
//! | `LOCK_SHARD`           | 142   | one fid-hash shard of the server lock table; same index rule as `TOKEN_SHARD` |
//! | `JOURNAL_TXNS`         | 150   | journal transaction table (§2.2) |
//! | `JOURNAL_CACHE`        | 160   | journal buffer-cache map |
//! | `JOURNAL_FRAME`        | 170   | individual buffer-frame latches |
//! | `JOURNAL_LOG`          | 180   | the log tail |
//! | `DISK`                 | 200   | simulated device state (doc only; the disk crate's locks are leaf-level and unranked) |
//! | `STATS`                | 250   | statistics counters — always a leaf |
//!
//! Two rules follow from the paper and are checked by both this module
//! (dynamically) and `dfs-lint` (statically):
//!
//! * `TokenHost::revoke` must be entered with **no** ranked lock held —
//!   the token manager calls revocation methods "while not holding any
//!   token manager locks" (§5.1), and revocation RPCs must be
//!   processable no matter what the busy peer is doing (§6.4).
//! * A guard must never be live across a `dfs-rpc` send: the reply may
//!   be blocked behind a revocation aimed back at the caller.
//!
//! Locks in crates outside the coherence path (rpc, episode, disk,
//! ffs, baselines) stay unranked and do not participate in the check.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// Rank constants of the global hierarchy (see the module docs).
pub mod rank {
    /// Per-vnode high-level operation lock (§6.1).
    pub const CLIENT_VNODE_HI: u16 = 10;
    /// Client crash-recovery serialization. Ranked between the per-vnode
    /// high lock and the vnode table: an operation discovering an epoch
    /// change holds at most one vnode's high lock, and the recovery
    /// procedure itself only takes low locks (rank 30) underneath.
    pub const CLIENT_RECOVERY: u16 = 15;
    /// Cache manager's fid → vnode map. Ranked *above* the high-level
    /// lock because operations consult the map while already serialized
    /// on a vnode (seeding a child's status after a lookup or namespace
    /// RPC); the map guard itself is never held across any other
    /// acquisition.
    pub const CLIENT_VNODE_TABLE: u16 = 20;
    /// Per-vnode low-level state lock (§6.1).
    pub const CLIENT_VNODE_LO: u16 = 30;
    /// Client resource layer: ticket, location and root caches (§4.1).
    pub const CLIENT_RESOURCE: u16 = 40;
    /// Client page stores (§4.2).
    pub const CLIENT_DATA_CACHE: u16 = 50;
    /// Background-store daemon control block. Ranked above the vnode
    /// locks so writers may kick the flusher while holding `lo`; the
    /// flusher itself drops this lock before touching any vnode.
    pub const CLIENT_FLUSHER: u16 = 60;
    /// Fleet rebalance-daemon control block (stop/kick/pause flags).
    /// Ranked below `FLEET_REGISTRY`: the daemon drops this lock before
    /// planning, but a planner may signal the daemon mid-plan.
    pub const FLEET_DAEMON: u16 = 85;
    /// Fleet-wide server registry and volume placement plan. Ranked
    /// below every server-side lock: the fleet layer inspects servers
    /// (which take VOLUME_REGISTRY and above) while planning a move.
    pub const FLEET_REGISTRY: u16 = 90;
    /// Server volume tables and VLDB replica maps (§3.4).
    pub const VOLUME_REGISTRY: u16 = 100;
    /// Per-server route hints recording where moved-away volumes went
    /// (§2.1). Consulted after the volume registry shows the volume is
    /// not hosted, hence ranked just above it.
    pub const SERVER_ROUTES: u16 = 105;
    /// Server's known-client set.
    pub const SERVER_HOSTS: u16 = 110;
    /// The token manager's host registry (§5). Since the grant tables
    /// were sharded (`TOKEN_SHARD`), this rank guards only the
    /// host-id → callback-interface map; it sits just below the shards
    /// so resolving a host while planning a cross-shard operation is
    /// legal in either order (the registry guard is never actually held
    /// across a shard acquisition today).
    pub const TOKEN_MANAGER: u16 = 120;
    /// One fid-hash shard of the token manager's grant/stamp tables
    /// (§5). Same-rank nesting is allowed **only in strictly ascending
    /// shard-index order** — cross-shard operations (whole-volume
    /// revocation, volume export) walk the shards 0..N.
    pub const TOKEN_SHARD: u16 = 122;
    /// Host model records and local-host activity tracking (§3.2).
    pub const HOST_TABLE: u16 = 130;
    /// One client-hash shard of the host model's records. Same
    /// ascending-index rule as `TOKEN_SHARD`.
    pub const HOST_SHARD: u16 = 132;
    /// Server byte-range lock table (§3.6). Since the held-lock map
    /// was sharded (`LOCK_SHARD`), this rank survives only for tests
    /// and fixtures pinning the hierarchy's shape.
    pub const LOCK_TABLE: u16 = 140;
    /// One fid-hash shard of the server lock table (§3.6). Same-rank
    /// nesting is allowed **only in strictly ascending shard-index
    /// order**, as for `TOKEN_SHARD`; `release_owner` walks the shards
    /// one at a time and never nests them.
    pub const LOCK_SHARD: u16 = 142;
    /// Journal transaction table (§2.2).
    pub const JOURNAL_TXNS: u16 = 150;
    /// Journal buffer-cache map.
    pub const JOURNAL_CACHE: u16 = 160;
    /// Individual buffer-frame latches.
    pub const JOURNAL_FRAME: u16 = 170;
    /// The log tail.
    pub const JOURNAL_LOG: u16 = 180;
    /// Simulated device state (documentation only — the disk crate's
    /// locks are leaves and stay unranked).
    pub const DISK: u16 = 200;
    /// Statistics counters — always a leaf.
    pub const STATS: u16 = 250;

    /// Human-readable name of a rank, for panic messages.
    pub fn name(r: u16) -> &'static str {
        match r {
            CLIENT_VNODE_TABLE => "CLIENT_VNODE_TABLE",
            CLIENT_VNODE_HI => "CLIENT_VNODE_HI",
            CLIENT_RECOVERY => "CLIENT_RECOVERY",
            CLIENT_VNODE_LO => "CLIENT_VNODE_LO",
            CLIENT_RESOURCE => "CLIENT_RESOURCE",
            CLIENT_DATA_CACHE => "CLIENT_DATA_CACHE",
            CLIENT_FLUSHER => "CLIENT_FLUSHER",
            FLEET_REGISTRY => "FLEET_REGISTRY",
            VOLUME_REGISTRY => "VOLUME_REGISTRY",
            SERVER_ROUTES => "SERVER_ROUTES",
            SERVER_HOSTS => "SERVER_HOSTS",
            TOKEN_MANAGER => "TOKEN_MANAGER",
            TOKEN_SHARD => "TOKEN_SHARD",
            HOST_TABLE => "HOST_TABLE",
            HOST_SHARD => "HOST_SHARD",
            LOCK_TABLE => "LOCK_TABLE",
            LOCK_SHARD => "LOCK_SHARD",
            JOURNAL_TXNS => "JOURNAL_TXNS",
            JOURNAL_CACHE => "JOURNAL_CACHE",
            JOURNAL_FRAME => "JOURNAL_FRAME",
            JOURNAL_LOG => "JOURNAL_LOG",
            DISK => "DISK",
            STATS => "STATS",
            _ => "UNKNOWN",
        }
    }
}

/// A lock's position in the global hierarchy.
pub type LockRank = u16;

#[cfg(debug_assertions)]
mod enforce {
    use std::cell::RefCell;

    thread_local! {
        /// `(rank, shard index)` of every held lock, innermost last.
        /// Plain (unsharded) locks record `None` for the index.
        static HELD: RefCell<Vec<(u16, Option<u32>)>> = const { RefCell::new(Vec::new()) };
    }

    /// Records acquisition of `rank` (a plain, unsharded lock),
    /// panicking on a hierarchy violation.
    pub fn acquire(rank: u16) {
        acquire_at(rank, None);
    }

    /// Records acquisition of shard `index` of a sharded lock at
    /// `rank`. Same-rank nesting is legal only when both locks are
    /// shards and the indices strictly ascend.
    pub fn acquire_indexed(rank: u16, index: u32) {
        acquire_at(rank, Some(index));
    }

    fn acquire_at(rank: u16, index: Option<u32>) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(&(top, top_idx)) = held.last() {
                if rank == top {
                    match (top_idx, index) {
                        (Some(a), Some(b)) => assert!(
                            b > a,
                            "lock hierarchy violation: acquiring shard {b} of rank \
                             {rank} ({}) while holding shard {a} of the same rank — \
                             same rank — shards must be acquired in ascending index \
                             order and same-rank locks must never nest otherwise",
                            super::rank::name(rank),
                        ),
                        _ => panic!(
                            "lock hierarchy violation: acquiring rank {rank} ({}) while \
                             already holding the same rank — same-rank locks must never \
                             nest",
                            super::rank::name(rank),
                        ),
                    }
                } else {
                    assert!(
                        rank > top,
                        "lock hierarchy violation: acquiring rank {rank} ({}) while holding \
                         rank {top} ({}); held stack: {held:?}",
                        super::rank::name(rank),
                        super::rank::name(top),
                    );
                }
            }
            held.push((rank, index));
        });
    }

    /// Records release of `rank` (the most recent acquisition of it).
    pub fn release(rank: u16) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            let pos = held
                .iter()
                .rposition(|&(r, _)| r == rank)
                .expect("released a rank that was never recorded as held");
            held.remove(pos);
        });
    }

    pub fn held() -> Vec<u16> {
        HELD.with(|h| h.borrow().iter().map(|&(r, _)| r).collect())
    }
}

/// Ranks currently held by this thread, innermost last.
///
/// Debug builds report the live stack; release builds always return an
/// empty vector (enforcement is compiled out).
pub fn held_ranks() -> Vec<u16> {
    #[cfg(debug_assertions)]
    {
        enforce::held()
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

#[cfg(debug_assertions)]
fn rank_acquire(rank: u16) {
    enforce::acquire(rank);
}
#[cfg(debug_assertions)]
fn rank_acquire_indexed(rank: u16, index: u32) {
    enforce::acquire_indexed(rank, index);
}
#[cfg(debug_assertions)]
fn rank_release(rank: u16) {
    enforce::release(rank);
}
#[cfg(not(debug_assertions))]
fn rank_acquire(_rank: u16) {}
#[cfg(not(debug_assertions))]
fn rank_acquire_indexed(_rank: u16, _index: u32) {}
#[cfg(not(debug_assertions))]
fn rank_release(_rank: u16) {}

/// A mutex that participates in the global lock hierarchy at rank
/// `RANK` (one of the [`rank`] constants).
pub struct OrderedMutex<T, const RANK: u16> {
    inner: parking_lot::Mutex<T>,
}

impl<T, const RANK: u16> OrderedMutex<T, RANK> {
    /// Creates a ranked mutex.
    pub const fn new(value: T) -> Self {
        OrderedMutex { inner: parking_lot::Mutex::new(value) }
    }

    /// Acquires the mutex, checking the hierarchy in debug builds.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T, RANK> {
        rank_acquire(RANK);
        OrderedMutexGuard { inner: self.inner.lock() }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default, const RANK: u16> Default for OrderedMutex<T, RANK> {
    fn default() -> Self {
        OrderedMutex::new(T::default())
    }
}

impl<T, const RANK: u16> fmt::Debug for OrderedMutex<T, RANK> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex").field("rank", &RANK).finish_non_exhaustive()
    }
}

/// RAII guard for [`OrderedMutex`]; pops the rank on drop.
pub struct OrderedMutexGuard<'a, T, const RANK: u16> {
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T, const RANK: u16> Deref for OrderedMutexGuard<'_, T, RANK> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T, const RANK: u16> DerefMut for OrderedMutexGuard<'_, T, RANK> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T, const RANK: u16> Drop for OrderedMutexGuard<'_, T, RANK> {
    fn drop(&mut self) {
        rank_release(RANK);
    }
}

/// A fixed array of same-rank mutexes — one hash shard each — that
/// participates in the hierarchy at rank `RANK`.
///
/// Unlike two independent [`OrderedMutex`]es of equal rank (which must
/// never nest), shards of one `OrderedShardedMutex` *may* nest, but
/// only in strictly ascending index order. Debug builds enforce the
/// index order exactly as they enforce rank order; [`Self::lock_all`]
/// is the sanctioned way to hold every shard at once.
pub struct OrderedShardedMutex<T, const RANK: u16> {
    shards: Box<[parking_lot::Mutex<T>]>,
}

impl<T, const RANK: u16> OrderedShardedMutex<T, RANK> {
    /// Creates `n` shards (at least one), each initialized by `init`.
    pub fn new(n: usize, mut init: impl FnMut() -> T) -> Self {
        let n = n.max(1);
        let shards: Vec<parking_lot::Mutex<T>> =
            (0..n).map(|_| parking_lot::Mutex::new(init())).collect();
        OrderedShardedMutex { shards: shards.into_boxed_slice() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Acquires shard `i`, checking rank *and* index order in debug
    /// builds: a same-rank guard may already be held only if it is a
    /// lower-indexed shard.
    pub fn lock(&self, i: usize) -> OrderedShardGuard<'_, T, RANK> {
        rank_acquire_indexed(RANK, i as u32);
        OrderedShardGuard { inner: self.shards[i].lock() }
    }

    /// Acquires every shard in ascending index order, for operations
    /// that need a consistent cross-shard view (whole-volume
    /// revocation, volume export).
    pub fn lock_all(&self) -> Vec<OrderedShardGuard<'_, T, RANK>> {
        (0..self.shards.len()).map(|i| self.lock(i)).collect()
    }

    /// Mutable access to every shard without locking (requires
    /// exclusive ownership).
    pub fn get_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.shards.iter_mut().map(|m| m.get_mut())
    }
}

impl<T, const RANK: u16> fmt::Debug for OrderedShardedMutex<T, RANK> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedShardedMutex")
            .field("rank", &RANK)
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

/// RAII guard for one shard of an [`OrderedShardedMutex`].
pub struct OrderedShardGuard<'a, T, const RANK: u16> {
    inner: parking_lot::MutexGuard<'a, T>,
}

impl<T, const RANK: u16> Deref for OrderedShardGuard<'_, T, RANK> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T, const RANK: u16> DerefMut for OrderedShardGuard<'_, T, RANK> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T, const RANK: u16> Drop for OrderedShardGuard<'_, T, RANK> {
    fn drop(&mut self) {
        rank_release(RANK);
    }
}

/// A condition variable for [`OrderedMutex`].
///
/// While a thread waits, the mutex is released but the rank stays on the
/// waiter's held stack: conceptually the thread still owns its place in
/// the hierarchy, and on wake-up the mutex is re-acquired at the same
/// position without re-checking (the stack never changed).
pub struct OrderedCondvar {
    inner: parking_lot::Condvar,
}

impl OrderedCondvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        OrderedCondvar { inner: parking_lot::Condvar::new() }
    }

    /// Atomically releases the guarded mutex and blocks until notified.
    pub fn wait<T, const RANK: u16>(&self, guard: &mut OrderedMutexGuard<'_, T, RANK>) {
        self.inner.wait(&mut guard.inner);
    }

    /// Like [`wait`](Self::wait), but gives up after `timeout`. Returns
    /// `true` if the wait timed out. The rank stays on the held stack
    /// for the duration, exactly as for an untimed wait.
    pub fn wait_for<T, const RANK: u16>(
        &self,
        guard: &mut OrderedMutexGuard<'_, T, RANK>,
        timeout: std::time::Duration,
    ) -> bool {
        self.inner.wait_for(&mut guard.inner, timeout)
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for OrderedCondvar {
    fn default() -> Self {
        OrderedCondvar::new()
    }
}

/// A reader-writer lock that participates in the hierarchy at rank
/// `RANK`. Readers and writers are both treated as acquisitions: the
/// rank check does not distinguish shared from exclusive mode (a
/// read-lock held across a lower-ranked acquisition is just as much an
/// ordering bug).
pub struct OrderedRwLock<T, const RANK: u16> {
    inner: parking_lot::RwLock<T>,
}

impl<T, const RANK: u16> OrderedRwLock<T, RANK> {
    /// Creates a ranked reader-writer lock.
    pub const fn new(value: T) -> Self {
        OrderedRwLock { inner: parking_lot::RwLock::new(value) }
    }

    /// Acquires shared access.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T, RANK> {
        rank_acquire(RANK);
        OrderedRwLockReadGuard { inner: self.inner.read() }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T, RANK> {
        rank_acquire(RANK);
        OrderedRwLockWriteGuard { inner: self.inner.write() }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default, const RANK: u16> Default for OrderedRwLock<T, RANK> {
    fn default() -> Self {
        OrderedRwLock::new(T::default())
    }
}

impl<T, const RANK: u16> fmt::Debug for OrderedRwLock<T, RANK> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedRwLock").field("rank", &RANK).finish_non_exhaustive()
    }
}

/// Shared-access RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockReadGuard<'a, T, const RANK: u16> {
    inner: parking_lot::RwLockReadGuard<'a, T>,
}

impl<T, const RANK: u16> Deref for OrderedRwLockReadGuard<'_, T, RANK> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T, const RANK: u16> Drop for OrderedRwLockReadGuard<'_, T, RANK> {
    fn drop(&mut self) {
        rank_release(RANK);
    }
}

/// Exclusive-access RAII guard for [`OrderedRwLock`].
pub struct OrderedRwLockWriteGuard<'a, T, const RANK: u16> {
    inner: parking_lot::RwLockWriteGuard<'a, T>,
}

impl<T, const RANK: u16> Deref for OrderedRwLockWriteGuard<'_, T, RANK> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T, const RANK: u16> DerefMut for OrderedRwLockWriteGuard<'_, T, RANK> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T, const RANK: u16> Drop for OrderedRwLockWriteGuard<'_, T, RANK> {
    fn drop(&mut self) {
        rank_release(RANK);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ascending_acquisition_is_fine() {
        let a: OrderedMutex<u32, { rank::TOKEN_MANAGER }> = OrderedMutex::new(1);
        let b: OrderedMutex<u32, { rank::LOCK_TABLE }> = OrderedMutex::new(2);
        let ga = a.lock();
        let gb = b.lock();
        assert_eq!(*ga + *gb, 3);
        if cfg!(debug_assertions) {
            assert_eq!(held_ranks(), vec![rank::TOKEN_MANAGER, rank::LOCK_TABLE]);
        }
        drop(gb);
        drop(ga);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn out_of_order_release_is_fine() {
        let a: OrderedMutex<u32, { rank::JOURNAL_TXNS }> = OrderedMutex::new(0);
        let b: OrderedMutex<u32, { rank::JOURNAL_LOG }> = OrderedMutex::new(0);
        let ga = a.lock();
        let gb = b.lock();
        // Dropping the outer guard first must still unwind the stack
        // correctly (append paths hand guards around like this).
        drop(ga);
        if cfg!(debug_assertions) {
            assert_eq!(held_ranks(), vec![rank::JOURNAL_LOG]);
        }
        drop(gb);
        assert!(held_ranks().is_empty());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "enforcement is debug-only")]
    fn descending_acquisition_panics() {
        let err = std::thread::spawn(|| {
            let hi: OrderedMutex<(), { rank::JOURNAL_LOG }> = OrderedMutex::new(());
            let lo: OrderedMutex<(), { rank::TOKEN_MANAGER }> = OrderedMutex::new(());
            let _g = hi.lock();
            let _g2 = lo.lock(); // inversion
        })
        .join()
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("lock hierarchy violation"), "got: {msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "enforcement is debug-only")]
    fn same_rank_nesting_panics() {
        let err = std::thread::spawn(|| {
            let a: OrderedMutex<(), { rank::HOST_TABLE }> = OrderedMutex::new(());
            let b: OrderedMutex<(), { rank::HOST_TABLE }> = OrderedMutex::new(());
            let _ga = a.lock();
            let _gb = b.lock(); // order between equals is undefined
        })
        .join()
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("same rank"), "got: {msg}");
    }

    #[test]
    fn rwlock_participates_in_hierarchy() {
        let l: OrderedRwLock<Vec<u32>, { rank::VOLUME_REGISTRY }> =
            OrderedRwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            assert_eq!(r1.len(), 2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn condvar_keeps_rank_across_wait() {
        let pair = Arc::new((
            OrderedMutex::<bool, { rank::HOST_TABLE }>::new(false),
            OrderedCondvar::new(),
        ));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
            held_ranks()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        let ranks_in_wait = t.join().unwrap();
        if cfg!(debug_assertions) {
            assert_eq!(ranks_in_wait, vec![rank::HOST_TABLE]);
        }
    }

    #[test]
    fn ascending_shard_acquisition_is_fine() {
        let s: OrderedShardedMutex<u32, { rank::TOKEN_SHARD }> =
            OrderedShardedMutex::new(4, || 0);
        let g0 = s.lock(0);
        let g2 = s.lock(2);
        let g3 = s.lock(3);
        assert_eq!(*g0 + *g2 + *g3, 0);
        if cfg!(debug_assertions) {
            assert_eq!(held_ranks(), vec![rank::TOKEN_SHARD; 3]);
        }
        drop(g0);
        drop(g3);
        drop(g2);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn lock_all_holds_every_shard() {
        let s: OrderedShardedMutex<u32, { rank::HOST_SHARD }> =
            OrderedShardedMutex::new(3, || 7);
        let all = s.lock_all();
        assert_eq!(all.iter().map(|g| **g).sum::<u32>(), 21);
        if cfg!(debug_assertions) {
            assert_eq!(held_ranks(), vec![rank::HOST_SHARD; 3]);
        }
        drop(all);
        assert!(held_ranks().is_empty());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "enforcement is debug-only")]
    fn descending_shard_acquisition_panics() {
        let err = std::thread::spawn(|| {
            let s: OrderedShardedMutex<(), { rank::TOKEN_SHARD }> =
                OrderedShardedMutex::new(4, || ());
            let _g2 = s.lock(2);
            let _g1 = s.lock(1); // out of index order
        })
        .join()
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("ascending index"), "got: {msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "enforcement is debug-only")]
    fn same_shard_reacquisition_panics() {
        let err = std::thread::spawn(|| {
            let s: OrderedShardedMutex<(), { rank::TOKEN_SHARD }> =
                OrderedShardedMutex::new(4, || ());
            let _g = s.lock(2);
            let _g2 = s.lock(2); // self-deadlock
        })
        .join()
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("ascending index"), "got: {msg}");
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "enforcement is debug-only")]
    fn shard_under_plain_same_rank_panics() {
        let err = std::thread::spawn(|| {
            let plain: OrderedMutex<(), { rank::TOKEN_SHARD }> = OrderedMutex::new(());
            let s: OrderedShardedMutex<(), { rank::TOKEN_SHARD }> =
                OrderedShardedMutex::new(2, || ());
            let _g = plain.lock();
            let _g2 = s.lock(1); // indexed under unindexed: still same-rank nesting
        })
        .join()
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic message");
        assert!(msg.contains("same-rank locks must never nest"), "got: {msg}");
    }

    #[test]
    fn shards_compose_with_higher_ranks() {
        let s: OrderedShardedMutex<u32, { rank::TOKEN_SHARD }> =
            OrderedShardedMutex::new(2, || 0);
        let stats: OrderedMutex<u64, { rank::STATS }> = OrderedMutex::new(0);
        let _g0 = s.lock(0);
        let _g1 = s.lock(1);
        *stats.lock() += 1; // leaf over shard guards
        drop(_g1);
        drop(_g0);
        assert!(held_ranks().is_empty());
    }

    #[test]
    fn stats_is_a_leaf_over_everything() {
        let table: OrderedMutex<(), { rank::LOCK_TABLE }> = OrderedMutex::new(());
        let stats: OrderedMutex<u64, { rank::STATS }> = OrderedMutex::new(0);
        let _g = table.lock();
        *stats.lock() += 1;
        drop(_g);
        assert!(held_ranks().is_empty());
    }
}
