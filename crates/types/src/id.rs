//! Identifiers for cells, servers, clients, aggregates, volumes, and files.
//!
//! The DEcorum paper distinguishes an *aggregate* (a unit of disk storage,
//! what UNIX calls a partition) from a *volume* (a mountable subtree of the
//! directory hierarchy); many volumes live on one aggregate and volumes can
//! move between aggregates and servers (§2.1). A file is globally named by
//! a [`Fid`]: the volume it lives in plus a per-volume vnode index and a
//! uniquifier that distinguishes successive uses of the same index.

use std::fmt;

/// Identifier of a cell: an administrative domain of servers and clients.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct CellId(pub u32);

/// Identifier of a file server node within a cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ServerId(pub u32);

/// Identifier of a client (cache manager) node within a cell.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ClientId(pub u32);

/// Identifier of a token-manager host: any entity that holds tokens.
///
/// The paper (§5.1) notes that "there are many potential clients of a token
/// manager, including local UNIX kernels and remote file system protocol
/// exporters"; a `HostId` therefore names either a remote cache manager or
/// a local consumer such as the glue layer acting for a local system call.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HostId {
    /// A remote DEcorum cache manager.
    Client(ClientId),
    /// The server-local glue layer acting on behalf of a local system call
    /// or a non-DEcorum exporter (e.g. an NFS exporter on the same host).
    Local(u32),
    /// A replication server maintaining a lazy replica (§3.8).
    Replicator(u32),
}

/// Identifier of an aggregate (a unit of disk storage) on some server.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AggregateId(pub u32);

/// Globally unique identifier of a volume.
///
/// Volume ids are allocated cell-wide so a volume keeps its identity when
/// it is moved between aggregates or servers (§2.1, §3.6).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VolumeId(pub u64);

/// Per-volume index of a vnode (an anode slot in Episode).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VnodeId(pub u32);

/// Global file identifier: volume, vnode index, and uniquifier.
///
/// The uniquifier distinguishes successive files that reuse the same vnode
/// slot, so a stale `Fid` held by a client after a delete/create pair is
/// detected rather than silently resolving to the wrong file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Fid {
    /// Volume containing the file.
    pub volume: VolumeId,
    /// Vnode (anode) index within the volume.
    pub vnode: VnodeId,
    /// Generation number of the vnode slot.
    pub uniq: u32,
}

impl Fid {
    /// Returns a new `Fid` for the given volume, vnode index, and uniquifier.
    pub const fn new(volume: VolumeId, vnode: VnodeId, uniq: u32) -> Self {
        Fid { volume, vnode, uniq }
    }
}

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

impl fmt::Debug for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cli{}", self.0)
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostId::Client(c) => write!(f, "host:{c:?}"),
            HostId::Local(n) => write!(f, "host:local{n}"),
            HostId::Replicator(n) => write!(f, "host:repl{n}"),
        }
    }
}

impl fmt::Debug for AggregateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "agg{}", self.0)
    }
}

impl fmt::Debug for VolumeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vol{}", self.0)
    }
}

impl fmt::Debug for VnodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vn{}", self.0)
    }
}

impl fmt::Debug for Fid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}.{}.{}", self.volume, self.vnode.0, self.uniq)
    }
}

impl fmt::Display for Fid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fid_equality_includes_uniquifier() {
        let a = Fid::new(VolumeId(1), VnodeId(2), 1);
        let b = Fid::new(VolumeId(1), VnodeId(2), 2);
        assert_ne!(a, b, "reused vnode slot must yield a distinct fid");
    }

    #[test]
    fn fid_ordering_is_by_volume_then_vnode() {
        let a = Fid::new(VolumeId(1), VnodeId(9), 0);
        let b = Fid::new(VolumeId(2), VnodeId(1), 0);
        assert!(a < b);
    }

    #[test]
    fn debug_formats_are_compact() {
        let fid = Fid::new(VolumeId(7), VnodeId(3), 4);
        assert_eq!(format!("{fid:?}"), "vol7.3.4");
        assert_eq!(format!("{:?}", HostId::Client(ClientId(5))), "host:cli5");
    }
}
