//! Simulated time shared by a whole simulation.
//!
//! Everything in this reproduction that "takes time" — disk seeks, RPC
//! latency, NFS attribute-cache TTLs, lazy-replication staleness bounds —
//! is charged against a [`SimClock`] rather than wall time, so experiments
//! are deterministic and a 1 GiB fsck does not actually take minutes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in simulated time, in microseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default, Hash)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// Returns the timestamp as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the timestamp as (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the timestamp as (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns `self + micros`, saturating on overflow.
    pub fn plus_micros(self, micros: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(micros))
    }

    /// Returns the duration in microseconds since `earlier` (0 if earlier is later).
    pub fn micros_since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

/// A monotonically advancing simulated clock, cheaply shareable.
///
/// The clock only moves when some component *advances* it: the disk model
/// charges transfer time, the RPC layer charges network latency, and
/// experiment harnesses advance it to model think time. Multiple threads
/// may advance concurrently; the clock is a single atomic counter.
///
/// # Examples
///
/// ```
/// use dfs_types::SimClock;
///
/// let clock = SimClock::new();
/// clock.advance_micros(1_500);
/// assert_eq!(clock.now().as_micros(), 1_500);
/// ```
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    micros: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { micros: Arc::new(AtomicU64::new(0)) }
    }

    /// Returns the current simulated time.
    pub fn now(&self) -> Timestamp {
        Timestamp(self.micros.load(Ordering::SeqCst))
    }

    /// Advances the clock by `micros` microseconds and returns the new time.
    pub fn advance_micros(&self, micros: u64) -> Timestamp {
        Timestamp(self.micros.fetch_add(micros, Ordering::SeqCst) + micros)
    }

    /// Advances the clock by whole milliseconds and returns the new time.
    pub fn advance_millis(&self, millis: u64) -> Timestamp {
        self.advance_micros(millis * 1_000)
    }

    /// Advances the clock by whole seconds and returns the new time.
    pub fn advance_secs(&self, secs: u64) -> Timestamp {
        self.advance_micros(secs * 1_000_000)
    }

    /// Moves the clock forward to at least `target` (never backwards).
    pub fn advance_to(&self, target: Timestamp) {
        let mut cur = self.micros.load(Ordering::SeqCst);
        while cur < target.0 {
            match self.micros.compare_exchange(
                cur,
                target.0,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp(0));
        c.advance_millis(2);
        assert_eq!(c.now().as_micros(), 2_000);
        c.advance_secs(1);
        assert_eq!(c.now().as_secs_f64(), 1.002);
    }

    #[test]
    fn clones_share_the_same_time() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance_micros(5);
        assert_eq!(b.now(), Timestamp(5));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::new();
        c.advance_micros(100);
        c.advance_to(Timestamp(50));
        assert_eq!(c.now(), Timestamp(100));
        c.advance_to(Timestamp(200));
        assert_eq!(c.now(), Timestamp(200));
    }

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp(10);
        assert_eq!(t.plus_micros(5), Timestamp(15));
        assert_eq!(Timestamp(15).micros_since(t), 5);
        assert_eq!(t.micros_since(Timestamp(15)), 0);
    }

    #[test]
    fn concurrent_advance_is_lossless() {
        let c = SimClock::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.advance_micros(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.now(), Timestamp(8_000));
    }
}
