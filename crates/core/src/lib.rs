//! Cell assembly: the whole DEcorum file system, wired together.
//!
//! The paper's system is a *cell*: file servers exporting Episode
//! aggregates, a replicated volume location database, a Kerberos-style
//! authentication server, and client cache managers — all speaking the
//! NCS-style RPC protocol. [`Cell`] builds that world on a simulated
//! network and simulated disks so a laptop can run experiments that the
//! authors ran on a machine room.
//!
//! # Examples
//!
//! ```
//! use dfs_core::Cell;
//! use dfs_types::VolumeId;
//!
//! let cell = Cell::builder().servers(1).build().unwrap();
//! cell.create_volume(0, VolumeId(1), "home").unwrap();
//! let client = cell.new_client();
//! let root = client.root(VolumeId(1)).unwrap();
//! let f = client.create(root, "greeting", 0o644).unwrap();
//! client.write(f.fid, 0, b"hello, cell").unwrap();
//! assert_eq!(client.read(f.fid, 0, 32).unwrap(), b"hello, cell");
//! ```

use dfs_client::{CacheManager, DataCache, DiskCache, MemCache, WritebackConfig};
use dfs_disk::{DiskConfig, DiskStats, SimDisk};
use dfs_episode::{Episode, FormatParams, RecoveryReport};
use dfs_rpc::{Addr, CallClass, KdcService, Network, PoolConfig, Request, Response, Ticket};
use dfs_server::{FileServer, VldbHandle, VldbReplica};
use dfs_types::{AggregateId, ClientId, DfsResult, ServerId, SimClock, VolumeId};
use parking_lot::Mutex;
use std::sync::Arc;

/// Builder for a [`Cell`].
pub struct CellBuilder {
    servers: u32,
    vldb_replicas: u32,
    latency_us: u64,
    disk_blocks: u32,
    log_blocks: u32,
    workers: usize,
    revocation_workers: usize,
    require_auth: bool,
}

impl Default for CellBuilder {
    fn default() -> Self {
        CellBuilder {
            servers: 1,
            vldb_replicas: 3,
            latency_us: 500,
            disk_blocks: 32 * 1024,
            log_blocks: 256,
            workers: 8,
            revocation_workers: 4,
            require_auth: false,
        }
    }
}

impl CellBuilder {
    /// Number of file servers (default 1).
    pub fn servers(mut self, n: u32) -> Self {
        self.servers = n;
        self
    }

    /// Number of VLDB replicas (default 3).
    pub fn vldb_replicas(mut self, n: u32) -> Self {
        self.vldb_replicas = n.max(1);
        self
    }

    /// Simulated one-way network latency in microseconds (default 500).
    pub fn latency_us(mut self, us: u64) -> Self {
        self.latency_us = us;
        self
    }

    /// Blocks per server disk (default 32 Ki = 128 MiB).
    pub fn disk_blocks(mut self, blocks: u32) -> Self {
        self.disk_blocks = blocks;
        self
    }

    /// Blocks reserved for each aggregate's log (default 256 = 1 MiB).
    pub fn log_blocks(mut self, blocks: u32) -> Self {
        self.log_blocks = blocks;
        self
    }

    /// Server worker threads (normal, revocation).
    pub fn pools(mut self, workers: usize, revocation_workers: usize) -> Self {
        self.workers = workers;
        self.revocation_workers = revocation_workers;
        self
    }

    /// Require Kerberos-style tickets on all file-server RPCs (§3.7).
    pub fn require_auth(mut self, on: bool) -> Self {
        self.require_auth = on;
        self
    }

    /// Builds the cell: VLDB replicas, KDC, and file servers.
    pub fn build(self) -> DfsResult<Cell> {
        let clock = SimClock::new();
        let net = Network::new(clock.clone(), self.latency_us);
        let mut vldb_addrs = Vec::new();
        for i in 0..self.vldb_replicas {
            let addr = Addr::Vldb(i);
            net.register(addr, VldbReplica::new(), PoolConfig::default());
            vldb_addrs.push(addr);
        }
        net.register(Addr::Kdc, KdcService::new(net.auth().clone()), PoolConfig::default());
        let pool = PoolConfig {
            workers: self.workers,
            revocation_workers: self.revocation_workers,
            require_auth: self.require_auth,
        };
        let mut servers = Vec::new();
        for i in 1..=self.servers {
            let disk = SimDisk::new(DiskConfig::with_blocks(self.disk_blocks));
            let ep = Episode::format(
                disk.clone(),
                clock.clone(),
                FormatParams {
                    aggregate: AggregateId(i),
                    log_blocks: self.log_blocks,
                    anodes: 8192,
                    ..FormatParams::default()
                },
            )?;
            let server = FileServer::start_journaled(
                net.clone(),
                ServerId(i),
                ep.clone(),
                ep.host_log().cloned(),
                vldb_addrs.clone(),
                pool,
            )?;
            servers.push(Mutex::new(ServerSlot { disk, server }));
        }
        Ok(Cell {
            clock,
            net,
            vldb_addrs,
            servers,
            pool,
            next_client: Mutex::new(1),
            admin_ticket: Mutex::new(None),
        })
    }
}

/// One file-server slot: the current instance plus the simulated disk
/// it runs on, kept so the cell can crash and restart the server on
/// the *same* storage.
struct ServerSlot {
    disk: SimDisk,
    server: Arc<FileServer>,
}

/// A running DEcorum cell.
pub struct Cell {
    clock: SimClock,
    net: Network,
    vldb_addrs: Vec<Addr>,
    servers: Vec<Mutex<ServerSlot>>,
    pool: PoolConfig,
    next_client: Mutex<u32>,
    admin_ticket: Mutex<Option<Ticket>>,
}

impl Cell {
    /// Starts building a cell.
    pub fn builder() -> CellBuilder {
        CellBuilder::default()
    }

    /// The shared simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The simulated network (statistics, crash injection).
    pub fn net(&self) -> &Network {
        &self.net
    }

    /// The file server currently running in slot `index` (index 0 is
    /// `ServerId(1)`). Returns an owned handle: after
    /// [`Cell::restart_server`] a slot holds a *new* instance, so
    /// callers must not cache this across a restart.
    pub fn server(&self, index: usize) -> Arc<FileServer> {
        self.servers[index].lock().server.clone()
    }

    /// Statistics of the simulated disk under slot `index`'s server.
    /// Disks are the per-server bottleneck resource, so experiments
    /// report a fleet's critical path as the max across slots.
    pub fn server_disk_stats(&self, index: usize) -> DiskStats {
        self.servers[index].lock().disk.stats()
    }

    /// Crashes the file server in slot `index`: its network node stops
    /// answering (callers see `Unreachable`) and its disk loses all
    /// volatile state — exactly the failure Episode's log is for.
    pub fn crash_server(&self, index: usize) {
        let slot = self.servers[index].lock();
        self.net.set_crashed(Addr::Server(slot.server.id()), true);
        slot.disk.crash(None);
    }

    /// Restarts a crashed server on the same storage: powers the disk
    /// back on, replays the Episode journal (`Episode::open`), and
    /// starts a fresh [`FileServer`] instance with a `grace_us`-long
    /// token-reestablishment window. The next epoch and the expected
    /// host set come from the aggregate's durable host journal — the
    /// dying instance's memory is never consulted, so this path models
    /// losing the whole machine, not just the process. Returns the
    /// journal replay report.
    pub fn restart_server(&self, index: usize, grace_us: u64) -> DfsResult<RecoveryReport> {
        let mut slot = self.servers[index].lock();
        let old = slot.server.clone();
        let id = old.id();
        old.stop();
        drop(old);
        slot.disk.power_on();
        let (ep, report) = Episode::open(slot.disk.clone(), self.clock.clone())?;
        slot.server = FileServer::restart(
            self.net.clone(),
            id,
            ep.clone(),
            ep.host_log().cloned(),
            ep.host_replay(),
            self.vldb_addrs.clone(),
            self.pool,
            grace_us,
        )?;
        Ok(report)
    }

    /// Number of file servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The VLDB replica addresses.
    pub fn vldb_addrs(&self) -> &[Addr] {
        &self.vldb_addrs
    }

    /// A VLDB handle for administrative use.
    pub fn vldb(&self) -> VldbHandle {
        VldbHandle::new(self.net.clone(), Addr::Client(ClientId(0)), self.vldb_addrs.clone())
    }

    /// Registers a user with the authentication registry (§3.7).
    pub fn add_user(&self, user: u32, secret: u64) {
        self.net.auth().add_user(user, secret);
    }

    /// Authenticates the cell's administrative operations (needed when
    /// the cell was built with [`CellBuilder::require_auth`]).
    pub fn admin_login(&self, user: u32, secret: u64) -> DfsResult<()> {
        let ticket = self.net.auth().login(user, secret)?;
        *self.admin_ticket.lock() = Some(ticket);
        Ok(())
    }

    /// Creates a diskless (in-memory cache) client (§4.2).
    pub fn new_client(&self) -> Arc<CacheManager> {
        self.new_client_with(Arc::new(MemCache::new()))
    }

    /// Creates a client with a disk-backed cache of `blocks` blocks.
    pub fn new_disk_client(&self, blocks: u32) -> Arc<CacheManager> {
        let disk = SimDisk::new(DiskConfig::with_blocks(blocks));
        self.new_client_with(Arc::new(DiskCache::new(disk)))
    }

    /// Creates a client with a caller-supplied cache store.
    pub fn new_client_with(&self, data: Arc<dyn DataCache>) -> Arc<CacheManager> {
        self.new_client_configured(data, WritebackConfig::default())
    }

    /// Creates a diskless client with explicit write-behind tuning
    /// (benchmarks compare `WritebackConfig::legacy()` against the
    /// default pipeline).
    pub fn new_client_writeback(&self, wb: WritebackConfig) -> Arc<CacheManager> {
        self.new_client_configured(Arc::new(MemCache::new()), wb)
    }

    /// Creates a client with caller-supplied cache store and
    /// write-behind tuning.
    pub fn new_client_configured(
        &self,
        data: Arc<dyn DataCache>,
        wb: WritebackConfig,
    ) -> Arc<CacheManager> {
        let id = {
            let mut n = self.next_client.lock();
            let id = *n;
            *n += 1;
            id
        };
        CacheManager::start_with_config(
            self.net.clone(),
            ClientId(id),
            self.vldb_addrs.clone(),
            data,
            wb,
        )
    }

    fn admin_call(&self, server: usize, req: Request) -> DfsResult<Response> {
        let to = Addr::Server(self.server(server).id());
        let ticket = *self.admin_ticket.lock();
        self.net
            .call(Addr::Client(ClientId(0)), to, ticket, CallClass::Normal, req)?
            .into_result()
    }

    /// Creates a volume on server `server` (index, not id).
    pub fn create_volume(&self, server: usize, id: VolumeId, name: &str) -> DfsResult<()> {
        self.admin_call(server, Request::VolCreate { volume: id, name: name.into() })?;
        Ok(())
    }

    /// Clones `src` into read-only snapshot `clone` on the same server.
    pub fn clone_volume(
        &self,
        server: usize,
        src: VolumeId,
        clone: VolumeId,
        name: &str,
    ) -> DfsResult<()> {
        self.admin_call(server, Request::VolClone { src, clone, name: name.into() })?;
        Ok(())
    }

    /// Moves a volume from `from` to `to` (server indices).
    pub fn move_volume(&self, from: usize, to: usize, volume: VolumeId) -> DfsResult<()> {
        let target = self.server(to).id();
        self.admin_call(from, Request::VolMove { volume, target })?;
        Ok(())
    }

    /// Starts lazy replication of `volume` from server `from` onto
    /// server `to`, with the given staleness bound (§3.8).
    pub fn replicate_volume(
        &self,
        from: usize,
        to: usize,
        volume: VolumeId,
        max_staleness_us: u64,
    ) -> DfsResult<()> {
        let source = self.server(from).id();
        self.admin_call(to, Request::ReplAdd { volume, source, max_staleness_us })?;
        Ok(())
    }

    /// Runs one replication pass on server `server` (experiments drive
    /// simulated time explicitly; a production cell runs a daemon).
    pub fn replication_tick(&self, server: usize) -> DfsResult<()> {
        self.admin_call(server, Request::ReplTick)?;
        Ok(())
    }

    /// Renders Figure 1 (server structure) from the live components.
    pub fn render_server_structure(&self) -> String {
        let mut out = String::from(
            "Figure 1: DEcorum file server structure (live components)\n\
             \n\
             +--------------------------------------------------------+\n\
             |  generic system calls*                                 |\n\
             |      |                 protocol exporter   various     |\n\
             |      v                  (server procs)     servers     |\n\
             |  VFS+ interface  <----  token manager      - VLDB x",
        );
        out.push_str(&format!("{}\n", self.vldb_addrs.len()));
        out.push_str(
            "  |      |                  host model         - KDC       |\n\
             |      v                  lock table         - volume    |\n\
             |  glue layer (token-wrapping VFS+)          - replica   |\n\
             |      |                                                 |\n\
             |      v                                                 |\n\
             |  physical file systems: Episode (+ FFS exportable)    |\n\
             +--------------------------------------------------------+\n",
        );
        out.push_str(&format!("servers: {}\n", self.servers.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_use_a_cell() {
        let cell = Cell::builder().servers(2).build().unwrap();
        cell.create_volume(0, VolumeId(1), "home").unwrap();
        let c = cell.new_client();
        let root = c.root(VolumeId(1)).unwrap();
        let f = c.create(root, "x", 0o644).unwrap();
        c.write(f.fid, 0, b"via cell").unwrap();
        assert_eq!(c.read(f.fid, 0, 16).unwrap(), b"via cell");
    }

    #[test]
    fn move_and_replicate_through_cell_api() {
        let cell = Cell::builder().servers(2).build().unwrap();
        cell.create_volume(0, VolumeId(5), "proj").unwrap();
        let c = cell.new_client();
        let root = c.root(VolumeId(5)).unwrap();
        let f = c.create(root, "f", 0o644).unwrap();
        c.write(f.fid, 0, b"payload").unwrap();
        c.fsync(f.fid).unwrap();
        cell.move_volume(0, 1, VolumeId(5)).unwrap();
        assert_eq!(c.read(f.fid, 0, 16).unwrap(), b"payload");
        assert_eq!(cell.vldb().lookup(VolumeId(5)).unwrap(), cell.server(1).id());
    }

    #[test]
    fn disk_client_works() {
        let cell = Cell::builder().build().unwrap();
        cell.create_volume(0, VolumeId(1), "v").unwrap();
        let c = cell.new_disk_client(256);
        let root = c.root(VolumeId(1)).unwrap();
        let f = c.create(root, "d", 0o644).unwrap();
        c.write(f.fid, 0, &vec![3u8; 10_000]).unwrap();
        assert_eq!(c.read(f.fid, 5000, 100).unwrap(), vec![3u8; 100]);
    }

    #[test]
    fn figure1_renders() {
        let cell = Cell::builder().build().unwrap();
        let fig = cell.render_server_structure();
        assert!(fig.contains("token manager"));
        assert!(fig.contains("glue layer"));
        assert!(fig.contains("Episode"));
    }
}
