//! The VFS and VFS+ interfaces (§1, §3.3).
//!
//! The DEcorum design hinges on a clean separation at the virtual file
//! system boundary: a *physical file system* is "a module that implements
//! the VFS interface, and stores file data on a disk". The protocol
//! exporter exports any physical file system through this interface, and
//! the client cache manager *implements* the same interface on top of
//! RPCs.
//!
//! [`Vfs`] is the per-mounted-volume interface ("a VFS is a mounted
//! volume", §2.1). [`VfsPlus`] adds the DEcorum extensions — ACLs — that
//! vendor file systems may or may not support. [`PhysicalFs`] is the
//! aggregate-level interface: volume creation, cloning, dump/restore for
//! volume motion, and salvage.

use dfs_types::{Acl, AggregateId, DfsResult, FileStatus, Fid, Timestamp, VolumeId};
use std::sync::Arc;

/// The identity on whose behalf an operation is performed.
///
/// On a real system this is derived from the Kerberos ticket that
/// authenticated the RPC (§3.7); locally it comes from the process
/// credentials.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Credentials {
    /// The authenticated user id.
    pub user: u32,
    /// Groups the user belongs to.
    pub groups: Vec<u32>,
}

impl Credentials {
    /// Returns credentials for a plain user with no groups.
    pub fn user(user: u32) -> Self {
        Credentials { user, groups: Vec::new() }
    }

    /// Returns the superuser credentials used by internal subsystems
    /// (the salvager, the replication server, volume motion).
    pub fn system() -> Self {
        Credentials { user: 0, groups: Vec::new() }
    }

    /// Returns true for the superuser.
    pub fn is_system(&self) -> bool {
        self.user == 0
    }
}

/// A directory entry returned by [`Vfs::readdir`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DirEntry {
    /// The entry's name within its directory.
    pub name: String,
    /// The file the entry refers to.
    pub fid: Fid,
}

/// Attributes to change in a [`Vfs::setattr`] call; `None` leaves a
/// field untouched. Setting `length` truncates or extends the file.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct SetAttrs {
    /// New mode bits.
    pub mode: Option<u16>,
    /// New owning user.
    pub owner: Option<u32>,
    /// New owning group.
    pub group: Option<u32>,
    /// New file length (truncate/extend).
    pub length: Option<u64>,
    /// New modification time.
    pub mtime: Option<Timestamp>,
}

impl SetAttrs {
    /// Returns a `SetAttrs` that only truncates/extends to `length`.
    pub fn truncate(length: u64) -> Self {
        SetAttrs { length: Some(length), ..SetAttrs::default() }
    }
}

/// One contiguous run of bytes in a multi-extent store-back.
///
/// The cache manager coalesces adjacent dirty pages into extents and
/// ships several discontiguous extents in one `StoreDataVec` RPC; the
/// server applies them through [`Vfs::write_vec`] in a single journal
/// transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WriteExtent {
    /// Byte offset of the extent within the file.
    pub offset: u64,
    /// The extent's contents.
    pub data: Vec<u8>,
}

impl WriteExtent {
    /// Returns the extent's end offset (`offset + data.len()`).
    pub fn end(&self) -> u64 {
        self.offset + self.data.len() as u64
    }
}

/// The per-volume virtual file system interface.
///
/// All fids must belong to this volume. Operations verify access rights
/// against the caller's [`Credentials`] and the file's ACL or mode bits.
pub trait Vfs: Send + Sync {
    /// Returns the id of the volume this VFS is a mount of.
    fn volume_id(&self) -> VolumeId;

    /// Returns the fid of the volume's root directory.
    fn root(&self) -> DfsResult<Fid>;

    /// Looks up `name` in directory `dir`.
    fn lookup(&self, cred: &Credentials, dir: Fid, name: &str) -> DfsResult<FileStatus>;

    /// Creates a regular file `name` in `dir` with the given mode bits.
    fn create(&self, cred: &Credentials, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus>;

    /// Creates a directory `name` in `dir`.
    fn mkdir(&self, cred: &Credentials, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus>;

    /// Creates a symbolic link `name` in `dir` pointing at `target`.
    fn symlink(
        &self,
        cred: &Credentials,
        dir: Fid,
        name: &str,
        target: &str,
    ) -> DfsResult<FileStatus>;

    /// Adds a hard link `name` in `dir` to the existing file `target`.
    fn link(&self, cred: &Credentials, dir: Fid, name: &str, target: Fid) -> DfsResult<FileStatus>;

    /// Removes the non-directory entry `name` from `dir`.
    ///
    /// Returns the status of the removed file (nlink already decremented);
    /// the file itself is reclaimed when its link count reaches zero.
    fn remove(&self, cred: &Credentials, dir: Fid, name: &str) -> DfsResult<FileStatus>;

    /// Removes the empty directory `name` from `dir`.
    fn rmdir(&self, cred: &Credentials, dir: Fid, name: &str) -> DfsResult<()>;

    /// Renames `src_dir/src_name` to `dst_dir/dst_name`, replacing any
    /// existing non-directory target.
    fn rename(
        &self,
        cred: &Credentials,
        src_dir: Fid,
        src_name: &str,
        dst_dir: Fid,
        dst_name: &str,
    ) -> DfsResult<()>;

    /// Lists the entries of directory `dir` (excluding `.` and `..`).
    fn readdir(&self, cred: &Credentials, dir: Fid) -> DfsResult<Vec<DirEntry>>;

    /// Reads up to `len` bytes at `offset`; short reads happen at EOF.
    fn read(&self, cred: &Credentials, file: Fid, offset: u64, len: usize) -> DfsResult<Vec<u8>>;

    /// Writes `data` at `offset`, extending the file as needed.
    ///
    /// Returns the file's status after the write (the paper's VOP_RDWR
    /// returns updated status so callers can maintain their caches).
    fn write(&self, cred: &Credentials, file: Fid, offset: u64, data: &[u8])
        -> DfsResult<FileStatus>;

    /// Applies a batch of extents to `file` and makes them durable.
    ///
    /// This is the landing point for client store-backs: the client has
    /// already discarded (or is about to discard) its write tokens or
    /// dirty pages on the strength of the reply, so the contract is that
    /// every extent is durable before the call returns. Implementations
    /// should apply all extents in a *single* transaction ending in one
    /// group commit; the default falls back to per-extent [`write`]
    /// calls followed by a full [`sync`].
    ///
    /// Returns the file's status after the last extent.
    ///
    /// [`write`]: Vfs::write
    /// [`sync`]: Vfs::sync
    fn write_vec(
        &self,
        cred: &Credentials,
        file: Fid,
        extents: &[WriteExtent],
    ) -> DfsResult<FileStatus> {
        let mut status = None;
        for e in extents {
            status = Some(self.write(cred, file, e.offset, &e.data)?);
        }
        let status = match status {
            Some(s) => s,
            None => self.getattr(cred, file)?,
        };
        self.sync()?;
        Ok(status)
    }

    /// Returns the status of `file`.
    fn getattr(&self, cred: &Credentials, file: Fid) -> DfsResult<FileStatus>;

    /// Changes attributes of `file`; `length` truncates or extends.
    fn setattr(&self, cred: &Credentials, file: Fid, attrs: &SetAttrs) -> DfsResult<FileStatus>;

    /// Reads the target of a symbolic link.
    fn readlink(&self, cred: &Credentials, file: Fid) -> DfsResult<String>;

    /// Forces `file`'s data and metadata to stable storage.
    fn fsync(&self, cred: &Credentials, file: Fid) -> DfsResult<()>;

    /// Forces all pending changes in the volume to stable storage.
    fn sync(&self) -> DfsResult<()>;
}

/// DEcorum extensions to the VFS interface (§3.3).
///
/// The protocol exporter "allows for additional operations to provide
/// access to such extensions as volumes and access control lists";
/// Episode implements all of them, other physical file systems may
/// implement a subset.
pub trait VfsPlus: Vfs {
    /// Returns the ACL of `file`; any file or directory may have one (§2.3).
    fn get_acl(&self, cred: &Credentials, file: Fid) -> DfsResult<Acl>;

    /// Replaces the ACL of `file`; requires CONTROL rights.
    fn set_acl(&self, cred: &Credentials, file: Fid, acl: &Acl) -> DfsResult<()>;
}

/// Summary information about a volume on an aggregate.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VolumeInfo {
    /// The volume's cell-wide id.
    pub id: VolumeId,
    /// Human-readable volume name (e.g. `user.jane`).
    pub name: String,
    /// True for read-only clones (snapshots, replicas).
    pub read_only: bool,
    /// For a clone, the volume it was cloned from.
    pub parent: Option<VolumeId>,
    /// Number of live files (including directories).
    pub files: u64,
    /// Disk blocks attributed to the volume.
    pub blocks_used: u64,
    /// Highest data version of any file in the volume.
    pub max_data_version: u64,
}

/// One file in a volume dump.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DumpFile {
    /// Status of the file (fid, type, length, times, versions).
    pub status: FileStatus,
    /// The file's ACL, if it has one.
    pub acl: Option<Acl>,
    /// File contents; for symlinks, the target path bytes. Empty for
    /// directories (their entries are in `entries`).
    pub data: Vec<u8>,
    /// Directory entries (name, fid) for directories.
    pub entries: Vec<DirEntry>,
}

/// A serialized volume, used for volume motion (§3.6) and lazy
/// replication (§3.8).
///
/// A *full* dump (`since_version == 0`) contains every live file. An
/// *incremental* dump contains only files whose `data_version` exceeds
/// `since_version`, plus the complete list of live vnodes so the restorer
/// can delete files that vanished.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct VolumeDump {
    /// The source volume id.
    pub volume: VolumeId,
    /// The source volume's name.
    pub name: String,
    /// The dump includes files changed strictly after this version.
    pub since_version: u64,
    /// Highest data version in the source at dump time.
    pub max_data_version: u64,
    /// Fid of the root directory.
    pub root: Fid,
    /// Files included in the dump.
    pub files: Vec<DumpFile>,
    /// Every live fid in the source volume at dump time.
    pub live: Vec<Fid>,
}

impl VolumeDump {
    /// Returns the total payload size in bytes (data plus entry names),
    /// the quantity charged to the network during volume moves.
    pub fn payload_bytes(&self) -> u64 {
        self.files
            .iter()
            .map(|f| {
                f.data.len() as u64
                    + f.entries.iter().map(|e| e.name.len() as u64 + 16).sum::<u64>()
                    + 64
            })
            .sum()
    }
}

/// What a salvage (full consistency check) found.
///
/// Logging obviates routine salvage, but media failure still requires it
/// (§2.2); tests also use the salvager to verify crash-recovery
/// invariants.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SalvageReport {
    /// Total anodes/inodes examined.
    pub files_checked: u64,
    /// Total blocks examined.
    pub blocks_checked: u64,
    /// Inconsistencies found (descriptions).
    pub problems: Vec<String>,
}

impl SalvageReport {
    /// Returns true if the file system is consistent.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// The aggregate-level interface of a physical file system.
///
/// An aggregate hosts many volumes (§2.1); this trait exposes the
/// volume and aggregate operations the DEcorum servers need. Volume ids
/// are allocated cell-wide by the caller (the volume server), not by the
/// aggregate.
pub trait PhysicalFs: Send + Sync {
    /// Returns this aggregate's id.
    fn aggregate_id(&self) -> AggregateId;

    /// Lists the volumes on this aggregate.
    fn list_volumes(&self) -> DfsResult<Vec<VolumeInfo>>;

    /// Returns info for one volume.
    fn volume_info(&self, vol: VolumeId) -> DfsResult<VolumeInfo>;

    /// Creates an empty read-write volume with the given id and name.
    fn create_volume(&self, id: VolumeId, name: &str) -> DfsResult<()>;

    /// Deletes a volume and frees its storage.
    fn delete_volume(&self, vol: VolumeId) -> DfsResult<()>;

    /// Clones `src` into a read-only copy-on-write snapshot `clone_id`.
    ///
    /// Cloning copies metadata only; data blocks are shared until the
    /// writable original diverges (§2.1).
    fn clone_volume(&self, src: VolumeId, clone_id: VolumeId, name: &str) -> DfsResult<()>;

    /// Mounts a volume, returning its VFS+ view.
    fn mount(&self, vol: VolumeId) -> DfsResult<Arc<dyn VfsPlus>>;

    /// Serializes a volume for motion or replication.
    ///
    /// `since_version` of 0 produces a full dump; a larger value produces
    /// an incremental dump of files changed after that version.
    fn dump_volume(&self, vol: VolumeId, since_version: u64) -> DfsResult<VolumeDump>;

    /// Materializes a dumped volume on this aggregate.
    ///
    /// For an incremental dump the volume must already exist here; the
    /// dump is applied on top. `read_only` marks the result as a replica.
    fn restore_volume(&self, dump: &VolumeDump, read_only: bool) -> DfsResult<()>;

    /// Runs a full consistency check of the aggregate.
    fn salvage(&self) -> DfsResult<SalvageReport>;

    /// Flushes all volumes to stable storage.
    fn sync_aggregate(&self) -> DfsResult<()>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_types::{VnodeId, VolumeId};

    #[test]
    fn credentials_system_detection() {
        assert!(Credentials::system().is_system());
        assert!(!Credentials::user(10).is_system());
    }

    #[test]
    fn setattrs_truncate_builder() {
        let s = SetAttrs::truncate(100);
        assert_eq!(s.length, Some(100));
        assert_eq!(s.mode, None);
        assert_eq!(s, SetAttrs { length: Some(100), ..SetAttrs::default() });
    }

    #[test]
    fn dump_payload_accounts_data_and_entries() {
        let fid = Fid::new(VolumeId(1), VnodeId(1), 1);
        let dump = VolumeDump {
            volume: VolumeId(1),
            name: "v".into(),
            since_version: 0,
            max_data_version: 1,
            root: fid,
            files: vec![DumpFile {
                status: FileStatus { fid, ..FileStatus::default() },
                acl: None,
                data: vec![0; 100],
                entries: vec![DirEntry { name: "abcd".into(), fid }],
            }],
            live: vec![fid],
        };
        assert_eq!(dump.payload_bytes(), 100 + 4 + 16 + 64);
    }

    #[test]
    fn write_extent_end() {
        let e = WriteExtent { offset: 4096, data: vec![0u8; 100] };
        assert_eq!(e.end(), 4196);
    }

    /// Minimal flat-file Vfs exercising the default `write_vec`: it must
    /// apply every extent in order and finish with a `sync`.
    struct FlatFile {
        bytes: std::sync::Mutex<Vec<u8>>,
        syncs: std::sync::atomic::AtomicU64,
    }

    impl Vfs for FlatFile {
        fn volume_id(&self) -> VolumeId {
            VolumeId(1)
        }
        fn root(&self) -> DfsResult<Fid> {
            unimplemented!()
        }
        fn lookup(&self, _: &Credentials, _: Fid, _: &str) -> DfsResult<FileStatus> {
            unimplemented!()
        }
        fn create(&self, _: &Credentials, _: Fid, _: &str, _: u16) -> DfsResult<FileStatus> {
            unimplemented!()
        }
        fn mkdir(&self, _: &Credentials, _: Fid, _: &str, _: u16) -> DfsResult<FileStatus> {
            unimplemented!()
        }
        fn symlink(&self, _: &Credentials, _: Fid, _: &str, _: &str) -> DfsResult<FileStatus> {
            unimplemented!()
        }
        fn link(&self, _: &Credentials, _: Fid, _: &str, _: Fid) -> DfsResult<FileStatus> {
            unimplemented!()
        }
        fn remove(&self, _: &Credentials, _: Fid, _: &str) -> DfsResult<FileStatus> {
            unimplemented!()
        }
        fn rmdir(&self, _: &Credentials, _: Fid, _: &str) -> DfsResult<()> {
            unimplemented!()
        }
        fn rename(&self, _: &Credentials, _: Fid, _: &str, _: Fid, _: &str) -> DfsResult<()> {
            unimplemented!()
        }
        fn readdir(&self, _: &Credentials, _: Fid) -> DfsResult<Vec<DirEntry>> {
            unimplemented!()
        }
        fn read(&self, _: &Credentials, _: Fid, _: u64, _: usize) -> DfsResult<Vec<u8>> {
            unimplemented!()
        }
        fn write(
            &self,
            _: &Credentials,
            fid: Fid,
            offset: u64,
            data: &[u8],
        ) -> DfsResult<FileStatus> {
            let mut bytes = self.bytes.lock().unwrap();
            let end = offset as usize + data.len();
            if bytes.len() < end {
                bytes.resize(end, 0);
            }
            bytes[offset as usize..end].copy_from_slice(data);
            Ok(FileStatus { fid, length: bytes.len() as u64, ..FileStatus::default() })
        }
        fn getattr(&self, _: &Credentials, fid: Fid) -> DfsResult<FileStatus> {
            Ok(FileStatus {
                fid,
                length: self.bytes.lock().unwrap().len() as u64,
                ..FileStatus::default()
            })
        }
        fn setattr(&self, _: &Credentials, _: Fid, _: &SetAttrs) -> DfsResult<FileStatus> {
            unimplemented!()
        }
        fn readlink(&self, _: &Credentials, _: Fid) -> DfsResult<String> {
            unimplemented!()
        }
        fn fsync(&self, _: &Credentials, _: Fid) -> DfsResult<()> {
            unimplemented!()
        }
        fn sync(&self) -> DfsResult<()> {
            self.syncs.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn default_write_vec_applies_extents_then_syncs_once() {
        let fs = FlatFile {
            bytes: std::sync::Mutex::new(Vec::new()),
            syncs: std::sync::atomic::AtomicU64::new(0),
        };
        let cred = Credentials::user(7);
        let fid = Fid::new(VolumeId(1), VnodeId(2), 1);
        let extents = vec![
            WriteExtent { offset: 0, data: vec![1; 8] },
            WriteExtent { offset: 16, data: vec![2; 4] },
        ];
        let st = fs.write_vec(&cred, fid, &extents).unwrap();
        assert_eq!(st.length, 20);
        assert_eq!(fs.syncs.load(std::sync::atomic::Ordering::Relaxed), 1);
        let bytes = fs.bytes.lock().unwrap();
        assert_eq!(&bytes[0..8], &[1; 8]);
        assert_eq!(&bytes[16..20], &[2; 4]);
        // An empty batch still syncs (callers rely on the durability
        // contract) and reports current status.
        drop(bytes);
        let st = fs.write_vec(&cred, fid, &[]).unwrap();
        assert_eq!(st.length, 20);
        assert_eq!(fs.syncs.load(std::sync::atomic::Ordering::Relaxed), 2);
    }

    #[test]
    fn salvage_report_cleanliness() {
        let mut r = SalvageReport::default();
        assert!(r.is_clean());
        r.problems.push("orphan anode 7".into());
        assert!(!r.is_clean());
    }
}
