//! Episode: the fast-restarting physical file system of DEcorum (§2).
//!
//! Episode implements the [`dfs_vfs`] VFS+ interface on a simulated disk,
//! with the capabilities the paper calls out as missing from vendor file
//! systems:
//!
//! * **logical volumes**: many mountable volumes per aggregate, movable
//!   and cloneable ([`crate::volume`], §2.1);
//! * **access control lists** on any file or directory ([`crate::aclstore`],
//!   §2.3);
//! * **fast crash recovery** via the [`dfs_journal`] write-ahead log —
//!   metadata changes are transactions, user data is unlogged, and
//!   restart replays only the active log (§2.2);
//! * **anodes**: a uniform open-ended container abstraction used for
//!   files, directories, ACLs, volume headers, the volume table, and the
//!   block refcount table itself ([`crate::anode`], §2.4).
//!
//! An [`Episode`] value manages one aggregate; mounting (via
//! [`dfs_vfs::PhysicalFs::mount`]) returns per-volume
//! [`dfs_vfs::VfsPlus`] views.

pub mod aclstore;
pub mod anode;
pub mod dir;
pub mod layout;
pub mod salvage;
pub mod vfs_impl;
pub mod volume;

pub use dfs_journal::RecoveryReport;
pub use layout::{Anode, AnodeKind, SuperBlock};
pub use vfs_impl::EpisodeVolume;

use dfs_disk::{SimDisk, BLOCK_SIZE};
use dfs_journal::{HostLog, HostLogRegion, HostLogReplay, Journal, LogRegion};
use dfs_types::{AggregateId, DfsError, DfsResult, SimClock};
use layout::{ANODES_PER_BLOCK, REFCOUNT_ANODE, VOLTABLE_ANODE};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

/// Parameters for formatting a fresh aggregate.
#[derive(Clone, Copy, Debug)]
pub struct FormatParams {
    /// Aggregate id to stamp into the superblock.
    pub aggregate: AggregateId,
    /// Blocks reserved for the transaction log (including its
    /// superblock); fixed at initialization, as the paper requires.
    pub log_blocks: u32,
    /// Number of anode slots to provision.
    pub anodes: u32,
    /// Blocks reserved for the host journal ring (durable host/lease
    /// state for §3.5 recovery); fixed at initialization.
    pub host_log_blocks: u32,
}

impl Default for FormatParams {
    fn default() -> Self {
        FormatParams {
            aggregate: AggregateId(0),
            log_blocks: 256,
            anodes: 4096,
            host_log_blocks: 32,
        }
    }
}

struct AllocState {
    /// Next anode slot to consider.
    anode_rotor: u32,
    /// Next data block to consider.
    block_rotor: u32,
}

/// One Episode aggregate: anode table, refcount table, volumes, and log.
///
/// All methods are internally synchronized. Fine-grained locking follows
/// the paper's requirement ("designed with finely grained locking, and as
/// few points of global contention as possible", §2): each anode has its
/// own lock, and the allocator and volume table have their own.
pub struct Episode {
    pub(crate) disk: SimDisk,
    pub(crate) jn: Arc<Journal>,
    pub(crate) sb: SuperBlock,
    pub(crate) clock: SimClock,
    pub(crate) alloc: Mutex<AllocState>,
    /// Per-anode locks, created on demand.
    pub(crate) anode_locks: Mutex<HashMap<u32, Arc<RwLock<()>>>>,
    /// Serializes volume-table operations (create/delete/clone/mount).
    pub(crate) vol_lock: Mutex<()>,
    /// The host journal ring, when the aggregate reserves one.
    host_log: Option<Arc<HostLog>>,
    /// What host-log replay recovered at open time.
    host_replay: HostLogReplay,
    /// Weak self-reference so `&self` methods can hand out `Arc<Episode>`.
    me: Mutex<std::sync::Weak<Episode>>,
}

impl Episode {
    /// Formats `disk` as a fresh Episode aggregate.
    ///
    /// Layout: superblock, log region, anode table, data region. The
    /// volume table (anode 1) and the block refcount table (anode 2) are
    /// provisioned here; the refcount table doubles as the allocation
    /// bitmap (refcount zero means free).
    pub fn format(
        disk: SimDisk,
        clock: SimClock,
        params: FormatParams,
    ) -> DfsResult<Arc<Episode>> {
        let total = disk.blocks();
        let anode_table_blocks = params.anodes.div_ceil(ANODES_PER_BLOCK as u32);
        let sb = SuperBlock {
            aggregate: params.aggregate.0,
            total_blocks: total,
            log_first: 1,
            log_blocks: params.log_blocks,
            anode_table_start: 1 + params.log_blocks,
            anode_table_blocks,
            host_log_blocks: params.host_log_blocks,
        };
        let data_start = sb.data_start();
        if data_start + 16 > total {
            return Err(DfsError::NoSpace);
        }

        // Provision the refcount table: 2 bytes per block, preallocated
        // contiguously at the start of the data region.
        let rc_bytes = 2 * total as usize;
        let rc_blocks = rc_bytes.div_ceil(BLOCK_SIZE) as u32;
        let ptrs_per = layout::PTRS_PER_BLOCK as u32;
        if rc_blocks > layout::NDIRECT as u32 + ptrs_per {
            return Err(DfsError::InvalidArgument); // Aggregate too large.
        }
        let needs_indirect = rc_blocks > layout::NDIRECT as u32;
        let rc_data_first = data_start;
        let indirect_block = if needs_indirect { Some(rc_data_first + rc_blocks) } else { None };
        let reserved_end = rc_data_first + rc_blocks + u32::from(needs_indirect);
        if reserved_end >= total {
            return Err(DfsError::NoSpace);
        }

        // Superblock.
        disk.write(0, &sb.encode())?;

        // Refcount table contents: 1 for every reserved block.
        let mut rc = vec![0u8; rc_blocks as usize * BLOCK_SIZE];
        for b in 0..reserved_end {
            rc[2 * b as usize..2 * b as usize + 2].copy_from_slice(&1u16.to_le_bytes());
        }
        for (i, chunk) in rc.chunks(BLOCK_SIZE).enumerate() {
            let mut block = [0u8; BLOCK_SIZE];
            block.copy_from_slice(chunk);
            disk.write(rc_data_first + i as u32, &block)?;
        }

        // The refcount anode's indirect block, if needed.
        if let Some(ib) = indirect_block {
            let mut block = [0u8; BLOCK_SIZE];
            for i in layout::NDIRECT as u32..rc_blocks {
                let ptr = rc_data_first + i;
                let slot = (i - layout::NDIRECT as u32) as usize * 4;
                block[slot..slot + 4].copy_from_slice(&ptr.to_le_bytes());
            }
            disk.write(ib, &block)?;
        }

        // Anode table: all zero (free) except the two reserved anodes.
        let mut voltable = Anode::free();
        voltable.kind = AnodeKind::Meta;
        voltable.uniq = 1;
        let mut rc_anode = Anode::free();
        rc_anode.kind = AnodeKind::Meta;
        rc_anode.uniq = 1;
        rc_anode.length = rc_bytes as u64;
        for i in 0..layout::NDIRECT.min(rc_blocks as usize) {
            rc_anode.direct[i] = rc_data_first + i as u32;
        }
        if let Some(ib) = indirect_block {
            rc_anode.indirect = ib;
        }
        let (blk1, off1) = sb.anode_location(VOLTABLE_ANODE);
        let (blk2, off2) = sb.anode_location(REFCOUNT_ANODE);
        debug_assert_eq!(blk1, blk2, "reserved anodes share the first table block");
        let mut table = [0u8; BLOCK_SIZE];
        table[off1..off1 + layout::ANODE_SIZE].copy_from_slice(&voltable.encode());
        table[off2..off2 + layout::ANODE_SIZE].copy_from_slice(&rc_anode.encode());
        disk.write(blk1, &table)?;
        disk.flush()?;

        let jn = Journal::format(
            disk.clone(),
            LogRegion { first_block: sb.log_first, blocks: sb.log_blocks },
        )?;
        let (host_log, host_replay) = Self::open_host_log(&disk, &sb)?;
        Ok(Episode::assemble(disk, jn, sb, clock, host_log, host_replay))
    }

    /// Opens an existing aggregate, running log recovery if required.
    ///
    /// This is the fast restart the paper promises: the time spent is
    /// proportional to the active portion of the log, not the size of
    /// the file system (§2.2). The [`RecoveryReport`] says what replay
    /// did.
    pub fn open(disk: SimDisk, clock: SimClock) -> DfsResult<(Arc<Episode>, RecoveryReport)> {
        let sb = SuperBlock::decode(&*disk.read(0)?)?;
        let (jn, report) = Journal::open(
            disk.clone(),
            LogRegion { first_block: sb.log_first, blocks: sb.log_blocks },
        )?;
        let (host_log, host_replay) = Self::open_host_log(&disk, &sb)?;
        Ok((Episode::assemble(disk, jn, sb, clock, host_log, host_replay), report))
    }

    /// Opens (and replays) the host journal ring, when the superblock
    /// reserves one. Aggregates formatted before the ring existed have
    /// `host_log_blocks == 0` and simply have no host journal.
    fn open_host_log(
        disk: &SimDisk,
        sb: &SuperBlock,
    ) -> DfsResult<(Option<Arc<HostLog>>, HostLogReplay)> {
        if sb.host_log_blocks == 0 {
            return Ok((None, HostLogReplay::default()));
        }
        let region =
            HostLogRegion { first_block: sb.host_log_start(), blocks: sb.host_log_blocks };
        let (log, replay) = HostLog::open(disk.clone(), region)?;
        Ok((Some(Arc::new(log)), replay))
    }

    fn assemble(
        disk: SimDisk,
        jn: Arc<Journal>,
        sb: SuperBlock,
        clock: SimClock,
        host_log: Option<Arc<HostLog>>,
        host_replay: HostLogReplay,
    ) -> Arc<Episode> {
        let ep = Arc::new(Episode {
            disk,
            jn,
            clock,
            alloc: Mutex::new(AllocState {
                anode_rotor: layout::FIRST_FREE_ANODE,
                block_rotor: sb.data_start(),
            }),
            anode_locks: Mutex::new(HashMap::new()),
            vol_lock: Mutex::new(()),
            host_log,
            host_replay,
            me: Mutex::new(std::sync::Weak::new()),
            sb,
        });
        *ep.me.lock() = Arc::downgrade(&ep);
        ep
    }

    /// Returns a strong reference to this aggregate.
    ///
    /// # Panics
    ///
    /// Panics if called during destruction (never happens in practice:
    /// mounts hold strong references).
    pub(crate) fn self_arc(&self) -> Arc<Episode> {
        self.me.lock().upgrade().expect("Episode used after drop")
    }

    /// Returns the aggregate id.
    pub fn aggregate(&self) -> AggregateId {
        AggregateId(self.sb.aggregate)
    }

    /// Returns the aggregate superblock (static geometry).
    pub fn superblock(&self) -> SuperBlock {
        self.sb
    }

    /// Returns the journal, for statistics and explicit sync control.
    pub fn journal(&self) -> &Arc<Journal> {
        &self.jn
    }

    /// Returns the host journal ring, when the aggregate has one.
    pub fn host_log(&self) -> Option<&Arc<HostLog>> {
        self.host_log.as_ref()
    }

    /// What host-log replay recovered when this aggregate was opened:
    /// the durable host/lease facts and the last journaled epoch.
    pub fn host_replay(&self) -> &HostLogReplay {
        &self.host_replay
    }

    /// Returns the underlying disk, for statistics and crash injection.
    pub fn disk(&self) -> &SimDisk {
        &self.disk
    }

    /// Returns the simulated clock used for timestamps.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Forces the log and all dirty buffers to stable storage.
    pub fn sync_all(&self) -> DfsResult<()> {
        self.jn.flush_all()
    }

    /// Group commit: makes all buffered commit records durable without
    /// writing back data buffers (the cheap periodic sync of §2.2).
    pub fn sync_log(&self) -> DfsResult<()> {
        self.jn.sync()
    }

    /// Returns the per-anode lock for `idx`, creating it on demand.
    pub(crate) fn anode_lock(&self, idx: u32) -> Arc<RwLock<()>> {
        let mut locks = self.anode_locks.lock();
        locks.entry(idx).or_insert_with(|| Arc::new(RwLock::new(()))).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs_disk::DiskConfig;

    pub(crate) fn fresh(blocks: u32) -> Arc<Episode> {
        let disk = SimDisk::new(DiskConfig::with_blocks(blocks));
        Episode::format(disk, SimClock::new(), FormatParams::default()).unwrap()
    }

    #[test]
    fn format_and_reopen() {
        let disk = SimDisk::new(DiskConfig::with_blocks(8192));
        let ep = Episode::format(disk.clone(), SimClock::new(), FormatParams::default()).unwrap();
        let sb = ep.superblock();
        assert_eq!(sb.total_blocks, 8192);
        drop(ep);
        let (ep2, report) = Episode::open(disk, SimClock::new()).unwrap();
        assert!(!report.formatted, "journal was formatted, reopen is clean");
        assert_eq!(ep2.superblock(), sb);
    }

    #[test]
    fn format_reserves_refcounts_for_metadata() {
        let ep = fresh(8192);
        // Block 0 (superblock) and the log and anode table are reserved.
        assert_eq!(ep.block_refcount(0).unwrap(), 1);
        assert_eq!(ep.block_refcount(ep.sb.log_first).unwrap(), 1);
        assert_eq!(ep.block_refcount(ep.sb.anode_table_start).unwrap(), 1);
        // A block far into the data region is free.
        assert_eq!(ep.block_refcount(8000).unwrap(), 0);
    }

    #[test]
    fn format_too_small_disk_fails() {
        let disk = SimDisk::new(DiskConfig::with_blocks(128));
        match Episode::format(disk, SimClock::new(), FormatParams::default()) {
            Err(e) => assert_eq!(e, DfsError::NoSpace),
            Ok(_) => panic!("format of a too-small disk must fail"),
        }
    }

    #[test]
    fn open_rejects_unformatted_disk() {
        let disk = SimDisk::new(DiskConfig::with_blocks(1024));
        assert!(Episode::open(disk, SimClock::new()).is_err());
    }
}
