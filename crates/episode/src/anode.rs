//! The anode layer: open-ended disk containers (§2.4).
//!
//! An anode provides "an open-ended address space of disk storage and
//! nothing more". This module implements:
//!
//! * the anode table (allocation and persistence of descriptors),
//! * block mapping (direct, single- and double-indirect pointers),
//! * the block refcount table — anode 2 — which doubles as the free map
//!   (refcount zero means free) and carries the sharing counts that make
//!   volume cloning copy-on-write (§2.1),
//! * reading, writing (logged for metadata, unlogged for user data), and
//!   chunked truncation ("truncation of a file may be broken up to
//!   truncate only one block or a few blocks at a time", §2.2).

use crate::layout::{
    Anode, AnodeKind, ANODE_SIZE, FIRST_FREE_ANODE, NDIRECT, PTRS_PER_BLOCK, REFCOUNT_ANODE,
};
use crate::Episode;
use dfs_disk::BLOCK_SIZE;
use dfs_journal::TxnId;
use dfs_types::{DfsError, DfsResult};

/// Maximum blocks freed per transaction during chunked truncation.
pub const TRUNCATE_CHUNK: usize = 64;

/// Where a block pointer lives: in the anode or in an indirect block.
enum Slot {
    /// `direct[i]` of the anode itself.
    Direct(usize),
    /// Byte offset within an indirect block.
    Indirect { block: u32, offset: usize },
}

impl Episode {
    // ------------------------------------------------------------------
    // Anode table
    // ------------------------------------------------------------------

    /// Reads anode `idx` from the table.
    pub fn read_anode(&self, idx: u32) -> DfsResult<Anode> {
        if idx == 0 || idx >= self.sb.anode_count() {
            return Err(DfsError::Internal("anode index out of range"));
        }
        let (block, offset) = self.sb.anode_location(idx);
        let buf = self.jn.get(block)?;
        Anode::decode(&buf.read_at(offset, ANODE_SIZE))
    }

    /// Writes anode `idx` back to the table (logged).
    pub(crate) fn write_anode(&self, txn: TxnId, idx: u32, a: &Anode) -> DfsResult<()> {
        let (block, offset) = self.sb.anode_location(idx);
        let buf = self.jn.get(block)?;
        self.jn.update(txn, &buf, offset, &a.encode())
    }

    /// Allocates a fresh anode slot of the given kind.
    ///
    /// The slot's uniquifier is incremented so stale fids referring to a
    /// previous use of the slot are detectable.
    pub(crate) fn alloc_anode(
        &self,
        txn: TxnId,
        kind: AnodeKind,
        volume: u64,
        mode: u16,
        owner: u32,
        group: u32,
    ) -> DfsResult<(u32, Anode)> {
        let count = self.sb.anode_count();
        let span = count - FIRST_FREE_ANODE;
        // Hold the allocator lock across the whole scan-and-claim (as
        // alloc_block does): two concurrent allocations must not both
        // observe the same slot as free and clobber each other's anode.
        let mut alloc = self.alloc.lock();
        let start = alloc.anode_rotor.clamp(FIRST_FREE_ANODE, count - 1);
        for step in 0..span {
            let idx = FIRST_FREE_ANODE + (start - FIRST_FREE_ANODE + step) % span;
            let old = self.read_anode(idx)?;
            if old.kind == AnodeKind::Free {
                let now = self.clock.now().as_micros();
                let mut a = Anode::free();
                a.kind = kind;
                a.uniq = old.uniq.wrapping_add(1).max(1);
                a.mode = mode;
                a.owner = owner;
                a.group = group;
                a.nlink = 1;
                a.mtime = now;
                a.ctime = now;
                a.volume = volume;
                self.write_anode(txn, idx, &a)?;
                alloc.anode_rotor = idx + 1;
                return Ok((idx, a));
            }
        }
        Err(DfsError::NoSpace)
    }

    /// Marks anode `idx` free, preserving its uniquifier.
    pub(crate) fn free_anode_slot(&self, txn: TxnId, idx: u32) -> DfsResult<()> {
        let old = self.read_anode(idx)?;
        let mut a = Anode::free();
        a.uniq = old.uniq;
        self.write_anode(txn, idx, &a)
    }

    // ------------------------------------------------------------------
    // Block refcount table (anode 2)
    // ------------------------------------------------------------------

    /// Returns the physical block holding refcount entry for block `b`,
    /// plus the byte offset within it.
    fn rc_location(&self, b: u32) -> DfsResult<(u32, usize)> {
        let rc_anode = self.read_anode(REFCOUNT_ANODE)?;
        let byte = 2 * b as u64;
        let fblk = byte / BLOCK_SIZE as u64;
        let phys = self.map_block(&rc_anode, fblk)?;
        if phys == 0 {
            return Err(DfsError::Internal("refcount table hole"));
        }
        Ok((phys, (byte % BLOCK_SIZE as u64) as usize))
    }

    /// Returns the reference count of block `b` (0 = free).
    pub fn block_refcount(&self, b: u32) -> DfsResult<u16> {
        let (phys, off) = self.rc_location(b)?;
        Ok(self.jn.get(phys)?.u16_at(off))
    }

    fn set_refcount(&self, txn: TxnId, b: u32, v: u16) -> DfsResult<()> {
        let (phys, off) = self.rc_location(b)?;
        let buf = self.jn.get(phys)?;
        self.jn.update(txn, &buf, off, &v.to_le_bytes())
    }

    /// Increments the refcount of `b` (volume cloning shares blocks).
    pub(crate) fn incref_block(&self, txn: TxnId, b: u32) -> DfsResult<u16> {
        let cur = self.block_refcount(b)?;
        let next = cur.checked_add(1).ok_or(DfsError::Internal("refcount overflow"))?;
        self.set_refcount(txn, b, next)?;
        Ok(next)
    }

    /// Decrements the refcount of `b`; at zero the block is free.
    pub(crate) fn decref_block(&self, txn: TxnId, b: u32) -> DfsResult<u16> {
        let cur = self.block_refcount(b)?;
        if cur == 0 {
            return Err(DfsError::Internal("double free of block"));
        }
        self.set_refcount(txn, b, cur - 1)?;
        Ok(cur - 1)
    }

    /// Allocates one free block (refcount 0 → 1).
    pub(crate) fn alloc_block(&self, txn: TxnId) -> DfsResult<u32> {
        let total = self.sb.total_blocks;
        let data_start = self.sb.data_start();
        let span = total - data_start;
        let mut alloc = self.alloc.lock();
        let start = alloc.block_rotor.clamp(data_start, total - 1);
        for step in 0..span {
            let b = data_start + (start - data_start + step) % span;
            if self.block_refcount(b)? == 0 {
                self.set_refcount(txn, b, 1)?;
                alloc.block_rotor = if b + 1 >= total { data_start } else { b + 1 };
                return Ok(b);
            }
        }
        Err(DfsError::NoSpace)
    }

    // ------------------------------------------------------------------
    // Block mapping
    // ------------------------------------------------------------------

    /// Maps file block `fblk` of `a` to a physical block (0 = hole).
    pub fn map_block(&self, a: &Anode, fblk: u64) -> DfsResult<u32> {
        let per = PTRS_PER_BLOCK as u64;
        if fblk < NDIRECT as u64 {
            return Ok(a.direct[fblk as usize]);
        }
        let fblk = fblk - NDIRECT as u64;
        if fblk < per {
            if a.indirect == 0 {
                return Ok(0);
            }
            return Ok(self.jn.get(a.indirect)?.u32_at(4 * fblk as usize));
        }
        let fblk = fblk - per;
        if fblk >= per * per {
            return Err(DfsError::InvalidArgument);
        }
        if a.dindirect == 0 {
            return Ok(0);
        }
        let l1 = self.jn.get(a.dindirect)?.u32_at(4 * (fblk / per) as usize);
        if l1 == 0 {
            return Ok(0);
        }
        Ok(self.jn.get(l1)?.u32_at(4 * (fblk % per) as usize))
    }

    /// Allocates and zeroes a metadata block (logged).
    fn alloc_meta_block(&self, txn: TxnId) -> DfsResult<u32> {
        let b = self.alloc_block(txn)?;
        let buf = self.jn.get(b)?;
        self.jn.update_fill(txn, &buf, 0, BLOCK_SIZE, 0)?;
        Ok(b)
    }

    /// Copy-on-writes a shared *metadata* block, returning the writable
    /// block (the input if it was exclusively owned).
    fn cow_meta_block(&self, txn: TxnId, b: u32) -> DfsResult<u32> {
        if self.block_refcount(b)? <= 1 {
            return Ok(b);
        }
        let nb = self.alloc_block(txn)?;
        let old = self.jn.get(b)?.read_at(0, BLOCK_SIZE);
        let nbuf = self.jn.get(nb)?;
        self.jn.update(txn, &nbuf, 0, &old)?;
        self.decref_block(txn, b)?;
        Ok(nb)
    }

    /// Resolves (allocating and copy-on-writing indirect blocks as
    /// needed) the pointer slot for file block `fblk` of anode `idx`.
    ///
    /// Any change to `a`'s own pointer fields is made in memory; the
    /// caller must persist `a` with [`Episode::write_anode`].
    fn prepare_slot(&self, txn: TxnId, a: &mut Anode, fblk: u64) -> DfsResult<Slot> {
        let per = PTRS_PER_BLOCK as u64;
        if fblk < NDIRECT as u64 {
            return Ok(Slot::Direct(fblk as usize));
        }
        let rel = fblk - NDIRECT as u64;
        if rel < per {
            if a.indirect == 0 {
                a.indirect = self.alloc_meta_block(txn)?;
            } else {
                a.indirect = self.cow_meta_block(txn, a.indirect)?;
            }
            return Ok(Slot::Indirect { block: a.indirect, offset: 4 * rel as usize });
        }
        let rel = rel - per;
        if rel >= per * per {
            return Err(DfsError::InvalidArgument);
        }
        if a.dindirect == 0 {
            a.dindirect = self.alloc_meta_block(txn)?;
        } else {
            a.dindirect = self.cow_meta_block(txn, a.dindirect)?;
        }
        let dbuf = self.jn.get(a.dindirect)?;
        let l1_off = 4 * (rel / per) as usize;
        let mut l1 = dbuf.u32_at(l1_off);
        if l1 == 0 {
            l1 = self.alloc_meta_block(txn)?;
            self.jn.update(txn, &dbuf, l1_off, &l1.to_le_bytes())?;
        } else {
            let cowed = self.cow_meta_block(txn, l1)?;
            if cowed != l1 {
                self.jn.update(txn, &dbuf, l1_off, &cowed.to_le_bytes())?;
                l1 = cowed;
            }
        }
        Ok(Slot::Indirect { block: l1, offset: 4 * (rel % per) as usize })
    }

    fn read_slot(&self, a: &Anode, slot: &Slot) -> DfsResult<u32> {
        match slot {
            Slot::Direct(i) => Ok(a.direct[*i]),
            Slot::Indirect { block, offset } => Ok(self.jn.get(*block)?.u32_at(*offset)),
        }
    }

    fn write_slot(&self, txn: TxnId, a: &mut Anode, slot: &Slot, ptr: u32) -> DfsResult<()> {
        match slot {
            Slot::Direct(i) => {
                a.direct[*i] = ptr;
                Ok(())
            }
            Slot::Indirect { block, offset } => {
                let buf = self.jn.get(*block)?;
                self.jn.update(txn, &buf, *offset, &ptr.to_le_bytes())
            }
        }
    }

    /// Returns a writable physical block for file block `fblk`,
    /// allocating holes and breaking copy-on-write sharing.
    ///
    /// `logged_copy` controls whether the content copy of a shared block
    /// goes through the log (metadata) or not (user data).
    pub(crate) fn block_for_write(
        &self,
        txn: TxnId,
        a: &mut Anode,
        fblk: u64,
        logged_copy: bool,
    ) -> DfsResult<u32> {
        let slot = self.prepare_slot(txn, a, fblk)?;
        let cur = self.read_slot(a, &slot)?;
        if cur == 0 {
            let b = self.alloc_block(txn)?;
            self.write_slot(txn, a, &slot, b)?;
            return Ok(b);
        }
        if self.block_refcount(cur)? <= 1 {
            return Ok(cur);
        }
        // Shared with a clone: copy before write (§2.1).
        let nb = self.alloc_block(txn)?;
        let old = self.jn.get(cur)?.read_at(0, BLOCK_SIZE);
        let nbuf = self.jn.get(nb)?;
        if logged_copy {
            self.jn.update(txn, &nbuf, 0, &old)?;
        } else {
            self.jn.write_data(&nbuf, 0, &old)?;
        }
        self.decref_block(txn, cur)?;
        self.write_slot(txn, a, &slot, nb)?;
        Ok(nb)
    }

    // ------------------------------------------------------------------
    // Container read/write/truncate
    // ------------------------------------------------------------------

    /// Reads `len` bytes at `offset` from the container, zero-filling
    /// holes and clamping at the container length.
    pub fn anode_read(&self, a: &Anode, offset: u64, len: usize) -> DfsResult<Vec<u8>> {
        if offset >= a.length {
            return Ok(Vec::new());
        }
        let len = len.min((a.length - offset) as usize);
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while out.len() < len {
            let fblk = pos / BLOCK_SIZE as u64;
            let within = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - within).min(len - out.len());
            let phys = self.map_block(a, fblk)?;
            if phys == 0 {
                out.extend(std::iter::repeat_n(0, n));
            } else {
                out.extend_from_slice(&self.jn.get(phys)?.read_at(within, n));
            }
            pos += n as u64;
        }
        Ok(out)
    }

    /// Writes `data` at `offset` in the container, extending it and
    /// updating `a.length` in memory (caller persists the anode).
    ///
    /// `logged` must be true for metadata containers (directories, ACLs,
    /// volume headers) and false for user file data (§2.2).
    pub(crate) fn anode_write(
        &self,
        txn: TxnId,
        a: &mut Anode,
        offset: u64,
        data: &[u8],
        logged: bool,
    ) -> DfsResult<()> {
        let mut pos = offset;
        let mut done = 0usize;
        while done < data.len() {
            let fblk = pos / BLOCK_SIZE as u64;
            let within = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - within).min(data.len() - done);
            let phys = self.block_for_write(txn, a, fblk, logged)?;
            let buf = self.jn.get(phys)?;
            if logged {
                self.jn.update(txn, &buf, within, &data[done..done + n])?;
            } else {
                self.jn.write_data(&buf, within, &data[done..done + n])?;
            }
            pos += n as u64;
            done += n;
        }
        a.length = a.length.max(offset + data.len() as u64);
        Ok(())
    }

    /// Forces the data blocks backing `[offset, offset + len)` of `a`
    /// home to stable storage. User data is unlogged (metadata-only
    /// journaling), so an ack whose durability contract covers file
    /// *contents* — the store-back path, where the client discards its
    /// dirty pages on the strength of the reply — must write the touched
    /// buffers through; forcing the log alone only hardens the metadata.
    pub(crate) fn anode_force_home(&self, a: &Anode, offset: u64, len: u64) -> DfsResult<()> {
        if len == 0 {
            return Ok(());
        }
        let mut fblk = offset / BLOCK_SIZE as u64;
        let last = (offset + len).div_ceil(BLOCK_SIZE as u64);
        while fblk < last {
            let phys = self.map_block(a, fblk)?;
            if phys != 0 {
                let buf = self.jn.get(phys)?;
                self.jn.writeback_handle(&buf)?;
            }
            fblk += 1;
        }
        Ok(())
    }

    /// Truncates (or extends) container `idx` to `new_len` using a
    /// sequence of short transactions, each leaving the file system
    /// consistent (§2.2).
    ///
    /// Indirect skeleton blocks are freed only when their whole range is
    /// truncated; a partially-truncated file may keep empty indirect
    /// blocks, which the salvager accounts as live.
    pub(crate) fn anode_truncate(&self, idx: u32, new_len: u64) -> DfsResult<()> {
        let per = PTRS_PER_BLOCK as u64;
        loop {
            let txn = self.jn.begin();
            let mut a = self.read_anode(idx)?;
            if new_len >= a.length {
                a.length = new_len;
                a.mtime = self.clock.now().as_micros();
                a.data_version += 1;
                self.write_anode(txn, idx, &a)?;
                self.jn.commit(txn)?;
                return Ok(());
            }
            let keep = new_len.div_ceil(BLOCK_SIZE as u64);
            let old_blocks = a.length.div_ceil(BLOCK_SIZE as u64);
            let first = old_blocks.saturating_sub(TRUNCATE_CHUNK as u64).max(keep);
            for fblk in (first..old_blocks).rev() {
                let phys = self.map_block(&a, fblk)?;
                if phys != 0 {
                    self.decref_block(txn, phys)?;
                    let slot = self.prepare_slot(txn, &mut a, fblk)?;
                    self.write_slot(txn, &mut a, &slot, 0)?;
                }
            }
            let done = first == keep;
            if done {
                // POSIX: bytes between the new end and the old end must
                // read as zero if the file is later extended. Zero the
                // kept final block's tail (user data: unlogged).
                let tail = new_len % BLOCK_SIZE as u64;
                if tail != 0 && new_len < a.length {
                    let fblk = new_len / BLOCK_SIZE as u64;
                    if self.map_block(&a, fblk)? != 0 {
                        let phys = self.block_for_write(txn, &mut a, fblk, false)?;
                        let buf = self.jn.get(phys)?;
                        self.jn.write_data(
                            &buf,
                            tail as usize,
                            &vec![0u8; BLOCK_SIZE - tail as usize],
                        )?;
                    }
                }
                // Free indirect skeletons whose whole range is gone.
                if keep <= NDIRECT as u64 + per && a.dindirect != 0 {
                    let dbuf = self.jn.get(a.dindirect)?;
                    for i in 0..PTRS_PER_BLOCK {
                        let l1 = dbuf.u32_at(4 * i);
                        if l1 != 0 {
                            self.decref_block(txn, l1)?;
                        }
                    }
                    self.decref_block(txn, a.dindirect)?;
                    a.dindirect = 0;
                }
                if keep <= NDIRECT as u64 && a.indirect != 0 {
                    self.decref_block(txn, a.indirect)?;
                    a.indirect = 0;
                }
                a.length = new_len;
                a.mtime = self.clock.now().as_micros();
                a.data_version += 1;
            } else {
                a.length = first * BLOCK_SIZE as u64;
            }
            self.write_anode(txn, idx, &a)?;
            self.jn.commit(txn)?;
            if done {
                return Ok(());
            }
        }
    }

    /// Frees all storage of anode `idx` (data, indirect blocks, its ACL
    /// container) and releases the slot.
    pub(crate) fn destroy_anode(&self, idx: u32) -> DfsResult<()> {
        let a = self.read_anode(idx)?;
        if a.acl_anode != 0 {
            self.anode_truncate(a.acl_anode, 0)?;
            let txn = self.jn.begin();
            self.free_anode_slot(txn, a.acl_anode)?;
            self.jn.commit(txn)?;
        }
        self.anode_truncate(idx, 0)?;
        let txn = self.jn.begin();
        self.free_anode_slot(txn, idx)?;
        self.jn.commit(txn)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::fresh;

    #[test]
    fn alloc_and_free_anode_bumps_uniq() {
        let ep = fresh(8192);
        let txn = ep.jn.begin();
        let (idx, a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 10, 20).unwrap();
        assert_eq!(a.uniq, 1);
        ep.jn.commit(txn).unwrap();

        let txn = ep.jn.begin();
        ep.free_anode_slot(txn, idx).unwrap();
        ep.jn.commit(txn).unwrap();
        assert_eq!(ep.read_anode(idx).unwrap().kind, AnodeKind::Free);

        // Force the rotor back around to reuse the same slot.
        ep.alloc.lock().anode_rotor = idx;
        let txn = ep.jn.begin();
        let (idx2, a2) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 10, 20).unwrap();
        ep.jn.commit(txn).unwrap();
        assert_eq!(idx2, idx);
        assert_eq!(a2.uniq, 2, "slot reuse must bump the uniquifier");
    }

    #[test]
    fn block_alloc_and_refcounts() {
        let ep = fresh(8192);
        let txn = ep.jn.begin();
        let b = ep.alloc_block(txn).unwrap();
        assert_eq!(ep.block_refcount(b).unwrap(), 1);
        assert_eq!(ep.incref_block(txn, b).unwrap(), 2);
        assert_eq!(ep.decref_block(txn, b).unwrap(), 1);
        assert_eq!(ep.decref_block(txn, b).unwrap(), 0);
        ep.jn.commit(txn).unwrap();
        // Freed block is allocatable again.
        ep.alloc.lock().block_rotor = b;
        let txn = ep.jn.begin();
        assert_eq!(ep.alloc_block(txn).unwrap(), b);
        ep.jn.commit(txn).unwrap();
    }

    #[test]
    fn double_free_is_detected() {
        let ep = fresh(8192);
        let txn = ep.jn.begin();
        let b = ep.alloc_block(txn).unwrap();
        ep.decref_block(txn, b).unwrap();
        assert!(ep.decref_block(txn, b).is_err());
        ep.jn.commit(txn).unwrap();
    }

    #[test]
    fn write_read_small() {
        let ep = fresh(8192);
        let txn = ep.jn.begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 0, 0).unwrap();
        ep.anode_write(txn, &mut a, 0, b"hello world", false).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.jn.commit(txn).unwrap();
        let a = ep.read_anode(idx).unwrap();
        assert_eq!(a.length, 11);
        assert_eq!(ep.anode_read(&a, 0, 64).unwrap(), b"hello world");
        assert_eq!(ep.anode_read(&a, 6, 5).unwrap(), b"world");
    }

    #[test]
    fn write_read_spanning_indirect_blocks() {
        let ep = fresh(16384);
        let txn = ep.jn.begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 0, 0).unwrap();
        // 60 blocks: crosses direct (8) into single indirect range.
        let data: Vec<u8> = (0..60 * BLOCK_SIZE).map(|i| (i % 251) as u8).collect();
        ep.anode_write(txn, &mut a, 0, &data, false).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.jn.commit(txn).unwrap();
        let a = ep.read_anode(idx).unwrap();
        assert!(a.indirect != 0);
        let back = ep.anode_read(&a, 0, data.len()).unwrap();
        assert_eq!(back, data);
        // Unaligned read across a block boundary.
        let off = 5 * BLOCK_SIZE as u64 - 100;
        assert_eq!(ep.anode_read(&a, off, 200).unwrap(), data[off as usize..off as usize + 200]);
    }

    #[test]
    fn sparse_holes_read_as_zeros() {
        let ep = fresh(16384);
        let txn = ep.jn.begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 0, 0).unwrap();
        ep.anode_write(txn, &mut a, 20 * BLOCK_SIZE as u64, b"tail", false).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.jn.commit(txn).unwrap();
        let a = ep.read_anode(idx).unwrap();
        assert_eq!(ep.anode_read(&a, 0, 16).unwrap(), vec![0; 16]);
        assert_eq!(ep.anode_read(&a, 20 * BLOCK_SIZE as u64, 4).unwrap(), b"tail");
        assert_eq!(ep.map_block(&a, 3).unwrap(), 0, "hole has no block");
    }

    #[test]
    fn double_indirect_mapping() {
        let ep = fresh(16384);
        let txn = ep.jn.begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 0, 0).unwrap();
        // Block index beyond 8 + 1024 needs the double-indirect tree.
        let fblk = (NDIRECT + PTRS_PER_BLOCK + 5) as u64;
        ep.anode_write(txn, &mut a, fblk * BLOCK_SIZE as u64, b"deep", false).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.jn.commit(txn).unwrap();
        let a = ep.read_anode(idx).unwrap();
        assert!(a.dindirect != 0);
        assert_eq!(ep.anode_read(&a, fblk * BLOCK_SIZE as u64, 4).unwrap(), b"deep");
    }

    #[test]
    fn truncate_frees_blocks_in_chunks() {
        let ep = fresh(16384);
        let txn = ep.jn.begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 0, 0).unwrap();
        let data = vec![7u8; 200 * BLOCK_SIZE];
        ep.anode_write(txn, &mut a, 0, &data, false).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.jn.commit(txn).unwrap();
        let before = ep.jn.stats().txns_begun;
        ep.anode_truncate(idx, 0).unwrap();
        let txns_used = ep.jn.stats().txns_begun - before;
        assert!(txns_used >= 3, "200-block truncate must split transactions, used {txns_used}");
        let a = ep.read_anode(idx).unwrap();
        assert_eq!(a.length, 0);
        assert_eq!(a.indirect, 0);
        // All data blocks are free again.
        let free_again = (0..10u64).all(|f| ep.map_block(&a, f).unwrap() == 0);
        assert!(free_again);
    }

    #[test]
    fn truncate_partial_keeps_prefix() {
        let ep = fresh(16384);
        let txn = ep.jn.begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 0, 0).unwrap();
        let data: Vec<u8> = (0..20 * BLOCK_SIZE).map(|i| (i / BLOCK_SIZE) as u8).collect();
        ep.anode_write(txn, &mut a, 0, &data, false).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.jn.commit(txn).unwrap();
        ep.anode_truncate(idx, 5 * BLOCK_SIZE as u64 + 10).unwrap();
        let a = ep.read_anode(idx).unwrap();
        assert_eq!(a.length, 5 * BLOCK_SIZE as u64 + 10);
        let back = ep.anode_read(&a, 0, 6 * BLOCK_SIZE).unwrap();
        assert_eq!(back.len(), 5 * BLOCK_SIZE + 10);
        assert_eq!(back[5 * BLOCK_SIZE], 5, "kept data intact");
        assert_eq!(ep.map_block(&a, 10).unwrap(), 0, "tail blocks freed");
    }

    #[test]
    fn extend_via_truncate_grows_length_without_blocks() {
        let ep = fresh(8192);
        let txn = ep.jn.begin();
        let (idx, a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 0, 0).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.jn.commit(txn).unwrap();
        ep.anode_truncate(idx, 10_000).unwrap();
        let a = ep.read_anode(idx).unwrap();
        assert_eq!(a.length, 10_000);
        assert_eq!(ep.map_block(&a, 0).unwrap(), 0, "extension allocates nothing");
        assert_eq!(ep.anode_read(&a, 0, 16).unwrap(), vec![0; 16]);
    }

    #[test]
    fn destroy_anode_releases_everything() {
        let ep = fresh(16384);
        let txn = ep.jn.begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 0, 0).unwrap();
        ep.anode_write(txn, &mut a, 0, &vec![1u8; 30 * BLOCK_SIZE], false).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.jn.commit(txn).unwrap();
        let b0 = ep.map_block(&ep.read_anode(idx).unwrap(), 0).unwrap();
        ep.destroy_anode(idx).unwrap();
        assert_eq!(ep.read_anode(idx).unwrap().kind, AnodeKind::Free);
        assert_eq!(ep.block_refcount(b0).unwrap(), 0, "data blocks freed");
    }

    #[test]
    fn cow_write_copies_shared_block() {
        let ep = fresh(8192);
        let txn = ep.jn.begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 0, 0).unwrap();
        ep.anode_write(txn, &mut a, 0, b"original", false).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        let shared = ep.map_block(&a, 0).unwrap();
        // Simulate a clone: bump the block's refcount.
        ep.incref_block(txn, shared).unwrap();
        ep.jn.commit(txn).unwrap();

        let txn = ep.jn.begin();
        let mut a = ep.read_anode(idx).unwrap();
        ep.anode_write(txn, &mut a, 0, b"MUTATED!", false).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.jn.commit(txn).unwrap();

        let a = ep.read_anode(idx).unwrap();
        let nb = ep.map_block(&a, 0).unwrap();
        assert_ne!(nb, shared, "write must copy the shared block");
        assert_eq!(ep.block_refcount(shared).unwrap(), 1, "snapshot keeps the original");
        assert_eq!(ep.anode_read(&a, 0, 8).unwrap(), b"MUTATED!");
        // The original block still holds the old content.
        assert_eq!(&ep.jn.get(shared).unwrap().read_at(0, 8), b"original");
    }

    #[test]
    fn anode_out_of_range_rejected() {
        let ep = fresh(8192);
        assert!(ep.read_anode(0).is_err());
        assert!(ep.read_anode(u32::MAX).is_err());
    }
}
