//! Volumes and the volume/aggregate distinction (§2.1).
//!
//! A *volume* is a mountable subtree; an *aggregate* is the unit of disk
//! storage. "Administration of networks of thousands of users is not
//! practical without this distinction": volumes can be created, deleted,
//! **cloned** (read-only copy-on-write snapshots sharing data blocks with
//! the original), **dumped** (fully or incrementally, for motion between
//! servers and for lazy replication), and **restored**.
//!
//! On disk, the volume table is anode 1; each volume has a header anode
//! whose container holds the volume's identity and its vnode map — the
//! per-volume translation from vnode index (the fid component that
//! survives volume moves) to anode slot.

use crate::layout::{Anode, AnodeKind};
use crate::Episode;
use dfs_journal::TxnId;
use dfs_types::{DfsError, DfsResult, FileStatus, FileType, Fid, VnodeId, VolumeId};
use dfs_vfs::{DirEntry, DumpFile, VolumeDump, VolumeInfo};

/// Byte size of a volume-table entry: volume id + header anode + flags.
const VT_ENTRY: usize = 16;

/// Volume header layout within the header anode's container: id at 0
/// (u64), flags at 8 (u32), root vnode at 12 (u32), parent volume at 16
/// (u64), base data-version at 24 (u64), next uniquifier at 32 (u32),
/// then the name.
const VH_NAME: u64 = 36;
/// Per-volume version counter: every mutation gets the next value and
/// stamps it into the changed file's `data_version`, so "changed since
/// version V" is a meaningful per-volume question (used by incremental
/// dumps, §3.8).
const VH_VERSION: u64 = 68;
/// First byte of the vnode map; each entry is a u32 anode index.
const VH_MAP: u64 = 76;

/// Read-only flag bit in the header flags word.
const VF_READONLY: u32 = 1;

/// Decoded volume header (fixed part).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VolumeHeader {
    /// The volume's cell-wide id.
    pub id: u64,
    /// Flags word (bit 0: read-only).
    pub flags: u32,
    /// Vnode index of the root directory.
    pub root_vnode: u32,
    /// Parent volume id for clones (0 = none).
    pub parent: u64,
    /// Data-version base recorded at restore time (replica bookkeeping).
    pub base_dv: u64,
    /// Next fid uniquifier to hand out.
    pub next_uniq: u32,
    /// Per-volume mutation version counter.
    pub version: u64,
    /// Volume name.
    pub name: String,
}

impl VolumeHeader {
    /// Returns true if the volume is a read-only clone or replica.
    pub fn read_only(&self) -> bool {
        self.flags & VF_READONLY != 0
    }
}

impl Episode {
    // ------------------------------------------------------------------
    // Volume table (anode 1)
    // ------------------------------------------------------------------

    /// Finds a volume's table slot, returning (entry offset, header anode).
    pub(crate) fn voltable_find(&self, vol: VolumeId) -> DfsResult<Option<(u64, u32)>> {
        let vt = self.read_anode(crate::layout::VOLTABLE_ANODE)?;
        let data = self.anode_read(&vt, 0, vt.length as usize)?;
        for (i, chunk) in data.chunks_exact(VT_ENTRY).enumerate() {
            let id = u64::from_le_bytes(chunk[0..8].try_into().unwrap());
            if id == vol.0 {
                let header = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
                return Ok(Some(((i * VT_ENTRY) as u64, header)));
            }
        }
        Ok(None)
    }

    fn voltable_insert(&self, txn: TxnId, vol: VolumeId, header: u32) -> DfsResult<()> {
        let mut vt = self.read_anode(crate::layout::VOLTABLE_ANODE)?;
        let data = self.anode_read(&vt, 0, vt.length as usize)?;
        let mut entry = [0u8; VT_ENTRY];
        entry[0..8].copy_from_slice(&vol.0.to_le_bytes());
        entry[8..12].copy_from_slice(&header.to_le_bytes());
        // Reuse a free slot if one exists, else append.
        let offset = data
            .chunks_exact(VT_ENTRY)
            .position(|c| u64::from_le_bytes(c[0..8].try_into().unwrap()) == 0)
            .map(|i| (i * VT_ENTRY) as u64)
            .unwrap_or(vt.length);
        self.anode_write(txn, &mut vt, offset, &entry, true)?;
        self.write_anode(txn, crate::layout::VOLTABLE_ANODE, &vt)
    }

    fn voltable_clear(&self, txn: TxnId, offset: u64) -> DfsResult<()> {
        let mut vt = self.read_anode(crate::layout::VOLTABLE_ANODE)?;
        self.anode_write(txn, &mut vt, offset, &[0u8; VT_ENTRY], true)?;
        self.write_anode(txn, crate::layout::VOLTABLE_ANODE, &vt)
    }

    /// Lists (volume id, header anode) of every volume on the aggregate.
    pub(crate) fn voltable_list(&self) -> DfsResult<Vec<(VolumeId, u32)>> {
        let vt = self.read_anode(crate::layout::VOLTABLE_ANODE)?;
        let data = self.anode_read(&vt, 0, vt.length as usize)?;
        Ok(data
            .chunks_exact(VT_ENTRY)
            .filter_map(|c| {
                let id = u64::from_le_bytes(c[0..8].try_into().unwrap());
                if id == 0 {
                    return None;
                }
                let header = u32::from_le_bytes(c[8..12].try_into().unwrap());
                Some((VolumeId(id), header))
            })
            .collect())
    }

    // ------------------------------------------------------------------
    // Volume headers and vnode maps
    // ------------------------------------------------------------------

    /// Reads and decodes a volume header.
    pub(crate) fn read_volume_header(&self, header_anode: u32) -> DfsResult<VolumeHeader> {
        let a = self.read_anode(header_anode)?;
        let fixed = self.anode_read(&a, 0, VH_MAP as usize)?;
        if fixed.len() < VH_MAP as usize {
            return Err(DfsError::Internal("short volume header"));
        }
        let name_len = fixed[VH_NAME as usize] as usize;
        let name = String::from_utf8_lossy(
            &fixed[VH_NAME as usize + 1..VH_NAME as usize + 1 + name_len.min(31)],
        )
        .into_owned();
        Ok(VolumeHeader {
            id: u64::from_le_bytes(fixed[0..8].try_into().unwrap()),
            flags: u32::from_le_bytes(fixed[8..12].try_into().unwrap()),
            root_vnode: u32::from_le_bytes(fixed[12..16].try_into().unwrap()),
            parent: u64::from_le_bytes(fixed[16..24].try_into().unwrap()),
            base_dv: u64::from_le_bytes(fixed[24..32].try_into().unwrap()),
            next_uniq: u32::from_le_bytes(fixed[32..36].try_into().unwrap()),
            version: u64::from_le_bytes(
                fixed[VH_VERSION as usize..VH_VERSION as usize + 8].try_into().unwrap(),
            ),
            name,
        })
    }

    // Read-modify-write callers on a *live* volume must hold the header
    // anode's write lock; a racing writer restoring a stale descriptor
    // copy can otherwise revert the vnode map's length (fids then
    // resolve to slot 0 — spurious StaleFid).
    fn write_volume_header_fixed(
        &self,
        txn: TxnId,
        header_anode: u32,
        vh: &VolumeHeader,
    ) -> DfsResult<()> {
        let mut fixed = vec![0u8; VH_MAP as usize];
        fixed[0..8].copy_from_slice(&vh.id.to_le_bytes());
        fixed[8..12].copy_from_slice(&vh.flags.to_le_bytes());
        fixed[12..16].copy_from_slice(&vh.root_vnode.to_le_bytes());
        fixed[16..24].copy_from_slice(&vh.parent.to_le_bytes());
        fixed[24..32].copy_from_slice(&vh.base_dv.to_le_bytes());
        fixed[32..36].copy_from_slice(&vh.next_uniq.to_le_bytes());
        let name = vh.name.as_bytes();
        let n = name.len().min(31);
        fixed[VH_NAME as usize] = n as u8;
        fixed[VH_NAME as usize + 1..VH_NAME as usize + 1 + n].copy_from_slice(&name[..n]);
        fixed[VH_VERSION as usize..VH_VERSION as usize + 8]
            .copy_from_slice(&vh.version.to_le_bytes());
        let mut a = self.read_anode(header_anode)?;
        self.anode_write(txn, &mut a, 0, &fixed, true)?;
        self.write_anode(txn, header_anode, &a)
    }

    /// Returns the anode slot mapped to vnode `v` (0 = free).
    pub(crate) fn vnode_get(&self, header_anode: u32, v: u32) -> DfsResult<u32> {
        let a = self.read_anode(header_anode)?;
        let off = VH_MAP + 4 * v as u64;
        if off + 4 > a.length {
            return Ok(0);
        }
        let bytes = self.anode_read(&a, off, 4)?;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Sets vnode `v`'s anode slot (0 frees the vnode index).
    pub(crate) fn vnode_set(&self, txn: TxnId, header_anode: u32, v: u32, slot: u32) -> DfsResult<()> {
        let lock = self.anode_lock(header_anode);
        let _g = lock.write();
        self.vnode_set_locked(txn, header_anode, v, slot)
    }

    /// [`Episode::vnode_set`] body; caller holds the header anode lock.
    fn vnode_set_locked(&self, txn: TxnId, header_anode: u32, v: u32, slot: u32) -> DfsResult<()> {
        let mut a = self.read_anode(header_anode)?;
        let off = VH_MAP + 4 * v as u64;
        self.anode_write(txn, &mut a, off, &slot.to_le_bytes(), true)?;
        self.write_anode(txn, header_anode, &a)
    }

    /// Allocates the lowest free vnode index and maps it to `slot`.
    pub(crate) fn vnode_alloc(&self, txn: TxnId, header_anode: u32, slot: u32) -> DfsResult<u32> {
        let lock = self.anode_lock(header_anode);
        let _g = lock.write();
        let a = self.read_anode(header_anode)?;
        let map_len = (a.length.saturating_sub(VH_MAP)) as usize / 4;
        let map = self.anode_read(&a, VH_MAP, map_len * 4)?;
        let hole = (1..map_len)
            .find(|&i| u32::from_le_bytes(map[4 * i..4 * i + 4].try_into().unwrap()) == 0);
        let v = hole.unwrap_or(map_len.max(1)) as u32;
        self.vnode_set_locked(txn, header_anode, v, slot)?;
        Ok(v)
    }

    /// Lists every live (vnode index, anode slot) pair of a volume.
    pub(crate) fn vnode_list(&self, header_anode: u32) -> DfsResult<Vec<(u32, u32)>> {
        let a = self.read_anode(header_anode)?;
        if a.length <= VH_MAP {
            return Ok(Vec::new());
        }
        let map = self.anode_read(&a, VH_MAP, (a.length - VH_MAP) as usize)?;
        Ok(map
            .chunks_exact(4)
            .enumerate()
            .skip(1)
            .filter_map(|(i, c)| {
                let slot = u32::from_le_bytes(c.try_into().unwrap());
                (slot != 0).then_some((i as u32, slot))
            })
            .collect())
    }

    /// Allocates the next fid uniquifier for the volume.
    pub(crate) fn next_uniq(&self, txn: TxnId, header_anode: u32) -> DfsResult<u32> {
        let lock = self.anode_lock(header_anode);
        let _g = lock.write();
        let mut vh = self.read_volume_header(header_anode)?;
        vh.next_uniq += 1;
        let u = vh.next_uniq;
        self.write_volume_header_fixed(txn, header_anode, &vh)?;
        Ok(u)
    }

    /// Bumps and returns the per-volume mutation version.
    ///
    /// Mutating operations stamp the result into the changed file's
    /// `data_version`, making versions comparable volume-wide.
    pub(crate) fn bump_volume_version(&self, txn: TxnId, header_anode: u32) -> DfsResult<u64> {
        let lock = self.anode_lock(header_anode);
        let _g = lock.write();
        let mut vh = self.read_volume_header(header_anode)?;
        vh.version += 1;
        let v = vh.version;
        self.write_volume_header_fixed(txn, header_anode, &vh)?;
        Ok(v)
    }

    // ------------------------------------------------------------------
    // Volume operations
    // ------------------------------------------------------------------

    /// Creates an empty read-write volume with a root directory.
    pub fn create_volume(&self, id: VolumeId, name: &str) -> DfsResult<()> {
        if id.0 == 0 {
            return Err(DfsError::InvalidArgument);
        }
        let _guard = self.vol_lock.lock();
        if self.voltable_find(id)?.is_some() {
            return Err(DfsError::Exists);
        }
        let txn = self.jn.begin();
        let (header, _) = self.alloc_anode(txn, AnodeKind::Meta, id.0, 0, 0, 0)?;
        let vh = VolumeHeader {
            id: id.0,
            flags: 0,
            root_vnode: 1,
            parent: 0,
            base_dv: 0,
            next_uniq: 1,
            version: 0,
            name: name.to_string(),
        };
        self.write_volume_header_fixed(txn, header, &vh)?;
        // Root directory: vnode 1, uniq 1.
        let (root_slot, mut root) =
            self.alloc_anode(txn, AnodeKind::Directory, id.0, 0o755, 0, 0)?;
        root.uniq = 1;
        root.nlink = 2;
        self.write_anode(txn, root_slot, &root)?;
        self.vnode_set(txn, header, 1, root_slot)?;
        self.voltable_insert(txn, id, header)?;
        self.jn.commit(txn)?;
        // Volume creation is an administrative operation: make it durable.
        self.jn.sync()
    }

    /// Deletes a volume, freeing all of its storage.
    pub fn delete_volume(&self, id: VolumeId) -> DfsResult<()> {
        let _guard = self.vol_lock.lock();
        let (offset, header) = self.voltable_find(id)?.ok_or(DfsError::NoSuchVolume)?;
        for (_, slot) in self.vnode_list(header)? {
            self.destroy_anode(slot)?;
        }
        self.destroy_anode(header)?;
        let txn = self.jn.begin();
        self.voltable_clear(txn, offset)?;
        self.jn.commit(txn)?;
        self.jn.sync()
    }

    /// Clones `src` into a read-only snapshot `clone_id` (§2.1).
    ///
    /// "A copy-on-write duplicate of a file can be created, in which,
    /// instead of data blocks and indirect blocks, there are pointers to
    /// the corresponding blocks of the original." Every block referenced
    /// by the source has its refcount raised; the clone's anodes are
    /// fresh descriptors sharing those blocks. Cost is proportional to
    /// metadata, not data.
    pub fn clone_volume(&self, src: VolumeId, clone_id: VolumeId, name: &str) -> DfsResult<()> {
        if clone_id.0 == 0 || clone_id == src {
            return Err(DfsError::InvalidArgument);
        }
        let _guard = self.vol_lock.lock();
        let (_, src_header) = self.voltable_find(src)?.ok_or(DfsError::NoSuchVolume)?;
        if self.voltable_find(clone_id)?.is_some() {
            return Err(DfsError::Exists);
        }
        let src_vh = self.read_volume_header(src_header)?;

        let txn = self.jn.begin();
        let (header, _) = self.alloc_anode(txn, AnodeKind::Meta, clone_id.0, 0, 0, 0)?;
        let vh = VolumeHeader {
            id: clone_id.0,
            flags: VF_READONLY,
            root_vnode: src_vh.root_vnode,
            parent: src.0,
            base_dv: 0,
            next_uniq: src_vh.next_uniq,
            version: src_vh.version,
            name: name.to_string(),
        };
        self.write_volume_header_fixed(txn, header, &vh)?;
        self.voltable_insert(txn, clone_id, header)?;
        self.jn.commit(txn)?;

        // One short transaction per vnode keeps transactions small.
        for (v, src_slot) in self.vnode_list(src_header)? {
            let txn = self.jn.begin();
            let src_anode = self.read_anode(src_slot)?;
            let mut copy = src_anode.clone();
            copy.volume = clone_id.0;
            // Clone the ACL container descriptor too, sharing its blocks.
            if src_anode.acl_anode != 0 {
                let acl_src = self.read_anode(src_anode.acl_anode)?;
                let mut acl_copy = acl_src.clone();
                acl_copy.volume = clone_id.0;
                let (acl_slot, _) =
                    self.alloc_anode(txn, AnodeKind::Meta, clone_id.0, 0, 0, 0)?;
                self.write_anode(txn, acl_slot, &acl_copy)?;
                self.incref_anode_blocks(txn, &acl_src)?;
                copy.acl_anode = acl_slot;
            }
            let (slot, _) = self.alloc_anode(txn, AnodeKind::Meta, clone_id.0, 0, 0, 0)?;
            self.write_anode(txn, slot, &copy)?;
            self.incref_anode_blocks(txn, &src_anode)?;
            self.vnode_set(txn, header, v, slot)?;
            self.jn.commit(txn)?;
        }
        self.jn.sync()
    }

    /// Raises the refcount of every block an anode references: data
    /// blocks, indirect blocks, and the double-indirect tree.
    fn incref_anode_blocks(&self, txn: TxnId, a: &Anode) -> DfsResult<()> {
        for &d in &a.direct {
            if d != 0 {
                self.incref_block(txn, d)?;
            }
        }
        if a.indirect != 0 {
            self.incref_block(txn, a.indirect)?;
            let buf = self.jn.get(a.indirect)?;
            for i in 0..crate::layout::PTRS_PER_BLOCK {
                let p = buf.u32_at(4 * i);
                if p != 0 {
                    self.incref_block(txn, p)?;
                }
            }
        }
        if a.dindirect != 0 {
            self.incref_block(txn, a.dindirect)?;
            let dbuf = self.jn.get(a.dindirect)?;
            for i in 0..crate::layout::PTRS_PER_BLOCK {
                let l1 = dbuf.u32_at(4 * i);
                if l1 == 0 {
                    continue;
                }
                self.incref_block(txn, l1)?;
                let l1buf = self.jn.get(l1)?;
                for j in 0..crate::layout::PTRS_PER_BLOCK {
                    let p = l1buf.u32_at(4 * j);
                    if p != 0 {
                        self.incref_block(txn, p)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds a [`VolumeInfo`] for one volume.
    pub fn volume_info_inner(&self, id: VolumeId) -> DfsResult<VolumeInfo> {
        let (_, header) = self.voltable_find(id)?.ok_or(DfsError::NoSuchVolume)?;
        let vh = self.read_volume_header(header)?;
        let vnodes = self.vnode_list(header)?;
        let mut blocks = 0u64;
        let mut max_dv = 0u64;
        for (_, slot) in &vnodes {
            let a = self.read_anode(*slot)?;
            blocks += a.length.div_ceil(dfs_disk::BLOCK_SIZE as u64);
            max_dv = max_dv.max(a.data_version);
        }
        Ok(VolumeInfo {
            id,
            name: vh.name.clone(),
            read_only: vh.read_only(),
            parent: (vh.parent != 0).then_some(VolumeId(vh.parent)),
            files: vnodes.len() as u64,
            blocks_used: blocks,
            max_data_version: max_dv,
        })
    }

    /// Serializes a volume (fully or incrementally) for motion (§3.6)
    /// or replication (§3.8).
    pub fn dump_volume_inner(&self, id: VolumeId, since_version: u64) -> DfsResult<VolumeDump> {
        let _guard = self.vol_lock.lock();
        let (_, header) = self.voltable_find(id)?.ok_or(DfsError::NoSuchVolume)?;
        let vh = self.read_volume_header(header)?;
        let mut files = Vec::new();
        let mut live = Vec::new();
        let max_dv = vh.version;
        for (v, slot) in self.vnode_list(header)? {
            let a = self.read_anode(slot)?;
            let fid = Fid::new(id, VnodeId(v), a.uniq);
            live.push(fid);
            if a.data_version <= since_version && since_version > 0 {
                continue;
            }
            let status = self.status_from_anode(fid, &a);
            let acl =
                if a.acl_anode != 0 { Some(self.read_acl(a.acl_anode)?) } else { None };
            let (data, entries) = match a.kind {
                AnodeKind::Directory => {
                    let entries = self
                        .dir_list(&a)?
                        .into_iter()
                        .map(|e| DirEntry {
                            name: e.name,
                            fid: Fid::new(id, VnodeId(e.vnode), e.uniq),
                        })
                        .collect();
                    (Vec::new(), entries)
                }
                _ => (self.anode_read(&a, 0, a.length as usize)?, Vec::new()),
            };
            files.push(DumpFile { status, acl, data, entries });
        }
        Ok(VolumeDump {
            volume: id,
            name: vh.name.clone(),
            since_version,
            max_data_version: max_dv,
            root: Fid::new(id, VnodeId(vh.root_vnode), 1),
            files,
            live,
        })
    }

    /// Materializes a dump on this aggregate (full or incremental).
    pub fn restore_volume_inner(&self, dump: &VolumeDump, read_only: bool) -> DfsResult<()> {
        let id = dump.volume;
        let header = match self.voltable_find(id)? {
            Some((_, h)) => {
                if dump.since_version == 0 {
                    return Err(DfsError::Exists);
                }
                h
            }
            None => {
                if dump.since_version != 0 {
                    return Err(DfsError::NoSuchVolume);
                }
                let _guard = self.vol_lock.lock();
                let txn = self.jn.begin();
                let (h, _) = self.alloc_anode(txn, AnodeKind::Meta, id.0, 0, 0, 0)?;
                let vh = VolumeHeader {
                    id: id.0,
                    flags: if read_only { VF_READONLY } else { 0 },
                    root_vnode: dump.root.vnode.0,
                    parent: 0,
                    base_dv: dump.max_data_version,
                    next_uniq: 1,
                    version: dump.max_data_version,
                    name: dump.name.clone(),
                };
                self.write_volume_header_fixed(txn, h, &vh)?;
                self.voltable_insert(txn, id, h)?;
                self.jn.commit(txn)?;
                h
            }
        };

        // Delete vnodes that no longer exist in the source.
        let live: std::collections::HashSet<u32> =
            dump.live.iter().map(|f| f.vnode.0).collect();
        for (v, slot) in self.vnode_list(header)? {
            if !live.contains(&v) {
                self.destroy_anode(slot)?;
                let txn = self.jn.begin();
                self.vnode_set(txn, header, v, 0)?;
                self.jn.commit(txn)?;
            }
        }

        // Apply each dumped file, preserving vnode index and uniquifier.
        for f in &dump.files {
            let v = f.status.fid.vnode.0;
            let existing = self.vnode_get(header, v)?;
            if existing != 0 {
                self.destroy_anode(existing)?;
            }
            let txn = self.jn.begin();
            let kind = match f.status.ftype {
                FileType::Regular => AnodeKind::File,
                FileType::Directory => AnodeKind::Directory,
                FileType::Symlink => AnodeKind::Symlink,
            };
            let (slot, mut a) =
                self.alloc_anode(txn, kind, id.0, f.status.mode, f.status.owner, f.status.group)?;
            a.uniq = f.status.fid.uniq;
            a.nlink = f.status.nlink as u16;
            a.mtime = f.status.mtime.as_micros();
            a.ctime = f.status.ctime.as_micros();
            a.data_version = f.status.data_version;
            if kind == AnodeKind::Directory {
                for e in &f.entries {
                    let ekind = match self.dump_kind_of(dump, e.fid) {
                        Some(k) => k,
                        None => AnodeKind::File,
                    };
                    self.dir_insert(
                        txn,
                        &mut a,
                        &crate::dir::RawDirEntry {
                            name: e.name.clone(),
                            vnode: e.fid.vnode.0,
                            uniq: e.fid.uniq,
                            kind: ekind.to_byte(),
                        },
                    )?;
                }
            } else {
                self.anode_write(txn, &mut a, 0, &f.data, false)?;
                a.length = f.status.length;
            }
            if let Some(acl) = &f.acl {
                self.write_acl(txn, &mut a, acl)?;
            }
            self.write_anode(txn, slot, &a)?;
            self.vnode_set(txn, header, v, slot)?;
            self.jn.commit(txn)?;
        }

        // Record the restore point and keep next_uniq ahead of everything.
        let txn = self.jn.begin();
        let mut vh = self.read_volume_header(header)?;
        vh.base_dv = dump.max_data_version;
        vh.version = vh.version.max(dump.max_data_version);
        vh.flags = if read_only { VF_READONLY } else { 0 };
        vh.next_uniq =
            vh.next_uniq.max(dump.live.iter().map(|f| f.uniq).max().unwrap_or(0) + 1);
        self.write_volume_header_fixed(txn, header, &vh)?;
        self.jn.commit(txn)?;
        self.jn.sync()
    }

    fn dump_kind_of(&self, dump: &VolumeDump, fid: Fid) -> Option<AnodeKind> {
        dump.files.iter().find(|f| f.status.fid == fid).map(|f| match f.status.ftype {
            FileType::Regular => AnodeKind::File,
            FileType::Directory => AnodeKind::Directory,
            FileType::Symlink => AnodeKind::Symlink,
        })
    }

    /// Builds a [`FileStatus`] from an anode.
    pub(crate) fn status_from_anode(&self, fid: Fid, a: &Anode) -> FileStatus {
        FileStatus {
            fid,
            ftype: match a.kind {
                AnodeKind::Directory => FileType::Directory,
                AnodeKind::Symlink => FileType::Symlink,
                _ => FileType::Regular,
            },
            length: a.length,
            owner: a.owner,
            group: a.group,
            mode: a.mode,
            nlink: a.nlink as u32,
            mtime: dfs_types::Timestamp(a.mtime),
            ctime: dfs_types::Timestamp(a.ctime),
            data_version: a.data_version,
            stamp: dfs_types::SerializationStamp(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::fresh;

    #[test]
    fn create_and_list_volumes() {
        let ep = fresh(8192);
        ep.create_volume(VolumeId(10), "user.jane").unwrap();
        ep.create_volume(VolumeId(11), "user.bob").unwrap();
        let vols = ep.voltable_list().unwrap();
        assert_eq!(vols.len(), 2);
        let info = ep.volume_info_inner(VolumeId(10)).unwrap();
        assert_eq!(info.name, "user.jane");
        assert!(!info.read_only);
        assert_eq!(info.files, 1, "fresh volume has just the root dir");
    }

    #[test]
    fn duplicate_volume_id_rejected() {
        let ep = fresh(8192);
        ep.create_volume(VolumeId(10), "a").unwrap();
        assert_eq!(ep.create_volume(VolumeId(10), "b").unwrap_err(), DfsError::Exists);
        assert_eq!(ep.create_volume(VolumeId(0), "z").unwrap_err(), DfsError::InvalidArgument);
    }

    #[test]
    fn delete_volume_frees_slots() {
        let ep = fresh(8192);
        ep.create_volume(VolumeId(10), "v").unwrap();
        ep.delete_volume(VolumeId(10)).unwrap();
        assert_eq!(ep.voltable_list().unwrap().len(), 0);
        assert_eq!(
            ep.volume_info_inner(VolumeId(10)).unwrap_err(),
            DfsError::NoSuchVolume
        );
        // Id is reusable afterwards.
        ep.create_volume(VolumeId(10), "v2").unwrap();
    }

    #[test]
    fn vnode_alloc_reuses_holes() {
        let ep = fresh(8192);
        ep.create_volume(VolumeId(5), "v").unwrap();
        let (_, header) = ep.voltable_find(VolumeId(5)).unwrap().unwrap();
        let txn = ep.jn.begin();
        let v2 = ep.vnode_alloc(txn, header, 100).unwrap();
        let v3 = ep.vnode_alloc(txn, header, 101).unwrap();
        ep.vnode_set(txn, header, v2, 0).unwrap();
        let v4 = ep.vnode_alloc(txn, header, 102).unwrap();
        ep.jn.commit(txn).unwrap();
        assert_eq!(v2, 2);
        assert_eq!(v3, 3);
        assert_eq!(v4, 2, "freed vnode index is reused");
    }

    #[test]
    fn header_round_trip() {
        let ep = fresh(8192);
        ep.create_volume(VolumeId(77), "home.volume").unwrap();
        let (_, header) = ep.voltable_find(VolumeId(77)).unwrap().unwrap();
        let vh = ep.read_volume_header(header).unwrap();
        assert_eq!(vh.id, 77);
        assert_eq!(vh.name, "home.volume");
        assert_eq!(vh.root_vnode, 1);
        assert!(!vh.read_only());
    }
}
