//! On-disk layout of an Episode aggregate.
//!
//! ```text
//! block 0                  aggregate superblock (static after format)
//! blocks 1 .. 1+L          transaction log (owned by dfs-journal)
//! blocks 1+L .. 1+L+A      anode table (128-byte anodes, 32 per block)
//! remaining blocks         data region, managed by the refcount table
//! ```
//!
//! Everything that uses storage — files, directories, ACLs, volume
//! headers, the volume table, and the block refcount table itself — is an
//! anode (§2.4): "anything that uses storage on disk is implemented as an
//! anode". Two anode slots are reserved at format time: anode 1 is the
//! volume table and anode 2 is the block refcount table (which doubles
//! as the allocation bitmap: a block with refcount zero is free).

use dfs_disk::BLOCK_SIZE;
use dfs_types::{DfsError, DfsResult};

/// Magic number of an Episode aggregate superblock.
pub const AGG_MAGIC: u32 = 0xE215_0DE0;

/// Size of an on-disk anode descriptor in bytes.
pub const ANODE_SIZE: usize = 128;

/// Anodes stored per anode-table block.
pub const ANODES_PER_BLOCK: usize = BLOCK_SIZE / ANODE_SIZE;

/// Number of direct block pointers in an anode.
pub const NDIRECT: usize = 8;

/// Block pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 4;

/// Reserved anode index: the volume table.
pub const VOLTABLE_ANODE: u32 = 1;

/// Reserved anode index: the block refcount table.
pub const REFCOUNT_ANODE: u32 = 2;

/// First allocatable anode index.
pub const FIRST_FREE_ANODE: u32 = 3;

/// Maximum file name length in a directory entry.
pub const MAX_NAME: usize = 255;

/// What an anode describes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AnodeKind {
    /// Unallocated slot.
    Free,
    /// A regular file.
    File,
    /// A directory.
    Directory,
    /// A symbolic link (data is the target path).
    Symlink,
    /// Internal metadata: volume headers, the volume table, refcount
    /// table, ACL containers, vnode maps.
    Meta,
}

impl AnodeKind {
    /// Encodes the kind as its on-disk byte.
    pub fn to_byte(self) -> u8 {
        match self {
            AnodeKind::Free => 0,
            AnodeKind::File => 1,
            AnodeKind::Directory => 2,
            AnodeKind::Symlink => 3,
            AnodeKind::Meta => 4,
        }
    }

    /// Decodes an on-disk byte.
    pub fn from_byte(b: u8) -> DfsResult<AnodeKind> {
        Ok(match b {
            0 => AnodeKind::Free,
            1 => AnodeKind::File,
            2 => AnodeKind::Directory,
            3 => AnodeKind::Symlink,
            4 => AnodeKind::Meta,
            _ => return Err(DfsError::Internal("bad anode kind byte")),
        })
    }
}

/// In-memory image of one on-disk anode descriptor.
///
/// The anode is "the small set of bytes that serves as a descriptor" for
/// an open-ended container of disk storage (§2.4). File-specific fields
/// (mode, owner, times, ACL pointer) are the "additional bells and
/// whistles" layered on the plain container.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Anode {
    /// What this anode is.
    pub kind: AnodeKind,
    /// UNIX mode bits (advisory; the ACL is authoritative).
    pub mode: u16,
    /// Slot generation number, part of the fid.
    pub uniq: u32,
    /// Container length in bytes.
    pub length: u64,
    /// Owning user.
    pub owner: u32,
    /// Owning group.
    pub group: u32,
    /// Hard link count.
    pub nlink: u16,
    /// Anode index of this file's ACL container (0 = none).
    pub acl_anode: u32,
    /// Modification time (microseconds of simulated time).
    pub mtime: u64,
    /// Status-change time.
    pub ctime: u64,
    /// Monotone data version, bumped on every data modification.
    pub data_version: u64,
    /// Direct block pointers (0 = hole).
    pub direct: [u32; NDIRECT],
    /// Single-indirect block pointer (0 = none).
    pub indirect: u32,
    /// Double-indirect block pointer (0 = none).
    pub dindirect: u32,
    /// Volume id this anode belongs to (0 for aggregate metadata).
    pub volume: u64,
}

impl Anode {
    /// Returns a zeroed free anode.
    pub fn free() -> Anode {
        Anode {
            kind: AnodeKind::Free,
            mode: 0,
            uniq: 0,
            length: 0,
            owner: 0,
            group: 0,
            nlink: 0,
            acl_anode: 0,
            mtime: 0,
            ctime: 0,
            data_version: 0,
            direct: [0; NDIRECT],
            indirect: 0,
            dindirect: 0,
            volume: 0,
        }
    }

    /// Serializes the anode to its 128-byte on-disk form.
    pub fn encode(&self) -> [u8; ANODE_SIZE] {
        let mut b = [0u8; ANODE_SIZE];
        b[0] = self.kind.to_byte();
        b[2..4].copy_from_slice(&self.mode.to_le_bytes());
        b[4..8].copy_from_slice(&self.uniq.to_le_bytes());
        b[8..16].copy_from_slice(&self.length.to_le_bytes());
        b[16..20].copy_from_slice(&self.owner.to_le_bytes());
        b[20..24].copy_from_slice(&self.group.to_le_bytes());
        b[24..26].copy_from_slice(&self.nlink.to_le_bytes());
        b[28..32].copy_from_slice(&self.acl_anode.to_le_bytes());
        b[32..40].copy_from_slice(&self.mtime.to_le_bytes());
        b[40..48].copy_from_slice(&self.ctime.to_le_bytes());
        b[48..56].copy_from_slice(&self.data_version.to_le_bytes());
        for (i, d) in self.direct.iter().enumerate() {
            b[56 + i * 4..60 + i * 4].copy_from_slice(&d.to_le_bytes());
        }
        b[88..92].copy_from_slice(&self.indirect.to_le_bytes());
        b[92..96].copy_from_slice(&self.dindirect.to_le_bytes());
        b[96..104].copy_from_slice(&self.volume.to_le_bytes());
        b
    }

    /// Deserializes a 128-byte on-disk anode.
    pub fn decode(b: &[u8]) -> DfsResult<Anode> {
        if b.len() < ANODE_SIZE {
            return Err(DfsError::Internal("short anode"));
        }
        let mut direct = [0u32; NDIRECT];
        for (i, d) in direct.iter_mut().enumerate() {
            *d = u32::from_le_bytes(b[56 + i * 4..60 + i * 4].try_into().unwrap());
        }
        Ok(Anode {
            kind: AnodeKind::from_byte(b[0])?,
            mode: u16::from_le_bytes(b[2..4].try_into().unwrap()),
            uniq: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            length: u64::from_le_bytes(b[8..16].try_into().unwrap()),
            owner: u32::from_le_bytes(b[16..20].try_into().unwrap()),
            group: u32::from_le_bytes(b[20..24].try_into().unwrap()),
            nlink: u16::from_le_bytes(b[24..26].try_into().unwrap()),
            acl_anode: u32::from_le_bytes(b[28..32].try_into().unwrap()),
            mtime: u64::from_le_bytes(b[32..40].try_into().unwrap()),
            ctime: u64::from_le_bytes(b[40..48].try_into().unwrap()),
            data_version: u64::from_le_bytes(b[48..56].try_into().unwrap()),
            direct,
            indirect: u32::from_le_bytes(b[88..92].try_into().unwrap()),
            dindirect: u32::from_le_bytes(b[92..96].try_into().unwrap()),
            volume: u64::from_le_bytes(b[96..104].try_into().unwrap()),
        })
    }
}

/// The aggregate superblock: static geometry written at format time.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SuperBlock {
    /// Aggregate id.
    pub aggregate: u32,
    /// Total blocks in the aggregate.
    pub total_blocks: u32,
    /// First block of the log region.
    pub log_first: u32,
    /// Blocks in the log region (including the log superblock).
    pub log_blocks: u32,
    /// First block of the anode table.
    pub anode_table_start: u32,
    /// Blocks in the anode table.
    pub anode_table_blocks: u32,
    /// Blocks of the host journal ring (just after the anode table);
    /// zero on aggregates formatted before the ring existed, which
    /// decodes as "no host journal" and leaves the layout unchanged.
    pub host_log_blocks: u32,
}

impl SuperBlock {
    /// Number of anode slots in the table.
    pub fn anode_count(&self) -> u32 {
        self.anode_table_blocks * ANODES_PER_BLOCK as u32
    }

    /// First block of the host journal ring (zero-sized when absent).
    pub fn host_log_start(&self) -> u32 {
        self.anode_table_start + self.anode_table_blocks
    }

    /// First block of the data region.
    pub fn data_start(&self) -> u32 {
        self.host_log_start() + self.host_log_blocks
    }

    /// Returns (block, byte offset) of anode `idx` in the table.
    pub fn anode_location(&self, idx: u32) -> (u32, usize) {
        let block = self.anode_table_start + idx / ANODES_PER_BLOCK as u32;
        let offset = (idx as usize % ANODES_PER_BLOCK) * ANODE_SIZE;
        (block, offset)
    }

    /// Serializes the superblock into a disk block.
    pub fn encode(&self) -> [u8; BLOCK_SIZE] {
        let mut b = [0u8; BLOCK_SIZE];
        b[0..4].copy_from_slice(&AGG_MAGIC.to_le_bytes());
        b[4..8].copy_from_slice(&self.aggregate.to_le_bytes());
        b[8..12].copy_from_slice(&self.total_blocks.to_le_bytes());
        b[12..16].copy_from_slice(&self.log_first.to_le_bytes());
        b[16..20].copy_from_slice(&self.log_blocks.to_le_bytes());
        b[20..24].copy_from_slice(&self.anode_table_start.to_le_bytes());
        b[24..28].copy_from_slice(&self.anode_table_blocks.to_le_bytes());
        b[28..32].copy_from_slice(&self.host_log_blocks.to_le_bytes());
        b
    }

    /// Deserializes a superblock, checking the magic number.
    pub fn decode(b: &[u8; BLOCK_SIZE]) -> DfsResult<SuperBlock> {
        let magic = u32::from_le_bytes(b[0..4].try_into().unwrap());
        if magic != AGG_MAGIC {
            return Err(DfsError::Internal("not an Episode aggregate"));
        }
        Ok(SuperBlock {
            aggregate: u32::from_le_bytes(b[4..8].try_into().unwrap()),
            total_blocks: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            log_first: u32::from_le_bytes(b[12..16].try_into().unwrap()),
            log_blocks: u32::from_le_bytes(b[16..20].try_into().unwrap()),
            anode_table_start: u32::from_le_bytes(b[20..24].try_into().unwrap()),
            anode_table_blocks: u32::from_le_bytes(b[24..28].try_into().unwrap()),
            host_log_blocks: u32::from_le_bytes(b[28..32].try_into().unwrap()),
        })
    }
}

/// Validates a file name: non-empty, bounded, no `/` or NUL.
pub fn check_name(name: &str) -> DfsResult<()> {
    if name.is_empty()
        || name.len() > MAX_NAME
        || name == "."
        || name == ".."
        || name.bytes().any(|b| b == b'/' || b == 0)
    {
        return Err(DfsError::InvalidName);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn anode_round_trip() {
        let mut a = Anode::free();
        a.kind = AnodeKind::File;
        a.mode = 0o644;
        a.uniq = 9;
        a.length = 123456;
        a.owner = 7;
        a.group = 8;
        a.nlink = 2;
        a.acl_anode = 55;
        a.mtime = 111;
        a.ctime = 222;
        a.data_version = 42;
        a.direct = [1, 2, 3, 4, 5, 6, 7, 8];
        a.indirect = 99;
        a.dindirect = 100;
        a.volume = 0xDEAD;
        let enc = a.encode();
        assert_eq!(Anode::decode(&enc).unwrap(), a);
    }

    #[test]
    fn free_anode_encodes_to_zero_kind() {
        let enc = Anode::free().encode();
        assert_eq!(enc[0], 0);
        assert_eq!(Anode::decode(&enc).unwrap().kind, AnodeKind::Free);
    }

    #[test]
    fn kind_round_trip_and_rejects_garbage() {
        for k in [
            AnodeKind::Free,
            AnodeKind::File,
            AnodeKind::Directory,
            AnodeKind::Symlink,
            AnodeKind::Meta,
        ] {
            assert_eq!(AnodeKind::from_byte(k.to_byte()).unwrap(), k);
        }
        assert!(AnodeKind::from_byte(200).is_err());
    }

    #[test]
    fn superblock_round_trip() {
        let sb = SuperBlock {
            aggregate: 3,
            total_blocks: 100_000,
            log_first: 1,
            log_blocks: 256,
            anode_table_start: 257,
            anode_table_blocks: 100,
            host_log_blocks: 64,
        };
        let enc = sb.encode();
        assert_eq!(SuperBlock::decode(&enc).unwrap(), sb);
        assert_eq!(sb.anode_count(), 3200);
        assert_eq!(sb.host_log_start(), 357);
        assert_eq!(sb.data_start(), 421);
    }

    #[test]
    fn superblock_without_host_log_keeps_the_old_layout() {
        // A pre-host-journal superblock has zeros at bytes 28..32; it
        // must decode to host_log_blocks == 0 and an unshifted data
        // region.
        let sb = SuperBlock {
            aggregate: 3,
            total_blocks: 100_000,
            log_first: 1,
            log_blocks: 256,
            anode_table_start: 257,
            anode_table_blocks: 100,
            host_log_blocks: 0,
        };
        let dec = SuperBlock::decode(&sb.encode()).unwrap();
        assert_eq!(dec.host_log_blocks, 0);
        assert_eq!(dec.data_start(), 357);
    }

    #[test]
    fn superblock_rejects_wrong_magic() {
        let b = [0u8; BLOCK_SIZE];
        assert!(SuperBlock::decode(&b).is_err());
    }

    #[test]
    fn anode_location_math() {
        let sb = SuperBlock {
            aggregate: 0,
            total_blocks: 1000,
            log_first: 1,
            log_blocks: 10,
            anode_table_start: 11,
            anode_table_blocks: 4,
            host_log_blocks: 0,
        };
        assert_eq!(sb.anode_location(0), (11, 0));
        assert_eq!(sb.anode_location(31), (11, 31 * 128));
        assert_eq!(sb.anode_location(32), (12, 0));
        assert_eq!(sb.anode_location(65), (13, 128));
    }

    #[test]
    fn name_validation() {
        assert!(check_name("hello.txt").is_ok());
        assert!(check_name("").is_err());
        assert!(check_name(".").is_err());
        assert!(check_name("..").is_err());
        assert!(check_name("a/b").is_err());
        assert!(check_name("nul\0byte").is_err());
        assert!(check_name(&"x".repeat(256)).is_err());
        assert!(check_name(&"x".repeat(255)).is_ok());
    }
}
