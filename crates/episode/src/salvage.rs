//! The salvager: a full consistency check of an aggregate.
//!
//! Logging obviates the routine post-crash salvage (§2.2), but "media
//! failure will normally necessitate salvaging" — and the test suite uses
//! the salvager as the oracle that crash recovery really does leave the
//! file system consistent. Because "all data and meta-data are stored in
//! anodes, the disk presents a uniform interface to utilities that access
//! it" (§2.4): the salvager is a single walk over the anode table.
//!
//! Checks performed:
//!
//! * every block pointer is inside the data region;
//! * the stored refcount of every data block equals the number of anode
//!   references to it (clones legitimately push counts above one);
//! * every volume-table entry names a live header anode;
//! * every vnode-map slot names a live anode of the right volume;
//! * every directory entry resolves to a live vnode with matching
//!   uniquifier;
//! * link counts match directory contents;
//! * no file/directory anode is orphaned (unreachable from any volume).

use crate::layout::{Anode, AnodeKind, FIRST_FREE_ANODE};
use crate::Episode;
use dfs_types::DfsResult;
use dfs_vfs::SalvageReport;
use std::collections::HashMap;

/// Runs a full consistency check. The aggregate should be quiescent.
pub fn salvage(ep: &Episode) -> DfsResult<SalvageReport> {
    let mut report = SalvageReport::default();
    let sb = ep.superblock();
    let data_start = sb.data_start();
    let total = sb.total_blocks;

    // Pass 1: walk every live anode, accumulating expected refcounts.
    let mut expected: HashMap<u32, u16> = HashMap::new();
    let mut live_anodes: HashMap<u32, Anode> = HashMap::new();
    let bump = |expected: &mut HashMap<u32, u16>, report: &mut SalvageReport, b: u32| {
        if b < data_start || b >= total {
            report.problems.push(format!("pointer to out-of-range block {b}"));
            return;
        }
        *expected.entry(b).or_insert(0) += 1;
    };
    for idx in 1..sb.anode_count() {
        let a = ep.read_anode(idx)?;
        if a.kind == AnodeKind::Free {
            continue;
        }
        report.files_checked += 1;
        for &d in &a.direct {
            if d != 0 {
                bump(&mut expected, &mut report, d);
            }
        }
        if a.indirect != 0 {
            bump(&mut expected, &mut report, a.indirect);
            let buf = ep.journal().get(a.indirect)?;
            for i in 0..crate::layout::PTRS_PER_BLOCK {
                let p = buf.u32_at(4 * i);
                if p != 0 {
                    bump(&mut expected, &mut report, p);
                }
            }
        }
        if a.dindirect != 0 {
            bump(&mut expected, &mut report, a.dindirect);
            let dbuf = ep.journal().get(a.dindirect)?;
            for i in 0..crate::layout::PTRS_PER_BLOCK {
                let l1 = dbuf.u32_at(4 * i);
                if l1 == 0 {
                    continue;
                }
                bump(&mut expected, &mut report, l1);
                let l1buf = ep.journal().get(l1)?;
                for j in 0..crate::layout::PTRS_PER_BLOCK {
                    let p = l1buf.u32_at(4 * j);
                    if p != 0 {
                        bump(&mut expected, &mut report, p);
                    }
                }
            }
        }
        live_anodes.insert(idx, a);
    }

    // Pass 2: stored refcounts must match the references we counted.
    for b in data_start..total {
        report.blocks_checked += 1;
        let stored = ep.block_refcount(b)?;
        let want = expected.get(&b).copied().unwrap_or(0);
        if stored != want {
            report
                .problems
                .push(format!("block {b}: stored refcount {stored}, referenced {want} times"));
        }
    }
    report.blocks_checked += data_start as u64; // Reserved region scanned implicitly.

    // Pass 3: volumes, vnode maps, directories, link counts.
    let mut referenced: HashMap<u32, &'static str> = HashMap::new();
    referenced.insert(crate::layout::VOLTABLE_ANODE, "volume table");
    referenced.insert(crate::layout::REFCOUNT_ANODE, "refcount table");
    let mut nlink_expected: HashMap<u32, u32> = HashMap::new();

    for (vol, header) in ep.voltable_list()? {
        let Some(h) = live_anodes.get(&header) else {
            report.problems.push(format!("{vol:?}: header anode {header} not live"));
            continue;
        };
        if h.kind != AnodeKind::Meta {
            report.problems.push(format!("{vol:?}: header anode {header} has wrong kind"));
        }
        referenced.insert(header, "volume header");
        let vnodes = ep.vnode_list(header)?;
        for (v, slot) in &vnodes {
            let Some(a) = live_anodes.get(slot) else {
                report.problems.push(format!("{vol:?}: vnode {v} maps to dead anode {slot}"));
                continue;
            };
            if a.volume != vol.0 {
                report.problems.push(format!(
                    "{vol:?}: vnode {v} anode {slot} belongs to volume {}",
                    a.volume
                ));
            }
            referenced.insert(*slot, "vnode map");
            if a.acl_anode != 0 {
                referenced.insert(a.acl_anode, "acl");
                match live_anodes.get(&a.acl_anode) {
                    Some(acl) if acl.kind == AnodeKind::Meta => {}
                    _ => report
                        .problems
                        .push(format!("{vol:?}: vnode {v} has bad ACL anode {}", a.acl_anode)),
                }
            }
        }
        // Directory structure: entries resolve, uniqs match, links count.
        let by_vnode: HashMap<u32, u32> = vnodes.iter().copied().collect();
        for (v, slot) in &vnodes {
            let a = match live_anodes.get(slot) {
                Some(a) => a,
                None => continue,
            };
            if a.kind != AnodeKind::Directory {
                continue;
            }
            let mut subdirs = 0u32;
            for e in ep.dir_list(a)? {
                match by_vnode.get(&e.vnode).and_then(|s| live_anodes.get(s)) {
                    Some(t) => {
                        if t.uniq != e.uniq {
                            report.problems.push(format!(
                                "{vol:?}: dir vnode {v} entry '{}' uniq {} != anode uniq {}",
                                e.name, e.uniq, t.uniq
                            ));
                        }
                        if t.kind == AnodeKind::Directory {
                            subdirs += 1;
                        } else {
                            *nlink_expected.entry(by_vnode[&e.vnode]).or_insert(0) += 1;
                        }
                    }
                    None => report.problems.push(format!(
                        "{vol:?}: dir vnode {v} entry '{}' points at dead vnode {}",
                        e.name, e.vnode
                    )),
                }
            }
            // A directory's link count is 2 plus its subdirectories.
            let want = 2 + subdirs;
            if a.nlink as u32 != want {
                report
                    .problems
                    .push(format!("{vol:?}: dir vnode {v} nlink {} != expected {want}", a.nlink));
            }
        }
    }

    // Non-directory link counts.
    for (slot, want) in &nlink_expected {
        let a = &live_anodes[slot];
        if a.kind == AnodeKind::Directory || *want == 0 {
            continue;
        }
        if a.nlink as u32 != *want {
            report
                .problems
                .push(format!("anode {slot}: nlink {} != {} directory entries", a.nlink, want));
        }
    }

    // Orphans: live file/dir/symlink anodes unreachable from any volume.
    for (idx, a) in &live_anodes {
        if *idx < FIRST_FREE_ANODE {
            continue;
        }
        if !referenced.contains_key(idx) && a.kind != AnodeKind::Meta {
            report.problems.push(format!("anode {idx} ({:?}) is orphaned", a.kind));
        }
    }

    Ok(report)
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::fresh;
    use dfs_types::VolumeId;
    use dfs_vfs::{Credentials, PhysicalFs};

    #[test]
    fn fresh_aggregate_is_clean() {
        let ep = fresh(8192);
        let r = salvage(&ep).unwrap();
        assert!(r.is_clean(), "{:?}", r.problems);
        assert_eq!(r.files_checked, 2, "volume table and refcount table");
    }

    #[test]
    fn populated_aggregate_is_clean() {
        let ep = fresh(16384);
        ep.create_volume(VolumeId(1), "v").unwrap();
        let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
        let cred = Credentials::system();
        let root = v.root().unwrap();
        let d = v.mkdir(&cred, root, "dir", 0o755).unwrap();
        let f = v.create(&cred, d.fid, "file", 0o644).unwrap();
        v.write(&cred, f.fid, 0, &vec![3u8; 100_000]).unwrap();
        v.symlink(&cred, root, "ln", "dir/file").unwrap();
        let r = salvage(&ep).unwrap();
        assert!(r.is_clean(), "{:?}", r.problems);
        assert!(r.files_checked >= 6);
        assert_eq!(r.blocks_checked, 16384);
    }

    #[test]
    fn detects_refcount_corruption() {
        let ep = fresh(8192);
        ep.create_volume(VolumeId(1), "v").unwrap();
        let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
        let cred = Credentials::system();
        let root = v.root().unwrap();
        let f = v.create(&cred, root, "x", 0o644).unwrap();
        v.write(&cred, f.fid, 0, b"data").unwrap();
        // Corrupt: bump a data block's refcount outside any clone.
        let txn = ep.journal().begin();
        let b = ep.alloc_block(txn).unwrap();
        ep.incref_block(txn, b).unwrap();
        ep.journal().commit(txn).unwrap();
        let r = salvage(&ep).unwrap();
        assert!(!r.is_clean());
        assert!(r.problems.iter().any(|p| p.contains("refcount")), "{:?}", r.problems);
    }

    #[test]
    fn detects_bad_link_count() {
        let ep = fresh(8192);
        ep.create_volume(VolumeId(1), "v").unwrap();
        let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
        let cred = Credentials::system();
        let root = v.root().unwrap();
        let f = v.create(&cred, root, "x", 0o644).unwrap();
        // Corrupt the nlink directly.
        let (_, header) = ep.voltable_find(VolumeId(1)).unwrap().unwrap();
        let slot = ep.vnode_get(header, f.fid.vnode.0).unwrap();
        let txn = ep.journal().begin();
        let mut a = ep.read_anode(slot).unwrap();
        a.nlink = 9;
        ep.write_anode(txn, slot, &a).unwrap();
        ep.journal().commit(txn).unwrap();
        let r = salvage(&ep).unwrap();
        assert!(r.problems.iter().any(|p| p.contains("nlink")), "{:?}", r.problems);
    }
}
