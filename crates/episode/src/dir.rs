//! Directory objects stored in anode containers.
//!
//! A directory is an anode whose data is a sequence of whole blocks, each
//! fully covered by variable-length entries. Free space is represented by
//! entries with `vnode == 0`. Entries never span blocks. All directory
//! modifications are metadata and therefore logged (§2.2).
//!
//! Entry layout (12-byte header, name padded to 4 bytes):
//!
//! ```text
//! u16 reclen   total bytes covered by this entry
//! u8  namelen
//! u8  kind     AnodeKind byte of the target (cached for readdir)
//! u32 vnode    per-volume vnode index (0 = free entry)
//! u32 uniq     target uniquifier (cached for fid construction)
//! [name bytes] [padding]
//! ```

use crate::layout::{check_name, Anode};
use crate::Episode;
use dfs_disk::BLOCK_SIZE;
use dfs_journal::TxnId;
use dfs_types::{DfsError, DfsResult};

/// Byte size of an entry header.
const HDR: usize = 12;

/// A parsed directory entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RawDirEntry {
    /// Name of the entry.
    pub name: String,
    /// Per-volume vnode index of the target.
    pub vnode: u32,
    /// Uniquifier of the target.
    pub uniq: u32,
    /// Anode kind byte of the target.
    pub kind: u8,
}

fn entry_size(name_len: usize) -> usize {
    (HDR + name_len + 3) & !3
}

fn parse_entry(block: &[u8], off: usize) -> Option<(usize, Option<RawDirEntry>)> {
    if off + HDR > block.len() {
        return None;
    }
    let reclen = u16::from_le_bytes(block[off..off + 2].try_into().unwrap()) as usize;
    if reclen < HDR || off + reclen > block.len() {
        return None;
    }
    let namelen = block[off + 2] as usize;
    let kind = block[off + 3];
    let vnode = u32::from_le_bytes(block[off + 4..off + 8].try_into().unwrap());
    let uniq = u32::from_le_bytes(block[off + 8..off + 12].try_into().unwrap());
    if vnode == 0 {
        return Some((reclen, None));
    }
    if off + HDR + namelen > block.len() {
        return None;
    }
    let name = String::from_utf8_lossy(&block[off + HDR..off + HDR + namelen]).into_owned();
    Some((reclen, Some(RawDirEntry { name, vnode, uniq, kind })))
}

fn encode_entry(reclen: usize, e: &RawDirEntry) -> Vec<u8> {
    let mut out = vec![0u8; reclen];
    out[0..2].copy_from_slice(&(reclen as u16).to_le_bytes());
    out[2] = e.name.len() as u8;
    out[3] = e.kind;
    out[4..8].copy_from_slice(&e.vnode.to_le_bytes());
    out[8..12].copy_from_slice(&e.uniq.to_le_bytes());
    out[HDR..HDR + e.name.len()].copy_from_slice(e.name.as_bytes());
    out
}

/// Header of a free entry covering `reclen` bytes; the body of a free
/// entry is never read, so only the 12-byte header needs writing (and
/// logging).
fn encode_free_header(reclen: usize) -> Vec<u8> {
    let mut out = vec![0u8; HDR];
    out[0..2].copy_from_slice(&(reclen as u16).to_le_bytes());
    out
}

impl Episode {
    /// Looks up `name` in the directory whose anode is `a`.
    pub(crate) fn dir_lookup(&self, a: &Anode, name: &str) -> DfsResult<Option<RawDirEntry>> {
        check_name(name)?;
        let blocks = a.length.div_ceil(BLOCK_SIZE as u64);
        for fblk in 0..blocks {
            let data = self.anode_read(a, fblk * BLOCK_SIZE as u64, BLOCK_SIZE)?;
            let mut off = 0;
            while off < data.len() {
                match parse_entry(&data, off) {
                    Some((reclen, Some(e))) => {
                        if e.name == name {
                            return Ok(Some(e));
                        }
                        off += reclen;
                    }
                    Some((reclen, None)) => off += reclen,
                    None => break,
                }
            }
        }
        Ok(None)
    }

    /// Inserts an entry, extending the directory by a block if needed.
    ///
    /// The caller must have verified the name is absent; duplicate names
    /// are the caller's error. `a` is updated in memory (length may
    /// grow); the caller persists the anode.
    pub(crate) fn dir_insert(
        &self,
        txn: TxnId,
        a: &mut Anode,
        entry: &RawDirEntry,
    ) -> DfsResult<()> {
        check_name(&entry.name)?;
        if entry.vnode == 0 {
            return Err(DfsError::Internal("dir entry with vnode 0"));
        }
        let need = entry_size(entry.name.len());
        let blocks = a.length.div_ceil(BLOCK_SIZE as u64);
        for fblk in 0..blocks {
            let base = fblk * BLOCK_SIZE as u64;
            let data = self.anode_read(a, base, BLOCK_SIZE)?;
            let mut off = 0;
            while off < data.len() {
                match parse_entry(&data, off) {
                    Some((reclen, None)) if reclen >= need => {
                        // Split the free entry: our record plus remainder.
                        let rest = reclen - need;
                        let mut bytes;
                        if rest >= HDR {
                            bytes = encode_entry(need, entry);
                            bytes.extend_from_slice(&encode_free_header(rest));
                        } else {
                            // Too small to split: the entry absorbs it.
                            bytes = encode_entry(reclen, entry);
                        }
                        self.anode_write(txn, a, base + off as u64, &bytes, true)?;
                        return Ok(());
                    }
                    Some((reclen, _)) => off += reclen,
                    None => break,
                }
            }
        }
        // No room: append a fresh block holding the entry + free space.
        let base = blocks * BLOCK_SIZE as u64;
        let mut bytes = encode_entry(need, entry);
        bytes.extend_from_slice(&encode_free_header(BLOCK_SIZE - need));
        self.anode_write(txn, a, base, &bytes, true)?;
        a.length = a.length.max(base + BLOCK_SIZE as u64);
        Ok(())
    }

    /// Removes the entry `name`, returning it.
    pub(crate) fn dir_remove(
        &self,
        txn: TxnId,
        a: &mut Anode,
        name: &str,
    ) -> DfsResult<RawDirEntry> {
        check_name(name)?;
        let blocks = a.length.div_ceil(BLOCK_SIZE as u64);
        for fblk in 0..blocks {
            let base = fblk * BLOCK_SIZE as u64;
            let data = self.anode_read(a, base, BLOCK_SIZE)?;
            let mut off = 0;
            while off < data.len() {
                match parse_entry(&data, off) {
                    Some((reclen, Some(e))) => {
                        if e.name == name {
                            self.anode_write(
                                txn,
                                a,
                                base + off as u64,
                                &encode_free_header(reclen),
                                true,
                            )?;
                            return Ok(e);
                        }
                        off += reclen;
                    }
                    Some((reclen, None)) => off += reclen,
                    None => break,
                }
            }
        }
        Err(DfsError::NotFound)
    }

    /// Lists every live entry of the directory.
    pub(crate) fn dir_list(&self, a: &Anode) -> DfsResult<Vec<RawDirEntry>> {
        let mut out = Vec::new();
        let blocks = a.length.div_ceil(BLOCK_SIZE as u64);
        for fblk in 0..blocks {
            let data = self.anode_read(a, fblk * BLOCK_SIZE as u64, BLOCK_SIZE)?;
            let mut off = 0;
            while off < data.len() {
                match parse_entry(&data, off) {
                    Some((reclen, Some(e))) => {
                        out.push(e);
                        off += reclen;
                    }
                    Some((reclen, None)) => off += reclen,
                    None => break,
                }
            }
        }
        Ok(out)
    }

    /// Returns true if the directory has no live entries.
    pub(crate) fn dir_is_empty(&self, a: &Anode) -> DfsResult<bool> {
        Ok(self.dir_list(a)?.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::AnodeKind;
    use crate::tests::fresh;

    fn mkdir(ep: &crate::Episode) -> u32 {
        let txn = ep.journal().begin();
        let (idx, a) = ep.alloc_anode(txn, AnodeKind::Directory, 1, 0o755, 0, 0).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.journal().commit(txn).unwrap();
        idx
    }

    fn entry(name: &str, vnode: u32) -> RawDirEntry {
        RawDirEntry { name: name.into(), vnode, uniq: vnode * 10, kind: 1 }
    }

    #[test]
    fn insert_lookup_remove_cycle() {
        let ep = fresh(8192);
        let dir = mkdir(&ep);
        let txn = ep.journal().begin();
        let mut a = ep.read_anode(dir).unwrap();
        ep.dir_insert(txn, &mut a, &entry("alpha", 5)).unwrap();
        ep.dir_insert(txn, &mut a, &entry("beta", 6)).unwrap();
        ep.write_anode(txn, dir, &a).unwrap();
        ep.journal().commit(txn).unwrap();

        let a = ep.read_anode(dir).unwrap();
        let hit = ep.dir_lookup(&a, "alpha").unwrap().unwrap();
        assert_eq!(hit.vnode, 5);
        assert_eq!(hit.uniq, 50);
        assert!(ep.dir_lookup(&a, "gamma").unwrap().is_none());

        let txn = ep.journal().begin();
        let mut a = ep.read_anode(dir).unwrap();
        let removed = ep.dir_remove(txn, &mut a, "alpha").unwrap();
        assert_eq!(removed.vnode, 5);
        ep.write_anode(txn, dir, &a).unwrap();
        ep.journal().commit(txn).unwrap();

        let a = ep.read_anode(dir).unwrap();
        assert!(ep.dir_lookup(&a, "alpha").unwrap().is_none());
        assert!(ep.dir_lookup(&a, "beta").unwrap().is_some());
    }

    #[test]
    fn remove_missing_is_not_found() {
        let ep = fresh(8192);
        let dir = mkdir(&ep);
        let txn = ep.journal().begin();
        let mut a = ep.read_anode(dir).unwrap();
        assert_eq!(ep.dir_remove(txn, &mut a, "nope").unwrap_err(), DfsError::NotFound);
        ep.journal().commit(txn).unwrap();
    }

    #[test]
    fn freed_slots_are_reused() {
        let ep = fresh(8192);
        let dir = mkdir(&ep);
        let txn = ep.journal().begin();
        let mut a = ep.read_anode(dir).unwrap();
        ep.dir_insert(txn, &mut a, &entry("one", 1)).unwrap();
        ep.dir_insert(txn, &mut a, &entry("two", 2)).unwrap();
        ep.dir_remove(txn, &mut a, "one").unwrap();
        ep.dir_insert(txn, &mut a, &entry("uno", 3)).unwrap();
        ep.write_anode(txn, dir, &a).unwrap();
        ep.journal().commit(txn).unwrap();
        let a = ep.read_anode(dir).unwrap();
        assert_eq!(a.length as usize, BLOCK_SIZE, "reuse must not grow the dir");
        let names: Vec<String> = ep.dir_list(&a).unwrap().into_iter().map(|e| e.name).collect();
        assert_eq!(names.len(), 2);
        assert!(names.contains(&"uno".to_string()));
    }

    #[test]
    fn directory_grows_beyond_one_block() {
        let ep = fresh(8192);
        let dir = mkdir(&ep);
        let txn = ep.journal().begin();
        let mut a = ep.read_anode(dir).unwrap();
        for i in 0..300u32 {
            ep.dir_insert(txn, &mut a, &entry(&format!("file-number-{i:04}"), i + 1)).unwrap();
        }
        ep.write_anode(txn, dir, &a).unwrap();
        ep.journal().commit(txn).unwrap();
        let a = ep.read_anode(dir).unwrap();
        assert!(a.length as usize > BLOCK_SIZE, "300 entries exceed one block");
        let list = ep.dir_list(&a).unwrap();
        assert_eq!(list.len(), 300);
        let hit = ep.dir_lookup(&a, "file-number-0299").unwrap().unwrap();
        assert_eq!(hit.vnode, 300);
    }

    #[test]
    fn empty_detection() {
        let ep = fresh(8192);
        let dir = mkdir(&ep);
        let a = ep.read_anode(dir).unwrap();
        assert!(ep.dir_is_empty(&a).unwrap());
        let txn = ep.journal().begin();
        let mut a = ep.read_anode(dir).unwrap();
        ep.dir_insert(txn, &mut a, &entry("x", 1)).unwrap();
        ep.write_anode(txn, dir, &a).unwrap();
        ep.journal().commit(txn).unwrap();
        let a = ep.read_anode(dir).unwrap();
        assert!(!ep.dir_is_empty(&a).unwrap());
    }

    #[test]
    fn long_names_round_trip() {
        let ep = fresh(8192);
        let dir = mkdir(&ep);
        let long = "n".repeat(255);
        let txn = ep.journal().begin();
        let mut a = ep.read_anode(dir).unwrap();
        ep.dir_insert(txn, &mut a, &entry(&long, 7)).unwrap();
        ep.write_anode(txn, dir, &a).unwrap();
        ep.journal().commit(txn).unwrap();
        let a = ep.read_anode(dir).unwrap();
        assert_eq!(ep.dir_lookup(&a, &long).unwrap().unwrap().vnode, 7);
    }

    #[test]
    fn invalid_names_rejected() {
        let ep = fresh(8192);
        let dir = mkdir(&ep);
        let a = ep.read_anode(dir).unwrap();
        assert_eq!(ep.dir_lookup(&a, "a/b").unwrap_err(), DfsError::InvalidName);
        assert_eq!(ep.dir_lookup(&a, "").unwrap_err(), DfsError::InvalidName);
    }
}
