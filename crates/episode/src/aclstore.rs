//! ACL storage in anode containers (§2.3).
//!
//! In AFS, ACLs had a fixed size limit precisely because they were *not*
//! open-ended; the paper uses that as the motivating example for anodes
//! (§2.4). Here an ACL is serialized into its own Meta anode, referenced
//! from the owning file's `acl_anode` field — so any file or directory
//! may carry an ACL of any size.

use crate::layout::AnodeKind;
use crate::Episode;
use dfs_journal::TxnId;
use dfs_types::{Acl, AclEntry, DfsError, DfsResult, Principal, Rights};

fn encode_principal(p: Principal) -> (u8, u32) {
    match p {
        Principal::User(u) => (0, u),
        Principal::Group(g) => (1, g),
        Principal::Authenticated => (2, 0),
        Principal::Anyone => (3, 0),
    }
}

fn decode_principal(tag: u8, id: u32) -> DfsResult<Principal> {
    Ok(match tag {
        0 => Principal::User(id),
        1 => Principal::Group(id),
        2 => Principal::Authenticated,
        3 => Principal::Anyone,
        _ => return Err(DfsError::Internal("bad ACL principal tag")),
    })
}

/// Serializes an ACL to its on-disk form.
pub fn encode_acl(acl: &Acl) -> Vec<u8> {
    let mut out = Vec::with_capacity(2 + 7 * acl.entries.len());
    out.extend_from_slice(&(acl.entries.len() as u16).to_le_bytes());
    for e in &acl.entries {
        let (tag, id) = encode_principal(e.who);
        out.push(tag);
        out.extend_from_slice(&id.to_le_bytes());
        out.push(e.allow.0);
        out.push(e.deny.0);
    }
    out
}

/// Deserializes an on-disk ACL.
pub fn decode_acl(bytes: &[u8]) -> DfsResult<Acl> {
    if bytes.len() < 2 {
        return Err(DfsError::Internal("short ACL"));
    }
    let n = u16::from_le_bytes(bytes[0..2].try_into().unwrap()) as usize;
    let mut entries = Vec::with_capacity(n);
    let mut pos = 2;
    for _ in 0..n {
        if pos + 7 > bytes.len() {
            return Err(DfsError::Internal("truncated ACL"));
        }
        let tag = bytes[pos];
        let id = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().unwrap());
        let allow = Rights(bytes[pos + 5]);
        let deny = Rights(bytes[pos + 6]);
        entries.push(AclEntry { who: decode_principal(tag, id)?, allow, deny });
        pos += 7;
    }
    Ok(Acl { entries })
}

impl Episode {
    /// Reads the ACL stored in container `acl_anode`.
    pub(crate) fn read_acl(&self, acl_anode: u32) -> DfsResult<Acl> {
        let a = self.read_anode(acl_anode)?;
        let bytes = self.anode_read(&a, 0, a.length as usize)?;
        decode_acl(&bytes)
    }

    /// Writes `acl` for the file whose anode is (`idx`, `a`), allocating
    /// an ACL container on first use. Updates `a.acl_anode` in memory;
    /// the caller persists the file anode.
    pub(crate) fn write_acl(
        &self,
        txn: TxnId,
        a: &mut crate::layout::Anode,
        acl: &Acl,
    ) -> DfsResult<()> {
        let bytes = encode_acl(acl);
        if a.acl_anode == 0 {
            let (acl_idx, _) = self.alloc_anode(txn, AnodeKind::Meta, a.volume, 0, a.owner, 0)?;
            a.acl_anode = acl_idx;
        }
        let mut holder = self.read_anode(a.acl_anode)?;
        // Overwrite in place; shrink the container if the ACL shrank.
        holder.length = 0;
        self.anode_write(txn, &mut holder, 0, &bytes, true)?;
        holder.length = bytes.len() as u64;
        self.write_anode(txn, a.acl_anode, &holder)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::fresh;

    fn sample_acl() -> Acl {
        let mut acl = Acl::unix_default(42);
        acl.push(AclEntry::allow(Principal::Group(7), Rights::WRITE | Rights::INSERT));
        acl.push(AclEntry::deny(Principal::User(13), Rights::READ));
        acl
    }

    #[test]
    fn encode_decode_round_trip() {
        let acl = sample_acl();
        assert_eq!(decode_acl(&encode_acl(&acl)).unwrap(), acl);
    }

    #[test]
    fn empty_acl_round_trip() {
        let acl = Acl::new();
        assert_eq!(decode_acl(&encode_acl(&acl)).unwrap(), acl);
    }

    #[test]
    fn truncated_acl_rejected() {
        let enc = encode_acl(&sample_acl());
        assert!(decode_acl(&enc[..enc.len() - 1]).is_err());
        assert!(decode_acl(&[]).is_err());
    }

    #[test]
    fn store_and_load_via_anode() {
        let ep = fresh(8192);
        let txn = ep.journal().begin();
        let (idx, mut a) =
            ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 42, 0).unwrap();
        let acl = sample_acl();
        ep.write_acl(txn, &mut a, &acl).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.journal().commit(txn).unwrap();

        let a = ep.read_anode(idx).unwrap();
        assert_ne!(a.acl_anode, 0);
        assert_eq!(ep.read_acl(a.acl_anode).unwrap(), acl);
    }

    #[test]
    fn rewrite_replaces_acl() {
        let ep = fresh(8192);
        let txn = ep.journal().begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 1, 0).unwrap();
        ep.write_acl(txn, &mut a, &sample_acl()).unwrap();
        let first_holder = a.acl_anode;
        let small = Acl::unix_default(1);
        ep.write_acl(txn, &mut a, &small).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.journal().commit(txn).unwrap();
        let a = ep.read_anode(idx).unwrap();
        assert_eq!(a.acl_anode, first_holder, "holder anode is reused");
        assert_eq!(ep.read_acl(a.acl_anode).unwrap(), small);
    }

    #[test]
    fn large_acl_is_open_ended() {
        // The AFS weakness the paper cites: fixed-size ACLs. Ours grows.
        let ep = fresh(8192);
        let mut acl = Acl::new();
        for u in 0..2000 {
            acl.push(AclEntry::allow(Principal::User(u), Rights::READ));
        }
        let txn = ep.journal().begin();
        let (idx, mut a) = ep.alloc_anode(txn, AnodeKind::File, 1, 0o644, 1, 0).unwrap();
        ep.write_acl(txn, &mut a, &acl).unwrap();
        ep.write_anode(txn, idx, &a).unwrap();
        ep.journal().commit(txn).unwrap();
        let a = ep.read_anode(idx).unwrap();
        let loaded = ep.read_acl(a.acl_anode).unwrap();
        assert_eq!(loaded.len(), 2000);
        assert_eq!(loaded, acl);
    }
}
