//! Episode's implementation of the VFS+ and PhysicalFs interfaces.
//!
//! Each mounted volume is an [`EpisodeVolume`] implementing
//! [`dfs_vfs::Vfs`] and [`dfs_vfs::VfsPlus`]; the aggregate itself
//! implements [`dfs_vfs::PhysicalFs`]. Operations use per-anode
//! reader/writer locks (Episode "is designed with finely grained locking",
//! §2), short transactions, and ACL-based permission checks (§2.3).

use crate::dir::RawDirEntry;
use crate::layout::{check_name, Anode, AnodeKind};
use crate::Episode;
use dfs_types::{Acl, DfsError, DfsResult, FileStatus, Fid, Rights, VnodeId, VolumeId};
use dfs_vfs::{
    Credentials, DirEntry, PhysicalFs, SalvageReport, SetAttrs, Vfs, VfsPlus, VolumeDump,
    VolumeInfo,
};
use std::sync::Arc;

/// A mounted Episode volume: the "VFS is a mounted volume" of §2.1.
pub struct EpisodeVolume {
    ep: Arc<Episode>,
    vol: VolumeId,
    header: u32,
    read_only: bool,
    root_vnode: u32,
}

impl EpisodeVolume {
    /// Resolves a fid to its anode slot and contents, checking staleness.
    fn resolve(&self, fid: Fid) -> DfsResult<(u32, Anode)> {
        if fid.volume != self.vol {
            return Err(DfsError::NoSuchVolume);
        }
        let slot = self.ep.vnode_get(self.header, fid.vnode.0)?;
        if slot == 0 {
            return Err(DfsError::StaleFid);
        }
        let a = self.ep.read_anode(slot)?;
        if a.uniq != fid.uniq {
            return Err(DfsError::StaleFid);
        }
        Ok((slot, a))
    }

    /// Computes the caller's rights on an anode: the ACL if present,
    /// otherwise rights synthesized from the UNIX mode bits.
    fn rights_on(&self, cred: &Credentials, a: &Anode) -> DfsResult<Rights> {
        if cred.is_system() {
            return Ok(Rights::ALL);
        }
        if a.acl_anode != 0 {
            let acl = self.ep.read_acl(a.acl_anode)?;
            return Ok(acl.rights_for(cred.user, &cred.groups, a.owner));
        }
        let bits = if cred.user == a.owner {
            (a.mode >> 6) & 7
        } else if cred.groups.contains(&a.group) {
            (a.mode >> 3) & 7
        } else {
            a.mode & 7
        };
        let mut r = Rights::NONE;
        if bits & 4 != 0 {
            r |= Rights::READ;
        }
        if bits & 2 != 0 {
            r |= Rights::WRITE | Rights::INSERT | Rights::DELETE;
        }
        if bits & 1 != 0 {
            r |= Rights::EXECUTE;
        }
        if cred.user == a.owner {
            r |= Rights::CONTROL;
        }
        Ok(r)
    }

    fn check(&self, cred: &Credentials, a: &Anode, needed: Rights) -> DfsResult<()> {
        if self.rights_on(cred, a)?.allows(needed) {
            Ok(())
        } else {
            Err(DfsError::PermissionDenied)
        }
    }

    fn check_writable(&self) -> DfsResult<()> {
        if self.read_only {
            Err(DfsError::ReadOnlyVolume)
        } else {
            Ok(())
        }
    }

    fn status_of_entry(&self, e: &RawDirEntry) -> DfsResult<FileStatus> {
        let fid = Fid::new(self.vol, VnodeId(e.vnode), e.uniq);
        let (_, a) = self.resolve(fid)?;
        Ok(self.ep.status_from_anode(fid, &a))
    }

    /// Creates a file/directory/symlink entry; shared by create paths.
    fn make_node(
        &self,
        cred: &Credentials,
        dir: Fid,
        name: &str,
        kind: AnodeKind,
        mode: u16,
        symlink_target: Option<&str>,
    ) -> DfsResult<FileStatus> {
        self.check_writable()?;
        check_name(name)?;
        let (dslot, _) = self.resolve(dir)?;
        let lock = self.ep.anode_lock(dslot);
        let _g = lock.write();
        let mut d = self.ep.read_anode(dslot)?;
        if d.kind != AnodeKind::Directory {
            return Err(DfsError::NotDirectory);
        }
        self.check(cred, &d, Rights::INSERT)?;
        if self.ep.dir_lookup(&d, name)?.is_some() {
            return Err(DfsError::Exists);
        }
        let txn = self.ep.jn.begin();
        let (slot, mut a) =
            self.ep.alloc_anode(txn, kind, self.vol.0, mode, cred.user, 0)?;
        a.uniq = self.ep.next_uniq(txn, self.header)?;
        if kind == AnodeKind::Directory {
            a.nlink = 2;
        }
        if let Some(target) = symlink_target {
            self.ep.anode_write(txn, &mut a, 0, target.as_bytes(), true)?;
        }
        self.ep.write_anode(txn, slot, &a)?;
        let v = self.ep.vnode_alloc(txn, self.header, slot)?;
        self.ep.dir_insert(
            txn,
            &mut d,
            &RawDirEntry { name: name.into(), vnode: v, uniq: a.uniq, kind: kind.to_byte() },
        )?;
        d.mtime = self.ep.clock.now().as_micros();
        d.data_version = self.ep.bump_volume_version(txn, self.header)?;
        if kind == AnodeKind::Directory {
            d.nlink += 1;
        }
        self.ep.write_anode(txn, dslot, &d)?;
        self.ep.jn.commit(txn)?;
        let fid = Fid::new(self.vol, VnodeId(v), a.uniq);
        Ok(self.ep.status_from_anode(fid, &a))
    }
}

impl Vfs for EpisodeVolume {
    fn volume_id(&self) -> VolumeId {
        self.vol
    }

    fn root(&self) -> DfsResult<Fid> {
        let slot = self.ep.vnode_get(self.header, self.root_vnode)?;
        let a = self.ep.read_anode(slot)?;
        Ok(Fid::new(self.vol, VnodeId(self.root_vnode), a.uniq))
    }

    fn lookup(&self, cred: &Credentials, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        let (dslot, _) = self.resolve(dir)?;
        let lock = self.ep.anode_lock(dslot);
        let _g = lock.read();
        let d = self.ep.read_anode(dslot)?;
        if d.kind != AnodeKind::Directory {
            return Err(DfsError::NotDirectory);
        }
        self.check(cred, &d, Rights::EXECUTE)?;
        let e = self.ep.dir_lookup(&d, name)?.ok_or(DfsError::NotFound)?;
        self.status_of_entry(&e)
    }

    fn create(&self, cred: &Credentials, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        self.make_node(cred, dir, name, AnodeKind::File, mode, None)
    }

    fn mkdir(&self, cred: &Credentials, dir: Fid, name: &str, mode: u16) -> DfsResult<FileStatus> {
        self.make_node(cred, dir, name, AnodeKind::Directory, mode, None)
    }

    fn symlink(
        &self,
        cred: &Credentials,
        dir: Fid,
        name: &str,
        target: &str,
    ) -> DfsResult<FileStatus> {
        self.make_node(cred, dir, name, AnodeKind::Symlink, 0o777, Some(target))
    }

    fn link(&self, cred: &Credentials, dir: Fid, name: &str, target: Fid) -> DfsResult<FileStatus> {
        self.check_writable()?;
        check_name(name)?;
        let (dslot, _) = self.resolve(dir)?;
        let (tslot, _) = self.resolve(target)?;
        if dslot == tslot {
            return Err(DfsError::InvalidArgument);
        }
        // Lock in slot order to avoid deadlock with concurrent links.
        let (first, second) = if dslot < tslot { (dslot, tslot) } else { (tslot, dslot) };
        let l1 = self.ep.anode_lock(first);
        let l2 = self.ep.anode_lock(second);
        let _g1 = l1.write();
        let _g2 = l2.write();
        let mut d = self.ep.read_anode(dslot)?;
        let mut t = self.ep.read_anode(tslot)?;
        if d.kind != AnodeKind::Directory {
            return Err(DfsError::NotDirectory);
        }
        if t.kind == AnodeKind::Directory {
            return Err(DfsError::IsDirectory);
        }
        self.check(cred, &d, Rights::INSERT)?;
        if self.ep.dir_lookup(&d, name)?.is_some() {
            return Err(DfsError::Exists);
        }
        let txn = self.ep.jn.begin();
        t.nlink += 1;
        t.ctime = self.ep.clock.now().as_micros();
        self.ep.write_anode(txn, tslot, &t)?;
        self.ep.dir_insert(
            txn,
            &mut d,
            &RawDirEntry {
                name: name.into(),
                vnode: target.vnode.0,
                uniq: target.uniq,
                kind: t.kind.to_byte(),
            },
        )?;
        d.mtime = self.ep.clock.now().as_micros();
        d.data_version = self.ep.bump_volume_version(txn, self.header)?;
        self.ep.write_anode(txn, dslot, &d)?;
        self.ep.jn.commit(txn)?;
        Ok(self.ep.status_from_anode(target, &t))
    }

    fn remove(&self, cred: &Credentials, dir: Fid, name: &str) -> DfsResult<FileStatus> {
        self.check_writable()?;
        let (dslot, _) = self.resolve(dir)?;
        let lock = self.ep.anode_lock(dslot);
        let _g = lock.write();
        let mut d = self.ep.read_anode(dslot)?;
        if d.kind != AnodeKind::Directory {
            return Err(DfsError::NotDirectory);
        }
        self.check(cred, &d, Rights::DELETE)?;
        let e = self.ep.dir_lookup(&d, name)?.ok_or(DfsError::NotFound)?;
        if e.kind == AnodeKind::Directory.to_byte() {
            return Err(DfsError::IsDirectory);
        }
        let tslot = self.ep.vnode_get(self.header, e.vnode)?;
        let mut t = self.ep.read_anode(tslot)?;
        let txn = self.ep.jn.begin();
        self.ep.dir_remove(txn, &mut d, name)?;
        d.mtime = self.ep.clock.now().as_micros();
        d.data_version = self.ep.bump_volume_version(txn, self.header)?;
        self.ep.write_anode(txn, dslot, &d)?;
        t.nlink = t.nlink.saturating_sub(1);
        t.ctime = self.ep.clock.now().as_micros();
        self.ep.write_anode(txn, tslot, &t)?;
        self.ep.jn.commit(txn)?;
        let fid = Fid::new(self.vol, VnodeId(e.vnode), e.uniq);
        let status = self.ep.status_from_anode(fid, &t);
        if t.nlink == 0 {
            // Storage reclamation runs as its own chunked transactions;
            // a crash in between leaves an orphan the salvager repairs.
            self.ep.destroy_anode(tslot)?;
            let txn = self.ep.jn.begin();
            self.ep.vnode_set(txn, self.header, e.vnode, 0)?;
            self.ep.jn.commit(txn)?;
        }
        Ok(status)
    }

    fn rmdir(&self, cred: &Credentials, dir: Fid, name: &str) -> DfsResult<()> {
        self.check_writable()?;
        let (dslot, _) = self.resolve(dir)?;
        let lock = self.ep.anode_lock(dslot);
        let _g = lock.write();
        let mut d = self.ep.read_anode(dslot)?;
        if d.kind != AnodeKind::Directory {
            return Err(DfsError::NotDirectory);
        }
        self.check(cred, &d, Rights::DELETE)?;
        let e = self.ep.dir_lookup(&d, name)?.ok_or(DfsError::NotFound)?;
        if e.kind != AnodeKind::Directory.to_byte() {
            return Err(DfsError::NotDirectory);
        }
        let tslot = self.ep.vnode_get(self.header, e.vnode)?;
        let t = self.ep.read_anode(tslot)?;
        if !self.ep.dir_is_empty(&t)? {
            return Err(DfsError::NotEmpty);
        }
        let txn = self.ep.jn.begin();
        self.ep.dir_remove(txn, &mut d, name)?;
        d.mtime = self.ep.clock.now().as_micros();
        d.data_version = self.ep.bump_volume_version(txn, self.header)?;
        d.nlink = d.nlink.saturating_sub(1);
        self.ep.write_anode(txn, dslot, &d)?;
        self.ep.jn.commit(txn)?;
        self.ep.destroy_anode(tslot)?;
        let txn = self.ep.jn.begin();
        self.ep.vnode_set(txn, self.header, e.vnode, 0)?;
        self.ep.jn.commit(txn)
    }

    fn rename(
        &self,
        cred: &Credentials,
        src_dir: Fid,
        src_name: &str,
        dst_dir: Fid,
        dst_name: &str,
    ) -> DfsResult<()> {
        self.check_writable()?;
        check_name(src_name)?;
        check_name(dst_name)?;
        let (sslot, _) = self.resolve(src_dir)?;
        let (dslot, _) = self.resolve(dst_dir)?;
        // Lock directories in slot order (equal fids lock once).
        let (first, second) = if sslot <= dslot { (sslot, dslot) } else { (dslot, sslot) };
        let l1 = self.ep.anode_lock(first);
        let l2 = self.ep.anode_lock(second);
        let _g1 = l1.write();
        let _g2 = if second != first { Some(l2.write()) } else { None };
        let mut sd = self.ep.read_anode(sslot)?;
        self.check(cred, &sd, Rights::DELETE)?;
        let e = self.ep.dir_lookup(&sd, src_name)?.ok_or(DfsError::NotFound)?;

        let txn = self.ep.jn.begin();
        let mut destroy_slot = None;
        if sslot == dslot {
            if let Some(old) = self.ep.dir_lookup(&sd, dst_name)? {
                if old.vnode != e.vnode {
                    let oslot = self.ep.vnode_get(self.header, old.vnode)?;
                    let mut o = self.ep.read_anode(oslot)?;
                    if o.kind == AnodeKind::Directory
                        && !self.ep.dir_is_empty(&o)? {
                            return Err(DfsError::NotEmpty);
                        }
                    o.nlink = o.nlink.saturating_sub(if o.kind == AnodeKind::Directory {
                        2
                    } else {
                        1
                    });
                    self.ep.write_anode(txn, oslot, &o)?;
                    self.ep.dir_remove(txn, &mut sd, dst_name)?;
                    if o.nlink == 0 {
                        destroy_slot = Some((oslot, old.vnode));
                    }
                }
            }
            self.ep.dir_remove(txn, &mut sd, src_name)?;
            self.ep.dir_insert(
                txn,
                &mut sd,
                &RawDirEntry {
                    name: dst_name.into(),
                    vnode: e.vnode,
                    uniq: e.uniq,
                    kind: e.kind,
                },
            )?;
            sd.mtime = self.ep.clock.now().as_micros();
            sd.data_version = self.ep.bump_volume_version(txn, self.header)?;
            self.ep.write_anode(txn, sslot, &sd)?;
        } else {
            let mut dd = self.ep.read_anode(dslot)?;
            self.check(cred, &dd, Rights::INSERT)?;
            if let Some(old) = self.ep.dir_lookup(&dd, dst_name)? {
                let oslot = self.ep.vnode_get(self.header, old.vnode)?;
                let mut o = self.ep.read_anode(oslot)?;
                if o.kind == AnodeKind::Directory && !self.ep.dir_is_empty(&o)? {
                    return Err(DfsError::NotEmpty);
                }
                o.nlink = o
                    .nlink
                    .saturating_sub(if o.kind == AnodeKind::Directory { 2 } else { 1 });
                self.ep.write_anode(txn, oslot, &o)?;
                self.ep.dir_remove(txn, &mut dd, dst_name)?;
                if o.nlink == 0 {
                    destroy_slot = Some((oslot, old.vnode));
                }
            }
            self.ep.dir_remove(txn, &mut sd, src_name)?;
            self.ep.dir_insert(
                txn,
                &mut dd,
                &RawDirEntry {
                    name: dst_name.into(),
                    vnode: e.vnode,
                    uniq: e.uniq,
                    kind: e.kind,
                },
            )?;
            let now = self.ep.clock.now().as_micros();
            sd.mtime = now;
            sd.data_version = self.ep.bump_volume_version(txn, self.header)?;
            dd.mtime = now;
            dd.data_version = self.ep.bump_volume_version(txn, self.header)?;
            if e.kind == AnodeKind::Directory.to_byte() {
                sd.nlink = sd.nlink.saturating_sub(1);
                dd.nlink += 1;
            }
            self.ep.write_anode(txn, sslot, &sd)?;
            self.ep.write_anode(txn, dslot, &dd)?;
        }
        self.ep.jn.commit(txn)?;
        if let Some((oslot, ovnode)) = destroy_slot {
            self.ep.destroy_anode(oslot)?;
            let txn = self.ep.jn.begin();
            self.ep.vnode_set(txn, self.header, ovnode, 0)?;
            self.ep.jn.commit(txn)?;
        }
        Ok(())
    }

    fn readdir(&self, cred: &Credentials, dir: Fid) -> DfsResult<Vec<DirEntry>> {
        let (dslot, _) = self.resolve(dir)?;
        let lock = self.ep.anode_lock(dslot);
        let _g = lock.read();
        let d = self.ep.read_anode(dslot)?;
        if d.kind != AnodeKind::Directory {
            return Err(DfsError::NotDirectory);
        }
        self.check(cred, &d, Rights::READ)?;
        Ok(self
            .ep
            .dir_list(&d)?
            .into_iter()
            .map(|e| DirEntry {
                name: e.name,
                fid: Fid::new(self.vol, VnodeId(e.vnode), e.uniq),
            })
            .collect())
    }

    fn read(&self, cred: &Credentials, file: Fid, offset: u64, len: usize) -> DfsResult<Vec<u8>> {
        let (slot, _) = self.resolve(file)?;
        let lock = self.ep.anode_lock(slot);
        let _g = lock.read();
        let a = self.ep.read_anode(slot)?;
        if a.kind == AnodeKind::Directory {
            return Err(DfsError::IsDirectory);
        }
        self.check(cred, &a, Rights::READ)?;
        self.ep.anode_read(&a, offset, len)
    }

    fn write(
        &self,
        cred: &Credentials,
        file: Fid,
        offset: u64,
        data: &[u8],
    ) -> DfsResult<FileStatus> {
        self.check_writable()?;
        let (slot, _) = self.resolve(file)?;
        let lock = self.ep.anode_lock(slot);
        let _g = lock.write();
        let mut a = self.ep.read_anode(slot)?;
        if a.kind == AnodeKind::Directory {
            return Err(DfsError::IsDirectory);
        }
        self.check(cred, &a, Rights::WRITE)?;
        let txn = self.ep.jn.begin();
        self.ep.anode_write(txn, &mut a, offset, data, false)?;
        a.mtime = self.ep.clock.now().as_micros();
        a.data_version = self.ep.bump_volume_version(txn, self.header)?;
        self.ep.write_anode(txn, slot, &a)?;
        self.ep.jn.commit(txn)?;
        Ok(self.ep.status_from_anode(file, &a))
    }

    /// The batched store-back path: all extents land in *one* journal
    /// transaction with a single version bump and anode write, then the
    /// log is group-committed once. A 16-page store-back thus costs one
    /// log force where the per-extent path would pay sixteen.
    fn write_vec(
        &self,
        cred: &Credentials,
        file: Fid,
        extents: &[dfs_vfs::WriteExtent],
    ) -> DfsResult<FileStatus> {
        self.check_writable()?;
        let (slot, _) = self.resolve(file)?;
        let lock = self.ep.anode_lock(slot);
        let _g = lock.write();
        let mut a = self.ep.read_anode(slot)?;
        if a.kind == AnodeKind::Directory {
            return Err(DfsError::IsDirectory);
        }
        self.check(cred, &a, Rights::WRITE)?;
        if !extents.is_empty() {
            let txn = self.ep.jn.begin();
            for e in extents {
                self.ep.anode_write(txn, &mut a, e.offset, &e.data, false)?;
            }
            a.mtime = self.ep.clock.now().as_micros();
            a.data_version = self.ep.bump_volume_version(txn, self.header)?;
            self.ep.write_anode(txn, slot, &a)?;
            self.ep.jn.commit(txn)?;
        }
        // Durability contract: the client discards its dirty pages on
        // the strength of this reply, so force the log (metadata redo)
        // AND the touched data buffers (user data is unlogged) before
        // returning — otherwise a crash that loses the disk cache loses
        // an acknowledged store.
        self.ep.jn.sync()?;
        for e in extents {
            self.ep.anode_force_home(&a, e.offset, e.data.len() as u64)?;
        }
        Ok(self.ep.status_from_anode(file, &a))
    }

    fn getattr(&self, _cred: &Credentials, file: Fid) -> DfsResult<FileStatus> {
        let (_, a) = self.resolve(file)?;
        Ok(self.ep.status_from_anode(file, &a))
    }

    fn setattr(&self, cred: &Credentials, file: Fid, attrs: &SetAttrs) -> DfsResult<FileStatus> {
        self.check_writable()?;
        let (slot, _) = self.resolve(file)?;
        let lock = self.ep.anode_lock(slot);
        let _g = lock.write();
        let a = self.ep.read_anode(slot)?;
        if attrs.mode.is_some() || attrs.owner.is_some() || attrs.group.is_some() {
            self.check(cred, &a, Rights::CONTROL)?;
        }
        if let Some(len) = attrs.length {
            if a.kind == AnodeKind::Directory {
                return Err(DfsError::IsDirectory);
            }
            self.check(cred, &a, Rights::WRITE)?;
            // Truncation runs as its own sequence of short transactions.
            self.ep.anode_truncate(slot, len)?;
        }
        let txn = self.ep.jn.begin();
        let mut a = self.ep.read_anode(slot)?;
        if attrs.length.is_some() {
            a.data_version = self.ep.bump_volume_version(txn, self.header)?;
        }
        if let Some(m) = attrs.mode {
            a.mode = m;
        }
        if let Some(o) = attrs.owner {
            a.owner = o;
        }
        if let Some(g) = attrs.group {
            a.group = g;
        }
        if let Some(t) = attrs.mtime {
            a.mtime = t.as_micros();
        }
        a.ctime = self.ep.clock.now().as_micros();
        self.ep.write_anode(txn, slot, &a)?;
        self.ep.jn.commit(txn)?;
        Ok(self.ep.status_from_anode(file, &a))
    }

    fn readlink(&self, cred: &Credentials, file: Fid) -> DfsResult<String> {
        let (slot, a) = self.resolve(file)?;
        let lock = self.ep.anode_lock(slot);
        let _g = lock.read();
        if a.kind != AnodeKind::Symlink {
            return Err(DfsError::InvalidArgument);
        }
        self.check(cred, &a, Rights::READ)?;
        let bytes = self.ep.anode_read(&a, 0, a.length as usize)?;
        Ok(String::from_utf8_lossy(&bytes).into_owned())
    }

    fn fsync(&self, _cred: &Credentials, file: Fid) -> DfsResult<()> {
        self.resolve(file)?;
        // Group-commit the log and force buffers home (§2.2 fsync).
        self.ep.jn.flush_all()
    }

    fn sync(&self) -> DfsResult<()> {
        self.ep.jn.flush_all()
    }
}

impl VfsPlus for EpisodeVolume {
    fn get_acl(&self, _cred: &Credentials, file: Fid) -> DfsResult<Acl> {
        let (_, a) = self.resolve(file)?;
        if a.acl_anode == 0 {
            return Ok(Acl::new());
        }
        self.ep.read_acl(a.acl_anode)
    }

    fn set_acl(&self, cred: &Credentials, file: Fid, acl: &Acl) -> DfsResult<()> {
        self.check_writable()?;
        let (slot, _) = self.resolve(file)?;
        let lock = self.ep.anode_lock(slot);
        let _g = lock.write();
        let mut a = self.ep.read_anode(slot)?;
        self.check(cred, &a, Rights::CONTROL)?;
        let txn = self.ep.jn.begin();
        self.ep.write_acl(txn, &mut a, acl)?;
        a.ctime = self.ep.clock.now().as_micros();
        self.ep.write_anode(txn, slot, &a)?;
        self.ep.jn.commit(txn)
    }
}

impl PhysicalFs for Episode {
    fn aggregate_id(&self) -> dfs_types::AggregateId {
        self.aggregate()
    }

    fn list_volumes(&self) -> DfsResult<Vec<VolumeInfo>> {
        self.voltable_list()?
            .into_iter()
            .map(|(id, _)| self.volume_info_inner(id))
            .collect()
    }

    fn volume_info(&self, vol: VolumeId) -> DfsResult<VolumeInfo> {
        self.volume_info_inner(vol)
    }

    fn create_volume(&self, id: VolumeId, name: &str) -> DfsResult<()> {
        Episode::create_volume(self, id, name)
    }

    fn delete_volume(&self, vol: VolumeId) -> DfsResult<()> {
        Episode::delete_volume(self, vol)
    }

    fn clone_volume(&self, src: VolumeId, clone_id: VolumeId, name: &str) -> DfsResult<()> {
        Episode::clone_volume(self, src, clone_id, name)
    }

    fn mount(&self, vol: VolumeId) -> DfsResult<Arc<dyn VfsPlus>> {
        let (_, header) = self.voltable_find(vol)?.ok_or(DfsError::NoSuchVolume)?;
        let vh = self.read_volume_header(header)?;
        // SAFETY of the self-clone: Episode is always used behind Arc;
        // mount is only reachable through Arc<Episode> receivers.
        let ep = self.self_arc();
        Ok(Arc::new(EpisodeVolume {
            ep,
            vol,
            header,
            read_only: vh.read_only(),
            root_vnode: vh.root_vnode,
        }))
    }

    fn dump_volume(&self, vol: VolumeId, since_version: u64) -> DfsResult<VolumeDump> {
        self.dump_volume_inner(vol, since_version)
    }

    fn restore_volume(&self, dump: &VolumeDump, read_only: bool) -> DfsResult<()> {
        self.restore_volume_inner(dump, read_only)
    }

    fn salvage(&self) -> DfsResult<SalvageReport> {
        crate::salvage::salvage(self)
    }

    fn sync_aggregate(&self) -> DfsResult<()> {
        self.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::fresh;

    pub(crate) fn mounted() -> (Arc<Episode>, Arc<dyn VfsPlus>) {
        let ep = fresh(16384);
        ep.create_volume(VolumeId(1), "test").unwrap();
        let vol = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
        (ep, vol)
    }

    fn cred() -> Credentials {
        Credentials::system()
    }

    #[test]
    fn create_lookup_read_write() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let f = v.create(&cred(), root, "hello.txt", 0o644).unwrap();
        assert_eq!(f.length, 0);
        let st = v.write(&cred(), f.fid, 0, b"hello episode").unwrap();
        assert_eq!(st.length, 13);
        assert!(st.data_version > f.data_version);
        let found = v.lookup(&cred(), root, "hello.txt").unwrap();
        assert_eq!(found.fid, f.fid);
        assert_eq!(v.read(&cred(), f.fid, 0, 64).unwrap(), b"hello episode");
        assert_eq!(v.read(&cred(), f.fid, 6, 7).unwrap(), b"episode");
    }

    #[test]
    fn write_vec_single_txn_single_sync() {
        let (ep, v) = mounted();
        let root = v.root().unwrap();
        let f = v.create(&cred(), root, "batched", 0o644).unwrap();
        let before = ep.journal().stats();
        let before_version = f.data_version;
        // Two discontiguous extents (hole between them) in one call.
        let extents = vec![
            dfs_vfs::WriteExtent { offset: 0, data: vec![7u8; 8192] },
            dfs_vfs::WriteExtent { offset: 16384, data: vec![9u8; 100] },
        ];
        let st = v.write_vec(&cred(), f.fid, &extents).unwrap();
        assert_eq!(st.length, 16484);
        // One transaction, one commit record, one group commit for the
        // whole batch — and a single version bump across both extents.
        let d = ep.journal().stats().since(&before);
        assert_eq!(d.syncs, 1);
        assert_eq!(d.txns_begun, 1);
        assert_eq!(d.commit_records, 1);
        assert!(st.data_version > before_version);
        assert_eq!(v.read(&cred(), f.fid, 0, 8192).unwrap(), vec![7u8; 8192]);
        assert_eq!(v.read(&cred(), f.fid, 16384, 100).unwrap(), vec![9u8; 100]);
        // The hole reads back as zeros.
        assert_eq!(v.read(&cred(), f.fid, 8192, 4).unwrap(), vec![0u8; 4]);
        // Empty batch: no transaction, no version change; the log force
        // is a no-op because nothing is pending after the sync above.
        let after = ep.journal().stats();
        let st2 = v.write_vec(&cred(), f.fid, &[]).unwrap();
        assert_eq!(st2.data_version, st.data_version);
        assert_eq!(ep.journal().stats().since(&after).txns_begun, 0);
    }

    #[test]
    fn write_vec_respects_permissions_and_read_only() {
        let (ep, v) = mounted();
        let root = v.root().unwrap();
        let f = v.create(&cred(), root, "guarded", 0o600).unwrap();
        let ext = vec![dfs_vfs::WriteExtent { offset: 0, data: vec![1u8; 16] }];
        // Non-owner without write bits is rejected.
        assert_eq!(
            v.write_vec(&Credentials::user(42), f.fid, &ext).unwrap_err(),
            DfsError::PermissionDenied
        );
        // Read-only clones refuse the batch outright.
        Episode::clone_volume(&ep, VolumeId(1), VolumeId(2), "snap").unwrap();
        let snap = PhysicalFs::mount(&*ep, VolumeId(2)).unwrap();
        let froot = snap.root().unwrap();
        let fs = snap.lookup(&cred(), froot, "guarded").unwrap();
        assert_eq!(
            snap.write_vec(&cred(), fs.fid, &ext).unwrap_err(),
            DfsError::ReadOnlyVolume
        );
    }

    #[test]
    fn mkdir_and_nested_paths() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let d1 = v.mkdir(&cred(), root, "a", 0o755).unwrap();
        let d2 = v.mkdir(&cred(), d1.fid, "b", 0o755).unwrap();
        let f = v.create(&cred(), d2.fid, "deep.txt", 0o644).unwrap();
        let hit = v.lookup(&cred(), d1.fid, "b").unwrap();
        assert_eq!(hit.fid, d2.fid);
        assert!(hit.is_dir());
        let hit = v.lookup(&cred(), d2.fid, "deep.txt").unwrap();
        assert_eq!(hit.fid, f.fid);
        // Parent nlink grew for the subdirectory.
        let rst = v.getattr(&cred(), root).unwrap();
        assert_eq!(rst.nlink, 3);
    }

    #[test]
    fn duplicate_create_fails() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        v.create(&cred(), root, "x", 0o644).unwrap();
        assert_eq!(v.create(&cred(), root, "x", 0o644).unwrap_err(), DfsError::Exists);
        assert_eq!(v.mkdir(&cred(), root, "x", 0o755).unwrap_err(), DfsError::Exists);
    }

    #[test]
    fn remove_frees_and_stales_fid() {
        let (ep, v) = mounted();
        let root = v.root().unwrap();
        let f = v.create(&cred(), root, "gone", 0o644).unwrap();
        v.write(&cred(), f.fid, 0, &vec![1u8; 10000]).unwrap();
        let st = v.remove(&cred(), root, "gone").unwrap();
        assert_eq!(st.nlink, 0);
        assert_eq!(v.lookup(&cred(), root, "gone").unwrap_err(), DfsError::NotFound);
        assert_eq!(v.getattr(&cred(), f.fid).unwrap_err(), DfsError::StaleFid);
        // Blocks were reclaimed.
        let report = ep.salvage().unwrap();
        assert!(report.is_clean(), "{:?}", report.problems);
    }

    #[test]
    fn hard_links_share_data() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let f = v.create(&cred(), root, "orig", 0o644).unwrap();
        v.write(&cred(), f.fid, 0, b"shared").unwrap();
        let linked = v.link(&cred(), root, "alias", f.fid).unwrap();
        assert_eq!(linked.nlink, 2);
        assert_eq!(v.read(&cred(), f.fid, 0, 16).unwrap(), b"shared");
        let via_alias = v.lookup(&cred(), root, "alias").unwrap();
        assert_eq!(via_alias.fid, f.fid);
        // Removing one name keeps the file alive.
        v.remove(&cred(), root, "orig").unwrap();
        assert_eq!(v.read(&cred(), f.fid, 0, 16).unwrap(), b"shared");
        v.remove(&cred(), root, "alias").unwrap();
        assert_eq!(v.getattr(&cred(), f.fid).unwrap_err(), DfsError::StaleFid);
    }

    #[test]
    fn rmdir_requires_empty() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let d = v.mkdir(&cred(), root, "dir", 0o755).unwrap();
        v.create(&cred(), d.fid, "child", 0o644).unwrap();
        assert_eq!(v.rmdir(&cred(), root, "dir").unwrap_err(), DfsError::NotEmpty);
        v.remove(&cred(), d.fid, "child").unwrap();
        v.rmdir(&cred(), root, "dir").unwrap();
        assert_eq!(v.lookup(&cred(), root, "dir").unwrap_err(), DfsError::NotFound);
    }

    #[test]
    fn rename_within_and_across_directories() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let d = v.mkdir(&cred(), root, "sub", 0o755).unwrap();
        let f = v.create(&cred(), root, "a", 0o644).unwrap();
        v.write(&cred(), f.fid, 0, b"content").unwrap();
        // Same-directory rename.
        v.rename(&cred(), root, "a", root, "b").unwrap();
        assert_eq!(v.lookup(&cred(), root, "b").unwrap().fid, f.fid);
        assert!(v.lookup(&cred(), root, "a").is_err());
        // Cross-directory rename.
        v.rename(&cred(), root, "b", d.fid, "c").unwrap();
        assert_eq!(v.lookup(&cred(), d.fid, "c").unwrap().fid, f.fid);
        assert_eq!(v.read(&cred(), f.fid, 0, 16).unwrap(), b"content");
    }

    #[test]
    fn rename_replaces_existing_target() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let a = v.create(&cred(), root, "a", 0o644).unwrap();
        let b = v.create(&cred(), root, "b", 0o644).unwrap();
        v.write(&cred(), a.fid, 0, b"AAA").unwrap();
        v.write(&cred(), b.fid, 0, b"BBB").unwrap();
        v.rename(&cred(), root, "a", root, "b").unwrap();
        let now_b = v.lookup(&cred(), root, "b").unwrap();
        assert_eq!(now_b.fid, a.fid, "a took over the name b");
        assert_eq!(v.getattr(&cred(), b.fid).unwrap_err(), DfsError::StaleFid);
        assert_eq!(v.readdir(&cred(), root).unwrap().len(), 1);
    }

    #[test]
    fn readdir_lists_entries() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        for name in ["one", "two", "three"] {
            v.create(&cred(), root, name, 0o644).unwrap();
        }
        let mut names: Vec<String> =
            v.readdir(&cred(), root).unwrap().into_iter().map(|e| e.name).collect();
        names.sort();
        assert_eq!(names, vec!["one", "three", "two"]);
    }

    #[test]
    fn symlink_round_trip() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let s = v.symlink(&cred(), root, "ln", "/target/path").unwrap();
        assert_eq!(v.readlink(&cred(), s.fid).unwrap(), "/target/path");
        let st = v.lookup(&cred(), root, "ln").unwrap();
        assert_eq!(st.ftype, dfs_types::FileType::Symlink);
    }

    #[test]
    fn setattr_truncate_and_chmod() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let f = v.create(&cred(), root, "t", 0o644).unwrap();
        v.write(&cred(), f.fid, 0, &vec![9u8; 50_000]).unwrap();
        let st = v.setattr(&cred(), f.fid, &SetAttrs::truncate(100)).unwrap();
        assert_eq!(st.length, 100);
        assert_eq!(v.read(&cred(), f.fid, 0, 200).unwrap(), vec![9u8; 100]);
        let st = v
            .setattr(
                &cred(),
                f.fid,
                &SetAttrs { mode: Some(0o600), owner: Some(5), ..SetAttrs::default() },
            )
            .unwrap();
        assert_eq!(st.mode, 0o600);
        assert_eq!(st.owner, 5);
    }

    #[test]
    fn permissions_mode_bits() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let owner = Credentials::user(100);
        let other = Credentials::user(200);
        // Root dir is 0o755 owned by system; the owner can't insert.
        assert_eq!(
            v.create(&owner, root, "denied", 0o644).unwrap_err(),
            DfsError::PermissionDenied
        );
        // Open up the root for this test.
        v.setattr(&cred(), root, &SetAttrs { mode: Some(0o777), ..SetAttrs::default() })
            .unwrap();
        let f = v.create(&owner, root, "mine", 0o640).unwrap();
        assert_eq!(f.owner, 100);
        v.write(&owner, f.fid, 0, b"secret").unwrap();
        assert_eq!(
            v.read(&other, f.fid, 0, 10).unwrap_err(),
            DfsError::PermissionDenied
        );
        assert_eq!(
            v.write(&other, f.fid, 0, b"x").unwrap_err(),
            DfsError::PermissionDenied
        );
        // Group member may read (mode 0o640).
        let mut teammate = Credentials::user(300);
        teammate.groups.push(0);
        assert_eq!(v.read(&teammate, f.fid, 0, 6).unwrap(), b"secret");
    }

    #[test]
    fn acl_overrides_mode_bits() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let f = v.create(&cred(), root, "guarded", 0o777).unwrap();
        let mut acl = Acl::new();
        acl.push(dfs_types::AclEntry::allow(
            dfs_types::Principal::User(7),
            Rights::READ | Rights::WRITE,
        ));
        v.set_acl(&cred(), f.fid, &acl).unwrap();
        assert_eq!(v.get_acl(&cred(), f.fid).unwrap(), acl);
        let seven = Credentials::user(7);
        let eight = Credentials::user(8);
        v.write(&seven, f.fid, 0, b"ok").unwrap();
        assert_eq!(
            v.read(&eight, f.fid, 0, 2).unwrap_err(),
            DfsError::PermissionDenied,
            "mode bits said 0o777 but the ACL is authoritative"
        );
    }

    #[test]
    fn write_to_read_only_clone_fails() {
        let (ep, v) = mounted();
        let root = v.root().unwrap();
        let f = v.create(&cred(), root, "base", 0o644).unwrap();
        v.write(&cred(), f.fid, 0, b"v1").unwrap();
        Episode::clone_volume(&ep, VolumeId(1), VolumeId(2), "test.backup").unwrap();
        let snap = PhysicalFs::mount(&*ep, VolumeId(2)).unwrap();
        let sroot = snap.root().unwrap();
        let sf = snap.lookup(&cred(), sroot, "base").unwrap();
        assert_eq!(snap.read(&cred(), sf.fid, 0, 10).unwrap(), b"v1");
        assert_eq!(
            snap.write(&cred(), sf.fid, 0, b"nope").unwrap_err(),
            DfsError::ReadOnlyVolume
        );
        assert_eq!(
            snap.create(&cred(), sroot, "new", 0o644).unwrap_err(),
            DfsError::ReadOnlyVolume
        );
    }

    #[test]
    fn clone_preserves_snapshot_while_original_diverges() {
        let (ep, v) = mounted();
        let root = v.root().unwrap();
        let f = v.create(&cred(), root, "doc", 0o644).unwrap();
        v.write(&cred(), f.fid, 0, b"original contents").unwrap();
        Episode::clone_volume(&ep, VolumeId(1), VolumeId(2), "snap").unwrap();
        // Mutate the original after the clone.
        v.write(&cred(), f.fid, 0, b"MUTATED~~contents").unwrap();
        v.create(&cred(), root, "newfile", 0o644).unwrap();

        let snap = PhysicalFs::mount(&*ep, VolumeId(2)).unwrap();
        let sroot = snap.root().unwrap();
        let sf = snap.lookup(&cred(), sroot, "doc").unwrap();
        assert_eq!(snap.read(&cred(), sf.fid, 0, 32).unwrap(), b"original contents");
        assert!(snap.lookup(&cred(), sroot, "newfile").is_err(), "snapshot is frozen");
        assert_eq!(v.read(&cred(), f.fid, 0, 32).unwrap(), b"MUTATED~~contents");
        let report = ep.salvage().unwrap();
        assert!(report.is_clean(), "{:?}", report.problems);
    }

    #[test]
    fn stale_fid_after_recreate() {
        let (_ep, v) = mounted();
        let root = v.root().unwrap();
        let f1 = v.create(&cred(), root, "f", 0o644).unwrap();
        v.remove(&cred(), root, "f").unwrap();
        let f2 = v.create(&cred(), root, "f", 0o644).unwrap();
        assert_ne!(f1.fid, f2.fid, "uniquifier must differ on reuse");
        assert_eq!(v.getattr(&cred(), f1.fid).unwrap_err(), DfsError::StaleFid);
        assert!(v.getattr(&cred(), f2.fid).is_ok());
    }
}
