//! Integration tests: crash recovery with the salvager as consistency
//! oracle, and volume dump/restore (the substrate of volume motion and
//! lazy replication).

use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_types::{DfsError, SimClock, VolumeId};
use dfs_vfs::{Credentials, PhysicalFs, SetAttrs};
use std::sync::Arc;

fn cred() -> Credentials {
    Credentials::system()
}

fn fresh(blocks: u32) -> (SimDisk, Arc<Episode>) {
    let disk = SimDisk::new(DiskConfig::with_blocks(blocks));
    let ep = Episode::format(disk.clone(), SimClock::new(), FormatParams::default()).unwrap();
    (disk, ep)
}

#[test]
fn committed_files_survive_crash_without_writeback() {
    let (disk, ep) = fresh(16384);
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let root = v.root().unwrap();
    let f = v.create(&cred(), root, "precious", 0o644).unwrap();
    // Metadata commits are durable after a log sync; data needs fsync.
    v.fsync(&cred(), f.fid).unwrap();

    disk.crash(None);
    disk.power_on();
    let (ep2, report) = Episode::open(disk, SimClock::new()).unwrap();
    assert!(!report.formatted);
    let v2 = PhysicalFs::mount(&*ep2, VolumeId(1)).unwrap();
    let root2 = v2.root().unwrap();
    let found = v2.lookup(&cred(), root2, "precious").unwrap();
    assert_eq!(found.fid, f.fid, "fid must be stable across recovery");
    let salvage = ep2.salvage().unwrap();
    assert!(salvage.is_clean(), "{:?}", salvage.problems);
}

#[test]
fn uncommitted_work_is_rolled_back_consistently() {
    let (disk, ep) = fresh(16384);
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let root = v.root().unwrap();
    for i in 0..20 {
        v.create(&cred(), root, &format!("file{i}"), 0o644).unwrap();
    }
    // Force the log out so some transactions are durable, then keep
    // going without syncing so the tail of the work is lost.
    ep.sync_log().unwrap();
    for i in 20..40 {
        v.create(&cred(), root, &format!("file{i}"), 0o644).unwrap();
    }
    disk.crash(None);
    disk.power_on();
    let (ep2, _) = Episode::open(disk, SimClock::new()).unwrap();
    let v2 = PhysicalFs::mount(&*ep2, VolumeId(1)).unwrap();
    let root2 = v2.root().unwrap();
    let listed = v2.readdir(&cred(), root2).unwrap();
    assert_eq!(listed.len(), 20, "synced creations survive, unsynced are gone");
    // The critical property: whatever survived, the aggregate is
    // consistent — no orphans, no bad refcounts, no dangling entries.
    let salvage = ep2.salvage().unwrap();
    assert!(salvage.is_clean(), "{:?}", salvage.problems);
}

#[test]
fn repeated_crash_recover_cycles_stay_consistent() {
    let disk = SimDisk::new(DiskConfig::with_blocks(16384));
    let clock = SimClock::new();
    let ep = Episode::format(disk.clone(), clock.clone(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "v").unwrap();
    drop(ep);
    for round in 0..5u32 {
        let (ep, _) = Episode::open(disk.clone(), clock.clone()).unwrap();
        let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
        let root = v.root().unwrap();
        let name = format!("round{round}");
        let f = v.create(&cred(), root, &name, 0o644).unwrap();
        v.write(&cred(), f.fid, 0, format!("data {round}").as_bytes()).unwrap();
        if round % 2 == 0 {
            ep.sync_log().unwrap();
        }
        // Mutate without syncing, then crash.
        let _ = v.create(&cred(), root, &format!("doomed{round}"), 0o644);
        disk.crash(None);
        disk.power_on();
        let (ep2, _) = Episode::open(disk.clone(), clock.clone()).unwrap();
        let salvage = ep2.salvage().unwrap();
        assert!(salvage.is_clean(), "round {round}: {:?}", salvage.problems);
        drop(ep2);
    }
}

#[test]
fn truncate_interrupted_by_crash_leaves_consistent_state() {
    let (disk, ep) = fresh(32768);
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let root = v.root().unwrap();
    let f = v.create(&cred(), root, "big", 0o644).unwrap();
    v.write(&cred(), f.fid, 0, &vec![7u8; 300 * 4096]).unwrap();
    ep.sync_all().unwrap();
    // Truncation is split into many short transactions; crash mid-way.
    v.setattr(&cred(), f.fid, &SetAttrs::truncate(0)).unwrap();
    // Only some of the truncate transactions were synced by group commit
    // (none explicitly here) — crash now.
    disk.crash(None);
    disk.power_on();
    let (ep2, _) = Episode::open(disk, SimClock::new()).unwrap();
    let v2 = PhysicalFs::mount(&*ep2, VolumeId(1)).unwrap();
    let st = v2.getattr(&cred(), f.fid).unwrap();
    // The length is whatever prefix of the chunked truncate committed,
    // but consistency must hold regardless.
    assert!(st.length <= 300 * 4096);
    let salvage = ep2.salvage().unwrap();
    assert!(salvage.is_clean(), "{:?}", salvage.problems);
}

#[test]
fn full_dump_restore_preserves_tree_and_fids() {
    let (_, src) = fresh(16384);
    src.create_volume(VolumeId(7), "proj").unwrap();
    let v = PhysicalFs::mount(&*src, VolumeId(7)).unwrap();
    let root = v.root().unwrap();
    let dir = v.mkdir(&cred(), root, "src", 0o755).unwrap();
    let f1 = v.create(&cred(), dir.fid, "main.c", 0o644).unwrap();
    v.write(&cred(), f1.fid, 0, b"int main(){}").unwrap();
    let f2 = v.create(&cred(), root, "README", 0o644).unwrap();
    v.write(&cred(), f2.fid, 0, &vec![0xAB; 9000]).unwrap();
    v.symlink(&cred(), root, "link", "src/main.c").unwrap();
    let mut acl = dfs_types::Acl::unix_default(42);
    acl.push(dfs_types::AclEntry::allow(
        dfs_types::Principal::Group(9),
        dfs_types::Rights::READ,
    ));
    v.set_acl(&cred(), f1.fid, &acl).unwrap();

    let dump = src.dump_volume(VolumeId(7), 0).unwrap();
    assert_eq!(dump.files.len(), 5, "root, dir, two files, symlink");

    // Restore on a different aggregate — this is a volume move.
    let (_, dst) = fresh(16384);
    dst.restore_volume(&dump, false).unwrap();
    let v2 = PhysicalFs::mount(&*dst, VolumeId(7)).unwrap();
    let root2 = v2.root().unwrap();
    assert_eq!(root2, root, "root fid preserved");
    let dir2 = v2.lookup(&cred(), root2, "src").unwrap();
    assert_eq!(dir2.fid, dir.fid, "directory fid preserved across the move");
    let got = v2.lookup(&cred(), dir2.fid, "main.c").unwrap();
    assert_eq!(got.fid, f1.fid, "file fid preserved across the move");
    assert_eq!(v2.read(&cred(), got.fid, 0, 64).unwrap(), b"int main(){}");
    assert_eq!(v2.read(&cred(), f2.fid, 0, 9000).unwrap(), vec![0xAB; 9000]);
    assert_eq!(v2.readlink(&cred(), v2.lookup(&cred(), root2, "link").unwrap().fid).unwrap(),
        "src/main.c");
    assert_eq!(v2.get_acl(&cred(), f1.fid).unwrap(), acl);
    let salvage = dst.salvage().unwrap();
    assert!(salvage.is_clean(), "{:?}", salvage.problems);
}

#[test]
fn incremental_dump_carries_only_changes() {
    let (_, src) = fresh(16384);
    src.create_volume(VolumeId(7), "proj").unwrap();
    let v = PhysicalFs::mount(&*src, VolumeId(7)).unwrap();
    let root = v.root().unwrap();
    let stable = v.create(&cred(), root, "stable", 0o644).unwrap();
    v.write(&cred(), stable.fid, 0, &vec![1u8; 50_000]).unwrap();

    // Replicate fully, then change one small file at the source.
    let full = src.dump_volume(VolumeId(7), 0).unwrap();
    let (_, dst) = fresh(16384);
    dst.restore_volume(&full, true).unwrap();
    let base = full.max_data_version;

    let hot = v.create(&cred(), root, "hot", 0o644).unwrap();
    v.write(&cred(), hot.fid, 0, b"changed!").unwrap();

    let incr = src.dump_volume(VolumeId(7), base).unwrap();
    // The big stable file is not re-shipped (§3.8: "obtain from the
    // master copy only those files that have changed").
    assert!(
        !incr.files.iter().any(|f| f.status.fid == stable.fid),
        "unchanged file must not be in the incremental dump"
    );
    assert!(incr.payload_bytes() < 10_000, "incremental dump is small");

    dst.restore_volume(&incr, true).unwrap();
    let v2 = PhysicalFs::mount(&*dst, VolumeId(7)).unwrap();
    let root2 = v2.root().unwrap();
    let got = v2.lookup(&cred(), root2, "hot").unwrap();
    assert_eq!(v2.read(&cred(), got.fid, 0, 16).unwrap(), b"changed!");
    assert_eq!(v2.read(&cred(), stable.fid, 0, 50_000).unwrap(), vec![1u8; 50_000]);
}

#[test]
fn incremental_dump_propagates_deletions() {
    let (_, src) = fresh(16384);
    src.create_volume(VolumeId(7), "proj").unwrap();
    let v = PhysicalFs::mount(&*src, VolumeId(7)).unwrap();
    let root = v.root().unwrap();
    v.create(&cred(), root, "doomed", 0o644).unwrap();
    let full = src.dump_volume(VolumeId(7), 0).unwrap();
    let (_, dst) = fresh(16384);
    dst.restore_volume(&full, true).unwrap();

    v.remove(&cred(), root, "doomed").unwrap();
    let incr = src.dump_volume(VolumeId(7), full.max_data_version).unwrap();
    dst.restore_volume(&incr, true).unwrap();

    let v2 = PhysicalFs::mount(&*dst, VolumeId(7)).unwrap();
    let root2 = v2.root().unwrap();
    assert_eq!(v2.lookup(&cred(), root2, "doomed").unwrap_err(), DfsError::NotFound);
    let salvage = dst.salvage().unwrap();
    assert!(salvage.is_clean(), "{:?}", salvage.problems);
}

#[test]
fn clone_cost_is_metadata_not_data() {
    // The heart of experiment T5: cloning shares data blocks.
    let (disk, ep) = fresh(32768);
    ep.create_volume(VolumeId(1), "big").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let root = v.root().unwrap();
    for i in 0..10 {
        let f = v.create(&cred(), root, &format!("data{i}"), 0o644).unwrap();
        v.write(&cred(), f.fid, 0, &vec![i as u8; 100 * 4096]).unwrap();
    }
    ep.sync_all().unwrap();
    let before = disk.stats();
    let used_before = disk.stable_block_count();
    Episode::clone_volume(&ep, VolumeId(1), VolumeId(2), "big.backup").unwrap();
    ep.sync_all().unwrap();
    let written = disk.stats().since(&before).stable_writes;
    let grown = disk.stable_block_count() - used_before;
    // 1000 data blocks in the volume; the clone must write far fewer
    // blocks than that (only anodes, maps, refcounts, and the log).
    assert!(grown < 300, "clone allocated {grown} blocks; COW should share data");
    assert!(written < 2000, "clone wrote {written} blocks");
    let salvage = ep.salvage().unwrap();
    assert!(salvage.is_clean(), "{:?}", salvage.problems);
}

#[test]
fn deleting_clone_returns_shared_blocks() {
    let (_, ep) = fresh(32768);
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let root = v.root().unwrap();
    let f = v.create(&cred(), root, "f", 0o644).unwrap();
    v.write(&cred(), f.fid, 0, &vec![5u8; 50 * 4096]).unwrap();
    Episode::clone_volume(&ep, VolumeId(1), VolumeId(2), "snap").unwrap();
    // Delete the clone; the original must keep all its data.
    Episode::delete_volume(&ep, VolumeId(2)).unwrap();
    assert_eq!(v.read(&cred(), f.fid, 0, 8).unwrap(), vec![5u8; 8]);
    let salvage = ep.salvage().unwrap();
    assert!(salvage.is_clean(), "{:?}", salvage.problems);
    // And deleting the original afterwards frees everything.
    Episode::delete_volume(&ep, VolumeId(1)).unwrap();
    let salvage = ep.salvage().unwrap();
    assert!(salvage.is_clean(), "{:?}", salvage.problems);
}

#[test]
fn media_failure_is_surfaced() {
    let (disk, ep) = fresh(16384);
    ep.create_volume(VolumeId(1), "v").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    let root = v.root().unwrap();
    let f = v.create(&cred(), root, "f", 0o644).unwrap();
    v.write(&cred(), f.fid, 0, &vec![1u8; 100 * 4096]).unwrap();
    ep.sync_all().unwrap();
    let data_start = ep.superblock().data_start();
    drop(v);
    drop(ep);
    // Fail a slice of the data region (past the refcount table and the
    // volume's metadata blocks), then reopen with a cold cache.
    disk.inject_media_failure(data_start + 30, data_start + 200);
    let (ep2, _) = Episode::open(disk, SimClock::new()).unwrap();
    let v2 = PhysicalFs::mount(&*ep2, VolumeId(1)).unwrap();
    // Reads of affected blocks surface the media failure (logging does
    // not protect against media failure, §2.2 — salvage would be next).
    let mut saw_failure = false;
    for off in (0..100 * 4096u64).step_by(4096) {
        if v2.read(&cred(), f.fid, off, 4096) == Err(DfsError::MediaFailure) {
            saw_failure = true;
        }
    }
    assert!(saw_failure, "media failure must not be silently masked");
}
