//! Property-based tests for Episode against simple in-memory models.

use dfs_disk::{DiskConfig, SimDisk};
use dfs_episode::{Episode, FormatParams};
use dfs_types::{SimClock, VolumeId};
use dfs_vfs::{Credentials, PhysicalFs, SetAttrs, VfsPlus};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

fn fresh() -> (Arc<Episode>, Arc<dyn VfsPlus>) {
    let disk = SimDisk::new(DiskConfig::with_blocks(32 * 1024));
    let ep = Episode::format(disk, SimClock::new(), FormatParams::default()).unwrap();
    ep.create_volume(VolumeId(1), "prop").unwrap();
    let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
    (ep, v)
}

#[derive(Clone, Debug)]
enum FileOp {
    Write { offset: u64, len: usize, byte: u8 },
    Truncate { len: u64 },
    Read { offset: u64, len: usize },
}

fn file_op() -> impl Strategy<Value = FileOp> {
    prop_oneof![
        4 => (0u64..200_000, 1usize..30_000, any::<u8>())
            .prop_map(|(offset, len, byte)| FileOp::Write { offset, len, byte }),
        2 => (0u64..250_000).prop_map(|len| FileOp::Truncate { len }),
        3 => (0u64..250_000, 1usize..40_000).prop_map(|(offset, len)| FileOp::Read { offset, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// File contents behave exactly like a sparse byte vector.
    #[test]
    fn file_matches_vec_model(ops in proptest::collection::vec(file_op(), 1..25)) {
        let (ep, v) = fresh();
        let cred = Credentials::system();
        let root = v.root().unwrap();
        let f = v.create(&cred, root, "model", 0o644).unwrap();
        let mut model: Vec<u8> = Vec::new();

        for op in ops {
            match op {
                FileOp::Write { offset, len, byte } => {
                    let bytes = vec![byte; len];
                    v.write(&cred, f.fid, offset, &bytes).unwrap();
                    if model.len() < (offset as usize + len) {
                        model.resize(offset as usize + len, 0);
                    }
                    model[offset as usize..offset as usize + len].copy_from_slice(&bytes);
                }
                FileOp::Truncate { len } => {
                    v.setattr(&cred, f.fid, &SetAttrs::truncate(len)).unwrap();
                    model.resize(len as usize, 0);
                }
                FileOp::Read { offset, len } => {
                    let got = v.read(&cred, f.fid, offset, len).unwrap();
                    let end = model.len().min(offset as usize + len);
                    let want: &[u8] =
                        if offset as usize >= model.len() { &[] } else { &model[offset as usize..end] };
                    prop_assert_eq!(&got[..], want);
                }
            }
            let st = v.getattr(&cred, f.fid).unwrap();
            prop_assert_eq!(st.length, model.len() as u64);
        }
        // The aggregate stays structurally consistent throughout.
        let report = ep.salvage().unwrap();
        prop_assert!(report.is_clean(), "{:?}", report.problems);
    }

    /// Directory operations behave exactly like a name → fid map.
    #[test]
    fn directory_matches_map_model(
        script in proptest::collection::vec((0u8..4, 0u8..12), 1..60)
    ) {
        let (ep, v) = fresh();
        let cred = Credentials::system();
        let root = v.root().unwrap();
        let mut model: HashMap<String, dfs_types::Fid> = HashMap::new();

        for (action, name_idx) in script {
            let name = format!("name-{name_idx}");
            match action {
                0 => {
                    // Create.
                    let r = v.create(&cred, root, &name, 0o644);
                    if model.contains_key(&name) {
                        prop_assert!(r.is_err(), "duplicate create must fail");
                    } else {
                        model.insert(name.clone(), r.unwrap().fid);
                    }
                }
                1 => {
                    // Remove.
                    let r = v.remove(&cred, root, &name);
                    if model.contains_key(&name) {
                        r.unwrap();
                        model.remove(&name);
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
                2 => {
                    // Lookup.
                    let r = v.lookup(&cred, root, &name);
                    match model.get(&name) {
                        Some(fid) => prop_assert_eq!(r.unwrap().fid, *fid),
                        None => prop_assert!(r.is_err()),
                    }
                }
                _ => {
                    // Rename to a shifted name.
                    let to = format!("name-{}", (name_idx + 1) % 12);
                    let r = v.rename(&cred, root, &name, root, &to);
                    if let Some(fid) = model.get(&name).copied() {
                        if name == to {
                            // Same-name rename: a no-op that must succeed.
                            r.unwrap();
                        } else {
                            r.unwrap();
                            model.remove(&name);
                            model.insert(to, fid);
                        }
                    } else {
                        prop_assert!(r.is_err());
                    }
                }
            }
            // Listing matches the model exactly.
            let mut listed: Vec<String> =
                v.readdir(&cred, root).unwrap().into_iter().map(|e| e.name).collect();
            listed.sort();
            let mut want: Vec<String> = model.keys().cloned().collect();
            want.sort();
            prop_assert_eq!(listed, want);
        }
        let report = ep.salvage().unwrap();
        prop_assert!(report.is_clean(), "{:?}", report.problems);
    }

    /// Any prefix of work, crashed and recovered, salvages clean.
    #[test]
    fn random_crash_points_salvage_clean(
        n_ops in 1usize..30,
        sync_every in 1usize..8,
    ) {
        let disk = SimDisk::new(DiskConfig::with_blocks(32 * 1024));
        let clock = SimClock::new();
        let ep = Episode::format(disk.clone(), clock.clone(), FormatParams::default()).unwrap();
        ep.create_volume(VolumeId(1), "v").unwrap();
        let v = PhysicalFs::mount(&*ep, VolumeId(1)).unwrap();
        let cred = Credentials::system();
        let root = v.root().unwrap();
        for i in 0..n_ops {
            let f = v.create(&cred, root, &format!("f{i}"), 0o644).unwrap();
            v.write(&cred, f.fid, 0, &vec![i as u8; 3000]).unwrap();
            if i % 3 == 2 {
                v.remove(&cred, root, &format!("f{}", i - 1)).unwrap();
            }
            if i % sync_every == 0 {
                ep.sync_log().unwrap();
            }
        }
        disk.crash(None);
        disk.power_on();
        let (ep2, _) = Episode::open(disk, clock).unwrap();
        let report = ep2.salvage().unwrap();
        prop_assert!(report.is_clean(), "{:?}", report.problems);
    }
}
