//! Shared plumbing for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one figure or table of the
//! paper's evaluation (see `DESIGN.md` §3 for the index and
//! `EXPERIMENTS.md` for paper-vs-measured records).

use std::fmt::Display;

/// Prints a table header row.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>16}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(17 * cols.len()));
}

/// Prints one table row.
pub fn row(cells: &[&dyn Display]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>16}")).collect();
    println!("{}", row.join(" "));
}

/// Formats a float with two decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as `N.Nx`.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.1}x", a / b.max(1e-9))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(ratio(10.0, 2.0), "5.0x");
    }
}
