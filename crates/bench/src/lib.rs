//! Shared plumbing for the experiment harness binaries.
//!
//! Each binary under `src/bin/` regenerates one figure or table of the
//! paper's evaluation (see `DESIGN.md` §3 for the index and
//! `EXPERIMENTS.md` for paper-vs-measured records).

pub mod emit;
pub mod scenario;

use std::fmt::Display;

/// Prints a table header row.
pub fn header(cols: &[&str]) {
    let row: Vec<String> = cols.iter().map(|c| format!("{c:>16}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat(17 * cols.len()));
}

/// Prints one table row.
pub fn row(cells: &[&dyn Display]) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>16}")).collect();
    println!("{}", row.join(" "));
}

/// Formats a float with two decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a ratio as `N.Nx`.
pub fn ratio(a: f64, b: f64) -> String {
    format!("{:.1}x", a / b.max(1e-9))
}

/// Minimal JSON validation for the bench smoke stage (`verify.sh`).
///
/// The harness binaries emit machine-readable results under `--json`;
/// this module checks the output actually parses, with no external
/// dependencies. It validates structure only — no value model is built.
pub mod json {
    /// Validates that `input` is exactly one well-formed JSON value
    /// (trailing whitespace allowed). Returns the byte offset and a
    /// message on failure.
    pub fn validate(input: &str) -> Result<(), String> {
        let b = input.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(())
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: &str) -> String {
            format!("byte {}: {}", self.i, msg)
        }

        fn peek(&self) -> Option<u8> {
            self.b.get(self.i).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.i += 1;
            }
        }

        fn eat(&mut self, c: u8) -> Result<(), String> {
            if self.peek() == Some(c) {
                self.i += 1;
                Ok(())
            } else {
                Err(self.err(&format!("expected '{}'", c as char)))
            }
        }

        fn lit(&mut self, s: &str) -> Result<(), String> {
            if self.b[self.i..].starts_with(s.as_bytes()) {
                self.i += s.len();
                Ok(())
            } else {
                Err(self.err(&format!("expected literal '{s}'")))
            }
        }

        fn value(&mut self) -> Result<(), String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => self.string(),
                Some(b't') => self.lit("true"),
                Some(b'f') => self.lit("false"),
                Some(b'n') => self.lit("null"),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(self.err("expected a JSON value")),
            }
        }

        fn object(&mut self) -> Result<(), String> {
            self.eat(b'{')?;
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.skip_ws();
                self.string()?;
                self.skip_ws();
                self.eat(b':')?;
                self.skip_ws();
                self.value()?;
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or '}' in object")),
                }
            }
        }

        fn array(&mut self) -> Result<(), String> {
            self.eat(b'[')?;
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(());
            }
            loop {
                self.skip_ws();
                self.value()?;
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(());
                    }
                    _ => return Err(self.err("expected ',' or ']' in array")),
                }
            }
        }

        fn string(&mut self) -> Result<(), String> {
            self.eat(b'"')?;
            loop {
                match self.peek() {
                    None => return Err(self.err("unterminated string")),
                    Some(b'"') => {
                        self.i += 1;
                        return Ok(());
                    }
                    Some(b'\\') => {
                        self.i += 1;
                        match self.peek() {
                            Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                                self.i += 1
                            }
                            Some(b'u') => {
                                self.i += 1;
                                for _ in 0..4 {
                                    match self.peek() {
                                        Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                        _ => return Err(self.err("bad \\u escape")),
                                    }
                                }
                            }
                            _ => return Err(self.err("bad escape")),
                        }
                    }
                    Some(c) if c < 0x20 => return Err(self.err("control char in string")),
                    Some(_) => self.i += 1,
                }
            }
        }

        fn number(&mut self) -> Result<(), String> {
            if self.peek() == Some(b'-') {
                self.i += 1;
            }
            let digits = |p: &mut Self| -> Result<(), String> {
                let start = p.i;
                while matches!(p.peek(), Some(c) if c.is_ascii_digit()) {
                    p.i += 1;
                }
                if p.i == start {
                    Err(p.err("expected digits"))
                } else {
                    Ok(())
                }
            };
            digits(self)?;
            if self.peek() == Some(b'.') {
                self.i += 1;
                digits(self)?;
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.i += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.i += 1;
                }
                digits(self)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.2345), "1.23");
        assert_eq!(ratio(10.0, 2.0), "5.0x");
    }

    #[test]
    fn json_accepts_well_formed_values() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-1.5e10",
            r#""esc \" \\ ÿ""#,
            r#"{"a": [1, 2, {"b": null}], "c": "x"}"#,
            "  {\"k\": 1}\n",
        ] {
            assert!(json::validate(ok).is_ok(), "rejected {ok:?}");
        }
    }

    #[test]
    fn json_rejects_malformed_values() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} extra",
            "\"unterminated",
            "01e",
            "nul",
            "{\"a\": \"\x01\"}",
        ] {
            assert!(json::validate(bad).is_err(), "accepted {bad:?}");
        }
    }
}
